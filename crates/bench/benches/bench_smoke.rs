//! The wall-clock trajectory point: a fast, fixed set of end-to-end
//! workloads timed on the *host* clock and written as a
//! schema-versioned `BENCH_<date>.json` under the tracked
//! `results/bench/` directory, so PRs accumulate a measured performance
//! history (ROADMAP item 3; schema in `nufft_trace::bench`, DESIGN.md
//! §5j).
//!
//! Each row is best-of-`BENCH_SMOKE_REPS` (default 3) seconds. After
//! writing, the file is re-read through the schema validator and
//! compared against the latest prior `BENCH_*.json`: rows slower by
//! more than 15% print as regressions. `BENCH_STRICT=1` turns
//! regressions into a non-zero exit (the default tolerates them —
//! shared-CI hosts are noisy) and also fails when no prior report is
//! found at all: a missing trajectory means the history is broken (the
//! exact failure mode a root-level `.gitignore` glob once caused), not
//! that it is legitimately starting over.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use bench::{bench_dir, latest_prior_bench, utc_yyyymmdd, workload, write_bench_report};
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{Complex, Method, Precision, Shape, TransformSpec, TransformType};
use nufft_serve::{NufftServer, ServeConfig};
use nufft_trace::bench::{compare, BenchReport};
use nufft_trace::Trace;

fn reps() -> u64 {
    std::env::var("BENCH_SMOKE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3)
}

/// Best-of-`reps` wall seconds of `f`.
fn time_best(reps: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn plan_row<T: nufft_common::Real>(
    ttype: TransformType,
    modes: &[usize],
    method: Method,
    seed: u64,
) -> f64 {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let dim = modes.len();
    let fine = match dim {
        1 => Shape::d1(2 * modes[0]),
        2 => Shape::d2(2 * modes[0], 2 * modes[1]),
        _ => Shape::d3(2 * modes[0], 2 * modes[1], 2 * modes[2]),
    };
    let (pts, cs) = workload::<T>(PointDist::Rand, dim, fine, 0.5, seed);
    let n: usize = modes.iter().product();
    // type 1 consumes strengths at the M points and fills the N modes;
    // type 2 goes the other way
    let (input, out_len) = match ttype {
        TransformType::Type1 => (cs, n),
        TransformType::Type2 => (
            nufft_common::workload::gen_strengths::<T>(n, seed + 2),
            pts.len(),
        ),
    };
    let mut out = vec![Complex::<T>::ZERO; out_len];
    time_best(reps(), || {
        let mut plan = cufinufft::Plan::<T>::builder(ttype, modes)
            .eps(1e-4)
            .method(method)
            .build(&dev)
            .expect("plan");
        plan.set_pts(&pts).expect("set_pts");
        plan.execute(&input, &mut out).expect("execute");
    })
}

/// A 50-request mixed-spec burst through the serve layer; fills the
/// `serve.*` histograms on the returned trace.
fn serve_burst(trace: &Trace) -> f64 {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let config = ServeConfig {
        queue_capacity: 128,
        ..ServeConfig::default()
    }
    .with_trace(trace);
    let server = NufftServer::start(&dev, config).expect("server");
    let pts = Arc::new(nufft_common::workload::gen_points::<f32>(
        PointDist::Rand,
        2,
        600,
        Shape::d2(64, 64),
        9,
    ));
    let specs = [
        TransformSpec::type1(&[24, 24])
            .eps(1e-4)
            .precision(Precision::F32),
        TransformSpec::type1(&[32, 32])
            .eps(1e-5)
            .precision(Precision::F32),
        TransformSpec::type2(&[24, 24])
            .eps(1e-4)
            .precision(Precision::F32),
    ];
    let t = Instant::now();
    let mut pending = Vec::new();
    for i in 0..50u64 {
        let spec = &specs[(i % specs.len() as u64) as usize];
        let input = nufft_common::workload::gen_strengths::<f32>(spec.input_len(pts.len()), i + 1);
        pending.push(server.submit_wait(spec, &pts, input).expect("submit"));
    }
    for r in pending {
        r.wait().expect("response");
    }
    let wall = t.elapsed().as_secs_f64();
    server.shutdown();
    wall
}

fn main() -> ExitCode {
    let created_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let mut report = BenchReport::new("bench-smoke", created_unix);

    println!("bench-smoke: {} reps per row", reps());
    report.push_row(
        "type1_2d_sm_f32",
        plan_row::<f32>(TransformType::Type1, &[32, 32], Method::Sm, 3),
        reps(),
    );
    report.push_row(
        "type2_2d_gmsort_f32",
        plan_row::<f32>(TransformType::Type2, &[32, 32], Method::GmSort, 5),
        reps(),
    );
    report.push_row(
        "type1_3d_gmsort_f64",
        plan_row::<f64>(TransformType::Type1, &[16, 16, 16], Method::GmSort, 7),
        reps(),
    );
    let trace = Trace::new();
    report.push_row("serve_burst_50", serve_burst(&trace), 1);
    report.add_histograms(&trace.report(), |n| n.starts_with("serve."));

    for r in &report.rows {
        println!("  {:24} {:>10.6} s (best of {})", r.name, r.wall_s, r.reps);
    }

    let dir = bench_dir();
    let path = write_bench_report(&dir, &report);
    println!("wrote {}", path.display());

    // the file must round-trip through its own schema validator
    let text = std::fs::read_to_string(&path).expect("re-read");
    let back = BenchReport::from_json(&text).expect("schema-valid trajectory point");
    assert_eq!(utc_yyyymmdd(back.created_unix), utc_yyyymmdd(created_unix));

    let strict = std::env::var("BENCH_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false);
    match latest_prior_bench(&dir, Some(path.as_path())) {
        None if strict => {
            println!("BENCH_STRICT=1 and no prior BENCH_*.json in {}: the trajectory is broken, not starting over", dir.display());
            ExitCode::FAILURE
        }
        None => {
            println!("no prior BENCH_*.json — trajectory starts here");
            ExitCode::SUCCESS
        }
        Some((prev_path, prev)) => {
            let regs = compare(&prev, &back, 0.15);
            if regs.is_empty() {
                println!(
                    "no regressions > 15% vs {}",
                    prev_path.file_name().unwrap().to_string_lossy()
                );
                return ExitCode::SUCCESS;
            }
            for r in &regs {
                println!(
                    "REGRESSION {}: {:.6}s -> {:.6}s ({:.1}% slower)",
                    r.name,
                    r.prev_s,
                    r.cur_s,
                    (r.ratio - 1.0) * 100.0
                );
            }
            if strict {
                ExitCode::FAILURE
            } else {
                println!("(advisory: set BENCH_STRICT=1 to fail on regressions)");
                ExitCode::SUCCESS
            }
        }
    }
}
