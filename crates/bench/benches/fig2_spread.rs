//! Figure 2: spreading method comparison — GM vs GM-sort vs SM.
//!
//! Execution time per nonuniform point for a sweep of fine-grid sizes,
//! distributions "rand" and "cluster", in 2D and 3D; single precision,
//! eps = 1e-5 (w = 6), density rho = 1, M_sub = 1024. "total" includes
//! the bin-sort / subproblem precomputation, "spread" excludes it —
//! exactly the solid vs dotted lines of the paper's figure.

use bench::{large_mode, ns_per_pt, workload, Csv};
use cufinufft::bins::{build_subproblems, gpu_bin_sort};
use cufinufft::spread::{spread_gm, spread_sm, PtsRef};
use cufinufft::{default_bin_size, sm_feasible};
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{Complex, Shape};
use nufft_kernels::EsKernel;

struct Run {
    total_ns: f64,
    spread_ns: f64,
}

fn run_method(
    method: &str,
    kernel: &EsKernel,
    fine: Shape,
    pts: &nufft_common::Points<f32>,
    cs: &[Complex<f32>],
) -> Run {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let m = pts.len();
    let pr = PtsRef {
        coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
        dim: pts.dim,
    };
    let bins = default_bin_size(pts.dim);
    let mut grid = vec![Complex::<f32>::ZERO; fine.total()];
    let t0 = dev.clock();
    let (sort_time, spread_time) = match method {
        "GM" => {
            let natural: Vec<u32> = (0..m as u32).collect();
            let t1 = dev.clock();
            spread_gm(
                &dev,
                "spread_GM",
                kernel,
                fine,
                &pr,
                cs,
                &natural,
                &mut grid,
                128,
                1.0,
            )
            .unwrap();
            (0.0, dev.clock() - t1)
        }
        "GM-sort" => {
            let sort = gpu_bin_sort(&dev, pts, fine, bins);
            let t1 = dev.clock();
            spread_gm(
                &dev,
                "spread_GMs",
                kernel,
                fine,
                &pr,
                cs,
                &sort.perm,
                &mut grid,
                128,
                1.0,
            )
            .unwrap();
            (t1 - t0, dev.clock() - t1)
        }
        "SM" => {
            let sort = gpu_bin_sort(&dev, pts, fine, bins);
            let subs = build_subproblems(&dev, &sort, 1024);
            let t1 = dev.clock();
            spread_sm(
                &dev,
                kernel,
                fine,
                &pr,
                cs,
                &sort.perm,
                &sort.layout,
                &subs,
                &mut grid,
            )
            .unwrap();
            (t1 - t0, dev.clock() - t1)
        }
        _ => unreachable!(),
    };
    Run {
        total_ns: ns_per_pt(sort_time + spread_time, m),
        spread_ns: ns_per_pt(spread_time, m),
    }
}

fn main() {
    let kernel = EsKernel::with_width(6); // eps = 1e-5 single precision
    let mut csv = Csv::create(
        "fig2_spread.csv",
        "dim,dist,n,M,method,total_ns_per_pt,spread_ns_per_pt",
    );
    let sizes_2d: Vec<usize> = if large_mode() {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    } else {
        vec![64, 128, 256, 512, 1024, 2048]
    };
    let sizes_3d: Vec<usize> = if large_mode() {
        vec![16, 32, 64, 128, 160]
    } else {
        vec![16, 32, 64, 128]
    };
    println!("# Fig. 2 — spreading: ns per nonuniform point (total | spread-only)");
    println!("# single precision, w = 6 (eps = 1e-5), rho = 1, M_sub = 1024\n");
    for (dim, sizes) in [(2usize, &sizes_2d), (3usize, &sizes_3d)] {
        for dist in [PointDist::Rand, PointDist::Cluster] {
            let dist_name = if dist == PointDist::Rand {
                "rand"
            } else {
                "cluster"
            };
            println!("## {dim}D, \"{dist_name}\"");
            println!(
                "{:>6} {:>10} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9} | speedups vs GM",
                "n", "M", "GM tot", "GM spr", "GMs tot", "GMs spr", "SM tot", "SM spr"
            );
            for &n in sizes {
                let fine = if dim == 2 {
                    Shape::d2(n, n)
                } else {
                    Shape::d3(n, n, n)
                };
                let (pts, cs) = workload::<f32>(dist, dim, fine, 1.0, 42 + n as u64);
                let m = pts.len();
                let gm = run_method("GM", &kernel, fine, &pts, &cs);
                let gms = run_method("GM-sort", &kernel, fine, &pts, &cs);
                let sm_ok = sm_feasible(
                    cufinufft::default_bin_size(dim),
                    dim,
                    kernel.w,
                    std::mem::size_of::<Complex<f32>>(),
                    49_000,
                );
                let sm = if sm_ok {
                    Some(run_method("SM", &kernel, fine, &pts, &cs))
                } else {
                    None
                };
                let (sm_tot, sm_spr) = sm
                    .as_ref()
                    .map(|r| (r.total_ns, r.spread_ns))
                    .unwrap_or((f64::NAN, f64::NAN));
                println!(
                    "{:>6} {:>10} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | GMs {:.1}x  SM {:.1}x",
                    n,
                    m,
                    gm.total_ns,
                    gm.spread_ns,
                    gms.total_ns,
                    gms.spread_ns,
                    sm_tot,
                    sm_spr,
                    gm.spread_ns / gms.spread_ns,
                    gm.spread_ns / sm_spr,
                );
                for (name, r) in [("GM", &gm), ("GM-sort", &gms)] {
                    csv.row(&format!(
                        "{dim},{dist_name},{n},{m},{name},{:.4},{:.4}",
                        r.total_ns, r.spread_ns
                    ));
                }
                if let Some(r) = &sm {
                    csv.row(&format!(
                        "{dim},{dist_name},{n},{m},SM,{:.4},{:.4}",
                        r.total_ns, r.spread_ns
                    ));
                }
            }
            println!();
        }
    }
    println!("# paper anchors: GM-sort up to 3.9x (2D) / 7.6x (3D) over GM on rand;");
    println!("# SM up to 12.8x (2D) / 3.2x (3D) over GM on cluster;");
    println!("# SM ~distribution-robust; >1e9 pts/s 2D spread throughput at large n.");
}
