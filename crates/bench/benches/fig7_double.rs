//! Figure 7: double-precision cross-library comparison.
//!
//! "exec", "total" and "total+mem" per nonuniform point vs accuracy,
//! for type 1 and 2 in 2D and 3D, "rand", rho = 1. gpuNUFFT is excluded
//! as in the paper (its error always exceeds ~1e-3 in double precision).
//! SM is used where feasible: all of 2D, but not 3D once w > 8
//! (Remark 2) — the harness reports the method actually selected.

use bench::{
    finufft_model_times, ground_truth, large_mode, ns_per_pt, run_cufinufft, run_cunfft, workload,
    Csv,
};
use cufinufft::Method;
use nufft_common::metrics::rel_l2;
use nufft_common::workload::PointDist;
use nufft_common::{gen_coeffs, Shape, TransformType};

fn main() {
    let (n2, n3) = if large_mode() { (512, 64) } else { (256, 32) };
    let eps_sweep = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12];
    let mut csv = Csv::create(
        "fig7_double.csv",
        "dim,type,eps,lib,method,err,exec_ns,total_ns,total_mem_ns",
    );
    println!("# Fig. 7 — double precision, \"rand\", rho = 1");
    println!("# 2D: N = {n2}^2; 3D: N = {n3}^3 (scaled; BENCH_LARGE=1 doubles)\n");
    for (dim, n) in [(2usize, n2), (3usize, n3)] {
        let modes: Vec<usize> = vec![n; dim];
        let shape = Shape::from_slice(&modes);
        let fine = shape.map(|_, v| 2 * v);
        for ttype in [TransformType::Type1, TransformType::Type2] {
            let tname = if ttype == TransformType::Type1 {
                "type1"
            } else {
                "type2"
            };
            println!("## {dim}D {tname}  (err | exec | total | total+mem, ns/pt)");
            println!(
                "{:>8} | {:>52} | {:>42} | {:>22}",
                "eps", "cuFINUFFT (best feasible method)", "CUNFFT", "FINUFFT(model)"
            );
            let (pts, cs) = workload::<f64>(PointDist::Rand, dim, fine, 1.0, 202);
            let m = pts.len();
            let coeffs = gen_coeffs::<f64>(shape.total(), 9);
            let input = match ttype {
                TransformType::Type1 => &cs,
                TransformType::Type2 => &coeffs,
            };
            let truth = ground_truth(ttype, &modes, &pts, input);
            for &eps in &eps_sweep {
                let w = nufft_kernels::EsKernel::for_tolerance(eps, true)
                    .map(|k| k.w)
                    .unwrap_or(16);
                let sm_ok =
                    cufinufft::sm_feasible(cufinufft::default_bin_size(dim), dim, w, 16, 49_000);
                let method = if sm_ok { Method::Sm } else { Method::GmSort };
                let mname = if sm_ok { "SM" } else { "GM-sort" };
                let (t, out) = run_cufinufft(ttype, &modes, eps, method, &pts, input);
                let err = rel_l2(&out, &truth);
                let (t_cn, out_cn) = run_cunfft(ttype, &modes, eps, &pts, input);
                let err_cn = rel_l2(&out_cn, &truth);
                let (f_exec, f_total) = finufft_model_times::<f64>(ttype, shape, eps, m);
                println!(
                    "{:>8.0e} | [{mname:>7}] {:>9.1e} {:>8.2} {:>8.2} {:>9.2} | {:>9.1e} {:>8.2} {:>8.2} {:>9.2} | {:>10.2} {:>10.2}",
                    eps,
                    err,
                    ns_per_pt(t.exec(), m),
                    ns_per_pt(t.total(), m),
                    ns_per_pt(t.total_mem(), m),
                    err_cn,
                    ns_per_pt(t_cn.exec(), m),
                    ns_per_pt(t_cn.total(), m),
                    ns_per_pt(t_cn.total_mem(), m),
                    ns_per_pt(f_exec, m),
                    ns_per_pt(f_total, m),
                );
                csv.row(&format!(
                    "{dim},{tname},{eps},cufinufft,{mname},{err:.3e},{:.3},{:.3},{:.3}",
                    ns_per_pt(t.exec(), m),
                    ns_per_pt(t.total(), m),
                    ns_per_pt(t.total_mem(), m)
                ));
                csv.row(&format!(
                    "{dim},{tname},{eps},cunfft,GM,{err_cn:.3e},{:.3},{:.3},{:.3}",
                    ns_per_pt(t_cn.exec(), m),
                    ns_per_pt(t_cn.total(), m),
                    ns_per_pt(t_cn.total_mem(), m)
                ));
                csv.row(&format!(
                    "{dim},{tname},{eps},finufft,cpu,{eps:.3e},{:.3},{:.3},{:.3}",
                    ns_per_pt(f_exec, m),
                    ns_per_pt(f_total, m),
                    ns_per_pt(f_total, m)
                ));
            }
            println!();
        }
    }
    println!("# paper anchors (double): 2D type 1 cuFINUFFT 1-2 orders of magnitude");
    println!("# ahead (SM best at high accuracy, GM-sort at low); 3D type 1 faster than");
    println!("# FINUFFT only for eps >= ~1e-10; type 2 always fastest, ~6x FINUFFT;");
    println!("# host transfers dominate 'total+mem' in 2D and low-accuracy 3D.");
}
