//! Ablation (paper future-work item 3): upsampling factor sigma < 2.
//!
//! Reducing sigma shrinks the fine grid (less memory, cheaper FFT) at
//! the cost of a wider kernel (more spreading work). This harness
//! compares sigma = 2 against sigma = 1.25 on the simulated device:
//! memory footprint, stage times, and achieved accuracy.

use bench::{ground_truth, ns_per_pt, workload, Csv};
use cufinufft::Plan;
use gpu_sim::Device;
use nufft_common::metrics::rel_l2;
use nufft_common::workload::PointDist;
use nufft_common::{Complex, Shape, TransformType};

fn main() {
    let n = 256usize;
    let modes = [n, n];
    let shape = Shape::from_slice(&modes);
    let mut csv = Csv::create(
        "ablation_sigma.csv",
        "sigma,eps,w,fine,err,spread_ns,fft_ns,exec_ns,grid_mb",
    );
    println!("# Ablation — upsampling factor sigma (2D {n}x{n} type 1, f32, rand)\n");
    println!(
        "{:>6} {:>8} {:>3} {:>10} | {:>9} | {:>9} {:>8} {:>8} | {:>8}",
        "sigma", "eps", "w", "fine grid", "err", "spread", "fft", "exec", "grid MB"
    );
    for eps in [1e-2f64, 1e-4] {
        for sigma in [2.0f64, 1.25] {
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
                .eps(eps)
                .upsampfac(sigma)
                .build(&dev)
                .unwrap();
            let fine = plan.fine_grid_shape();
            let (pts, cs) = workload::<f32>(PointDist::Rand, 2, Shape::d2(2 * n, 2 * n), 1.0, 5);
            let m = pts.len();
            plan.set_pts(&pts).unwrap();
            let mut out = vec![Complex::<f32>::ZERO; shape.total()];
            plan.execute(&cs, &mut out).unwrap();
            let truth = ground_truth(TransformType::Type1, &modes, &pts, &cs);
            let err = rel_l2(&out, &truth);
            let t = plan.timings();
            let grid_mb = fine.total() as f64 * 8.0 / 1e6;
            println!(
                "{:>6} {:>8.0e} {:>3} {:>5}x{:<4} | {:>9.1e} | {:>9.3} {:>8.3} {:>8.3} | {:>8.2}",
                sigma,
                eps,
                plan.kernel().w,
                fine.n[0],
                fine.n[1],
                err,
                ns_per_pt(t.spread_interp, m),
                ns_per_pt(t.fft, m),
                ns_per_pt(t.exec(), m),
                grid_mb,
            );
            csv.row(&format!(
                "{sigma},{eps},{},{}x{},{err:.3e},{:.4},{:.4},{:.4},{grid_mb:.2}",
                plan.kernel().w,
                fine.n[0],
                fine.n[1],
                ns_per_pt(t.spread_interp, m),
                ns_per_pt(t.fft, m),
                ns_per_pt(t.exec(), m)
            ));
        }
    }
    println!("\n# expectation: sigma=1.25 shrinks the fine grid ~2.6x (memory, FFT time)");
    println!("# while widening the kernel; the paper cites this as the main lever for");
    println!("# reducing memory overhead (future-work item 3).");
}
