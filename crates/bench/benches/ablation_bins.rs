//! Ablation (beyond the paper's figures; validates Remark 1): bin-size
//! sweep for GM-sort and SM spreading.
//!
//! The paper hand-tuned bins to 32x32 in 2D and 16x16x2 in 3D. This
//! harness sweeps power-of-two bin shapes and reports spread time per
//! point, confirming the chosen defaults are at (or near) the optimum
//! under the cost model — and showing *why*: small bins inflate the
//! padded-bin-to-bin ratio (more step-3 atomics), huge bins overflow
//! shared memory or lose sort locality.

use bench::{ns_per_pt, workload, Csv};
use cufinufft::bins::{build_subproblems, gpu_bin_sort};
use cufinufft::sm_shared_bytes;
use cufinufft::spread::{spread_gm, spread_sm, PtsRef};
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{Complex, Shape};
use nufft_kernels::EsKernel;

fn main() {
    let kernel = EsKernel::with_width(6);
    let mut csv = Csv::create("ablation_bins.csv", "dim,bin,gm_sort_ns,sm_ns");
    println!("# Ablation — bin-size sweep (w = 6, f32, rand, rho = 1)\n");

    // 2D on a 2048^2 fine grid
    let fine = Shape::d2(2048, 2048);
    let (pts, cs) = workload::<f32>(PointDist::Rand, 2, fine, 1.0, 77);
    let m = pts.len();
    let pr = PtsRef {
        coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
        dim: 2,
    };
    println!("## 2D (fine 2048^2) — paper default 32x32");
    println!(
        "{:>10} | {:>12} | {:>12} | shared B",
        "bin", "GM-sort ns", "SM ns"
    );
    for b in [8usize, 16, 32, 64, 128] {
        let bins = [b, b, 1];
        let dev = Device::v100();
        dev.set_record_timeline(false);
        let sort = gpu_bin_sort(&dev, &pts, fine, bins);
        let mut grid = vec![Complex::<f32>::ZERO; fine.total()];
        let t0 = dev.clock();
        spread_gm(
            &dev, "gms", &kernel, fine, &pr, &cs, &sort.perm, &mut grid, 128, 1.0,
        )
        .unwrap();
        let t_gms = dev.clock() - t0;
        let shb = sm_shared_bytes(bins, 2, kernel.w, 8);
        let t_sm = if shb <= 49_000 {
            let subs = build_subproblems(&dev, &sort, 1024);
            let mut g2 = vec![Complex::<f32>::ZERO; fine.total()];
            let t1 = dev.clock();
            spread_sm(
                &dev,
                &kernel,
                fine,
                &pr,
                &cs,
                &sort.perm,
                &sort.layout,
                &subs,
                &mut g2,
            )
            .unwrap();
            Some(dev.clock() - t1)
        } else {
            None
        };
        println!(
            "{:>7}x{:<3}| {:>12.3} | {:>12} | {}",
            b,
            b,
            ns_per_pt(t_gms, m),
            t_sm.map(|t| format!("{:.3}", ns_per_pt(t, m)))
                .unwrap_or("(infeasible)".into()),
            shb
        );
        csv.row(&format!(
            "2,{b}x{b},{:.4},{}",
            ns_per_pt(t_gms, m),
            t_sm.map(|t| format!("{:.4}", ns_per_pt(t, m)))
                .unwrap_or("nan".into())
        ));
    }

    // 3D on a 128^3 fine grid; sweep anisotropic shapes around 16x16x2
    let fine = Shape::d3(128, 128, 128);
    let (pts, cs) = workload::<f32>(PointDist::Rand, 3, fine, 1.0, 78);
    let m = pts.len();
    let pr = PtsRef {
        coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
        dim: 3,
    };
    println!("\n## 3D (fine 128^3) — paper default 16x16x2");
    println!(
        "{:>12} | {:>12} | {:>12} | shared B",
        "bin", "GM-sort ns", "SM ns"
    );
    for bins in [
        [4usize, 4, 4],
        [8, 8, 2],
        [8, 8, 8],
        [16, 16, 2],
        [16, 16, 4],
        [32, 32, 2],
    ] {
        let dev = Device::v100();
        dev.set_record_timeline(false);
        let sort = gpu_bin_sort(&dev, &pts, fine, bins);
        let mut grid = vec![Complex::<f32>::ZERO; fine.total()];
        let t0 = dev.clock();
        spread_gm(
            &dev, "gms", &kernel, fine, &pr, &cs, &sort.perm, &mut grid, 128, 1.0,
        )
        .unwrap();
        let t_gms = dev.clock() - t0;
        let shb = sm_shared_bytes(bins, 3, kernel.w, 8);
        let t_sm = if shb <= 49_000 {
            let subs = build_subproblems(&dev, &sort, 1024);
            let mut g2 = vec![Complex::<f32>::ZERO; fine.total()];
            let t1 = dev.clock();
            spread_sm(
                &dev,
                &kernel,
                fine,
                &pr,
                &cs,
                &sort.perm,
                &sort.layout,
                &subs,
                &mut g2,
            )
            .unwrap();
            Some(dev.clock() - t1)
        } else {
            None
        };
        println!(
            "{:>4}x{:<2}x{:<3} | {:>12.3} | {:>12} | {}",
            bins[0],
            bins[1],
            bins[2],
            ns_per_pt(t_gms, m),
            t_sm.map(|t| format!("{:.3}", ns_per_pt(t, m)))
                .unwrap_or("(infeasible)".into()),
            shb
        );
        csv.row(&format!(
            "3,{}x{}x{},{:.4},{}",
            bins[0],
            bins[1],
            bins[2],
            ns_per_pt(t_gms, m),
            t_sm.map(|t| format!("{:.4}", ns_per_pt(t, m)))
                .unwrap_or("nan".into())
        ));
    }
    println!("\n# expectation: defaults 32x32 / 16x16x2 within ~20% of the sweep optimum");
}
