//! Ablation: shared-memory interpolation — the design the paper REJECTED.
//!
//! Sec. III-B: "Since there is no conflict between threads reading the
//! same location in memory, this [GM-sort interpolation] is fast; the
//! benefit of applying an idea like SM to interpolation would be
//! limited." This harness implements that rejected variant and measures
//! it against GM-sort, reproducing the design-decision evidence.

use bench::{ns_per_pt, workload, Csv};
use cufinufft::bins::{build_subproblems, gpu_bin_sort};
use cufinufft::default_bin_size;
use cufinufft::interp::{interp_gm, interp_sm};
use cufinufft::spread::PtsRef;
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{gen_coeffs, Complex, Shape};
use nufft_kernels::EsKernel;

fn main() {
    let kernel = EsKernel::with_width(6);
    let mut csv = Csv::create(
        "ablation_interp_sm.csv",
        "dim,dist,n,gm_sort_ns,sm_ns,ratio",
    );
    println!("# Ablation — shared-memory interpolation (the paper's rejected design)");
    println!("# w = 6, f32, rho = 1\n");
    println!(
        "{:>4} {:>8} {:>6} | {:>12} | {:>12} | ratio",
        "dim", "dist", "n", "GM-sort ns", "SM ns"
    );
    for (dim, sizes) in [
        (2usize, vec![512usize, 1024, 2048]),
        (3usize, vec![64usize, 128]),
    ] {
        for dist in [PointDist::Rand, PointDist::Cluster] {
            let dist_name = if dist == PointDist::Rand {
                "rand"
            } else {
                "cluster"
            };
            for &n in &sizes {
                let fine = if dim == 2 {
                    Shape::d2(n, n)
                } else {
                    Shape::d3(n, n, n)
                };
                let (pts, _) = workload::<f32>(dist, dim, fine, 1.0, 3 + n as u64);
                let m = pts.len();
                let grid = gen_coeffs::<f32>(fine.total(), 9);
                let pr = PtsRef {
                    coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
                    dim,
                };
                let dev = Device::v100();
                dev.set_record_timeline(false);
                let sort = gpu_bin_sort(&dev, &pts, fine, default_bin_size(dim));
                let subs = build_subproblems(&dev, &sort, 1024);
                let mut out = vec![Complex::<f32>::ZERO; m];
                let t0 = dev.clock();
                interp_gm(
                    &dev, "g", &kernel, fine, &pr, &grid, &sort.perm, &mut out, 128,
                )
                .unwrap();
                let t_gm = dev.clock() - t0;
                let t1 = dev.clock();
                interp_sm(
                    &dev,
                    &kernel,
                    fine,
                    &pr,
                    &grid,
                    &sort.perm,
                    &sort.layout,
                    &subs,
                    &mut out,
                )
                .unwrap();
                let t_sm = dev.clock() - t1;
                println!(
                    "{:>4} {:>8} {:>6} | {:>12.3} | {:>12.3} | {:.2}x",
                    dim,
                    dist_name,
                    n,
                    ns_per_pt(t_gm, m),
                    ns_per_pt(t_sm, m),
                    t_gm / t_sm
                );
                csv.row(&format!(
                    "{dim},{dist_name},{n},{:.4},{:.4},{:.3}",
                    ns_per_pt(t_gm, m),
                    ns_per_pt(t_sm, m),
                    t_gm / t_sm
                ));
            }
        }
    }
    println!("\n# expectation (paper Sec. III-B): SM interpolation brings little or no");
    println!("# benefit over GM-sort — reads have no write conflicts to avoid.");
}
