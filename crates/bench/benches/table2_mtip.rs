//! Table II: M-TIP NUFFT stage times — CPU vs single GPU vs whole node.
//!
//! Per-rank problem sizes follow the paper (slicing: type 2, N=41,
//! M=1.02e6, eps=1e-12; merging: 2x type 1, N=81, M=1.64e7), scaled down
//! by a factor (default 16; 1 with BENCH_LARGE=1 for slicing) to keep
//! the functional simulation tractable — stage times are per-point
//! linear so the CPU/GPU ratios are scale-stable. The CPU comparator is
//! the 40-thread Skylake model; whole-node rows use one rank per GPU
//! (Cori GPU: 8, Summit: 6).

use bench::Csv;
use finufft_cpu::{CpuModel, CpuPrecision};
use mtip::{Node, RankTask};
use nufft_common::Shape;

fn cpu_time(task: &RankTask, model: &CpuModel) -> f64 {
    let n = task.n_grid;
    let modes = Shape::d3(n, n, n);
    let fine = modes.map(|_, v| nufft_common::smooth::fine_grid_size(v, 2.0, 13));
    let w = 13; // eps = 1e-12 double
    let per = match task.ttype {
        nufft_common::TransformType::Type1 => {
            model.type1_exec(task.m, w, modes, fine, CpuPrecision::Double)
        }
        nufft_common::TransformType::Type2 => {
            model.type2_exec(task.m, w, modes, fine, CpuPrecision::Double)
        }
    };
    task.transforms as f64 * (per + model.sort_time(task.m) / task.transforms as f64)
}

fn main() {
    let scale = if bench::large_mode() { 4 } else { 16 };
    let mut csv = Csv::create(
        "table2_mtip.csv",
        "task,node,parallelism,cpu_s,gpu_s,speedup",
    );
    println!("# Table II — M-TIP NUFFT stage wall times per iteration");
    println!("# per-rank sizes scaled by 1/{scale} (ratios are scale-stable)\n");
    println!(
        "{:>18} {:>10} {:>14} | {:>10} {:>10} {:>8}",
        "Task", "Node", "Parallelism", "CPU (s)", "GPU (s)", "speedup"
    );
    let skylake = CpuModel::skylake_40t();
    for (name, task) in [
        ("Slicing (type 2)", RankTask::slicing(scale)),
        ("Merging (type 1)", RankTask::merging(scale)),
    ] {
        let rank_t = mtip::cluster::run_rank(&task, 5);
        let gpu_single = rank_t.total();
        // one extra rank simulation to sample the (tiny) rank-to-rank
        // spread; whole-node wall = max over one-rank-per-GPU
        let wall = gpu_single.max(mtip::cluster::run_rank(&task, 6).total());
        let cpu_single = cpu_time(&task, &skylake);
        println!(
            "{:>18} {:>10} {:>14} | {:>10.4} {:>10.4} {:>7.1}x",
            name,
            "-",
            "single-rank",
            cpu_single,
            gpu_single,
            cpu_single / gpu_single
        );
        csv.row(&format!(
            "{name},-,single-rank,{cpu_single:.5},{gpu_single:.5},{:.2}",
            cpu_single / gpu_single
        ));
        for node in [Node::cori_gpu(), Node::summit()] {
            // whole-node: problem scaled up by #GPUs, one rank per GPU.
            // Ranks are identical, so the wall clock is the max over a
            // small sample of rank simulations (the single-queue model
            // puts exactly one rank on each GPU).
            let cpu_whole = cpu_single * node.gpus as f64;
            println!(
                "{:>18} {:>10} {:>14} | {:>10.4} {:>10.4} {:>7.1}x",
                name,
                node.name,
                format!("whole-node x{}", node.gpus),
                cpu_whole,
                wall,
                cpu_whole / wall
            );
            csv.row(&format!(
                "{name},{},whole-node,{cpu_whole:.5},{wall:.5},{:.2}",
                node.name,
                cpu_whole / wall
            ));
        }
    }
    println!("\n# paper anchors: single-rank GPU ~0.9-1.5x CPU; whole-node 6-18x;");
    println!("# densities rho = 1.86 (slicing) and 3.85 (merging) as in Table II.");
}
