//! Figure 6: detailed 2D comparison vs problem size, "rand" vs "cluster".
//!
//! Single precision, eps = 1e-2, density rho = 1; execution time per
//! nonuniform point vs number of Fourier modes, for type 1 (top) and
//! type 2 (bottom). The reproduction targets: cuFINUFFT(SM), FINUFFT and
//! gpuNUFFT are distribution-robust; cuFINUFFT(GM-sort) slows ~3x on
//! "cluster"; CUNFFT collapses by ~200x.

use bench::{
    finufft_model_times, large_mode, ns_per_pt, run_cufinufft, run_cunfft, run_gpunufft, workload,
    Csv,
};
use cufinufft::Method;
use nufft_common::workload::PointDist;
use nufft_common::{gen_coeffs, Shape, TransformType};

fn main() {
    let eps = 1e-2;
    let sizes: Vec<usize> = if large_mode() {
        vec![128, 256, 512, 1024, 2048]
    } else {
        vec![128, 256, 512, 1024]
    };
    let mut csv = Csv::create(
        "fig6_distribution.csv",
        "type,dist,n_modes,lib,exec_ns,total_mem_ns",
    );
    println!("# Fig. 6 — 2D, single precision, eps = 1e-2, rho = 1");
    println!("# exec ns/pt (total+mem in parentheses)\n");
    for ttype in [TransformType::Type1, TransformType::Type2] {
        let tname = if ttype == TransformType::Type1 {
            "type1"
        } else {
            "type2"
        };
        for dist in [PointDist::Rand, PointDist::Cluster] {
            let dist_name = if dist == PointDist::Rand {
                "rand"
            } else {
                "cluster"
            };
            println!("## {tname}, \"{dist_name}\"");
            println!(
                "{:>6} | {:>16} | {:>16} | {:>18} | {:>16} | {:>10} | cuF(SM)/FINUFFT",
                "N", "cuF(SM)", "cuF(GM-sort)", "CUNFFT", "gpuNUFFT", "FINUFFT"
            );
            for &n in &sizes {
                let modes = [n, n];
                let shape = Shape::from_slice(&modes);
                let fine = shape.map(|_, v| 2 * v);
                let (pts, cs) = workload::<f32>(dist, 2, fine, 1.0, 7 + n as u64);
                let m = pts.len();
                let coeffs = gen_coeffs::<f32>(shape.total(), 3);
                let input = match ttype {
                    TransformType::Type1 => &cs,
                    TransformType::Type2 => &coeffs,
                };
                let (t_sm, _) = run_cufinufft(ttype, &modes, eps, Method::Sm, &pts, input);
                let (t_gs, _) = run_cufinufft(ttype, &modes, eps, Method::GmSort, &pts, input);
                let (t_cn, _) = run_cunfft(ttype, &modes, eps, &pts, input);
                let (t_gp, _) = run_gpunufft(ttype, &modes, eps, &pts, input);
                let (f_exec, _) = finufft_model_times::<f32>(ttype, shape, eps, m);
                println!(
                    "{:>6} | {:>7.2} ({:>6.2}) | {:>7.2} ({:>6.2}) | {:>9.2} ({:>6.2}) | {:>7.2} ({:>6.2}) | {:>10.2} | {:.1}x",
                    n,
                    ns_per_pt(t_sm.exec(), m),
                    ns_per_pt(t_sm.total_mem(), m),
                    ns_per_pt(t_gs.exec(), m),
                    ns_per_pt(t_gs.total_mem(), m),
                    ns_per_pt(t_cn.exec(), m),
                    ns_per_pt(t_cn.total_mem(), m),
                    ns_per_pt(t_gp.exec(), m),
                    ns_per_pt(t_gp.total_mem(), m),
                    ns_per_pt(f_exec, m),
                    f_exec / t_sm.exec(),
                );
                for (lib, t) in [
                    ("cufinufft_SM", &t_sm),
                    ("cufinufft_GMsort", &t_gs),
                    ("cunfft", &t_cn),
                    ("gpunufft", &t_gp),
                ] {
                    csv.row(&format!(
                        "{tname},{dist_name},{n},{lib},{:.3},{:.3}",
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                }
                csv.row(&format!(
                    "{tname},{dist_name},{n},finufft,{:.3},{:.3}",
                    ns_per_pt(f_exec, m),
                    ns_per_pt(f_exec, m)
                ));
            }
            println!();
        }
    }
    println!("# paper anchors: SM/FINUFFT/gpuNUFFT robust to clustering; GM-sort ~3x");
    println!("# slower on cluster (type 1); CUNFFT ~200x slower on cluster; for type 2");
    println!("# clustering is benign (cuFINUFFT even speeds up 3-4x).");
}
