//! Table I: cuFINUFFT 3D type-1 GPU memory usage and "exec" time.
//!
//! Distribution "rand", single precision, tolerances 1e-2 and 1e-5,
//! methods GM-sort and SM, with the baseline GM's RAM for reference.
//! The paper's rows are (N=32, M=2.62e5) and (N=256, M=1.34e8); the
//! second is functionally simulated at N=64 by default (the full row
//! runs with BENCH_LARGE=1) — memory numbers scale exactly, times per
//! point are size-stable at fixed density.

use bench::{finufft_model_times, large_mode, workload, Csv};
use cufinufft::{Method, Plan};
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{Complex, Shape, TransformType};

fn run_row(n: usize, eps: f64, method: Method) -> (f64, usize, f64, f64) {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let modes = [n, n, n];
    let shape = Shape::from_slice(&modes);
    let fine = shape.map(|_, v| 2 * v);
    let (pts, cs) = workload::<f32>(PointDist::Rand, 3, fine, 1.0, 11);
    let m = pts.len();
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(eps)
        .method(method)
        .build(&dev)
        .expect("plan");
    plan.set_pts(&pts).expect("set_pts");
    let mut out = vec![Complex::<f32>::ZERO; shape.total()];
    plan.execute(&cs, &mut out).expect("execute");
    let t = plan.timings();
    let exec = t.exec();
    let ram = dev.mem_peak();
    let spread_frac = t.spread_interp / exec * 100.0;
    let (f_exec, _) = finufft_model_times::<f32>(TransformType::Type1, shape, eps, m);
    (exec, ram, spread_frac, f_exec)
}

fn main() {
    let big_n = if large_mode() { 128 } else { 64 };
    let mut csv = Csv::create(
        "table1_mem.csv",
        "eps,n,M,method,exec_s,ram_mb,speedup_vs_finufft,spread_frac",
    );
    println!("# Table I — cuFINUFFT 3D type 1, \"rand\", single precision");
    println!("# (second size scaled to N={big_n}; paper used N=256 — set BENCH_LARGE=1 for 128)\n");
    println!(
        "{:>8} {:>5} {:>10} {:>8} | {:>10} {:>9} {:>9} {:>8}",
        "eps", "N", "M", "method", "exec (s)", "RAM (MB)", "speedup", "spread%"
    );
    for eps in [1e-2, 1e-5] {
        for n in [32usize, big_n] {
            for method in [Method::GmSort, Method::Sm] {
                let mname = if method == Method::Sm {
                    "SM"
                } else {
                    "GM-sort"
                };
                let (exec, ram, frac, f_exec) = run_row(n, eps, method);
                let m = 8 * n * n * n; // rho = 1 on the 2N fine grid
                println!(
                    "{:>8.0e} {:>5} {:>10.2e} {:>8} | {:>10.5} {:>9.1} {:>8.1}x {:>7.1}%",
                    eps,
                    n,
                    m as f64,
                    mname,
                    exec,
                    ram as f64 / 1e6,
                    f_exec / exec,
                    frac
                );
                csv.row(&format!(
                    "{eps},{n},{m},{mname},{exec:.6},{:.1},{:.2},{frac:.1}",
                    ram as f64 / 1e6,
                    f_exec / exec
                ));
            }
        }
        // GM RAM reference (no sort index arrays)
        let dev = Device::v100();
        let modes = [32usize, 32, 32];
        let fine = Shape::from_slice(&modes).map(|_, v| 2 * v);
        let (pts, _) = workload::<f32>(PointDist::Rand, 3, fine, 1.0, 11);
        let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
            .eps(eps)
            .method(Method::Gm)
            .build(&dev)
            .expect("plan");
        plan.set_pts(&pts).expect("set_pts");
        println!(
            "{:>8.0e} {:>5} {:>10} {:>8} | {:>10} {:>9.1}   (RAM reference, no sort arrays)",
            eps,
            32,
            "-",
            "GM",
            "-",
            dev.mem_peak() as f64 / 1e6
        );
    }
    println!("\n# paper anchors: SM ~1.8-2x faster exec than GM-sort; speedups vs FINUFFT");
    println!("# 5.9-16.1x at eps=1e-2 and 1.7-3.9x at eps=1e-5; spreading >90% of exec;");
    println!("# sort-array memory overhead ~20% over the GM baseline at large M.");
}
