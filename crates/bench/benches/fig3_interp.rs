//! Figure 3: interpolation comparison — GM vs GM-sort, "rand", 2D & 3D.
//!
//! Execution time per nonuniform point vs fine grid size; "total"
//! includes the bin-sort precomputation, "interp" excludes it. Unlike
//! spreading there are no write conflicts, so the sorted variant's
//! execution time never falls behind GM (the paper's key observation).

use bench::{large_mode, ns_per_pt, workload, Csv};
use cufinufft::bins::gpu_bin_sort;
use cufinufft::default_bin_size;
use cufinufft::interp::interp_gm;
use cufinufft::spread::PtsRef;
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{gen_coeffs, Complex, Shape};
use nufft_kernels::EsKernel;

fn main() {
    let kernel = EsKernel::with_width(6); // eps = 1e-5 single precision
    let mut csv = Csv::create(
        "fig3_interp.csv",
        "dim,n,M,method,total_ns_per_pt,interp_ns_per_pt",
    );
    let sizes_2d: Vec<usize> = if large_mode() {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    } else {
        vec![64, 128, 256, 512, 1024, 2048]
    };
    let sizes_3d: Vec<usize> = if large_mode() {
        vec![16, 32, 64, 128, 160]
    } else {
        vec![16, 32, 64, 128]
    };
    println!("# Fig. 3 — interpolation: ns per nonuniform point (total | interp-only)");
    println!("# single precision, w = 6 (eps = 1e-5), rho = 1, distribution \"rand\"\n");
    for (dim, sizes) in [(2usize, &sizes_2d), (3usize, &sizes_3d)] {
        println!("## {dim}D");
        println!(
            "{:>6} {:>10} | {:>9} {:>9} | {:>9} {:>9} | speedup",
            "n", "M", "GM tot", "GM int", "GMs tot", "GMs int"
        );
        for &n in sizes {
            let fine = if dim == 2 {
                Shape::d2(n, n)
            } else {
                Shape::d3(n, n, n)
            };
            let (pts, _) = workload::<f32>(PointDist::Rand, dim, fine, 1.0, 17 + n as u64);
            let m = pts.len();
            let grid = gen_coeffs::<f32>(fine.total(), 5);
            let pr = PtsRef {
                coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
                dim,
            };
            let mut out = vec![Complex::<f32>::ZERO; m];
            // GM: natural order, no precomputation
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let natural: Vec<u32> = (0..m as u32).collect();
            let t0 = dev.clock();
            interp_gm(
                &dev,
                "interp_GM",
                &kernel,
                fine,
                &pr,
                &grid,
                &natural,
                &mut out,
                128,
            )
            .unwrap();
            let gm_int = dev.clock() - t0;
            // GM-sort: bin-sort then interpolate
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let t0 = dev.clock();
            let sort = gpu_bin_sort(&dev, &pts, fine, default_bin_size(dim));
            let t1 = dev.clock();
            interp_gm(
                &dev,
                "interp_GMs",
                &kernel,
                fine,
                &pr,
                &grid,
                &sort.perm,
                &mut out,
                128,
            )
            .unwrap();
            let gms_int = dev.clock() - t1;
            let gms_sort = t1 - t0;
            println!(
                "{:>6} {:>10} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:.1}x",
                n,
                m,
                ns_per_pt(gm_int, m),
                ns_per_pt(gm_int, m),
                ns_per_pt(gms_sort + gms_int, m),
                ns_per_pt(gms_int, m),
                gm_int / gms_int,
            );
            csv.row(&format!(
                "{dim},{n},{m},GM,{:.4},{:.4}",
                ns_per_pt(gm_int, m),
                ns_per_pt(gm_int, m)
            ));
            csv.row(&format!(
                "{dim},{n},{m},GM-sort,{:.4},{:.4}",
                ns_per_pt(gms_sort + gms_int, m),
                ns_per_pt(gms_int, m)
            ));
        }
        println!();
    }
    println!("# paper anchors: GM-sort up to 4.5x (2D) / 12.7x (3D) faster at the");
    println!("# largest grids; sorted execution never slower than GM (no conflicts).");
}
