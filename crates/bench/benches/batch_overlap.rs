//! Batched many-transform execution: amortization and stream overlap.
//!
//! The paper's C library executes `ntransf` stacked vectors per plan
//! (cufftPlanMany batching, `maxbatchsize` chunking) and pipelines
//! host/device transfers of one chunk under compute of the previous one
//! on separate CUDA streams. This harness measures what that buys on the
//! simulated device: B sequential single-transform executes vs one
//! `execute_many(B)` call, sweeping B and the `max_batch` chunk width.

use bench::{run_cufinufft_batch, workload, Csv};
use cufinufft::Plan;
use gpu_sim::Device;
use nufft_common::workload::{gen_strengths, PointDist};
use nufft_common::{Complex, Shape, TransformType};

fn main() {
    let n = 128usize;
    let modes = [n, n];
    let shape = Shape::from_slice(&modes);
    let fine = shape.map(|_, v| 2 * v);
    let eps = 1e-6;
    let (pts, _) = workload::<f32>(PointDist::Rand, 2, fine, 0.5, 17);
    let m = pts.len();
    let mut csv = Csv::create(
        "batch_overlap.csv",
        "B,max_batch,chunks,serial_s,batched_s,pipe_wall_s,overlap_saved_s,speedup",
    );
    println!("# Batched execution — 2D {n}x{n} type 1, f32, eps={eps:.0e}, M={m}\n");
    println!(
        "{:>4} {:>9} {:>7} | {:>10} {:>10} {:>10} | {:>8} {:>8}",
        "B", "max_batch", "chunks", "serial", "batched", "pipe wall", "saved", "speedup"
    );

    for b in [2usize, 4, 8, 16] {
        // reference: B independent single-transform executes on one plan
        let dev = Device::v100();
        dev.set_record_timeline(false);
        let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
            .eps(eps)
            .build(&dev)
            .expect("plan");
        plan.set_pts(&pts).expect("set_pts");
        let mut serial = 0.0;
        let mut out = vec![Complex::<f32>::ZERO; shape.total()];
        for v in 0..b {
            let cs = gen_strengths::<f32>(m, 30 + v as u64);
            plan.execute(&cs, &mut out).expect("execute");
            serial += plan.timings().total_mem();
        }

        let mut widths = vec![0usize, 2, b];
        widths.dedup();
        for max_batch in widths {
            let batch: Vec<Complex<f32>> = (0..b)
                .flat_map(|v| gen_strengths::<f32>(m, 30 + v as u64))
                .collect();
            let (bplan, _) = run_cufinufft_batch(
                TransformType::Type1,
                &modes,
                eps,
                b,
                max_batch,
                &pts,
                &batch,
            );
            let t = bplan.timings();
            let bt = bplan.batch_timings();
            let batched = t.total_mem();
            println!(
                "{:>4} {:>9} {:>7} | {:>10.4} {:>10.4} {:>10.4} | {:>8.4} {:>7.2}x",
                b,
                max_batch,
                bt.chunks.len(),
                serial,
                batched,
                t.pipe_wall,
                t.overlap_saving(),
                serial / batched,
            );
            csv.row(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.3}",
                b,
                max_batch,
                bt.chunks.len(),
                serial,
                batched,
                t.pipe_wall,
                t.overlap_saving(),
                serial / batched,
            ));
        }
    }
    println!("\n# batched wall excludes the repeated point sort and hides chunk transfers");
    println!("# under compute; speedup grows with B until compute fully covers transfer.");
}
