//! Criterion micro-benchmarks: real wall-clock of the hot computational
//! kernels on this host (not simulated-device time; see DESIGN.md §2.2 —
//! these numbers validate that the functional substrate itself is
//! efficient, they are not comparable to a V100).

use criterion::{criterion_group, criterion_main, Criterion};
use finufft_cpu::spread::{interp, spread_serial};
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, Shape};
use nufft_fft::{Direction, FftNd};
use nufft_kernels::{EsKernel, HornerKernel, Kernel1d};

fn bench_fft(c: &mut Criterion) {
    let shape = Shape::d2(256, 256);
    let plan = FftNd::<f32>::new(shape);
    let mut data = vec![Complex::<f32>::new(1.0, 0.5); shape.total()];
    c.bench_function("fft_2d_256_f32", |b| {
        b.iter(|| plan.process(std::hint::black_box(&mut data), Direction::Forward))
    });
    let shape3 = Shape::d3(32, 32, 32);
    let plan3 = FftNd::<f64>::new(shape3);
    let mut d3 = vec![Complex::<f64>::new(1.0, 0.5); shape3.total()];
    c.bench_function("fft_3d_32_f64", |b| {
        b.iter(|| plan3.process(std::hint::black_box(&mut d3), Direction::Backward))
    });
}

fn bench_spread(c: &mut Criterion) {
    let fine = Shape::d2(512, 512);
    let kernel = EsKernel::with_width(6);
    let m = 100_000;
    let pts = gen_points::<f32>(PointDist::Rand, 2, m, fine, 3);
    let cs = gen_strengths::<f32>(m, 4);
    let order: Vec<u32> = (0..m as u32).collect();
    let mut grid = vec![Complex::<f32>::ZERO; fine.total()];
    c.bench_function("cpu_spread_2d_100k_w6", |b| {
        b.iter(|| {
            grid.iter_mut().for_each(|z| *z = Complex::ZERO);
            spread_serial(
                &kernel,
                fine,
                &pts,
                &cs,
                &order,
                std::hint::black_box(&mut grid),
            );
        })
    });
    let mut out = vec![Complex::<f32>::ZERO; m];
    c.bench_function("cpu_interp_2d_100k_w6", |b| {
        b.iter(|| {
            interp(
                &kernel,
                fine,
                &pts,
                &grid,
                std::hint::black_box(&mut out),
                1,
            )
        })
    });
}

fn bench_kernel_eval(c: &mut Criterion) {
    let kernel = EsKernel::with_width(8);
    let mut row = [0.0f64; 8];
    c.bench_function("es_kernel_row_w8_direct", |b| {
        b.iter(|| kernel.eval_row(std::hint::black_box(-0.93), &mut row))
    });
    let horner = HornerKernel::fit(kernel);
    c.bench_function("es_kernel_row_w8_horner", |b| {
        b.iter(|| Kernel1d::eval_row(&horner, std::hint::black_box(-0.93), &mut row))
    });
    c.bench_function("es_kernel_ft", |b| {
        b.iter(|| std::hint::black_box(kernel.ft(std::hint::black_box(3.7))))
    });
}

criterion_group!(benches, bench_fft, bench_spread, bench_kernel_eval);
criterion_main!(benches);
