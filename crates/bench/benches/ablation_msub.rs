//! Ablation (beyond the paper's figures): the `M_sub` load-balancing cap.
//!
//! The paper's SM scheme caps subproblems at M_sub = 1024 points so a
//! crowded bin becomes many parallel blocks (input-driven balancing).
//! Sweeping M_sub on the "cluster" distribution shows exactly the
//! mechanism: an effectively-uncapped setting degenerates to one giant
//! block per bin whose serial time dominates the makespan.

use bench::{ns_per_pt, workload, Csv};
use cufinufft::bins::{build_subproblems, gpu_bin_sort};
use cufinufft::spread::{spread_sm, PtsRef};
use gpu_sim::Device;
use nufft_common::workload::PointDist;
use nufft_common::{Complex, Shape};
use nufft_kernels::EsKernel;

fn main() {
    let kernel = EsKernel::with_width(6);
    let fine = Shape::d2(1024, 1024);
    let mut csv = Csv::create("ablation_msub.csv", "dist,msub,subproblems,spread_ns");
    println!("# Ablation — M_sub sweep, SM spreading, 2D fine 1024^2, w = 6, f32\n");
    for dist in [PointDist::Cluster, PointDist::Rand] {
        let dist_name = if dist == PointDist::Rand {
            "rand"
        } else {
            "cluster"
        };
        let (pts, cs) = workload::<f32>(dist, 2, fine, 1.0, 55);
        let m = pts.len();
        let pr = PtsRef {
            coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
            dim: 2,
        };
        println!("## \"{dist_name}\" (M = {m})");
        println!(
            "{:>12} | {:>12} | {:>12}",
            "M_sub", "subproblems", "spread ns/pt"
        );
        for msub in [64usize, 256, 1024, 4096, 16384, usize::MAX] {
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
            let subs = build_subproblems(&dev, &sort, msub.min(m.max(1)));
            let mut grid = vec![Complex::<f32>::ZERO; fine.total()];
            let t0 = dev.clock();
            spread_sm(
                &dev,
                &kernel,
                fine,
                &pr,
                &cs,
                &sort.perm,
                &sort.layout,
                &subs,
                &mut grid,
            )
            .unwrap();
            let t = dev.clock() - t0;
            let label = if msub == usize::MAX {
                "uncapped".into()
            } else {
                msub.to_string()
            };
            println!(
                "{:>12} | {:>12} | {:>12.3}",
                label,
                subs.len(),
                ns_per_pt(t, m)
            );
            csv.row(&format!(
                "{dist_name},{label},{},{:.4}",
                subs.len(),
                ns_per_pt(t, m)
            ));
        }
        println!();
    }
    println!("# expectation: on 'cluster', uncapped SM collapses to a single serial");
    println!("# block (long makespan) while M_sub ~ 1024 stays near the 'rand' speed;");
    println!("# on 'rand' the cap is inactive (bins already hold < M_sub points).");
}
