//! Figures 4 and 5: single-precision cross-library comparison.
//!
//! Time per nonuniform point vs achieved relative l2 error, for type 1
//! and type 2 in 2D and 3D, distribution "rand", density rho = 1.
//! Fig. 4 reports "total+mem" (GPU codes; FINUFFT's "total"); Fig. 5
//! reports "exec". Errors are measured against the CPU library at
//! eps = 1e-12 in double precision, mirroring the paper's methodology.
//!
//! Problem sizes are scaled from the paper's (DESIGN.md §2.3); the
//! comparison *shape* — who wins at which accuracy, CUNFFT's fade at
//! tight tolerances, gpuNUFFT's error floor — is the reproduction target.

use bench::{
    finufft_model_times, ground_truth, large_mode, ns_per_pt, run_cufinufft, run_cunfft,
    run_gpunufft, workload, Csv,
};
use cufinufft::Method;
use nufft_common::metrics::rel_l2;
use nufft_common::workload::PointDist;
use nufft_common::{gen_coeffs, Shape, TransformType};

fn main() {
    let (n2, n3) = if large_mode() { (512, 64) } else { (256, 32) };
    let eps_sweep = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];
    let mut csv = Csv::create(
        "fig4_5_single.csv",
        "dim,type,eps,lib,err,exec_ns,total_ns,total_mem_ns",
    );
    println!("# Figs. 4-5 — single precision, \"rand\", rho = 1");
    println!("# 2D: N = {n2}^2 modes; 3D: N = {n3}^3 modes (scaled; BENCH_LARGE=1 doubles)");
    for (dim, n) in [(2usize, n2), (3usize, n3)] {
        let modes: Vec<usize> = vec![n; dim];
        let shape = Shape::from_slice(&modes);
        // fine grid at sigma=2 for workload sizing (w differences move it
        // slightly per library; use the nominal 2N grid for M)
        let fine = shape.map(|_, v| 2 * v);
        for ttype in [TransformType::Type1, TransformType::Type2] {
            let tname = if ttype == TransformType::Type1 {
                "type1"
            } else {
                "type2"
            };
            println!("\n## {dim}D {tname}  (columns: err | exec | total | total+mem, ns/pt)");
            println!(
                "{:>8} | {:>44} | {:>44} | {:>30} | {:>30} | {:>22}",
                "eps",
                "cuFINUFFT(SM)",
                "cuFINUFFT(GM-sort)",
                "CUNFFT",
                "gpuNUFFT",
                "FINUFFT(model)"
            );
            let (pts, cs) = workload::<f32>(PointDist::Rand, dim, fine, 1.0, 99);
            let m = pts.len();
            let coeffs = gen_coeffs::<f32>(shape.total(), 7);
            let input = match ttype {
                TransformType::Type1 => &cs,
                TransformType::Type2 => &coeffs,
            };
            let truth = ground_truth(ttype, &modes, &pts, input);
            for &eps in &eps_sweep {
                let mut cells: Vec<String> = Vec::new();
                // cuFINUFFT SM (type 1 only; type 2 uses GM-sort interp
                // regardless, so report it under GM-sort)
                for method in [Method::Sm, Method::GmSort] {
                    let feasible = method != Method::Sm
                        || cufinufft::sm_feasible(
                            cufinufft::default_bin_size(dim),
                            dim,
                            nufft_kernels::EsKernel::for_tolerance(eps, false)
                                .map(|k| k.w)
                                .unwrap_or(16),
                            8,
                            49_000,
                        );
                    if !feasible {
                        cells.push(format!("{:>44}", "(SM infeasible)"));
                        continue;
                    }
                    let (t, out) = run_cufinufft(ttype, &modes, eps, method, &pts, input);
                    let err = rel_l2(&out, &truth);
                    cells.push(format!(
                        "{:>9.1e} {:>10.2} {:>10.2} {:>11.2}",
                        err,
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                    let lib = if method == Method::Sm {
                        "cufinufft_SM"
                    } else {
                        "cufinufft_GMsort"
                    };
                    csv.row(&format!(
                        "{dim},{tname},{eps},{lib},{err:.3e},{:.3},{:.3},{:.3}",
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                }
                // CUNFFT
                {
                    let (t, out) = run_cunfft(ttype, &modes, eps, &pts, input);
                    let err = rel_l2(&out, &truth);
                    cells.push(format!(
                        "{:>9.1e} {:>9.2} {:>10.2}",
                        err,
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                    csv.row(&format!(
                        "{dim},{tname},{eps},cunfft,{err:.3e},{:.3},{:.3},{:.3}",
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                }
                // gpuNUFFT
                {
                    let (t, out) = run_gpunufft(ttype, &modes, eps, &pts, input);
                    let err = rel_l2(&out, &truth);
                    cells.push(format!(
                        "{:>9.1e} {:>9.2} {:>10.2}",
                        err,
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                    csv.row(&format!(
                        "{dim},{tname},{eps},gpunufft,{err:.3e},{:.3},{:.3},{:.3}",
                        ns_per_pt(t.exec(), m),
                        ns_per_pt(t.total(), m),
                        ns_per_pt(t.total_mem(), m)
                    ));
                }
                // FINUFFT model (error ~ eps by construction; we use the
                // CPU library's real error from its own run at this eps)
                {
                    let (exec, total) = finufft_model_times::<f32>(ttype, shape, eps, m);
                    cells.push(format!(
                        "{:>10.2} {:>10.2}",
                        ns_per_pt(exec, m),
                        ns_per_pt(total, m)
                    ));
                    csv.row(&format!(
                        "{dim},{tname},{eps},finufft,{eps:.3e},{:.3},{:.3},{:.3}",
                        ns_per_pt(exec, m),
                        ns_per_pt(total, m),
                        ns_per_pt(total, m)
                    ));
                }
                println!("{:>8.0e} | {}", eps, cells.join(" | "));
            }
        }
    }
    println!("\n# paper anchors (single precision): type 1 'exec' of cuFINUFFT(SM) ~10x");
    println!("# FINUFFT in 2D, 3-12x in 3D; type 2 4-7x (2D) and 6-8x (3D); CUNFFT");
    println!("# competitive only at loose 2D type-2 tolerances; gpuNUFFT slowest with");
    println!("# an error floor ~1e-3.");
}
