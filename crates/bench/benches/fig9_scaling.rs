//! Figure 9: single-node multi-GPU weak scaling on Cori GPU and Summit.
//!
//! Wall-clock per M-TIP NUFFT stage vs number of MPI ranks, each rank
//! with the fixed per-rank problem of Table II (scaled). Expect flat
//! lines (ideal weak scaling) up to one rank per GPU, then linear
//! deterioration as ranks share GPUs — the single-queue contention
//! model of `mtip::cluster`.

use bench::Csv;
use mtip::{weak_scaling, Node, RankTask};

fn main() {
    let scale = if bench::large_mode() { 16 } else { 64 };
    let mut csv = Csv::create(
        "fig9_scaling.csv",
        "node,task,ranks,wall_total_s,wall_setup_s,wall_exec_s",
    );
    println!("# Fig. 9 — weak scaling (per-rank sizes scaled by 1/{scale})\n");
    for node in [Node::cori_gpu(), Node::summit()] {
        for (tname, task) in [
            ("slicing(t2)", RankTask::slicing(scale)),
            ("merging(t1)", RankTask::merging(scale)),
        ] {
            let max_ranks = node.gpus + 4;
            let pts = weak_scaling(&node, &task, max_ranks, 31);
            println!("## {} — {} ({} GPUs/node)", node.name, tname, node.gpus);
            println!(
                "{:>6} | {:>12} {:>12} {:>12} | {:>9}",
                "ranks", "total (s)", "setup (s)", "exec (s)", "vs 1 rank"
            );
            let base = pts[0].wall_total;
            for p in &pts {
                let marker = if p.ranks == node.gpus {
                    "  <- one rank per GPU"
                } else {
                    ""
                };
                println!(
                    "{:>6} | {:>12.5} {:>12.5} {:>12.5} | {:>8.2}x{marker}",
                    p.ranks,
                    p.wall_total,
                    p.wall_setup,
                    p.wall_exec,
                    p.wall_total / base
                );
                csv.row(&format!(
                    "{},{tname},{},{:.6},{:.6},{:.6}",
                    node.name, p.ranks, p.wall_total, p.wall_setup, p.wall_exec
                ));
            }
            println!();
        }
    }
    println!("# paper anchors: near-ideal (flat) weak scaling up to #GPUs ranks, then");
    println!("# rapid deterioration; enabling MPS made no difference on hardware.");
}
