//! Shared utilities for the paper-reproduction benchmark harnesses.
//!
//! Each figure/table of the paper has one `harness = false` bench target
//! under `benches/`; they print paper-style tables to stdout and write
//! CSV rows under `results/` at the workspace root. Problem sizes are
//! scaled down from the paper's (DESIGN.md §2.3) unless `BENCH_LARGE=1`.

#![forbid(unsafe_code)]

use gpu_sim::Device;
use nufft_common::workload::{gen_points, gen_strengths, PointDist, Points};
use nufft_common::{Complex, NufftPlan, Real, Shape, TransformType};
use nufft_trace::bench::BenchReport;
use nufft_trace::Trace;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// True when the (slower) closer-to-paper problem sizes are requested.
pub fn large_mode() -> bool {
    std::env::var("BENCH_LARGE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// True when `BENCH_TRACE=1` asks each bench row to dump a Chrome trace.
pub fn trace_mode() -> bool {
    std::env::var("BENCH_TRACE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

static TRACE_ROW: AtomicUsize = AtomicUsize::new(0);

/// Start a per-row trace session when [`trace_mode`] is on. Pair with
/// [`finish_trace`] after the run to write `results/traces/<tag>-NNN.trace.json`.
pub fn start_trace() -> Option<Trace> {
    trace_mode().then(Trace::new)
}

/// Export a trace started by [`start_trace`] as Chrome trace-event JSON
/// under `results/traces/`; returns the written path.
pub fn finish_trace(trace: Option<Trace>, tag: &str) -> Option<PathBuf> {
    let trace = trace?;
    let row = TRACE_ROW.fetch_add(1, Ordering::Relaxed);
    let mut dir = results_dir();
    dir.push("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path = dir.join(format!("{tag}-{row:03}.trace.json"));
    std::fs::write(&path, trace.report().chrome_json()).expect("write trace");
    Some(path)
}

/// Locate the workspace root.
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Locate the workspace-root `results/` directory.
pub fn results_dir() -> PathBuf {
    let mut p = workspace_root();
    p.push("results");
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Locate `results/bench/`, the *tracked* home of the `BENCH_*.json`
/// trajectory. Reports must live here, not at the workspace root: the
/// root-level `BENCH_*.json` glob is git-ignored (it used to require a
/// per-file whitelist entry, which silently broke the prior-report
/// lookup), while this directory is explicitly un-ignored.
pub fn bench_dir() -> PathBuf {
    let mut p = results_dir();
    p.push("bench");
    std::fs::create_dir_all(&p).expect("create bench dir");
    p
}

/// UTC `YYYYMMDD` for a unix timestamp (civil-from-days arithmetic —
/// no date crates in this workspace).
pub fn utc_yyyymmdd(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}{m:02}{d:02}")
}

/// Write a trajectory point as `BENCH_<date>.json` under `dir` (date
/// from the report's own `created_unix`); returns the written path.
///
/// Never clobbers an existing same-day point: a second run on the same
/// date gets a `a`/`b`/… suffix (`BENCH_<date>a.json`). Since `'.'`
/// sorts before letters, suffixed names still sort *after* the bare
/// date and *before* the next day — lexicographic filename order stays
/// chronological, so `latest_prior_bench` keeps seeing the most recent
/// earlier point instead of losing the trajectory to an overwrite.
pub fn write_bench_report(dir: &std::path::Path, report: &BenchReport) -> PathBuf {
    let date = utc_yyyymmdd(report.created_unix);
    let mut path = dir.join(format!("BENCH_{date}.json"));
    let mut suffix = b'a';
    while path.exists() {
        assert!(suffix <= b'z', "more than 27 bench reports on {date}");
        path = dir.join(format!("BENCH_{date}{}.json", suffix as char));
        suffix += 1;
    }
    std::fs::write(&path, report.to_json()).expect("write bench report");
    path
}

/// The latest *valid* `BENCH_*.json` under `dir` other than `exclude`
/// (lexicographic filename order == chronological for the
/// `BENCH_YYYYMMDD` naming). Unparseable files are skipped, not fatal:
/// a corrupt old trajectory point must not wedge the bench tier.
pub fn latest_prior_bench(
    dir: &std::path::Path,
    exclude: Option<&std::path::Path>,
) -> Option<(PathBuf, BenchReport)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json") && Some(p.as_path()) != exclude
        })
        .collect();
    paths.sort();
    while let Some(path) = paths.pop() {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(report) = BenchReport::from_json(&text) {
                return Some((path, report));
            }
        }
    }
    None
}

/// A CSV sink under `results/`.
pub struct Csv {
    f: File,
}

impl Csv {
    pub fn create(name: &str, header: &str) -> Self {
        let path = results_dir().join(name);
        let mut f = File::create(&path).expect("create csv");
        writeln!(f, "{header}").unwrap();
        Csv { f }
    }

    pub fn row(&mut self, line: &str) {
        writeln!(self.f, "{line}").unwrap();
    }
}

/// Format seconds-per-point as nanoseconds.
pub fn ns_per_pt(seconds: f64, m: usize) -> f64 {
    seconds / m as f64 * 1e9
}

/// Generate the paper's benchmark inputs for a given fine grid.
pub fn workload<T: Real>(
    dist: PointDist,
    dim: usize,
    fine: Shape,
    rho: f64,
    seed: u64,
) -> (Points<T>, Vec<Complex<T>>) {
    let m = ((fine.total() as f64) * rho).round() as usize;
    let pts = gen_points::<T>(dist, dim, m, fine, seed);
    let cs = gen_strengths::<T>(m, seed + 1);
    (pts, cs)
}

/// Drive any backend plan through the shared [`NufftPlan`] lifecycle:
/// bind points, execute one transform, return the output vector.
pub fn run_plan<T: Real>(
    plan: &mut dyn NufftPlan<T>,
    pts: &Points<T>,
    input: &[Complex<T>],
) -> Vec<Complex<T>> {
    plan.set_points(pts).expect("set_points");
    let mut out = vec![Complex::<T>::ZERO; plan.output_len()];
    plan.execute(input, &mut out).expect("execute");
    out
}

/// Run cuFINUFFT with an explicit spreading method; returns timings and
/// the outputs for error measurement.
pub fn run_cufinufft<T: Real>(
    ttype: TransformType,
    modes: &[usize],
    eps: f64,
    method: cufinufft::Method,
    pts: &Points<T>,
    input: &[Complex<T>],
) -> (cufinufft::GpuStageTimings, Vec<Complex<T>>) {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let trace = start_trace();
    let mut builder = cufinufft::Plan::<T>::builder(ttype, modes)
        .eps(eps)
        .method(method);
    if let Some(t) = &trace {
        builder = builder.tracing(t);
    }
    let mut plan = builder.build(&dev).expect("cufinufft plan");
    let out = run_plan(&mut plan, pts, input);
    let timings = plan.timings();
    finish_trace(trace, &format!("cufinufft-{ttype:?}-{method:?}"));
    (timings, out)
}

/// Run cuFINUFFT's stream-pipelined batched path over `b` stacked
/// strength/coefficient vectors; returns the plan (holding stage and
/// per-chunk batch timings) plus the stacked outputs.
pub fn run_cufinufft_batch<T: Real>(
    ttype: TransformType,
    modes: &[usize],
    eps: f64,
    b: usize,
    max_batch: usize,
    pts: &Points<T>,
    input: &[Complex<T>],
) -> (cufinufft::Plan<T>, Vec<Complex<T>>) {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let trace = start_trace();
    let mut builder = cufinufft::Plan::<T>::builder(ttype, modes)
        .eps(eps)
        .ntransf(b)
        .max_batch(max_batch);
    if let Some(t) = &trace {
        builder = builder.tracing(t);
    }
    let mut plan = builder.build(&dev).expect("cufinufft batch plan");
    plan.set_pts(pts).expect("set_pts");
    let out_per = match ttype {
        TransformType::Type1 => modes.iter().product(),
        TransformType::Type2 => pts.len(),
    };
    let mut out = vec![Complex::<T>::ZERO; out_per * b];
    plan.execute_many(input, &mut out).expect("execute_many");
    finish_trace(trace, &format!("cufinufft-batch-{ttype:?}"));
    (plan, out)
}

/// Run the CUNFFT baseline.
pub fn run_cunfft<T: Real>(
    ttype: TransformType,
    modes: &[usize],
    eps: f64,
    pts: &Points<T>,
    input: &[Complex<T>],
) -> (cufinufft::GpuStageTimings, Vec<Complex<T>>) {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let iflag = if ttype == TransformType::Type1 { -1 } else { 1 };
    let mut plan =
        nufft_baselines::CunfftPlan::<T>::new(ttype, modes, iflag, eps, &dev).expect("cunfft plan");
    let out = run_plan(&mut plan, pts, input);
    (plan.timings(), out)
}

/// Run the gpuNUFFT baseline.
pub fn run_gpunufft<T: Real>(
    ttype: TransformType,
    modes: &[usize],
    eps: f64,
    pts: &Points<T>,
    input: &[Complex<T>],
) -> (cufinufft::GpuStageTimings, Vec<Complex<T>>) {
    let dev = Device::v100();
    dev.set_record_timeline(false);
    let iflag = if ttype == TransformType::Type1 { -1 } else { 1 };
    let mut plan = nufft_baselines::GpunufftPlan::<T>::new(ttype, modes, iflag, eps, &dev)
        .expect("gpunufft plan");
    let out = run_plan(&mut plan, pts, input);
    (plan.timings(), out)
}

/// Model the FINUFFT CPU comparator's "exec" and "total" times for a
/// transform (paper testbed: 2x Xeon E5-2680 v4, 28 threads).
pub fn finufft_model_times<T: Real>(
    ttype: TransformType,
    modes: Shape,
    eps: f64,
    m: usize,
) -> (f64, f64) {
    let model = finufft_cpu::CpuModel::xeon_e5_2680v4();
    let prec = if T::IS_DOUBLE {
        finufft_cpu::CpuPrecision::Double
    } else {
        finufft_cpu::CpuPrecision::Single
    };
    let kernel =
        nufft_kernels::EsKernel::for_tolerance(eps, T::IS_DOUBLE).expect("tolerance in range");
    let fine = modes.map(|_, n| nufft_common::smooth::fine_grid_size(n, 2.0, kernel.w));
    let exec = match ttype {
        TransformType::Type1 => model.type1_exec(m, kernel.w, modes, fine, prec),
        TransformType::Type2 => model.type2_exec(m, kernel.w, modes, fine, prec),
    };
    (exec, model.total(exec, m))
}

/// Compute the true values with the CPU library at high accuracy
/// (FINUFFT's role as ground truth in the paper's error methodology).
pub fn ground_truth<T: Real>(
    ttype: TransformType,
    modes: &[usize],
    pts: &Points<T>,
    input: &[Complex<T>],
) -> Vec<Complex<f64>> {
    let iflag = if ttype == TransformType::Type1 { -1 } else { 1 };
    // eps = 1e-14 ground truth, as in the paper's double-precision runs
    let mut plan =
        finufft_cpu::Plan::<f64>::new(ttype, modes, iflag, 1e-14, finufft_cpu::Opts::default())
            .expect("truth plan");
    let pts64 = Points::<f64> {
        coords: [
            pts.coords[0].iter().map(|v| v.to_f64()).collect(),
            pts.coords[1].iter().map(|v| v.to_f64()).collect(),
            pts.coords[2].iter().map(|v| v.to_f64()).collect(),
        ],
        dim: pts.dim,
    };
    let input64: Vec<Complex<f64>> = input.iter().map(|z| z.cast()).collect();
    plan.set_pts(pts64).expect("truth pts");
    let n: usize = modes.iter().product();
    let out_len = match ttype {
        TransformType::Type1 => n,
        TransformType::Type2 => pts.len(),
    };
    let mut out = vec![Complex::<f64>::ZERO; out_len];
    plan.execute(&input64, &mut out).expect("truth exec");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_dates_match_known_timestamps() {
        assert_eq!(utc_yyyymmdd(0), "19700101");
        assert_eq!(utc_yyyymmdd(86_399), "19700101");
        assert_eq!(utc_yyyymmdd(86_400), "19700102");
        assert_eq!(utc_yyyymmdd(951_868_800), "20000301"); // leap-year boundary
        assert_eq!(utc_yyyymmdd(1_754_611_200), "20250808");
    }

    #[test]
    fn bench_trajectory_write_find_compare() {
        let dir = std::env::temp_dir().join(format!("bench-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_prior_bench(&dir, None).is_none());

        let mut old = BenchReport::new("bench-smoke", 86_400); // 19700102
        old.push_row("row", 0.100, 3);
        let old_path = write_bench_report(&dir, &old);
        assert!(old_path.ends_with("BENCH_19700102.json"));

        let mut cur = BenchReport::new("bench-smoke", 31_536_000); // 19710101
        cur.push_row("row", 0.200, 3);
        let cur_path = write_bench_report(&dir, &cur);

        // prior = the latest file that isn't the one just written
        let (found_path, found) =
            latest_prior_bench(&dir, Some(cur_path.as_path())).expect("prior exists");
        assert_eq!(found_path, old_path);
        let regs = nufft_trace::bench::compare(&found, &cur, 0.15);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "row");

        // a corrupt trajectory point is skipped, not fatal
        std::fs::write(dir.join("BENCH_19720101.json"), "not json").unwrap();
        let (p, _) = latest_prior_bench(&dir, Some(cur_path.as_path())).expect("prior");
        assert_eq!(p, old_path);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_reports_round_trip_from_the_tracked_bench_dir() {
        // Regression test for the PR-8 trajectory break: reports were
        // written to the workspace root, where `.gitignore`'s
        // `BENCH_*.json` glob swallowed them, so `latest_prior_bench`
        // never saw a prior on a fresh checkout. The tracked home is
        // `results/bench/`; a report written there must be found again.
        let dir = bench_dir();
        assert!(
            dir.ends_with("results/bench"),
            "bench reports must live under results/bench, got {}",
            dir.display()
        );

        // The committed trajectory must already be visible here (the
        // root-level BENCH_20260808.json was migrated into this dir).
        assert!(
            latest_prior_bench(&dir, None).is_some(),
            "no committed BENCH_*.json under {} — the trajectory is broken again",
            dir.display()
        );

        // Round-trip a synthetic far-future point and clean it up.
        let mut fut = BenchReport::new("bench-smoke", 4_102_444_800); // 21000101
        fut.push_row("row", 0.125, 1);
        let fut_path = write_bench_report(&dir, &fut);
        assert!(fut_path.ends_with("BENCH_21000101.json"));
        let (found_path, found) = latest_prior_bench(&dir, None).expect("just wrote one");
        assert_eq!(found_path, fut_path);
        assert_eq!(found.rows.len(), 1);
        // Excluding the new point falls back to the committed prior.
        let (prior_path, _) =
            latest_prior_bench(&dir, Some(fut_path.as_path())).expect("committed prior");
        assert_ne!(prior_path, fut_path);

        // A second same-day run must NOT clobber the first (that is how
        // the trajectory was lost once): it gets a letter suffix that
        // still sorts after the bare date, so the new point is latest
        // and the first one is its visible prior.
        let mut fut2 = BenchReport::new("bench-smoke", 4_102_444_800);
        fut2.push_row("row", 0.0625, 1);
        let fut2_path = write_bench_report(&dir, &fut2);
        assert!(fut2_path.ends_with("BENCH_21000101a.json"));
        let (latest_path, _) = latest_prior_bench(&dir, None).expect("two written");
        assert_eq!(latest_path, fut2_path);
        let (prev_path, prev) =
            latest_prior_bench(&dir, Some(fut2_path.as_path())).expect("same-day prior");
        assert_eq!(prev_path, fut_path);
        assert_eq!(prev.rows[0].wall_s, 0.125);

        std::fs::remove_file(fut_path).ok();
        std::fs::remove_file(fut2_path).ok();
    }

    #[test]
    fn workload_density_sizing() {
        let fine = Shape::d2(64, 64);
        let (pts, cs) = workload::<f32>(PointDist::Rand, 2, fine, 1.0, 3);
        assert_eq!(pts.len(), 4096);
        assert_eq!(cs.len(), 4096);
    }

    #[test]
    fn finish_trace_writes_parseable_chrome_json() {
        let trace = Trace::new();
        {
            let _on = trace.activate();
            let _s = trace.span("bench.row");
        }
        let path = finish_trace(Some(trace), "unit").expect("path");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = nufft_trace::json::Json::parse(&text).expect("valid json");
        assert!(doc.get("traceEvents").and_then(|v| v.as_array()).is_some());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn harness_runners_smoke() {
        let fine = Shape::d2(64, 64);
        let (pts, cs) = workload::<f32>(PointDist::Rand, 2, fine, 0.5, 4);
        let (t, out) = run_cufinufft(
            TransformType::Type1,
            &[32, 32],
            1e-4,
            cufinufft::Method::Sm,
            &pts,
            &cs,
        );
        assert!(t.exec() > 0.0);
        let truth = ground_truth(TransformType::Type1, &[32, 32], &pts, &cs);
        let err = nufft_common::metrics::rel_l2(&out, &truth);
        assert!(err < 1e-3, "err={err}");
        let (fe, ft) =
            finufft_model_times::<f32>(TransformType::Type1, Shape::d2(32, 32), 1e-4, pts.len());
        assert!(fe > 0.0 && ft > fe);
    }
}
