//! cuFFT substitute: executes the workspace FFT on simulated-device
//! buffers and charges a cuFFT-style cost to the device clock.
//!
//! cuFFT on large grids is memory-bound: each axis pass streams the whole
//! grid through DRAM once in and once out. We price
//! `max(2 * dim * bytes / bw, 5 N log2 N / flops)` plus launch overhead,
//! which lands within a small factor of published V100 cuFFT throughputs
//! (a 4096^2 C2C single-precision FFT prices at ~0.9 ms; cuFFT measures
//! ~0.8-1.2 ms).

use gpu_sim::{Device, GpuBuffer, Precision};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_fft::{Direction, FftNd};

/// A planned FFT bound to a device, mirroring `cufftPlan2d/3d` +
/// `cufftExec`.
pub struct GpuFftPlan<T: Real> {
    shape: Shape,
    fft: FftNd<T>,
}

impl<T: Real> GpuFftPlan<T> {
    /// Plan an FFT of the given shape. The real cuFFT has a large one-off
    /// library start-up cost (0.1-0.2 s) which the paper excludes with a
    /// dummy plan call; we follow suit by not charging it at all.
    pub fn new(shape: Shape) -> Self {
        GpuFftPlan {
            shape,
            fft: FftNd::new(shape),
        }
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    fn precision() -> Precision {
        if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        }
    }

    /// Execute in place on a device buffer, charging the device clock.
    pub fn execute(&self, dev: &Device, data: &mut GpuBuffer<Complex<T>>, dir: Direction) {
        assert_eq!(data.len(), self.shape.total(), "buffer/plan shape mismatch");
        self.fft.process(data.as_mut_slice(), dir);
        let n = self.shape.total();
        let bytes = n * std::mem::size_of::<Complex<T>>();
        let passes = self.shape.dim;
        let flops = 5.0 * n as f64 * (n as f64).log2().max(1.0);
        dev.bulk_op(
            match dir {
                Direction::Forward => "cufft_fwd",
                Direction::Backward => "cufft_bwd",
            },
            bytes * passes,
            bytes * passes,
            flops,
            Self::precision(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;

    #[test]
    fn numerics_match_host_fft() {
        let dev = Device::v100();
        let shape = Shape::d2(16, 12);
        let plan = GpuFftPlan::<f64>::new(shape);
        let host: Vec<Complex<f64>> = (0..shape.total())
            .map(|j| c((j as f64 * 0.3).sin(), (j as f64 * 0.7).cos()))
            .collect();
        let mut buf = dev.alloc::<Complex<f64>>("fft", shape.total()).unwrap();
        dev.memcpy_htod(&mut buf, &host);
        plan.execute(&dev, &mut buf, Direction::Forward);
        let mut want = host.clone();
        FftNd::<f64>::new(shape).process(&mut want, Direction::Forward);
        assert!(rel_l2(buf.as_slice(), &want) < 1e-14);
    }

    #[test]
    fn charges_device_time() {
        let dev = Device::v100();
        let shape = Shape::d2(256, 256);
        let plan = GpuFftPlan::<f32>::new(shape);
        let mut buf = dev.alloc::<Complex<f32>>("fft", shape.total()).unwrap();
        let t0 = dev.clock();
        plan.execute(&dev, &mut buf, Direction::Forward);
        assert!(dev.clock() > t0);
    }

    #[test]
    fn price_scales_with_grid_and_lands_near_cufft() {
        let dev = Device::v100();
        let time = |n: usize| {
            let shape = Shape::d2(n, n);
            let plan = GpuFftPlan::<f32>::new(shape);
            let mut buf = dev.alloc::<Complex<f32>>("fft", shape.total()).unwrap();
            let t0 = dev.clock();
            plan.execute(&dev, &mut buf, Direction::Forward);
            dev.clock() - t0
        };
        let t512 = time(512);
        let t1024 = time(1024);
        assert!(t1024 > 3.0 * t512, "should scale ~4x: {t512} vs {t1024}");
        // 1024^2 single C2C on a V100 is some tens of microseconds
        assert!(t1024 > 5e-6 && t1024 < 5e-4, "t1024={t1024}");
    }

    #[test]
    fn double_precision_costs_more() {
        let dev = Device::v100();
        let shape = Shape::d3(64, 64, 64);
        let mut b32 = dev.alloc::<Complex<f32>>("a", shape.total()).unwrap();
        let mut b64 = dev.alloc::<Complex<f64>>("b", shape.total()).unwrap();
        let p32 = GpuFftPlan::<f32>::new(shape);
        let p64 = GpuFftPlan::<f64>::new(shape);
        let t0 = dev.clock();
        p32.execute(&dev, &mut b32, Direction::Forward);
        let t1 = dev.clock();
        p64.execute(&dev, &mut b64, Direction::Forward);
        let t2 = dev.clock();
        assert!(t2 - t1 > (t1 - t0) * 1.5);
    }
}
