//! cuFFT substitute: executes the workspace FFT on simulated-device
//! buffers and charges a cuFFT-style cost to the device clock.
//!
//! cuFFT on large grids is memory-bound: each axis pass streams the whole
//! grid through DRAM once in and once out. We price
//! `max(2 * dim * bytes / bw, 5 N log2 N / flops)` plus launch overhead,
//! which lands within a small factor of published V100 cuFFT throughputs
//! (a 4096^2 C2C single-precision FFT prices at ~0.9 ms; cuFFT measures
//! ~0.8-1.2 ms).

#![forbid(unsafe_code)]

use gpu_sim::{Device, GpuBuffer, Precision};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_fft::{Direction, FftNd};

/// A planned FFT bound to a device, mirroring `cufftPlan2d/3d` +
/// `cufftExec`.
pub struct GpuFftPlan<T: Real> {
    shape: Shape,
    fft: FftNd<T>,
}

impl<T: Real> GpuFftPlan<T> {
    /// Plan an FFT of the given shape. The real cuFFT has a large one-off
    /// library start-up cost (0.1-0.2 s) which the paper excludes with a
    /// dummy plan call; we follow suit by not charging it at all.
    pub fn new(shape: Shape) -> Self {
        GpuFftPlan {
            shape,
            fft: FftNd::new(shape),
        }
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    fn precision() -> Precision {
        if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        }
    }

    /// Count an FFT dispatch in the device's trace session, if attached.
    fn trace_dispatch(&self, dev: &Device, ntransf: usize) {
        if let Some(trace) = dev.trace() {
            trace.counter("fft.dispatches").inc();
            trace.counter("fft.transforms").add(ntransf as i64);
            trace
                .counter("fft.grid_points")
                .add((self.shape.total() * ntransf) as i64);
        }
    }

    /// Execute in place on a device buffer, charging the device clock.
    pub fn execute(&self, dev: &Device, data: &mut GpuBuffer<Complex<T>>, dir: Direction) {
        assert_eq!(data.len(), self.shape.total(), "buffer/plan shape mismatch");
        self.trace_dispatch(dev, 1);
        self.fft.process(data.as_mut_slice(), dir);
        dev.bulk_op(
            match dir {
                Direction::Forward => "cufft_fwd",
                Direction::Backward => "cufft_bwd",
            },
            self.pass_bytes(1),
            self.pass_bytes(1),
            self.batch_flops(1),
            Self::precision(),
        );
    }

    /// Execute `ntransf` stacked grids in place (`cufftPlanMany`):
    /// `data` holds `ntransf` contiguous grids of `shape.total()`
    /// elements. Each grid's result is bitwise identical to a separate
    /// [`GpuFftPlan::execute`] call; the cost is one batched launch, so
    /// per-transform launch overhead amortizes away.
    pub fn execute_many(
        &self,
        dev: &Device,
        data: &mut GpuBuffer<Complex<T>>,
        ntransf: usize,
        dir: Direction,
    ) {
        assert!(ntransf > 0, "ntransf must be positive");
        self.trace_dispatch(dev, ntransf);
        let n = self.shape.total();
        // the buffer may be capacity-sized for a larger chunk; only the
        // first `ntransf` grids are transformed
        assert!(data.len() >= n * ntransf, "buffer smaller than batch");
        for grid in data.as_mut_slice()[..n * ntransf].chunks_exact_mut(n) {
            self.fft.process(grid, dir);
        }
        dev.bulk_op(
            match dir {
                Direction::Forward => "cufft_many_fwd",
                Direction::Backward => "cufft_many_bwd",
            },
            self.pass_bytes(ntransf),
            self.pass_bytes(ntransf),
            self.batch_flops(ntransf),
            Self::precision(),
        );
    }

    /// DRAM traffic of one direction (read or write) across all axis
    /// passes for `ntransf` grids.
    fn pass_bytes(&self, ntransf: usize) -> usize {
        self.shape.total() * std::mem::size_of::<Complex<T>>() * self.shape.dim * ntransf
    }

    /// 5 N log2 N per grid, the standard cuFFT flop count.
    fn batch_flops(&self, ntransf: usize) -> f64 {
        let n = self.shape.total();
        5.0 * n as f64 * (n as f64).log2().max(1.0) * ntransf as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;

    #[test]
    fn numerics_match_host_fft() {
        let dev = Device::v100();
        let shape = Shape::d2(16, 12);
        let plan = GpuFftPlan::<f64>::new(shape);
        let host: Vec<Complex<f64>> = (0..shape.total())
            .map(|j| c((j as f64 * 0.3).sin(), (j as f64 * 0.7).cos()))
            .collect();
        let mut buf = dev.alloc::<Complex<f64>>("fft", shape.total()).unwrap();
        dev.memcpy_htod(&mut buf, &host).unwrap();
        plan.execute(&dev, &mut buf, Direction::Forward);
        let mut want = host.clone();
        FftNd::<f64>::new(shape).process(&mut want, Direction::Forward);
        assert!(rel_l2(buf.as_slice(), &want) < 1e-14);
    }

    #[test]
    fn charges_device_time() {
        let dev = Device::v100();
        let shape = Shape::d2(256, 256);
        let plan = GpuFftPlan::<f32>::new(shape);
        let mut buf = dev.alloc::<Complex<f32>>("fft", shape.total()).unwrap();
        let t0 = dev.clock();
        plan.execute(&dev, &mut buf, Direction::Forward);
        assert!(dev.clock() > t0);
    }

    #[test]
    fn price_scales_with_grid_and_lands_near_cufft() {
        let dev = Device::v100();
        let time = |n: usize| {
            let shape = Shape::d2(n, n);
            let plan = GpuFftPlan::<f32>::new(shape);
            let mut buf = dev.alloc::<Complex<f32>>("fft", shape.total()).unwrap();
            let t0 = dev.clock();
            plan.execute(&dev, &mut buf, Direction::Forward);
            dev.clock() - t0
        };
        let t512 = time(512);
        let t1024 = time(1024);
        assert!(t1024 > 3.0 * t512, "should scale ~4x: {t512} vs {t1024}");
        // 1024^2 single C2C on a V100 is some tens of microseconds
        assert!(t1024 > 5e-6 && t1024 < 5e-4, "t1024={t1024}");
    }

    #[test]
    fn execute_many_matches_per_grid_execution_bitwise() {
        let dev = Device::v100();
        let shape = Shape::d2(12, 10);
        let n = shape.total();
        let ntransf = 3;
        let plan = GpuFftPlan::<f64>::new(shape);
        let host: Vec<Complex<f64>> = (0..n * ntransf)
            .map(|j| c((j as f64 * 0.13).sin(), (j as f64 * 0.41).cos()))
            .collect();
        let mut batched = dev.alloc::<Complex<f64>>("many", n * ntransf).unwrap();
        dev.memcpy_htod(&mut batched, &host).unwrap();
        plan.execute_many(&dev, &mut batched, ntransf, Direction::Forward);
        for b in 0..ntransf {
            let mut single = dev.alloc::<Complex<f64>>("one", n).unwrap();
            dev.memcpy_htod(&mut single, &host[b * n..(b + 1) * n])
                .unwrap();
            plan.execute(&dev, &mut single, Direction::Forward);
            // bitwise: the same FftNd runs on the same input either way
            for (x, y) in batched.as_slice()[b * n..(b + 1) * n]
                .iter()
                .zip(single.as_slice())
            {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn batched_fft_amortizes_launch_overhead() {
        let dev = Device::v100();
        let shape = Shape::d2(64, 64);
        let ntransf = 8;
        let plan = GpuFftPlan::<f32>::new(shape);
        let mut big = dev
            .alloc::<Complex<f32>>("many", shape.total() * ntransf)
            .unwrap();
        let t0 = dev.clock();
        plan.execute_many(&dev, &mut big, ntransf, Direction::Forward);
        let batched = dev.clock() - t0;
        let mut one = dev.alloc::<Complex<f32>>("one", shape.total()).unwrap();
        let t1 = dev.clock();
        plan.execute(&dev, &mut one, Direction::Forward);
        let single = dev.clock() - t1;
        assert!(
            batched < ntransf as f64 * single,
            "batched {batched} vs {ntransf}x single {single}"
        );
        // the gain is exactly the saved launch overheads
        let saved = ntransf as f64 * single - batched;
        assert!(saved > 0.0 && saved < ntransf as f64 * 1e-5);
    }

    #[test]
    fn double_precision_costs_more() {
        let dev = Device::v100();
        let shape = Shape::d3(64, 64, 64);
        let mut b32 = dev.alloc::<Complex<f32>>("a", shape.total()).unwrap();
        let mut b64 = dev.alloc::<Complex<f64>>("b", shape.total()).unwrap();
        let p32 = GpuFftPlan::<f32>::new(shape);
        let p64 = GpuFftPlan::<f64>::new(shape);
        let t0 = dev.clock();
        p32.execute(&dev, &mut b32, Direction::Forward);
        let t1 = dev.clock();
        p64.execute(&dev, &mut b64, Direction::Forward);
        let t2 = dev.clock();
        assert!(t2 - t1 > (t1 - t0) * 1.5);
    }
}
