//! End-to-end accuracy of the CPU NUFFT against the naive O(NM) direct
//! sums, across types, dimensions, precisions and tolerances — the same
//! methodology as the paper's error measurements.

use finufft_cpu::{Opts, Plan, TransformType};
use nufft_common::metrics::rel_l2;
use nufft_common::reference::{type1_direct, type2_direct};
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, Points, Real, Shape};

/// Run type 1 and compare to the direct sum; returns relative l2 error.
fn t1_error<T: Real>(modes: &[usize], m: usize, eps: f64, iflag: i32, seed: u64) -> f64 {
    let dim = modes.len();
    let shape = Shape::from_slice(modes);
    let mut plan =
        Plan::<T>::new(TransformType::Type1, modes, iflag, eps, Opts::default()).unwrap();
    let pts: Points<T> = gen_points(PointDist::Rand, dim, m, plan.fine_grid_shape(), seed);
    let cs = gen_strengths::<T>(m, seed + 1);
    plan.set_pts(pts.clone()).unwrap();
    let mut out = vec![Complex::<T>::ZERO; shape.total()];
    plan.execute(&cs, &mut out).unwrap();
    let want = type1_direct(&pts, &cs, shape, iflag);
    rel_l2(&out, &want)
}

fn t2_error<T: Real>(modes: &[usize], m: usize, eps: f64, iflag: i32, seed: u64) -> f64 {
    let dim = modes.len();
    let shape = Shape::from_slice(modes);
    let mut plan =
        Plan::<T>::new(TransformType::Type2, modes, iflag, eps, Opts::default()).unwrap();
    let pts: Points<T> = gen_points(PointDist::Rand, dim, m, plan.fine_grid_shape(), seed);
    let f = gen_coeffs::<T>(shape.total(), seed + 2);
    plan.set_pts(pts.clone()).unwrap();
    let mut out = vec![Complex::<T>::ZERO; m];
    plan.execute(&f, &mut out).unwrap();
    let want = type2_direct(&pts, &f, shape, iflag);
    rel_l2(&out, &want)
}

#[test]
fn type1_2d_meets_tolerance_f64() {
    for eps in [1e-2, 1e-5, 1e-9, 1e-12] {
        let err = t1_error::<f64>(&[32, 24], 500, eps, -1, 100);
        assert!(err < 10.0 * eps, "eps={eps}: err={err}");
    }
}

#[test]
fn type2_2d_meets_tolerance_f64() {
    for eps in [1e-2, 1e-5, 1e-9, 1e-12] {
        let err = t2_error::<f64>(&[24, 32], 400, eps, 1, 200);
        assert!(err < 10.0 * eps, "eps={eps}: err={err}");
    }
}

#[test]
fn type1_3d_meets_tolerance_f64() {
    for eps in [1e-2, 1e-6, 1e-10] {
        let err = t1_error::<f64>(&[12, 14, 10], 300, eps, -1, 300);
        assert!(err < 10.0 * eps, "eps={eps}: err={err}");
    }
}

#[test]
fn type2_3d_meets_tolerance_f64() {
    for eps in [1e-2, 1e-6, 1e-10] {
        let err = t2_error::<f64>(&[10, 12, 14], 250, eps, 1, 400);
        assert!(err < 10.0 * eps, "eps={eps}: err={err}");
    }
}

#[test]
fn type1_1d_meets_tolerance_f64() {
    for eps in [1e-3, 1e-7, 1e-11] {
        let err = t1_error::<f64>(&[64], 800, eps, -1, 500);
        assert!(err < 10.0 * eps, "eps={eps}: err={err}");
    }
}

#[test]
fn single_precision_reaches_its_limit() {
    for eps in [1e-2, 1e-4, 1e-6] {
        let err = t1_error::<f32>(&[20, 20], 300, eps, -1, 600);
        // f32 round-off adds a floor around 1e-6
        assert!(err < 10.0 * eps + 5e-5, "eps={eps}: err={err}");
    }
}

#[test]
fn both_iflag_signs_work() {
    for iflag in [-1, 1] {
        let err = t1_error::<f64>(&[16, 16], 200, 1e-8, iflag, 700);
        assert!(err < 1e-7, "iflag={iflag}: err={err}");
        let err = t2_error::<f64>(&[16, 16], 200, 1e-8, iflag, 800);
        assert!(err < 1e-7, "iflag={iflag}: err={err}");
    }
}

#[test]
fn odd_mode_counts_are_correct() {
    // odd N exercises the asymmetric frequency grid -N/2..N/2-1
    let err = t1_error::<f64>(&[15, 9], 150, 1e-9, -1, 900);
    assert!(err < 1e-8, "err={err}");
    let err = t2_error::<f64>(&[7, 11, 5], 100, 1e-9, 1, 950);
    assert!(err < 1e-8, "err={err}");
}

#[test]
fn clustered_points_same_accuracy() {
    let modes = [24usize, 24];
    let shape = Shape::from_slice(&modes);
    let mut plan =
        Plan::<f64>::new(TransformType::Type1, &modes, -1, 1e-9, Opts::default()).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Cluster, 2, 400, plan.fine_grid_shape(), 33);
    let cs = gen_strengths::<f64>(400, 34);
    plan.set_pts(pts.clone()).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; shape.total()];
    plan.execute(&cs, &mut out).unwrap();
    let want = type1_direct(&pts, &cs, shape, -1);
    assert!(rel_l2(&out, &want) < 1e-8);
}

#[test]
fn plan_reuse_with_new_strengths() {
    let modes = [20usize, 20];
    let shape = Shape::from_slice(&modes);
    let mut plan =
        Plan::<f64>::new(TransformType::Type1, &modes, -1, 1e-10, Opts::default()).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, 300, plan.fine_grid_shape(), 44);
    plan.set_pts(pts.clone()).unwrap();
    for seed in [1u64, 2, 3] {
        let cs = gen_strengths::<f64>(300, seed);
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, shape, -1);
        assert!(rel_l2(&out, &want) < 1e-9, "reuse seed {seed}");
    }
}

#[test]
fn type1_and_type2_are_adjoint() {
    // <T1 c, f> = <c, T2 f> when T2 uses the conjugate sign
    let modes = [14usize, 18];
    let shape = Shape::from_slice(&modes);
    let m = 120;
    let mut p1 =
        Plan::<f64>::new(TransformType::Type1, &modes, -1, 1e-12, Opts::default()).unwrap();
    let mut p2 = Plan::<f64>::new(TransformType::Type2, &modes, 1, 1e-12, Opts::default()).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, m, p1.fine_grid_shape(), 77);
    p1.set_pts(pts.clone()).unwrap();
    p2.set_pts(pts).unwrap();
    let cs = gen_strengths::<f64>(m, 78);
    let fs = gen_strengths::<f64>(shape.total(), 79);
    let mut t1 = vec![Complex::<f64>::ZERO; shape.total()];
    p1.execute(&cs, &mut t1).unwrap();
    let mut t2 = vec![Complex::<f64>::ZERO; m];
    p2.execute(&fs, &mut t2).unwrap();
    let lhs = nufft_common::metrics::inner(&t1, &fs);
    let rhs = nufft_common::metrics::inner(&cs, &t2);
    assert!(
        (lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()),
        "{lhs:?} vs {rhs:?}"
    );
}

#[test]
fn unsorted_option_gives_same_answer() {
    let modes = [22usize, 26];
    let shape = Shape::from_slice(&modes);
    let mk = |sort: bool| {
        let opts = Opts {
            sort,
            ..Default::default()
        };
        let mut plan = Plan::<f64>::new(TransformType::Type1, &modes, -1, 1e-11, opts).unwrap();
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 500, plan.fine_grid_shape(), 55);
        let cs = gen_strengths::<f64>(500, 56);
        plan.set_pts(pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        out
    };
    let a = mk(true);
    let b = mk(false);
    assert!(rel_l2(&a, &b) < 1e-12);
}

#[test]
fn error_paths() {
    use nufft_common::NufftError;
    // execute before set_pts
    let mut plan =
        Plan::<f64>::new(TransformType::Type1, &[8, 8], -1, 1e-6, Opts::default()).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; 64];
    assert!(matches!(
        plan.execute(&[], &mut out),
        Err(NufftError::PointsNotSet)
    ));
    // wrong lengths
    let pts = Points::<f64> {
        coords: [vec![0.1, 0.2], vec![0.3, 0.4], vec![]],
        dim: 2,
    };
    plan.set_pts(pts).unwrap();
    assert!(matches!(
        plan.execute(&[Complex::ZERO; 3], &mut out),
        Err(NufftError::LengthMismatch { .. })
    ));
    // non-finite point
    let bad = Points::<f64> {
        coords: [vec![f64::NAN], vec![0.0], vec![]],
        dim: 2,
    };
    assert!(matches!(
        plan.set_pts(bad),
        Err(NufftError::BadPoint { .. })
    ));
    // bad dims
    assert!(Plan::<f64>::new(TransformType::Type1, &[], -1, 1e-6, Opts::default()).is_err());
    assert!(Plan::<f64>::new(TransformType::Type1, &[8, 0], -1, 1e-6, Opts::default()).is_err());
}

#[test]
fn one_shot_wrappers_agree_with_guru() {
    let n1 = 18;
    let n2 = 14;
    let m = 90;
    let shape = Shape::d2(n1, n2);
    let fine = Shape::d2(2 * n1, 2 * n2);
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, m, fine, 11);
    let cs = gen_strengths::<f64>(m, 12);
    let quick = finufft_cpu::nufft2d1(pts.x(), pts.y(), &cs, -1, 1e-9, n1, n2).unwrap();
    let want = type1_direct(&pts, &cs, shape, -1);
    assert!(rel_l2(&quick, &want) < 1e-8);
    let f = gen_coeffs::<f64>(shape.total(), 13);
    let quick2 = finufft_cpu::nufft2d2(pts.x(), pts.y(), &f, 1, 1e-9, n1, n2).unwrap();
    let want2 = type2_direct(&pts, &f, shape, 1);
    assert!(rel_l2(&quick2, &want2) < 1e-8);
}

#[test]
fn low_upsampling_sigma_meets_tolerance() {
    // sigma = 1.25 (the paper's future-work item 3): wider kernel, much
    // smaller fine grid, same accuracy contract
    let modes = [24usize, 20];
    let shape = Shape::from_slice(&modes);
    for eps in [1e-3, 1e-6, 1e-9] {
        let opts = Opts {
            upsampfac: 1.25,
            ..Default::default()
        };
        let mut plan = Plan::<f64>::new(TransformType::Type1, &modes, -1, eps, opts).unwrap();
        // the fine grid is much smaller than 2N
        assert!(plan.fine_grid_shape().n[0] < 2 * modes[0]);
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 300, plan.fine_grid_shape(), 71);
        let cs = gen_strengths::<f64>(300, 72);
        plan.set_pts(pts.clone()).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, shape, -1);
        let err = rel_l2(&out, &want);
        // low upsampling trades ~1 accuracy digit, as FINUFFT documents
        // for its sigma = 1.25 mode
        assert!(err < 100.0 * eps, "sigma=1.25 eps={eps}: err={err}");
    }
}

#[test]
fn horner_kernel_plan_matches_direct_eval_plan() {
    use nufft_kernels::{EsKernel, HornerKernel};
    let modes = [28usize, 24];
    let shape = Shape::from_slice(&modes);
    let es = EsKernel::for_tolerance(1e-8, true).unwrap();
    let mk_out = |horner: bool| {
        let mut plan = if horner {
            Plan::<f64, HornerKernel>::with_kernel(
                TransformType::Type1,
                &modes,
                -1,
                HornerKernel::fit(es),
                Opts::default(),
            )
            .unwrap()
        } else {
            // same kernel, direct exp/sqrt evaluation — wrap via the
            // generic constructor so both paths share the pipeline
            return {
                let mut plan =
                    Plan::<f64>::with_kernel(TransformType::Type1, &modes, -1, es, Opts::default())
                        .unwrap();
                let pts: Points<f64> =
                    gen_points(PointDist::Rand, 2, 400, plan.fine_grid_shape(), 88);
                plan.set_pts(pts).unwrap();
                let cs = gen_strengths::<f64>(400, 89);
                let mut out = vec![Complex::<f64>::ZERO; shape.total()];
                plan.execute(&cs, &mut out).unwrap();
                out
            };
        };
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 400, plan.fine_grid_shape(), 88);
        plan.set_pts(pts).unwrap();
        let cs = gen_strengths::<f64>(400, 89);
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        out
    };
    let direct = mk_out(false);
    let horner = mk_out(true);
    // fits reach the kernel's own accuracy floor (~e^{-beta})
    assert!(
        rel_l2(&horner, &direct) < 1e-8,
        "{}",
        rel_l2(&horner, &direct)
    );
}

#[test]
fn eval_kernel_plan_honors_opts_and_matches_exact_plan() {
    use nufft_kernels::{EvalKernel, KernelEval};
    let modes = [20usize, 18];
    let shape = Shape::from_slice(&modes);
    let eps = 1e-6;
    let run = |choice: KernelEval| {
        let opts = Opts {
            kernel_eval: choice,
            ..Opts::default()
        };
        let mut plan =
            Plan::<f64, EvalKernel>::new(TransformType::Type1, &modes, -1, eps, opts).unwrap();
        let horner = plan.kernel().is_horner();
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 300, plan.fine_grid_shape(), 91);
        plan.set_pts(pts).unwrap();
        let cs = gen_strengths::<f64>(300, 92);
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        (horner, out)
    };
    // At a moderate tolerance Auto resolves to the Horner fast path; the
    // forced variants are honored verbatim.
    let (auto_horner, auto_out) = run(KernelEval::Auto);
    let (exact_horner, exact_out) = run(KernelEval::Exact);
    let (forced_horner, _) = run(KernelEval::Horner);
    assert!(auto_horner, "Auto should pick Horner at eps=1e-6");
    assert!(!exact_horner);
    assert!(forced_horner);
    // Both evaluations compute the same transform well within eps.
    assert!(rel_l2(&auto_out, &exact_out) < eps);
    // The default-kernel plan (always exact) agrees bitwise with the
    // Exact-forced EvalKernel plan: same kernel, same evaluation.
    let mut plan =
        Plan::<f64>::new(TransformType::Type1, &modes, -1, eps, Opts::default()).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, 300, plan.fine_grid_shape(), 91);
    plan.set_pts(pts).unwrap();
    let cs = gen_strengths::<f64>(300, 92);
    let mut out = vec![Complex::<f64>::ZERO; shape.total()];
    plan.execute(&cs, &mut out).unwrap();
    for (a, b) in out.iter().zip(exact_out.iter()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
}
