//! Analytic cost model for the multithreaded CPU library.
//!
//! Benchmarks need a *consistent timing basis* across libraries (see
//! DESIGN.md §2): GPU codes are priced by the `gpu-sim` model, so FINUFFT
//! is priced by an operation-count model of the paper's CPU testbeds — a
//! dual-socket Xeon E5-2680 v4 (28 threads) for Figs. 4-7/Table I and an
//! Intel Skylake node (40 threads) for Table II. Constants are fitted to
//! the absolute FINUFFT timings the paper reports: Table I implies 2.84 s
//! (w=3) and 3.4 s (w=6) for 3D type 1 at M=1.34e8 single precision, and
//! Table II implies ~49 ns/pt at w=13 double on 40 Skylake threads.
//! Jointly these pin a per-point constant of ~1.3k cycles and a *small*
//! per-cell marginal (~1.5 cycles single) — FINUFFT's vectorized
//! piecewise-polynomial spreading is nearly flat in kernel width, and the
//! model reflects that (kernel evaluation is folded into the per-point
//! constant).

use nufft_common::shape::Shape;

/// Precision selector mirroring `gpu_sim::Precision` without the
/// dependency.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CpuPrecision {
    Single,
    Double,
}

/// CPU hardware/cost constants.
#[derive(Clone, Debug)]
pub struct CpuModel {
    pub name: &'static str,
    pub threads: usize,
    pub clock_hz: f64,
    /// Sustained memory bandwidth, bytes/s (dual-socket aggregate).
    pub mem_bw: f64,
    /// Fixed per-point overhead of spreading, in cycles (index math,
    /// kernel-row evaluation setup, loop control).
    pub c_point: f64,
    /// Per-grid-cell cost of a spread update (read-modify-write),
    /// cycles, single precision.
    pub c_cell_spread: f64,
    /// Per-grid-cell cost of an interpolation read-accumulate, cycles.
    pub c_cell_interp: f64,
    /// Per-kernel-evaluation cost (exp + sqrt), cycles.
    pub c_eval: f64,
    /// FFT cycles per element per log2(size) (FFTW-class).
    pub c_fft: f64,
    /// Sort cost per point, cycles.
    pub c_sort: f64,
}

impl CpuModel {
    /// The paper's benchmark CPU: 2x Intel Xeon E5-2680 v4, 28 threads.
    pub fn xeon_e5_2680v4() -> Self {
        CpuModel {
            name: "2x Xeon E5-2680 v4, 28 threads (modeled)",
            threads: 28,
            clock_hz: 2.4e9,
            mem_bw: 130.0e9,
            c_point: 1260.0,
            c_cell_spread: 1.45,
            c_cell_interp: 1.1,
            c_eval: 0.0,
            c_fft: 4.5,
            c_sort: 40.0,
        }
    }

    /// Table II's CPU: Intel Skylake (Cori GPU node host), 40 threads.
    pub fn skylake_40t() -> Self {
        CpuModel {
            name: "Intel Skylake, 40 threads (modeled)",
            threads: 40,
            clock_hz: 2.4e9,
            mem_bw: 180.0e9,
            ..Self::xeon_e5_2680v4()
        }
    }

    /// (per-point, per-cell) cost multipliers for the precision: doubles
    /// halve the SIMD width (1.8x per cell) and modestly inflate the
    /// fixed per-point work (1.3x).
    fn prec_scale(prec: CpuPrecision) -> (f64, f64) {
        match prec {
            CpuPrecision::Single => (1.0, 1.0),
            CpuPrecision::Double => (1.3, 1.8),
        }
    }

    fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.threads as f64 * self.clock_hz)
    }

    /// Spreading time for `m` points, kernel width `w`, `dim` dimensions.
    pub fn spread_time(&self, m: usize, w: usize, dim: usize, prec: CpuPrecision) -> f64 {
        let cells = (w as f64).powi(dim as i32);
        let (sa, sb) = Self::prec_scale(prec);
        let cycles = m as f64
            * (self.c_point * sa
                + cells * self.c_cell_spread * sb
                + dim as f64 * w as f64 * self.c_eval);
        // FINUFFT spreads through cache-blocked subgrids, so DRAM sees
        // the point data plus roughly one pass over the touched region,
        // not one transaction per cell update
        let bytes = m as f64 * (24.0 * sb + 16.0);
        self.cycles_to_secs(cycles).max(bytes / self.mem_bw)
    }

    /// Interpolation time (read-only gather).
    pub fn interp_time(&self, m: usize, w: usize, dim: usize, prec: CpuPrecision) -> f64 {
        let cells = (w as f64).powi(dim as i32);
        let (sa, sb) = Self::prec_scale(prec);
        let cycles = m as f64
            * (self.c_point * sa
                + cells * self.c_cell_interp * sb
                + dim as f64 * w as f64 * self.c_eval);
        let bytes = m as f64 * (24.0 * sb + 16.0);
        self.cycles_to_secs(cycles).max(bytes / self.mem_bw)
    }

    /// Multi-dimensional FFT of the fine grid.
    pub fn fft_time(&self, fine: Shape, prec: CpuPrecision) -> f64 {
        let n = fine.total() as f64;
        let (_, sb) = Self::prec_scale(prec);
        let cycles = self.c_fft * sb * n * n.log2().max(1.0);
        let bytes = n * 8.0 * sb * 2.0 * fine.dim as f64; // one r/w pass per axis
        self.cycles_to_secs(cycles).max(bytes / self.mem_bw)
    }

    /// Deconvolution + mode copy.
    pub fn deconv_time(&self, modes: Shape, prec: CpuPrecision) -> f64 {
        let n = modes.total() as f64;
        let (_, sb) = Self::prec_scale(prec);
        self.cycles_to_secs(n * 6.0)
            .max(n * 8.0 * sb * 2.0 / self.mem_bw)
    }

    /// Bin-sort time (the `set_pts` stage).
    pub fn sort_time(&self, m: usize) -> f64 {
        self.cycles_to_secs(m as f64 * self.c_sort)
            .max(m as f64 * 16.0 / self.mem_bw)
    }

    /// "exec" time of a type 1 transform (points already sorted).
    pub fn type1_exec(
        &self,
        m: usize,
        w: usize,
        modes: Shape,
        fine: Shape,
        prec: CpuPrecision,
    ) -> f64 {
        self.spread_time(m, w, modes.dim, prec)
            + self.fft_time(fine, prec)
            + self.deconv_time(modes, prec)
    }

    /// "exec" time of a type 2 transform.
    pub fn type2_exec(
        &self,
        m: usize,
        w: usize,
        modes: Shape,
        fine: Shape,
        prec: CpuPrecision,
    ) -> f64 {
        self.interp_time(m, w, modes.dim, prec)
            + self.fft_time(fine, prec)
            + self.deconv_time(modes, prec)
    }

    /// "total" time = sort + exec (the CPU library has no device
    /// transfers, matching how the paper reports FINUFFT's "total").
    pub fn total(&self, exec: f64, m: usize) -> f64 {
        self.sort_time(m) + exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_calibration_anchors() {
        // Paper Table I implies FINUFFT 3D type-1 exec of ~2.84 s (w=3)
        // and ~3.4 s (w=6) at N=256^3, M=1.34e8. The model should land
        // within a factor ~2 of both.
        let m = CpuModel::xeon_e5_2680v4();
        let modes = Shape::d3(256, 256, 256);
        let fine = Shape::d3(512, 512, 512);
        let t_w3 = m.type1_exec(134_000_000, 3, modes, fine, CpuPrecision::Single);
        let t_w6 = m.type1_exec(134_000_000, 6, modes, fine, CpuPrecision::Single);
        assert!(t_w3 > 1.4 && t_w3 < 5.7, "w=3: {t_w3}");
        assert!(t_w6 > 1.7 && t_w6 < 6.8, "w=6: {t_w6}");
        assert!(t_w6 > t_w3);
        // Table II anchor: 3D double w=13 on 40-thread Skylake lands near
        // the paper's ~49 ns/pt (1.62 s for two transforms of 1.64e7 pts)
        let sky = CpuModel::skylake_40t();
        let t13 = sky.type1_exec(
            16_400_000,
            13,
            Shape::d3(81, 81, 81),
            Shape::d3(162, 162, 162),
            CpuPrecision::Double,
        );
        assert!(t13 > 0.3 && t13 < 2.5, "w=13 f64: {t13}");
    }

    #[test]
    fn double_precision_is_slower() {
        let m = CpuModel::xeon_e5_2680v4();
        let modes = Shape::d2(512, 512);
        let fine = Shape::d2(1024, 1024);
        let s = m.type1_exec(1 << 20, 6, modes, fine, CpuPrecision::Single);
        let d = m.type1_exec(1 << 20, 6, modes, fine, CpuPrecision::Double);
        assert!(d > s);
    }

    #[test]
    fn more_threads_scale_compute() {
        let base = CpuModel::xeon_e5_2680v4();
        let mut big = base.clone();
        big.threads = 56;
        let modes = Shape::d2(256, 256);
        let fine = Shape::d2(512, 512);
        // small problem (compute-bound): should scale close to 2x
        let t1 = base.spread_time(100_000, 6, 2, CpuPrecision::Single);
        let t2 = big.spread_time(100_000, 6, 2, CpuPrecision::Single);
        assert!(t2 < t1);
        let _ = (modes, fine);
    }

    #[test]
    fn interp_cheaper_than_spread() {
        let m = CpuModel::xeon_e5_2680v4();
        let s = m.spread_time(1 << 22, 6, 2, CpuPrecision::Single);
        let i = m.interp_time(1 << 22, 6, 2, CpuPrecision::Single);
        assert!(i <= s);
    }

    #[test]
    fn exec_components_positive() {
        let m = CpuModel::skylake_40t();
        let modes = Shape::d3(81, 81, 81);
        let fine = Shape::d3(162, 162, 162);
        let t = m.type1_exec(16_400_000, 13, modes, fine, CpuPrecision::Double);
        assert!(t > 0.0 && t.is_finite());
        assert!(m.total(t, 16_400_000) > t);
    }
}
