//! The FINUFFT-style guru plan interface: plan, set points, execute
//! (repeatedly), drop. Mirrors `finufft_makeplan` / `finufft_setpts` /
//! `finufft_execute`.

use crate::deconv::correction_rows;
use crate::sort::{bin_sort, BinSort};
use crate::spread::{interp, spread};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::{freq_to_bin, freqs, Shape};
use nufft_common::smooth::{fine_grid_size_with, FineSizing};
use nufft_common::workload::Points;
use nufft_fft::{Direction, FftNd};
use nufft_kernels::{EsKernel, EvalKernel, Kernel1d, KernelEval};
use std::time::Instant;

pub use nufft_common::TransformType;

/// Plan options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Upsampling factor sigma (the paper fixes 2.0).
    pub upsampfac: f64,
    /// Worker threads; 0 = autodetect.
    pub nthreads: usize,
    /// Bin size for the point sort.
    pub bin_size: [usize; 3],
    /// Disable sorting (points processed in user order).
    pub sort: bool,
    /// Fine-grid sizing policy: 5-smooth rounding (default) or exact
    /// `max(ceil(sigma*n), 2w)`, which lets prime sizes reach the
    /// Bluestein FFT path (used by the conformance harness).
    pub fine_sizing: FineSizing,
    /// Kernel-evaluation choice honored by [`Plan::new`] on the
    /// `EvalKernel`-backed plan type: exact exponential, the fitted
    /// Horner fast path, or a plan-time Auto pick gated on the measured
    /// fit error. `Plan::<T>::new` (the `EsKernel` default) always
    /// evaluates exactly and ignores this knob.
    pub kernel_eval: KernelEval,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            upsampfac: 2.0,
            nthreads: 0,
            bin_size: [16, 16, 4],
            sort: true,
            fine_sizing: FineSizing::default(),
            kernel_eval: KernelEval::Auto,
        }
    }
}

/// Wall-clock stage timings of the last `execute` / `set_pts` calls.
#[derive(Copy, Clone, Debug, Default)]
pub struct StageTimings {
    pub sort: f64,
    pub spread_interp: f64,
    pub fft: f64,
    pub deconv: f64,
}

/// A reusable CPU NUFFT plan, generic over precision and kernel.
pub struct Plan<T: Real, K: Kernel1d = EsKernel> {
    ttype: TransformType,
    modes: Shape,
    fine: Shape,
    iflag: i32,
    kernel: K,
    opts: Opts,
    nthreads: usize,
    fft: FftNd<T>,
    corr: [Vec<f64>; 3],
    pts: Option<Points<T>>,
    sort: Option<BinSort>,
    fine_grid: Vec<Complex<T>>,
    timings: StageTimings,
}

impl<T: Real> Plan<T, EsKernel> {
    /// Create a plan with the ES kernel selected from tolerance `eps`
    /// (paper eq. 6). `iflag` gives the exponential sign (+1 or -1).
    pub fn new(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        eps: f64,
        opts: Opts,
    ) -> Result<Self> {
        let kernel = if (opts.upsampfac - 2.0).abs() < 1e-12 {
            EsKernel::for_tolerance(eps, T::IS_DOUBLE)?
        } else {
            EsKernel::for_tolerance_sigma(eps, opts.upsampfac, T::IS_DOUBLE)?
        };
        Self::with_kernel(ttype, modes, iflag, kernel, opts)
    }
}

impl<T: Real> Plan<T, EvalKernel> {
    /// Create a plan that honors `opts.kernel_eval`: the ES kernel is
    /// selected from `eps` exactly as [`Plan::new`] does, then the
    /// evaluation strategy (exact exponential vs fitted Horner fast
    /// path) is resolved at plan time via [`EvalKernel::select`].
    pub fn new(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        eps: f64,
        opts: Opts,
    ) -> Result<Self> {
        let es = if (opts.upsampfac - 2.0).abs() < 1e-12 {
            EsKernel::for_tolerance(eps, T::IS_DOUBLE)?
        } else {
            EsKernel::for_tolerance_sigma(eps, opts.upsampfac, T::IS_DOUBLE)?
        };
        let kernel = EvalKernel::select(es, eps, opts.kernel_eval);
        Self::with_kernel(ttype, modes, iflag, kernel, opts)
    }
}

impl<T: Real, K: Kernel1d> Plan<T, K> {
    /// Create a plan with an explicit kernel (used by the baseline
    /// libraries and by parameter sweeps).
    pub fn with_kernel(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        kernel: K,
        opts: Opts,
    ) -> Result<Self> {
        if modes.is_empty() || modes.len() > 3 {
            return Err(NufftError::BadDim(modes.len()));
        }
        if modes.contains(&0) {
            return Err(NufftError::BadModes("zero-size mode dimension".into()));
        }
        if opts.upsampfac <= 1.0 {
            return Err(NufftError::BadOptions(format!(
                "upsampfac must exceed 1, got {}",
                opts.upsampfac
            )));
        }
        let modes = Shape::from_slice(modes);
        let fine = modes
            .map(|_, n| fine_grid_size_with(n, opts.upsampfac, kernel.width(), opts.fine_sizing));
        let corr = correction_rows(&kernel, modes, fine);
        let fft = FftNd::new(fine);
        let nthreads = if opts.nthreads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.nthreads
        };
        Ok(Plan {
            ttype,
            modes,
            fine,
            iflag: if iflag >= 0 { 1 } else { -1 },
            kernel,
            opts,
            nthreads,
            fft,
            corr,
            pts: None,
            sort: None,
            fine_grid: vec![Complex::ZERO; fine.total()],
            timings: StageTimings::default(),
        })
    }

    pub fn modes(&self) -> Shape {
        self.modes
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.fine
    }

    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    pub fn num_points(&self) -> usize {
        self.pts.as_ref().map_or(0, |p| p.len())
    }

    /// Register nonuniform points (sorts them once; subsequent `execute`
    /// calls reuse the ordering — the paper's plan-reuse use case).
    pub fn set_pts(&mut self, pts: Points<T>) -> Result<()> {
        if pts.dim != self.modes.dim {
            return Err(NufftError::BadDim(pts.dim));
        }
        for i in 0..pts.dim {
            for (j, &v) in pts.coords[i].iter().enumerate() {
                if !v.is_finite() {
                    return Err(NufftError::BadPoint {
                        index: j,
                        value: v.to_f64(),
                    });
                }
            }
            if pts.coords[i].len() != pts.len() {
                return Err(NufftError::LengthMismatch {
                    expected: pts.len(),
                    got: pts.coords[i].len(),
                });
            }
        }
        let t0 = Instant::now();
        self.sort = if self.opts.sort {
            Some(bin_sort(&pts, self.fine, self.opts.bin_size))
        } else {
            None
        };
        self.timings.sort = t0.elapsed().as_secs_f64();
        self.pts = Some(pts);
        Ok(())
    }

    /// Run the transform. For type 1, `input` holds M strengths and
    /// `output` N1*...*Nd coefficients (k1 fastest, ascending frequency);
    /// for type 2 the roles are swapped.
    pub fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let pts = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = pts.len();
        let n = self.modes.total();
        let (want_in, want_out) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != want_in {
            return Err(NufftError::LengthMismatch {
                expected: want_in,
                got: input.len(),
            });
        }
        if output.len() != want_out {
            return Err(NufftError::LengthMismatch {
                expected: want_out,
                got: output.len(),
            });
        }
        let dir = Direction::from_sign(self.iflag);
        let identity: Vec<u32>;
        let order: &[u32] = match &self.sort {
            Some(s) => &s.perm,
            None => {
                identity = (0..m as u32).collect();
                &identity
            }
        };
        // move the workhorse grid out so the borrow checker can see that
        // the plan's metadata stays immutable while it is mutated
        let mut grid = std::mem::take(&mut self.fine_grid);
        let mut timings = self.timings;
        match self.ttype {
            TransformType::Type1 => {
                let t0 = Instant::now();
                grid.iter_mut().for_each(|z| *z = Complex::ZERO);
                spread(
                    &self.kernel,
                    self.fine,
                    pts,
                    input,
                    order,
                    &mut grid,
                    self.nthreads,
                );
                timings.spread_interp = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                self.fft.process(&mut grid, dir);
                timings.fft = t1.elapsed().as_secs_f64();
                let t2 = Instant::now();
                self.deconvolve_out(&grid, output);
                timings.deconv = t2.elapsed().as_secs_f64();
            }
            TransformType::Type2 => {
                let t0 = Instant::now();
                grid.iter_mut().for_each(|z| *z = Complex::ZERO);
                self.precorrect_in(input, &mut grid);
                timings.deconv = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                self.fft.process(&mut grid, dir);
                timings.fft = t1.elapsed().as_secs_f64();
                let t2 = Instant::now();
                interp(&self.kernel, self.fine, pts, &grid, output, self.nthreads);
                timings.spread_interp = t2.elapsed().as_secs_f64();
            }
        }
        self.fine_grid = grid;
        self.timings = timings;
        Ok(())
    }

    /// Execute `B` stacked transforms sharing the registered points,
    /// with `B` inferred from `input.len()` (vectors concatenated): the
    /// CPU analogue of cuFINUFFT's `ntransf` batching. The sort and the
    /// workhorse grid are reused across the batch; stage timings
    /// accumulate over all vectors.
    pub fn execute_many(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let m = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?.len();
        let n = self.modes.total();
        let (in_per, out_per) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if in_per == 0 {
            return Err(NufftError::BadOptions(
                "execute_many cannot infer the batch size from empty transforms".into(),
            ));
        }
        if input.is_empty() || !input.len().is_multiple_of(in_per) {
            return Err(NufftError::LengthMismatch {
                expected: in_per,
                got: input.len(),
            });
        }
        let b = input.len() / in_per;
        if output.len() != out_per * b {
            return Err(NufftError::LengthMismatch {
                expected: out_per * b,
                got: output.len(),
            });
        }
        let mut acc = StageTimings {
            sort: self.timings.sort,
            ..Default::default()
        };
        for t in 0..b {
            self.execute(
                &input[t * in_per..(t + 1) * in_per],
                &mut output[t * out_per..(t + 1) * out_per],
            )?;
            acc.spread_interp += self.timings.spread_interp;
            acc.fft += self.timings.fft;
            acc.deconv += self.timings.deconv;
        }
        self.timings = acc;
        Ok(())
    }

    /// Type 1 step 3: truncate to the central modes and apply the
    /// correction factors (eq. 10).
    fn deconvolve_out(&self, grid: &[Complex<T>], output: &mut [Complex<T>]) {
        let fine = self.fine;
        let modes = self.modes;
        let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
            .enumerate()
            .map(|(j, k)| (freq_to_bin(k, fine.n[0]), self.corr[0][j]))
            .collect();
        let mut idx = 0usize;
        for (j3, k3) in freqs(modes.n[2]).enumerate() {
            let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
            let p3 = self.corr[2][j3];
            for (j2, k2) in freqs(modes.n[1]).enumerate() {
                let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
                let p23 = p3 * self.corr[1][j2];
                for (b1, p1) in &k1s {
                    output[idx] = grid[b2 + b1].scale(T::from_f64(p1 * p23));
                    idx += 1;
                }
            }
        }
    }

    /// Type 2 step 1: pre-correct and zero-pad into the fine grid
    /// (eq. 11). The grid must be zeroed beforehand.
    fn precorrect_in(&self, input: &[Complex<T>], grid: &mut [Complex<T>]) {
        let fine = self.fine;
        let modes = self.modes;
        let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
            .enumerate()
            .map(|(j, k)| (freq_to_bin(k, fine.n[0]), self.corr[0][j]))
            .collect();
        let mut idx = 0usize;
        for (j3, k3) in freqs(modes.n[2]).enumerate() {
            let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
            let p3 = self.corr[2][j3];
            for (j2, k2) in freqs(modes.n[1]).enumerate() {
                let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
                let p23 = p3 * self.corr[1][j2];
                for (b1, p1) in &k1s {
                    grid[b2 + b1] = input[idx].scale(T::from_f64(p1 * p23));
                    idx += 1;
                }
            }
        }
    }
}

impl<T: Real, K: Kernel1d> nufft_common::NufftPlan<T> for Plan<T, K> {
    fn transform_type(&self) -> TransformType {
        self.ttype
    }

    fn modes(&self) -> Shape {
        self.modes
    }

    fn num_points(&self) -> usize {
        Plan::num_points(self)
    }

    fn set_points(&mut self, pts: &Points<T>) -> Result<()> {
        // the CPU plan takes ownership of the coordinate arrays
        self.set_pts(pts.clone())
    }

    fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        Plan::execute(self, input, output)
    }

    fn execute_many(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        Plan::execute_many(self, input, output)
    }

    fn exec_time(&self) -> f64 {
        self.timings.spread_interp + self.timings.fft + self.timings.deconv
    }

    fn total_time(&self) -> f64 {
        self.timings.sort + self.exec_time()
    }

    fn backend_name(&self) -> &'static str {
        "finufft-cpu"
    }
}

/// One-shot 2D type 1 transform (convenience wrapper).
pub fn nufft2d1<T: Real>(
    x: &[T],
    y: &[T],
    strengths: &[Complex<T>],
    iflag: i32,
    eps: f64,
    n1: usize,
    n2: usize,
) -> Result<Vec<Complex<T>>> {
    let mut plan = Plan::<T>::new(TransformType::Type1, &[n1, n2], iflag, eps, Opts::default())?;
    plan.set_pts(Points {
        coords: [x.to_vec(), y.to_vec(), Vec::new()],
        dim: 2,
    })?;
    let mut out = vec![Complex::ZERO; n1 * n2];
    plan.execute(strengths, &mut out)?;
    Ok(out)
}

/// One-shot 2D type 2 transform.
pub fn nufft2d2<T: Real>(
    x: &[T],
    y: &[T],
    coeffs: &[Complex<T>],
    iflag: i32,
    eps: f64,
    n1: usize,
    n2: usize,
) -> Result<Vec<Complex<T>>> {
    let mut plan = Plan::<T>::new(TransformType::Type2, &[n1, n2], iflag, eps, Opts::default())?;
    plan.set_pts(Points {
        coords: [x.to_vec(), y.to_vec(), Vec::new()],
        dim: 2,
    })?;
    let mut out = vec![Complex::ZERO; x.len()];
    plan.execute(coeffs, &mut out)?;
    Ok(out)
}

/// One-shot 3D type 1 transform.
#[allow(clippy::too_many_arguments)]
pub fn nufft3d1<T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    strengths: &[Complex<T>],
    iflag: i32,
    eps: f64,
    n1: usize,
    n2: usize,
    n3: usize,
) -> Result<Vec<Complex<T>>> {
    let mut plan = Plan::<T>::new(
        TransformType::Type1,
        &[n1, n2, n3],
        iflag,
        eps,
        Opts::default(),
    )?;
    plan.set_pts(Points {
        coords: [x.to_vec(), y.to_vec(), z.to_vec()],
        dim: 3,
    })?;
    let mut out = vec![Complex::ZERO; n1 * n2 * n3];
    plan.execute(strengths, &mut out)?;
    Ok(out)
}

/// One-shot 3D type 2 transform.
#[allow(clippy::too_many_arguments)]
pub fn nufft3d2<T: Real>(
    x: &[T],
    y: &[T],
    z: &[T],
    coeffs: &[Complex<T>],
    iflag: i32,
    eps: f64,
    n1: usize,
    n2: usize,
    n3: usize,
) -> Result<Vec<Complex<T>>> {
    let mut plan = Plan::<T>::new(
        TransformType::Type2,
        &[n1, n2, n3],
        iflag,
        eps,
        Opts::default(),
    )?;
    plan.set_pts(Points {
        coords: [x.to_vec(), y.to_vec(), z.to_vec()],
        dim: 3,
    })?;
    let mut out = vec![Complex::ZERO; x.len()];
    plan.execute(coeffs, &mut out)?;
    Ok(out)
}

/// One-shot 1D type 1 (a FINUFFT feature the paper lists as cuFINUFFT
/// future work; provided here for completeness).
pub fn nufft1d1<T: Real>(
    x: &[T],
    strengths: &[Complex<T>],
    iflag: i32,
    eps: f64,
    n1: usize,
) -> Result<Vec<Complex<T>>> {
    let mut plan = Plan::<T>::new(TransformType::Type1, &[n1], iflag, eps, Opts::default())?;
    plan.set_pts(Points {
        coords: [x.to_vec(), Vec::new(), Vec::new()],
        dim: 1,
    })?;
    let mut out = vec![Complex::ZERO; n1];
    plan.execute(strengths, &mut out)?;
    Ok(out)
}

/// One-shot 1D type 2.
pub fn nufft1d2<T: Real>(
    x: &[T],
    coeffs: &[Complex<T>],
    iflag: i32,
    eps: f64,
    n1: usize,
) -> Result<Vec<Complex<T>>> {
    let mut plan = Plan::<T>::new(TransformType::Type2, &[n1], iflag, eps, Opts::default())?;
    plan.set_pts(Points {
        coords: [x.to_vec(), Vec::new(), Vec::new()],
        dim: 1,
    })?;
    let mut out = vec![Complex::ZERO; x.len()];
    plan.execute(coeffs, &mut out)?;
    Ok(out)
}
