//! CPU spreading (type 1 step i) and interpolation (type 2 step iii),
//! generic over the spreading kernel.
//!
//! The parallel spreader follows FINUFFT's subproblem strategy: bin-sorted
//! points are cut into chunks, each chunk is spread into a local grid
//! covering its (padded) bounding box by a worker thread, and the local
//! grids are merged into the global fine grid with periodic wrapping. The
//! merge is done by the coordinating thread as results stream in, so no
//! locking of the output grid is needed.

use crossbeam::channel;
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_common::workload::Points;
use nufft_kernels::{grid_coord, spread_footprint, Kernel1d};

/// Upper bound on kernel width across all supported kernels.
pub const MAX_W: usize = 32;

/// Precomputed footprint of one point: start node, wrapped per-axis
/// indices and tensor-factor rows.
pub(crate) struct Footprint {
    pub l0: [i64; 3],
    pub wd: [usize; 3],
    pub ker: [[f64; MAX_W]; 3],
}

#[inline]
pub(crate) fn footprint<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &Points<T>,
    j: usize,
) -> Footprint {
    let w = kernel.width();
    let mut fp = Footprint {
        l0: [0; 3],
        wd: [1; 3],
        ker: [[1.0; MAX_W]; 3],
    };
    for i in 0..pts.dim {
        let g = grid_coord(pts.coord(i, j).to_f64(), fine.n[i]);
        let (l0, z0) = spread_footprint(g, w);
        fp.l0[i] = l0;
        fp.wd[i] = w;
        kernel.eval_row(z0, &mut fp.ker[i][..w]);
    }
    fp
}

/// Spread the points listed in `order` onto the fine grid (sequential).
pub fn spread_serial<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &Points<T>,
    strengths: &[Complex<T>],
    order: &[u32],
    out: &mut [Complex<T>],
) {
    assert_eq!(out.len(), fine.total());
    let [n1, n2, n3] = fine.n;
    let mut idx = [[0usize; MAX_W]; 3];
    for &jr in order {
        let j = jr as usize;
        let fp = footprint(kernel, fine, pts, j);
        for i in 0..3 {
            let n = [n1, n2, n3][i] as i64;
            for (t, slot) in idx[i][..fp.wd[i]].iter_mut().enumerate() {
                *slot = (fp.l0[i] + t as i64).rem_euclid(n) as usize;
            }
        }
        let c = strengths[j];
        for t3 in 0..fp.wd[2] {
            let k3 = fp.ker[2][t3];
            let off3 = idx[2][t3] * n1 * n2;
            for t2 in 0..fp.wd[1] {
                let k23 = T::from_f64(fp.ker[1][t2] * k3);
                let c23 = c.scale(k23);
                let base = off3 + idx[1][t2] * n1;
                for t1 in 0..fp.wd[0] {
                    let k1 = T::from_f64(fp.ker[0][t1]);
                    out[base + idx[0][t1]] += c23.scale(k1);
                }
            }
        }
    }
}

/// Interpolate grid values at the points `range` (sequential core).
fn interp_range<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &Points<T>,
    grid: &[Complex<T>],
    j_range: std::ops::Range<usize>,
    out: &mut [Complex<T>],
) {
    let [n1, n2, n3] = fine.n;
    let mut idx = [[0usize; MAX_W]; 3];
    for (slot, j) in j_range.enumerate() {
        let fp = footprint(kernel, fine, pts, j);
        for i in 0..3 {
            let n = [n1, n2, n3][i] as i64;
            for (t, slot) in idx[i][..fp.wd[i]].iter_mut().enumerate() {
                *slot = (fp.l0[i] + t as i64).rem_euclid(n) as usize;
            }
        }
        let mut acc = Complex::<T>::ZERO;
        for t3 in 0..fp.wd[2] {
            let k3 = fp.ker[2][t3];
            let off3 = idx[2][t3] * n1 * n2;
            for t2 in 0..fp.wd[1] {
                let k23 = fp.ker[1][t2] * k3;
                let base = off3 + idx[1][t2] * n1;
                let mut row = Complex::<T>::ZERO;
                for t1 in 0..fp.wd[0] {
                    row += grid[base + idx[0][t1]].scale(T::from_f64(fp.ker[0][t1]));
                }
                acc += row.scale(T::from_f64(k23));
            }
        }
        out[slot] = acc;
    }
}

/// A spread subproblem's local grid: covers the chunk's padded bounding
/// box in *unwrapped* coordinates (wrapping is applied at merge time).
struct Subgrid<T> {
    lo: [i64; 3],
    size: [usize; 3],
    data: Vec<Complex<T>>,
}

fn spread_subproblem<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &Points<T>,
    strengths: &[Complex<T>],
    chunk: &[u32],
) -> Subgrid<T> {
    // bounding box over unwrapped footprints
    let w = kernel.width();
    let mut lo = [i64::MAX; 3];
    let mut hi = [i64::MIN; 3];
    let mut fps: Vec<Footprint> = Vec::with_capacity(chunk.len());
    for &jr in chunk {
        let fp = footprint(kernel, fine, pts, jr as usize);
        for i in 0..3 {
            lo[i] = lo[i].min(fp.l0[i]);
            hi[i] = hi[i].max(fp.l0[i] + fp.wd[i] as i64);
        }
        fps.push(fp);
    }
    for i in pts.dim..3 {
        lo[i] = 0;
        hi[i] = 1;
    }
    let size = [
        (hi[0] - lo[0]) as usize,
        (hi[1] - lo[1]) as usize,
        (hi[2] - lo[2]) as usize,
    ];
    let mut data = vec![Complex::<T>::ZERO; size[0] * size[1] * size[2]];
    let _ = w;
    for (&jr, fp) in chunk.iter().zip(fps.iter()) {
        let c = strengths[jr as usize];
        let b1 = (fp.l0[0] - lo[0]) as usize;
        let b2 = (fp.l0[1] - lo[1]) as usize;
        let b3 = (fp.l0[2] - lo[2]) as usize;
        for t3 in 0..fp.wd[2] {
            let k3 = fp.ker[2][t3];
            let off3 = (b3 + t3) * size[0] * size[1];
            for t2 in 0..fp.wd[1] {
                let c23 = c.scale(T::from_f64(fp.ker[1][t2] * k3));
                let base = off3 + (b2 + t2) * size[0] + b1;
                let row = &mut data[base..base + fp.wd[0]];
                for (t1, cell) in row.iter_mut().enumerate() {
                    *cell += c23.scale(T::from_f64(fp.ker[0][t1]));
                }
            }
        }
    }
    Subgrid { lo, size, data }
}

/// Add a subgrid into the global grid with periodic wrapping.
fn merge_subgrid<T: Real>(fine: Shape, sub: &Subgrid<T>, out: &mut [Complex<T>]) {
    let [n1, n2, n3] = fine.n;
    // precompute wrapped x indices once per row
    let wrap1: Vec<usize> = (0..sub.size[0])
        .map(|i| (sub.lo[0] + i as i64).rem_euclid(n1 as i64) as usize)
        .collect();
    for i3 in 0..sub.size[2] {
        let g3 = (sub.lo[2] + i3 as i64).rem_euclid(n3 as i64) as usize;
        for i2 in 0..sub.size[1] {
            let g2 = (sub.lo[1] + i2 as i64).rem_euclid(n2 as i64) as usize;
            let src = &sub.data[(i3 * sub.size[1] + i2) * sub.size[0]..][..sub.size[0]];
            let dst_base = g3 * n1 * n2 + g2 * n1;
            for (i1, &v) in src.iter().enumerate() {
                out[dst_base + wrap1[i1]] += v;
            }
        }
    }
}

/// Parallel spreading: chunk the (bin-sorted) `perm`, spread each chunk to
/// a local subgrid on a worker thread, merge on the coordinator.
pub fn spread<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &Points<T>,
    strengths: &[Complex<T>],
    perm: &[u32],
    out: &mut [Complex<T>],
    nthreads: usize,
) {
    assert_eq!(pts.len(), strengths.len());
    assert_eq!(perm.len(), pts.len());
    let m = pts.len();
    if nthreads <= 1 || m < 8192 {
        spread_serial(kernel, fine, pts, strengths, perm, out);
        return;
    }
    let chunk_size = (m / (nthreads * 4)).max(4096);
    let chunks: Vec<&[u32]> = perm.chunks(chunk_size).collect();
    let (tx, rx) = channel::bounded::<Subgrid<T>>(nthreads * 2);
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..nthreads {
            let tx = tx.clone();
            let next = &next;
            let chunks = &chunks;
            s.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                let sub = spread_subproblem(kernel, fine, pts, strengths, chunks[i]);
                if tx.send(sub).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // merge as results arrive (deterministic totals up to fp
        // reassociation; tests compare against the serial path with a
        // precision-scaled tolerance)
        for sub in rx.iter() {
            merge_subgrid(fine, &sub, out);
        }
    })
    .expect("spread worker panicked");
}

/// Parallel interpolation: embarrassingly parallel over points.
pub fn interp<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &Points<T>,
    grid: &[Complex<T>],
    out: &mut [Complex<T>],
    nthreads: usize,
) {
    assert_eq!(out.len(), pts.len());
    assert_eq!(grid.len(), fine.total());
    let m = pts.len();
    if nthreads <= 1 || m < 8192 {
        interp_range(kernel, fine, pts, grid, 0..m, out);
        return;
    }
    let chunk = m.div_ceil(nthreads);
    crossbeam::scope(|s| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            let end = start + slice.len();
            s.spawn(move |_| {
                interp_range(kernel, fine, pts, grid, start..end, slice);
            });
        }
    })
    .expect("interp worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::metrics::rel_l2;
    use nufft_common::workload::{gen_points, gen_strengths, PointDist};
    use nufft_kernels::EsKernel;

    /// Direct periodized-kernel sum, eq. 7 of the paper (ground truth).
    fn spread_direct(
        kernel: &EsKernel,
        fine: Shape,
        pts: &Points<f64>,
        strengths: &[Complex<f64>],
    ) -> Vec<Complex<f64>> {
        let w = kernel.w as f64;
        let mut out = vec![Complex::<f64>::ZERO; fine.total()];
        for (li, o) in out.iter_mut().enumerate() {
            let [l1, l2, l3] = fine.coords(li);
            let ls = [l1 as f64, l2 as f64, l3 as f64];
            for (j, c) in strengths.iter().enumerate().take(pts.len()) {
                let mut v = 1.0;
                for (i, l) in ls.iter().enumerate().take(pts.dim) {
                    let n = fine.n[i] as f64;
                    let h = std::f64::consts::TAU / n;
                    // periodized: closest image
                    let mut d = (l * h - pts.coord(i, j)).rem_euclid(std::f64::consts::TAU);
                    if d > std::f64::consts::PI {
                        d -= std::f64::consts::TAU;
                    }
                    // kernel coordinate: alpha = w*h/2
                    v *= kernel.eval(d / (w * h / 2.0));
                }
                *o += c.scale(v);
            }
        }
        out
    }

    #[test]
    fn serial_spread_matches_direct_2d() {
        let fine = Shape::d2(16, 12);
        let kernel = EsKernel::with_width(4);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 20, fine, 21);
        let cs = gen_strengths::<f64>(20, 22);
        let order: Vec<u32> = (0..20).collect();
        let mut out = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &order, &mut out);
        let want = spread_direct(&kernel, fine, &pts, &cs);
        assert!(rel_l2(&out, &want) < 1e-13, "{}", rel_l2(&out, &want));
    }

    #[test]
    fn serial_spread_matches_direct_3d() {
        let fine = Shape::d3(8, 10, 6);
        let kernel = EsKernel::with_width(3);
        let pts = gen_points::<f64>(PointDist::Rand, 3, 15, fine, 31);
        let cs = gen_strengths::<f64>(15, 32);
        let order: Vec<u32> = (0..15).collect();
        let mut out = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &order, &mut out);
        let want = spread_direct(&kernel, fine, &pts, &cs);
        assert!(rel_l2(&out, &want) < 1e-13);
    }

    #[test]
    fn spread_mass_is_conserved() {
        // sum over grid of spread = sum_j c_j * (sum of kernel row)^d
        let fine = Shape::d2(32, 32);
        let kernel = EsKernel::with_width(5);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 50, fine, 5);
        let cs = vec![Complex::new(1.0, 0.0); 50];
        let order: Vec<u32> = (0..50).collect();
        let mut out = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &order, &mut out);
        let total: Complex<f64> = out.iter().copied().sum();
        // each point contributes (sum_t ker1[t])*(sum_t ker2[t]); these
        // sums vary slightly with the fractional position, so just check
        // the total is near 50 * (typical row sum)^2 within 20%
        let typical: f64 = {
            let mut row = [0.0; 5];
            kernel.eval_row(-0.9, &mut row);
            row.iter().sum()
        };
        let expect = 50.0 * typical * typical;
        assert!(
            (total.re / expect - 1.0).abs() < 0.2,
            "{} vs {}",
            total.re,
            expect
        );
        assert!(total.im.abs() < 1e-10);
    }

    #[test]
    fn spread_order_does_not_change_result() {
        let fine = Shape::d2(32, 32);
        let kernel = EsKernel::with_width(6);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 64, fine, 6);
        let cs = gen_strengths::<f64>(64, 7);
        let fwd: Vec<u32> = (0..64).collect();
        let rev: Vec<u32> = (0..64).rev().collect();
        let mut a = vec![Complex::<f64>::ZERO; fine.total()];
        let mut b = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &fwd, &mut a);
        spread_serial(&kernel, fine, &pts, &cs, &rev, &mut b);
        assert!(rel_l2(&a, &b) < 1e-14);
    }

    #[test]
    fn parallel_spread_matches_serial() {
        let fine = Shape::d2(64, 64);
        let kernel = EsKernel::with_width(6);
        let m = 20_000; // above the serial cutoff
        let pts = gen_points::<f64>(PointDist::Rand, 2, m, fine, 8);
        let cs = gen_strengths::<f64>(m, 9);
        let sort = crate::sort::bin_sort(&pts, fine, [32, 32, 1]);
        let mut ser = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &sort.perm, &mut ser);
        let mut par = vec![Complex::<f64>::ZERO; fine.total()];
        spread(&kernel, fine, &pts, &cs, &sort.perm, &mut par, 4);
        assert!(rel_l2(&par, &ser) < 1e-12);
    }

    #[test]
    fn parallel_spread_handles_cluster() {
        let fine = Shape::d2(128, 128);
        let kernel = EsKernel::with_width(6);
        let m = 30_000;
        let pts = gen_points::<f64>(PointDist::Cluster, 2, m, fine, 18);
        let cs = gen_strengths::<f64>(m, 19);
        let sort = crate::sort::bin_sort(&pts, fine, [32, 32, 1]);
        let mut ser = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &sort.perm, &mut ser);
        let mut par = vec![Complex::<f64>::ZERO; fine.total()];
        spread(&kernel, fine, &pts, &cs, &sort.perm, &mut par, 3);
        assert!(rel_l2(&par, &ser) < 1e-12);
    }

    #[test]
    fn interp_is_adjoint_of_spread() {
        // <spread(c), g> == <c, interp(g)> exactly (same kernel weights)
        let fine = Shape::d2(24, 20);
        let kernel = EsKernel::with_width(5);
        let m = 37;
        let pts = gen_points::<f64>(PointDist::Rand, 2, m, fine, 44);
        let cs = gen_strengths::<f64>(m, 45);
        let g = gen_strengths::<f64>(fine.total(), 46);
        let order: Vec<u32> = (0..m as u32).collect();
        let mut sp = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &order, &mut sp);
        let mut it = vec![Complex::<f64>::ZERO; m];
        interp(&kernel, fine, &pts, &g, &mut it, 1);
        // spread uses conj-free real weights, so <Sc, g> = <c, S^T g>
        let lhs = nufft_common::metrics::inner(&sp, &g);
        let rhs = nufft_common::metrics::inner(&cs, &it);
        assert!(
            (lhs - rhs).abs() < 1e-11 * (1.0 + lhs.abs()),
            "{lhs:?} vs {rhs:?}"
        );
    }

    #[test]
    fn parallel_interp_matches_serial() {
        let fine = Shape::d3(16, 16, 16);
        let kernel = EsKernel::with_width(4);
        let m = 20_000;
        let pts = gen_points::<f64>(PointDist::Rand, 3, m, fine, 55);
        let g = gen_strengths::<f64>(fine.total(), 56);
        let mut a = vec![Complex::<f64>::ZERO; m];
        let mut b = vec![Complex::<f64>::ZERO; m];
        interp(&kernel, fine, &pts, &g, &mut a, 1);
        interp(&kernel, fine, &pts, &g, &mut b, 5);
        assert_eq!(
            a.iter().map(|z| (z.re, z.im)).collect::<Vec<_>>(),
            b.iter().map(|z| (z.re, z.im)).collect::<Vec<_>>(),
            "interp is read-only so parallel must be bit-exact"
        );
    }

    #[test]
    fn wraparound_points_spread_correctly() {
        // a point at the very edge of the box must wrap its kernel tail
        let fine = Shape::d2(16, 16);
        let kernel = EsKernel::with_width(6);
        let pts = Points::<f64> {
            coords: [vec![std::f64::consts::PI - 1e-9], vec![0.0], vec![]],
            dim: 2,
        };
        let cs = [Complex::new(1.0, 0.0)];
        let mut out = vec![Complex::<f64>::ZERO; fine.total()];
        spread_serial(&kernel, fine, &pts, &cs, &[0], &mut out);
        let want = spread_direct(&kernel, fine, &pts, &cs);
        // A point this close to a grid node puts the (w+1)-th neighbour at
        // kernel argument exactly 1, where the truncated tail is e^{-beta}
        // (~ the design tolerance). Compare at that accuracy, not machine
        // precision.
        let tail = (-kernel.beta).exp();
        assert!(rel_l2(&out, &want) < 3.0 * tail, "{}", rel_l2(&out, &want));
        // energy must be present on both sides of the wrap (columns near
        // x index 8 = pi... point g = pi/h = 8): spread symmetric
        let total: f64 = out.iter().map(|z| z.re).sum();
        assert!(total > 0.5);
    }
}
