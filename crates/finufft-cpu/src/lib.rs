//! A CPU implementation of the nonuniform FFT in the style of FINUFFT —
//! the paper's multithreaded CPU comparator and this workspace's
//! high-accuracy ground truth.
//!
//! Supports type 1 (nonuniform -> uniform) and type 2 (uniform ->
//! nonuniform) transforms in 1, 2 and 3 dimensions (1D is a cuFINUFFT
//! "future work" item the CPU library already has), in f32 or f64, with
//! the plan/set-points/execute interface of the guru API. Spreading uses
//! bin-sorted subproblems merged without locks; interpolation is
//! embarrassingly parallel. The [`model`] module prices the same
//! operations on the paper's Xeon testbeds so benchmarks can compare
//! against the GPU cost model on one timing basis.

#![forbid(unsafe_code)]

pub mod deconv;
pub mod model;
pub mod plan;
pub mod sort;
pub mod spread;
pub mod type3;

pub use model::{CpuModel, CpuPrecision};
pub use plan::{
    nufft1d1, nufft1d2, nufft2d1, nufft2d2, nufft3d1, nufft3d2, Opts, Plan, StageTimings,
    TransformType,
};
pub use type3::{nufft1d3, nufft2d3, Type3Plan};
