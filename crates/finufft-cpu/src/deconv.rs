//! Deconvolution factors — shared implementation lives in
//! [`nufft_kernels::deconv`]; re-exported here for backward compatibility
//! within the workspace.

pub use nufft_kernels::deconv::{correction_row, correction_rows};
