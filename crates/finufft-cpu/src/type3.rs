//! Type 3 NUFFT: nonuniform to nonuniform (Lee & Greengard 2005) —
//! a cuFINUFFT future-work item (paper Sec. VI) that FINUFFT provides.
//!
//! Computes `f_k = sum_j c_j e^{i iflag s_k . x_j}` for arbitrary source
//! points `x_j in [-X, X]^d` and target frequencies `s_k in [-S, S]^d`.
//!
//! Algorithm (per dimension): pick a fine grid of `nf >= 2 sigma X S /
//! pi + 2w` points and a rescaling `gamma = nf / (2 sigma S)`; then
//! `x' = x / gamma` fills `[-pi, pi)` with a w-cell safety margin and
//! `tau = gamma h s` lands in `[-pi/sigma, pi/sigma]`. The transform
//! becomes: spread `c_j` at `x'_j` onto the fine grid, evaluate the
//! resulting semi-discrete transform at the `tau_k` with an inner
//! **type 2** NUFFT (on the centered fine-grid array), and divide out
//! the spreading kernel's transform at each target:
//! `f_k = t2(b~, tau_k)_k / prod_i phihat(alpha_i gamma_i s_{k,i})`
//! with `alpha = w h / 2`.

use crate::plan::{Opts, Plan};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_common::smooth::next_smooth;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use nufft_kernels::EsKernel;

/// A type 3 plan: fixed source/target geometry, reusable with new
/// strength vectors.
pub struct Type3Plan<T: Real> {
    dim: usize,
    iflag: i32,
    kernel: EsKernel,
    /// Fine grid for the source-side spreading.
    nf: Shape,
    /// Per-dimension rescaling factors gamma_i.
    gamma: [f64; 3],
    /// Source points rescaled into [-pi, pi)^d.
    xp: Option<Points<T>>,
    /// Inner type-2 plan evaluated at tau_k = gamma h s_k.
    inner: Option<Plan<T>>,
    /// Per-target correction 1 / prod_i phihat(alpha_i gamma_i s_ki).
    corr: Vec<f64>,
    n_targets: usize,
    m_sources: usize,
    /// Scratch fine grid (wrapped layout), reused across executes.
    grid: Vec<Complex<T>>,
}

/// Half-widths `X_i = max_j |x_ji|`, floored to avoid degenerate scales.
fn half_width<T: Real>(pts: &Points<T>, dim: usize) -> [f64; 3] {
    let mut out = [1.0f64; 3];
    for (oi, coords) in out.iter_mut().zip(&pts.coords).take(dim) {
        let w = coords
            .iter()
            .map(|v| v.to_f64().abs())
            .fold(0.0f64, f64::max);
        *oi = w.max(1e-3);
    }
    out
}

impl<T: Real> Type3Plan<T> {
    pub fn new(dim: usize, iflag: i32, eps: f64) -> Result<Self> {
        if !(1..=3).contains(&dim) {
            return Err(NufftError::BadDim(dim));
        }
        let kernel = EsKernel::for_tolerance(eps, T::IS_DOUBLE)?;
        Ok(Type3Plan {
            dim,
            iflag: if iflag >= 0 { 1 } else { -1 },
            kernel,
            nf: Shape::from_slice(&vec![1; dim]),
            gamma: [1.0; 3],
            xp: None,
            inner: None,
            corr: Vec::new(),
            n_targets: 0,
            m_sources: 0,
            grid: Vec::new(),
        })
    }

    pub fn kernel(&self) -> &EsKernel {
        &self.kernel
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.nf
    }

    /// Register the source points `x` and target frequencies `s`. The
    /// tolerance passed here is the inner type-2 tolerance (usually the
    /// same as the plan's).
    pub fn set_pts(&mut self, x: &Points<T>, s: &Points<T>, eps: f64) -> Result<()> {
        if x.dim != self.dim || s.dim != self.dim {
            return Err(NufftError::BadDim(x.dim.max(s.dim)));
        }
        for pts in [x, s] {
            for i in 0..self.dim {
                for (j, &v) in pts.coords[i].iter().enumerate() {
                    if !v.is_finite() {
                        return Err(NufftError::BadPoint {
                            index: j,
                            value: v.to_f64(),
                        });
                    }
                }
            }
        }
        let w = self.kernel.w;
        let sigma = 2.0f64;
        let xw = half_width(x, self.dim);
        let sw = half_width(s, self.dim);
        // fine grid size and rescaling per dimension
        let mut nfs = vec![0usize; self.dim];
        let mut gamma = [1.0f64; 3];
        for i in 0..self.dim {
            let target =
                (sigma * 2.0 * xw[i] * sw[i] / std::f64::consts::PI).ceil() as usize + 2 * w;
            nfs[i] = next_smooth(target.max(2 * w + 2));
            gamma[i] = nfs[i] as f64 / (2.0 * sigma * sw[i]);
            // ensure x'/gamma stays at least w/2 cells from the boundary
            let h = std::f64::consts::TAU / nfs[i] as f64;
            let max_xp = xw[i] / gamma[i];
            debug_assert!(
                max_xp <= std::f64::consts::PI - (w as f64 / 2.0 - 1.0).max(0.0) * h,
                "type-3 rescaled sources escape the safety margin"
            );
        }
        let nf = Shape::from_slice(&nfs);
        // rescaled source points
        let mut xp = Points {
            coords: [Vec::new(), Vec::new(), Vec::new()],
            dim: self.dim,
        };
        for (i, xc) in xp.coords.iter_mut().enumerate().take(self.dim) {
            *xc = x.coords[i]
                .iter()
                .map(|&v| T::from_f64(v.to_f64() / gamma[i]))
                .collect();
        }
        // inner type-2 at tau = gamma h s (modes = the centered fine grid)
        let mut tau = Points {
            coords: [Vec::new(), Vec::new(), Vec::new()],
            dim: self.dim,
        };
        for (i, tc) in tau.coords.iter_mut().enumerate().take(self.dim) {
            let h = std::f64::consts::TAU / nf.n[i] as f64;
            *tc = s.coords[i]
                .iter()
                .map(|&v| T::from_f64(gamma[i] * h * v.to_f64()))
                .collect();
        }
        let mut inner =
            Plan::<T>::new(TransformType::Type2, &nfs, self.iflag, eps, Opts::default())?;
        inner.set_pts(tau)?;
        // per-target kernel corrections
        let n_targets = s.len();
        let mut corr = vec![1.0f64; n_targets];
        for (i, &g) in gamma.iter().enumerate().take(self.dim) {
            let h = std::f64::consts::TAU / nf.n[i] as f64;
            let alpha = w as f64 * h / 2.0;
            for (k, c) in corr.iter_mut().enumerate() {
                let xi = alpha * g * s.coords[i][k].to_f64();
                let ft = self.kernel.ft(xi);
                if ft.abs() < f64::MIN_POSITIVE {
                    return Err(NufftError::BadOptions(format!(
                        "type-3 target {k} outside the resolvable band"
                    )));
                }
                *c *= (2.0 / w as f64) / ft;
            }
        }
        self.nf = nf;
        self.gamma = gamma;
        self.m_sources = x.len();
        self.n_targets = n_targets;
        self.corr = corr;
        self.xp = Some(xp);
        self.inner = Some(inner);
        self.grid = vec![Complex::ZERO; nf.total()];
        Ok(())
    }

    /// Run the transform: `strengths` has M entries, `out` N entries.
    pub fn execute(&mut self, strengths: &[Complex<T>], out: &mut [Complex<T>]) -> Result<()> {
        let xp = self.xp.as_ref().ok_or(NufftError::PointsNotSet)?;
        if strengths.len() != self.m_sources {
            return Err(NufftError::LengthMismatch {
                expected: self.m_sources,
                got: strengths.len(),
            });
        }
        if out.len() != self.n_targets {
            return Err(NufftError::LengthMismatch {
                expected: self.n_targets,
                got: out.len(),
            });
        }
        // 1) spread strengths at the rescaled sources
        self.grid.iter_mut().for_each(|z| *z = Complex::ZERO);
        let order: Vec<u32> = (0..self.m_sources as u32).collect();
        crate::spread::spread_serial(&self.kernel, self.nf, xp, strengths, &order, &mut self.grid);
        // 2) reorder the wrapped fine grid into centered-mode layout:
        // grid index l (coordinate (l h) mod 2pi, wrapped) holds the
        // sample at centered position lc = ((l + nf/2) mod nf) - nf/2;
        // the inner type-2 treats its input as coefficients over the
        // centered frequency grid I_nf in ascending order (index
        // j = lc + nf/2), so b~[wrap(l + nf/2)] = grid[l] per dimension.
        let nf = self.nf;
        let mut centered = vec![Complex::<T>::ZERO; nf.total()];
        for l3 in 0..nf.n[2] {
            let c3 = (l3 + nf.n[2] / 2) % nf.n[2];
            for l2 in 0..nf.n[1] {
                let c2 = (l2 + nf.n[1] / 2) % nf.n[1];
                for l1 in 0..nf.n[0] {
                    let c1 = (l1 + nf.n[0] / 2) % nf.n[0];
                    centered[nf.idx(c1, c2, c3)] = self.grid[nf.idx(l1, l2, l3)];
                }
            }
        }
        // 3) inner type 2 at tau_k, then 4) kernel correction
        let inner = self.inner.as_mut().expect("points set");
        inner.execute(&centered, out)?;
        for (z, &c) in out.iter_mut().zip(self.corr.iter()) {
            *z = z.scale(T::from_f64(c));
        }
        Ok(())
    }
}

/// One-shot 1D type 3 transform.
pub fn nufft1d3<T: Real>(
    x: &[T],
    strengths: &[Complex<T>],
    iflag: i32,
    eps: f64,
    s: &[T],
) -> Result<Vec<Complex<T>>> {
    let mut plan = Type3Plan::<T>::new(1, iflag, eps)?;
    plan.set_pts(
        &Points {
            coords: [x.to_vec(), Vec::new(), Vec::new()],
            dim: 1,
        },
        &Points {
            coords: [s.to_vec(), Vec::new(), Vec::new()],
            dim: 1,
        },
        eps,
    )?;
    let mut out = vec![Complex::ZERO; s.len()];
    plan.execute(strengths, &mut out)?;
    Ok(out)
}

/// One-shot 2D type 3 transform.
#[allow(clippy::too_many_arguments)]
pub fn nufft2d3<T: Real>(
    x: &[T],
    y: &[T],
    strengths: &[Complex<T>],
    iflag: i32,
    eps: f64,
    sx: &[T],
    sy: &[T],
) -> Result<Vec<Complex<T>>> {
    let mut plan = Type3Plan::<T>::new(2, iflag, eps)?;
    plan.set_pts(
        &Points {
            coords: [x.to_vec(), y.to_vec(), Vec::new()],
            dim: 2,
        },
        &Points {
            coords: [sx.to_vec(), sy.to_vec(), Vec::new()],
            dim: 2,
        },
        eps,
    )?;
    let mut out = vec![Complex::ZERO; sx.len()];
    plan.execute(strengths, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Direct O(NM) type-3 sum in f64.
    fn direct(
        x: &Points<f64>,
        cs: &[Complex<f64>],
        s: &Points<f64>,
        iflag: i32,
    ) -> Vec<Complex<f64>> {
        (0..s.len())
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, c) in cs.iter().enumerate().take(x.len()) {
                    let mut phase = 0.0;
                    for i in 0..x.dim {
                        phase += s.coord(i, k) * x.coord(i, j);
                    }
                    acc += *c * Complex::cis(iflag as f64 * phase);
                }
                acc
            })
            .collect()
    }

    fn random_pts(dim: usize, n: usize, half_width: f64, seed: u64) -> Points<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coords = [Vec::new(), Vec::new(), Vec::new()];
        for coord in coords.iter_mut().take(dim) {
            *coord = (0..n)
                .map(|_| rng.random_range(-half_width..half_width))
                .collect();
        }
        Points { coords, dim }
    }

    fn random_strengths(n: usize, seed: u64) -> Vec<Complex<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| c(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn type3_1d_meets_tolerance() {
        for eps in [1e-4, 1e-8, 1e-11] {
            let x = random_pts(1, 150, 2.5, 1);
            let s = random_pts(1, 120, 20.0, 2);
            let cs = random_strengths(150, 3);
            let out = nufft1d3(x.x(), &cs, 1, eps, s.x()).unwrap();
            let want = direct(&x, &cs, &s, 1);
            let err = rel_l2(&out, &want);
            assert!(err < 50.0 * eps, "eps={eps}: err={err}");
        }
    }

    #[test]
    fn type3_2d_meets_tolerance() {
        for eps in [1e-4, 1e-8] {
            let x = random_pts(2, 200, 1.8, 4);
            let s = random_pts(2, 150, 12.0, 5);
            let cs = random_strengths(200, 6);
            let out = nufft2d3(x.x(), x.y(), &cs, -1, eps, s.x(), s.y()).unwrap();
            let want = direct(&x, &cs, &s, -1);
            let err = rel_l2(&out, &want);
            assert!(err < 50.0 * eps, "eps={eps}: err={err}");
        }
    }

    #[test]
    fn type3_3d_meets_tolerance() {
        let eps = 1e-6;
        let x = random_pts(3, 120, 1.2, 7);
        let s = random_pts(3, 100, 6.0, 8);
        let cs = random_strengths(120, 9);
        let mut plan = Type3Plan::<f64>::new(3, 1, eps).unwrap();
        plan.set_pts(&x, &s, eps).unwrap();
        let mut out = vec![Complex::ZERO; 100];
        plan.execute(&cs, &mut out).unwrap();
        let want = direct(&x, &cs, &s, 1);
        let err = rel_l2(&out, &want);
        assert!(err < 50.0 * eps, "err={err}");
    }

    #[test]
    fn plan_reuse_with_new_strengths() {
        let eps = 1e-9;
        let x = random_pts(2, 80, 3.0, 10);
        let s = random_pts(2, 90, 8.0, 11);
        let mut plan = Type3Plan::<f64>::new(2, 1, eps).unwrap();
        plan.set_pts(&x, &s, eps).unwrap();
        for seed in [20u64, 21] {
            let cs = random_strengths(80, seed);
            let mut out = vec![Complex::ZERO; 90];
            plan.execute(&cs, &mut out).unwrap();
            let want = direct(&x, &cs, &s, 1);
            assert!(rel_l2(&out, &want) < 1e-7, "seed {seed}");
        }
    }

    #[test]
    fn asymmetric_scales_work() {
        // tiny sources x huge frequencies, and vice versa per-dimension
        let eps = 1e-7;
        let mut x = random_pts(2, 60, 0.05, 30);
        x.coords[1] = random_pts(1, 60, 10.0, 31).coords[0].clone();
        let mut s = random_pts(2, 70, 100.0, 32);
        s.coords[1] = random_pts(1, 70, 0.3, 33).coords[0].clone();
        let cs = random_strengths(60, 34);
        let mut plan = Type3Plan::<f64>::new(2, -1, eps).unwrap();
        plan.set_pts(&x, &s, eps).unwrap();
        let mut out = vec![Complex::ZERO; 70];
        plan.execute(&cs, &mut out).unwrap();
        let want = direct(&x, &cs, &s, -1);
        let err = rel_l2(&out, &want);
        assert!(err < 100.0 * eps, "err={err}");
    }

    #[test]
    fn single_precision_type3() {
        let eps = 1e-5;
        let x64 = random_pts(1, 100, 2.0, 40);
        let s64 = random_pts(1, 80, 15.0, 41);
        let x: Vec<f32> = x64.x().iter().map(|&v| v as f32).collect();
        let s: Vec<f32> = s64.x().iter().map(|&v| v as f32).collect();
        let cs64 = random_strengths(100, 42);
        let cs: Vec<Complex<f32>> = cs64.iter().map(|z| z.cast()).collect();
        let out = nufft1d3(&x, &cs, 1, eps, &s).unwrap();
        let want = direct(&x64, &cs64, &s64, 1);
        assert!(rel_l2(&out, &want) < 1e-3);
    }

    #[test]
    fn error_paths() {
        let mut plan = Type3Plan::<f64>::new(2, 1, 1e-6).unwrap();
        let mut out = vec![Complex::ZERO; 4];
        assert!(matches!(
            plan.execute(&[Complex::ZERO; 4], &mut out),
            Err(NufftError::PointsNotSet)
        ));
        assert!(Type3Plan::<f64>::new(0, 1, 1e-6).is_err());
        assert!(Type3Plan::<f64>::new(4, 1, 1e-6).is_err());
        assert!(Type3Plan::<f32>::new(2, 1, 1e-12).is_err());
    }
}
