//! Spatial bin sorting of nonuniform points (counting sort on bin index).
//!
//! Identical in spirit to the paper's Sec. III-A description: record each
//! point's bin, histogram, exclusive-scan, then scatter the point indices
//! in bin order. The returned permutation `t` is such that points
//! `t(0), t(1), ...` traverse the bins in Cartesian order (x fast).

use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_common::workload::Points;
use nufft_kernels::grid_coord;

/// Bin layout over a fine grid.
#[derive(Copy, Clone, Debug)]
pub struct BinGrid {
    /// Bin extents in fine-grid cells per dimension.
    pub bin_size: [usize; 3],
    /// Number of bins per dimension.
    pub nbins: [usize; 3],
    pub fine: Shape,
}

impl BinGrid {
    pub fn new(fine: Shape, bin_size: [usize; 3]) -> Self {
        let mut nbins = [1usize; 3];
        let mut bs = [1usize; 3];
        for i in 0..fine.dim {
            bs[i] = bin_size[i].max(1).min(fine.n[i]);
            nbins[i] = fine.n[i].div_ceil(bs[i]);
        }
        BinGrid {
            bin_size: bs,
            nbins,
            fine,
        }
    }

    /// Total number of bins.
    pub fn total(&self) -> usize {
        self.nbins[0] * self.nbins[1] * self.nbins[2]
    }

    /// Bin index of a point given its per-dimension fine-grid coordinates
    /// (rounded down, as in the paper's "inside" definition).
    #[inline]
    pub fn bin_of(&self, cell: [usize; 3]) -> usize {
        let b0 = cell[0] / self.bin_size[0];
        let b1 = cell[1] / self.bin_size[1];
        let b2 = cell[2] / self.bin_size[2];
        b0 + self.nbins[0] * (b1 + self.nbins[1] * b2)
    }

    /// Fine-grid cell of a nonuniform point.
    #[inline]
    pub fn cell_of<T: Real>(&self, pts: &Points<T>, j: usize) -> [usize; 3] {
        let mut cell = [0usize; 3];
        for (i, c) in cell.iter_mut().enumerate().take(pts.dim) {
            let g = grid_coord(pts.coord(i, j).to_f64(), self.fine.n[i]);
            *c = (g as usize).min(self.fine.n[i] - 1);
        }
        cell
    }

    /// Fine-grid cell range `[lo, hi)` covered by bin `b` in each dim.
    pub fn bin_bounds(&self, b: usize) -> ([usize; 3], [usize; 3]) {
        let b0 = b % self.nbins[0];
        let r = b / self.nbins[0];
        let (b1, b2) = (r % self.nbins[1], r / self.nbins[1]);
        let idx = [b0, b1, b2];
        let mut lo = [0usize; 3];
        let mut hi = [1usize; 3];
        for i in 0..3 {
            lo[i] = idx[i] * self.bin_size[i];
            hi[i] = ((idx[i] + 1) * self.bin_size[i]).min(self.fine.n[i].max(1));
        }
        (lo, hi)
    }
}

/// Result of bin-sorting: the permutation plus per-bin offsets.
#[derive(Clone, Debug)]
pub struct BinSort {
    /// `perm[r]` is the index of the r-th point in bin-sorted order.
    pub perm: Vec<u32>,
    /// `starts[b]..starts[b+1]` indexes `perm` for bin `b` (len bins+1).
    pub starts: Vec<u32>,
    pub grid: BinGrid,
}

/// Counting sort of the points into bins.
pub fn bin_sort<T: Real>(pts: &Points<T>, fine: Shape, bin_size: [usize; 3]) -> BinSort {
    let grid = BinGrid::new(fine, bin_size);
    let nb = grid.total();
    let m = pts.len();
    let mut bin_of = vec![0u32; m];
    let mut counts = vec![0u32; nb + 1];
    for (j, bo) in bin_of.iter_mut().enumerate().take(m) {
        let b = grid.bin_of(grid.cell_of(pts, j)) as u32;
        *bo = b;
        counts[b as usize + 1] += 1;
    }
    // exclusive prefix scan
    for b in 0..nb {
        counts[b + 1] += counts[b];
    }
    let starts = counts.clone();
    let mut perm = vec![0u32; m];
    let mut cursor = counts;
    for (j, &b) in bin_of.iter().enumerate() {
        let slot = cursor[b as usize];
        perm[slot as usize] = j as u32;
        cursor[b as usize] += 1;
    }
    BinSort { perm, starts, grid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::workload::{gen_points, PointDist};

    fn mk_points(coords: Vec<Vec<f64>>) -> Points<f64> {
        let dim = coords.len();
        let mut arr = [Vec::new(), Vec::new(), Vec::new()];
        for (i, c) in coords.into_iter().enumerate() {
            arr[i] = c;
        }
        Points { coords: arr, dim }
    }

    #[test]
    fn bin_grid_counts() {
        let g = BinGrid::new(Shape::d2(64, 64), [32, 32, 1]);
        assert_eq!(g.nbins, [2, 2, 1]);
        assert_eq!(g.total(), 4);
        // uneven division rounds up
        let g = BinGrid::new(Shape::d2(70, 64), [32, 32, 1]);
        assert_eq!(g.nbins, [3, 2, 1]);
    }

    #[test]
    fn bin_bounds_clip_at_grid_edge() {
        let g = BinGrid::new(Shape::d2(70, 64), [32, 32, 1]);
        let (lo, hi) = g.bin_bounds(2); // third bin along x
        assert_eq!(lo[0], 64);
        assert_eq!(hi[0], 70);
        assert_eq!(lo[1], 0);
        assert_eq!(hi[1], 32);
    }

    #[test]
    fn sort_is_a_permutation() {
        let fine = Shape::d2(128, 128);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 1000, fine, 9);
        let s = bin_sort(&pts, fine, [32, 32, 1]);
        let mut seen = vec![false; 1000];
        for &p in &s.perm {
            assert!(!seen[p as usize], "duplicate index {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn points_land_in_their_bins() {
        let fine = Shape::d2(128, 128);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 500, fine, 4);
        let s = bin_sort(&pts, fine, [32, 32, 1]);
        for b in 0..s.grid.total() {
            let (lo, hi) = s.grid.bin_bounds(b);
            for r in s.starts[b] as usize..s.starts[b + 1] as usize {
                let j = s.perm[r] as usize;
                let cell = s.grid.cell_of(&pts, j);
                for i in 0..2 {
                    assert!(
                        cell[i] >= lo[i] && cell[i] < hi[i],
                        "point {j} cell {cell:?} outside bin {b} [{lo:?},{hi:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn clustered_points_fill_one_bin() {
        let fine = Shape::d2(256, 256);
        let pts = gen_points::<f64>(PointDist::Cluster, 2, 300, fine, 7);
        let s = bin_sort(&pts, fine, [32, 32, 1]);
        // all cluster points are within [0, 8h] -> cells 0..8 -> bin 0
        assert_eq!(s.starts[1] - s.starts[0], 300);
    }

    #[test]
    fn three_dim_sort() {
        let fine = Shape::d3(32, 32, 32);
        let pts = gen_points::<f64>(PointDist::Rand, 3, 2000, fine, 13);
        let s = bin_sort(&pts, fine, [16, 16, 2]);
        assert_eq!(s.grid.nbins, [2, 2, 16]);
        assert_eq!(*s.starts.last().unwrap() as usize, 2000);
        // starts are monotone
        for w in s.starts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn negative_coordinates_fold() {
        // x = -pi folds to cell n/2
        let pts = mk_points(vec![vec![-std::f64::consts::PI], vec![0.0]]);
        let fine = Shape::d2(64, 64);
        let s = bin_sort(&pts, fine, [32, 32, 1]);
        let cell = s.grid.cell_of(&pts, 0);
        assert_eq!(cell[0], 32);
        assert_eq!(cell[1], 0);
    }

    #[test]
    fn empty_points_ok() {
        let pts = mk_points(vec![vec![], vec![]]);
        let s = bin_sort(&pts, Shape::d2(32, 32), [16, 16, 1]);
        assert!(s.perm.is_empty());
        assert_eq!(*s.starts.last().unwrap(), 0);
    }
}
