//! A minimal complex-number type.
//!
//! Interleaved `(re, im)` layout matching CUDA's `cuFloatComplex` /
//! `cuDoubleComplex`, so the device memory model can account bytes exactly
//! as the real library does.

use crate::real::Real;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number over a [`Real`] scalar, stored interleaved.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

/// Shorthand constructor.
#[inline(always)]
pub fn c<T>(re: T, im: T) -> Complex<T> {
    Complex { re, im }
}

impl<T: Real> Complex<T> {
    pub const ZERO: Self = Complex {
        re: T::ZERO,
        im: T::ZERO,
    };
    pub const ONE: Self = Complex {
        re: T::ONE,
        im: T::ZERO,
    };
    pub const I: Self = Complex {
        re: T::ZERO,
        im: T::ONE,
    };

    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// `e^{i theta} = cos(theta) + i sin(theta)`.
    #[inline(always)]
    pub fn cis(theta: T) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Reciprocal `1/z`.
    #[inline(always)]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Fused `self + a*b`, the workhorse of spreading/interpolation inner
    /// loops.
    #[inline(always)]
    pub fn fma(self, a: Complex<T>, b: Complex<T>) -> Self {
        Complex {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Convert precision (used by tests comparing f32 results against f64
    /// ground truth).
    pub fn cast<U: Real>(self) -> Complex<U> {
        Complex {
            re: U::from_f64(self.re.to_f64()),
            im: U::from_f64(self.im.to_f64()),
        }
    }

    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline(always)]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<T: Real> From<T> for Complex<T> {
    fn from(re: T) -> Self {
        Complex { re, im: T::ZERO }
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+{:?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C64 = Complex<f64>;

    #[test]
    fn arithmetic_identities() {
        let z = c(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert_eq!(-z + z, C64::ZERO);
    }

    #[test]
    fn multiplication() {
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(c(1.0, 2.0) * c(3.0, 4.0), c(-5.0, 10.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, -C64::ONE);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(1.5, -0.5);
        let b = c(-2.0, 3.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn conj_and_norm() {
        let z = c(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert_eq!((z * z.conj()).im, 0.0);
    }

    #[test]
    fn cis_unit_circle() {
        let z = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!((z - C64::I).abs() < 1e-15);
        let z = C64::cis(std::f64::consts::PI);
        assert!((z + C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn fma_matches_expanded() {
        let acc = c(1.0, 1.0);
        let a = c(2.0, -1.0);
        let b = c(0.5, 3.0);
        assert!((acc.fma(a, b) - (acc + a * b)).abs() < 1e-15);
    }

    #[test]
    fn cast_roundtrips_small_values() {
        let z = c(0.5f64, -0.25);
        let w: Complex<f32> = z.cast();
        assert_eq!(w, c(0.5f32, -0.25));
    }

    #[test]
    fn sum_accumulates() {
        let total: C64 = (0..4).map(|k| c(k as f64, 1.0)).sum();
        assert_eq!(total, c(6.0, 4.0));
    }

    #[test]
    fn layout_is_interleaved() {
        assert_eq!(std::mem::size_of::<Complex<f32>>(), 8);
        assert_eq!(std::mem::size_of::<Complex<f64>>(), 16);
    }
}
