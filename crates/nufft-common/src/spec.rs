//! Canonical transform description: the [`TransformSpec`].
//!
//! A `TransformSpec` is the semantic identity of a NUFFT: transform
//! type, mode dimensions, tolerance, working precision, spreading
//! method, mode ordering, and fine-grid sizing policy. It plays three
//! roles at once:
//!
//! 1. **Request API** — the serving layer (`nufft-serve`) accepts a
//!    spec plus data and owns everything else (plan construction,
//!    caching, batching).
//! 2. **Plan-cache key** — the spec implements `Eq + Hash` (tolerance
//!    is compared by its IEEE bit pattern), so two requests share a
//!    cached plan exactly when every semantic field matches.
//! 3. **Plan construction input** — `cufinufft::PlanBuilder::from_spec`
//!    consumes a spec directly, so "what the user asked for" and "what
//!    the plan was built from" are the same value.
//!
//! Performance tuning (bin sizes, `M_sub`, thread counts, shared-memory
//! budget, upsampling factor) is deliberately *not* part of the spec:
//! those knobs live in `cufinufft::Tuning` and default to the paper's
//! values. A spec says *what* to compute, tuning says *how fast*.

use crate::error::{NufftError, Result};
use crate::real::Real;
use crate::smooth::FineSizing;
use crate::TransformType;
use std::hash::{Hash, Hasher};

/// Working precision of a transform, as data rather than a type
/// parameter — what a serving front end needs to route a request to a
/// concretely-typed plan.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    F32,
    F64,
}

impl Precision {
    /// The precision of a concrete scalar type.
    pub fn of<T: Real>() -> Self {
        if T::IS_DOUBLE {
            Precision::F64
        } else {
            Precision::F32
        }
    }

    /// Bytes per real scalar (4 or 8).
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
        })
    }
}

/// Spreading / interpolation method (paper Sec. III). Lives here (not
/// in the GPU crate) because it is part of a transform's semantic
/// identity: the serving layer keys plans on it and the conformance
/// harness sweeps over it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Choose automatically: SM for type 1 when feasible, GM-sort
    /// otherwise (and always for type 2 interpolation).
    Auto,
    /// Input-driven global-memory spreading in user point order (the
    /// CUNFFT-style baseline).
    Gm,
    /// GM plus bin-sorting of the points for coalesced access.
    GmSort,
    /// Shared-memory subproblems with the `M_sub` load-balancing cap
    /// (type 1 only; falls back to GM-sort for interpolation).
    Sm,
}

/// Ordering of the Fourier-mode arrays exchanged with the caller,
/// mirroring the C API's `modeord` option.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum ModeOrder {
    /// Ascending frequency `-N/2 .. N/2-1` (CMCL order; `modeord = 0`).
    #[default]
    Centered,
    /// FFT-style order `0 .. N/2-1, -N/2 .. -1` (`modeord = 1`).
    Fft,
}

/// Canonical description of one NUFFT; see the module docs.
///
/// Construct with [`TransformSpec::type1`] / [`TransformSpec::type2`]
/// and refine fluently:
///
/// ```
/// use nufft_common::spec::{Method, Precision, TransformSpec};
///
/// let spec = TransformSpec::type1(&[64, 64])
///     .eps(1e-5)
///     .precision(Precision::F32)
///     .method(Method::Sm);
/// assert_eq!(spec.dim(), 2);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct TransformSpec {
    /// Transform direction (type 1 or type 2).
    pub ttype: TransformType,
    /// Requested (non-upsampled) mode dimensions, 1 to 3 of them.
    pub modes: Vec<usize>,
    /// Sign of the imaginary unit in the exponential, normalized ±1.
    pub iflag: i32,
    /// Requested tolerance.
    pub eps: f64,
    /// Working precision the transform runs in.
    pub precision: Precision,
    /// Spreading method ([`Method::Auto`] resolves at plan time).
    pub method: Method,
    /// Mode ordering of the coefficient arrays.
    pub modeord: ModeOrder,
    /// Fine-grid sizing policy.
    pub fine_sizing: FineSizing,
}

impl TransformSpec {
    fn new(ttype: TransformType, modes: &[usize]) -> Self {
        TransformSpec {
            ttype,
            modes: modes.to_vec(),
            // the conventional sign: type 1 accumulates with e^{-ikx},
            // type 2 evaluates with e^{+ikx}
            iflag: match ttype {
                TransformType::Type1 => -1,
                TransformType::Type2 => 1,
            },
            eps: 1e-6,
            precision: Precision::F64,
            method: Method::Auto,
            modeord: ModeOrder::default(),
            fine_sizing: FineSizing::default(),
        }
    }

    /// A type-1 (nonuniform to uniform) spec with default tolerance
    /// `1e-6`, `f64`, `Method::Auto`.
    pub fn type1(modes: &[usize]) -> Self {
        Self::new(TransformType::Type1, modes)
    }

    /// A type-2 (uniform to nonuniform) spec with the same defaults.
    pub fn type2(modes: &[usize]) -> Self {
        Self::new(TransformType::Type2, modes)
    }

    /// Requested tolerance (default `1e-6`).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sign of the imaginary unit (normalized to ±1).
    pub fn iflag(mut self, iflag: i32) -> Self {
        self.iflag = if iflag >= 0 { 1 } else { -1 };
        self
    }

    /// Working precision (default [`Precision::F64`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Spreading method (default [`Method::Auto`]).
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Mode ordering (default [`ModeOrder::Centered`]).
    pub fn modeord(mut self, modeord: ModeOrder) -> Self {
        self.modeord = modeord;
        self
    }

    /// Fine-grid sizing policy (default [`FineSizing::Smooth`]).
    pub fn fine_sizing(mut self, sizing: FineSizing) -> Self {
        self.fine_sizing = sizing;
        self
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.modes.len()
    }

    /// Total number of uniform modes.
    pub fn num_modes(&self) -> usize {
        self.modes.iter().product()
    }

    /// Per-transform input length for `m` nonuniform points.
    pub fn input_len(&self, m: usize) -> usize {
        match self.ttype {
            TransformType::Type1 => m,
            TransformType::Type2 => self.num_modes(),
        }
    }

    /// Per-transform output length for `m` nonuniform points.
    pub fn output_len(&self, m: usize) -> usize {
        match self.ttype {
            TransformType::Type1 => self.num_modes(),
            TransformType::Type2 => m,
        }
    }

    /// Reject specs that cannot describe a working transform. The same
    /// checks run again (with more context) at plan-build time; running
    /// them here lets a front end refuse bad requests before queueing.
    pub fn validate(&self) -> Result<()> {
        if self.modes.is_empty() || self.modes.len() > 3 {
            return Err(NufftError::BadSpec(format!(
                "spec has {} mode dimensions, supported range is 1..=3",
                self.modes.len()
            )));
        }
        if self.modes.contains(&0) {
            return Err(NufftError::BadSpec(
                "spec has a zero-size mode dimension".into(),
            ));
        }
        if !(self.eps.is_finite() && self.eps > 0.0) {
            return Err(NufftError::BadSpec(format!(
                "spec tolerance must be finite and positive, got {}",
                self.eps
            )));
        }
        if self.iflag != 1 && self.iflag != -1 {
            return Err(NufftError::BadSpec(format!(
                "spec iflag must be +1 or -1, got {}",
                self.iflag
            )));
        }
        Ok(())
    }

    /// `true` when the concrete scalar `T` matches `self.precision`.
    pub fn matches_precision<T: Real>(&self) -> bool {
        self.precision == Precision::of::<T>()
    }

    /// Short human-readable label (`t1 64x64 f32 eps=1e-5 Auto`), used
    /// in traces and error messages.
    pub fn label(&self) -> String {
        let dims: Vec<String> = self.modes.iter().map(|n| n.to_string()).collect();
        format!(
            "{} {} {} eps={:.0e} {:?}",
            match self.ttype {
                TransformType::Type1 => "t1",
                TransformType::Type2 => "t2",
            },
            dims.join("x"),
            self.precision,
            self.eps,
            self.method,
        )
    }
}

// Tolerance is compared by bit pattern so the spec can key a hash map.
// Two NaN tolerances compare equal under this rule, but `validate`
// rejects them before any cache ever sees one.
impl PartialEq for TransformSpec {
    fn eq(&self, other: &Self) -> bool {
        self.ttype == other.ttype
            && self.modes == other.modes
            && self.iflag == other.iflag
            && self.eps.to_bits() == other.eps.to_bits()
            && self.precision == other.precision
            && self.method == other.method
            && self.modeord == other.modeord
            && self.fine_sizing == other.fine_sizing
    }
}

impl Eq for TransformSpec {}

impl Hash for TransformSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.ttype.hash(state);
        self.modes.hash(state);
        self.iflag.hash(state);
        self.eps.to_bits().hash(state);
        self.precision.hash(state);
        self.method.hash(state);
        self.modeord.hash(state);
        self.fine_sizing.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(spec: &TransformSpec) -> u64 {
        let mut h = DefaultHasher::new();
        spec.hash(&mut h);
        h.finish()
    }

    #[test]
    fn defaults_follow_transform_type() {
        let t1 = TransformSpec::type1(&[32, 32]);
        let t2 = TransformSpec::type2(&[32, 32]);
        assert_eq!(t1.iflag, -1);
        assert_eq!(t2.iflag, 1);
        assert_eq!(t1.eps, 1e-6);
        assert_eq!(t1.precision, Precision::F64);
    }

    #[test]
    fn every_field_distinguishes_specs() {
        let base = TransformSpec::type1(&[32, 32]);
        let variants = [
            TransformSpec::type2(&[32, 32]),
            TransformSpec::type1(&[32, 64]),
            TransformSpec::type1(&[32, 32]).eps(1e-7),
            TransformSpec::type1(&[32, 32]).iflag(1),
            TransformSpec::type1(&[32, 32]).precision(Precision::F32),
            TransformSpec::type1(&[32, 32]).method(Method::Gm),
            TransformSpec::type1(&[32, 32]).modeord(ModeOrder::Fft),
            TransformSpec::type1(&[32, 32]).fine_sizing(FineSizing::Exact),
        ];
        for v in &variants {
            assert_ne!(&base, v, "{v:?} should differ from base");
            assert_ne!(hash_of(&base), hash_of(v), "{v:?} hash collides");
        }
        assert_eq!(base, TransformSpec::type1(&[32, 32]));
        assert_eq!(hash_of(&base), hash_of(&TransformSpec::type1(&[32, 32])));
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(matches!(
            TransformSpec::type1(&[]).validate(),
            Err(NufftError::BadSpec(_))
        ));
        assert!(matches!(
            TransformSpec::type1(&[8, 8, 8, 8]).validate(),
            Err(NufftError::BadSpec(_))
        ));
        assert!(matches!(
            TransformSpec::type1(&[8, 0]).validate(),
            Err(NufftError::BadSpec(_))
        ));
        assert!(matches!(
            TransformSpec::type1(&[8, 8]).eps(0.0).validate(),
            Err(NufftError::BadSpec(_))
        ));
        assert!(matches!(
            TransformSpec::type1(&[8, 8]).eps(f64::NAN).validate(),
            Err(NufftError::BadSpec(_))
        ));
        assert!(TransformSpec::type1(&[8, 8]).validate().is_ok());
    }

    #[test]
    fn precision_matching() {
        let spec = TransformSpec::type1(&[8]).precision(Precision::F32);
        assert!(spec.matches_precision::<f32>());
        assert!(!spec.matches_precision::<f64>());
        assert_eq!(Precision::of::<f64>(), Precision::F64);
        assert_eq!(Precision::F32.bytes(), 4);
    }

    #[test]
    fn lengths_by_type() {
        let t1 = TransformSpec::type1(&[4, 6]);
        assert_eq!(t1.input_len(100), 100);
        assert_eq!(t1.output_len(100), 24);
        let t2 = TransformSpec::type2(&[4, 6]);
        assert_eq!(t2.input_len(100), 24);
        assert_eq!(t2.output_len(100), 100);
    }

    #[test]
    fn label_is_readable() {
        let s = TransformSpec::type1(&[64, 64])
            .eps(1e-5)
            .precision(Precision::F32)
            .label();
        assert!(
            s.contains("t1") && s.contains("64x64") && s.contains("f32"),
            "{s}"
        );
    }
}
