//! Smooth ("5-smooth") FFT sizes of the form `2^q * 3^p * 5^r`.
//!
//! Following FINUFFT/cuFINUFFT, the upsampled fine grid in each dimension is
//! the smallest 5-smooth integer `>= max(sigma * N, 2w)` so the FFT stays
//! efficient (Sec. II of the paper).

/// Returns `true` iff `n` has no prime factors other than 2, 3 and 5.
pub fn is_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// Smallest 5-smooth integer `>= n`. `next_smooth(0)` and `next_smooth(1)`
/// are both 1.
pub fn next_smooth(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut m = n;
    while !is_smooth(m) {
        m += 1;
    }
    m
}

/// Policy for choosing the upsampled fine-grid size from the mode count.
///
/// The paper's rule rounds up to a 5-smooth size so the fine-grid FFT
/// stays on the fast mixed-radix path. [`FineSizing::Exact`] skips the
/// rounding and uses `max(ceil(sigma*n), 2w)` as-is, which for prime `n`
/// (with integer sigma) leaves a large prime factor in the fine grid and
/// therefore routes the FFT through the Bluestein chirp-z fallback. The
/// conformance harness uses this to exercise Bluestein through the full
/// plan pipeline; production plans should keep the default.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum FineSizing {
    /// Round the target up to the next 5-smooth integer (paper rule).
    #[default]
    Smooth,
    /// Use `max(ceil(sigma*n), 2w)` exactly, whatever its factorization.
    Exact,
}

/// Fine-grid size rule from the paper: smallest 5-smooth integer
/// `>= max(ceil(sigma*n), 2w)`.
pub fn fine_grid_size(n: usize, sigma: f64, w: usize) -> usize {
    fine_grid_size_with(n, sigma, w, FineSizing::Smooth)
}

/// Fine-grid size under an explicit [`FineSizing`] policy.
pub fn fine_grid_size_with(n: usize, sigma: f64, w: usize, sizing: FineSizing) -> usize {
    let target = ((sigma * n as f64).ceil() as usize).max(2 * w);
    match sizing {
        FineSizing::Smooth => next_smooth(target),
        FineSizing::Exact => target,
    }
}

/// Factorize a 5-smooth number into its (2,3,5) exponents; returns `None`
/// for non-smooth input.
pub fn smooth_factor(mut n: usize) -> Option<(u32, u32, u32)> {
    if n == 0 {
        return None;
    }
    let mut e = [0u32; 3];
    for (i, p) in [2usize, 3, 5].iter().enumerate() {
        while n.is_multiple_of(*p) {
            n /= p;
            e[i] += 1;
        }
    }
    (n == 1).then_some((e[0], e[1], e[2]))
}

/// Full prime factorization (small primes by trial division), used by the
/// mixed-radix FFT planner for arbitrary sizes.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothness_detection() {
        for n in [1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 720, 1024, 3600] {
            assert!(is_smooth(n), "{n} should be smooth");
        }
        for n in [7, 11, 13, 14, 22, 77, 1022] {
            assert!(!is_smooth(n), "{n} should not be smooth");
        }
        assert!(!is_smooth(0));
    }

    #[test]
    fn next_smooth_values() {
        assert_eq!(next_smooth(0), 1);
        assert_eq!(next_smooth(1), 1);
        assert_eq!(next_smooth(7), 8);
        assert_eq!(next_smooth(11), 12);
        assert_eq!(next_smooth(13), 15);
        assert_eq!(next_smooth(17), 18);
        assert_eq!(next_smooth(1025), 1080);
        // already smooth stays put
        assert_eq!(next_smooth(960), 960);
    }

    #[test]
    fn fine_grid_respects_kernel_width() {
        // sigma*N small, 2w dominates
        assert_eq!(fine_grid_size(4, 2.0, 8), 16);
        // sigma*N dominates: 2*100=200 -> 200 = 2^3*5^2 is smooth
        assert_eq!(fine_grid_size(100, 2.0, 4), 200);
        // non-smooth target rounds up: 2*101=202 -> 216
        assert_eq!(fine_grid_size(101, 2.0, 4), 216);
    }

    #[test]
    fn exact_sizing_keeps_prime_factors() {
        // prime modes with sigma=2: fine = 2n keeps the prime factor, so
        // the FFT goes through Bluestein; the smooth policy rounds away
        assert_eq!(fine_grid_size_with(101, 2.0, 4, FineSizing::Exact), 202);
        assert_eq!(fine_grid_size_with(101, 2.0, 4, FineSizing::Smooth), 216);
        // the 2w floor still applies under Exact
        assert_eq!(fine_grid_size_with(4, 2.0, 8, FineSizing::Exact), 16);
    }

    #[test]
    fn factor_roundtrip() {
        for n in [1usize, 2, 6, 30, 360, 2250] {
            let (a, b, c) = smooth_factor(n).unwrap();
            assert_eq!(
                n,
                2usize.pow(a) * 3usize.pow(b) * 5usize.pow(c),
                "factoring {n}"
            );
        }
        assert!(smooth_factor(14).is_none());
        assert!(smooth_factor(0).is_none());
    }

    #[test]
    fn general_factorization() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(91), vec![7, 13]);
    }
}
