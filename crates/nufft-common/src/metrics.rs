//! Error metrics used throughout the evaluation.
//!
//! The paper reports relative l2 error against a high-accuracy ground truth
//! (FINUFFT at eps = 1e-14 for double, 6e-8 for single). We compute all
//! norms in f64 regardless of working precision.

use crate::complex::Complex;
use crate::real::Real;

/// Relative l2 error `||a - b||_2 / ||b||_2`, with `b` the reference.
/// Returns 0 when both are zero, infinity when only the reference is zero.
pub fn rel_l2<T: Real, U: Real>(a: &[Complex<T>], b: &[Complex<U>]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch in rel_l2");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        let dr = x.re.to_f64() - y.re.to_f64();
        let di = x.im.to_f64() - y.im.to_f64();
        num += dr * dr + di * di;
        den += y.re.to_f64() * y.re.to_f64() + y.im.to_f64() * y.im.to_f64();
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Maximum absolute difference (debug aid).
pub fn max_abs_diff<T: Real, U: Real>(a: &[Complex<T>], b: &[Complex<U>]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let dr = x.re.to_f64() - y.re.to_f64();
            let di = x.im.to_f64() - y.im.to_f64();
            (dr * dr + di * di).sqrt()
        })
        .fold(0.0, f64::max)
}

/// l2 norm of a complex vector, in f64.
pub fn l2_norm<T: Real>(a: &[Complex<T>]) -> f64 {
    a.iter()
        .map(|z| z.re.to_f64().powi(2) + z.im.to_f64().powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Complex inner product `<a, b> = sum a_j conj(b_j)` accumulated in f64;
/// used by the adjointness integration tests.
pub fn inner<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> Complex<f64> {
    assert_eq!(a.len(), b.len());
    let mut acc = Complex::<f64>::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        let x64: Complex<f64> = x.cast();
        let y64: Complex<f64> = y.cast();
        acc += x64 * y64.conj();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;

    #[test]
    fn identical_vectors_have_zero_error() {
        let a = vec![c(1.0, 2.0), c(-3.0, 0.5)];
        assert_eq!(rel_l2(&a, &a), 0.0);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn known_error() {
        let a = vec![c(1.0, 0.0)];
        let b = vec![c(2.0, 0.0)];
        assert!((rel_l2(&a, &b) - 0.5).abs() < 1e-15);
        assert!((max_abs_diff(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn zero_reference_edge_cases() {
        let z = vec![Complex::<f64>::ZERO];
        let a = vec![c(1.0, 0.0)];
        assert_eq!(rel_l2(&z, &z), 0.0);
        assert!(rel_l2(&a, &z).is_infinite());
    }

    #[test]
    fn mixed_precision_comparison() {
        let a = vec![c(1.0f32, 0.0)];
        let b = vec![c(1.0f64, 0.0)];
        assert_eq!(rel_l2(&a, &b), 0.0);
    }

    #[test]
    fn norm_and_inner_consistency() {
        let a = vec![c(3.0, 0.0), c(0.0, 4.0)];
        assert!((l2_norm(&a) - 5.0).abs() < 1e-15);
        let ip = inner(&a, &a);
        assert!((ip.re - 25.0).abs() < 1e-12);
        assert!(ip.im.abs() < 1e-12);
    }

    #[test]
    fn inner_is_conjugate_symmetric() {
        let a = vec![c(1.0, 2.0), c(-0.5, 0.25)];
        let b = vec![c(0.3, -1.0), c(2.0, 2.0)];
        let ab = inner(&a, &b);
        let ba = inner(&b, &a);
        assert!((ab - ba.conj()).abs() < 1e-14);
    }
}
