//! Error metrics used throughout the evaluation.
//!
//! The paper reports relative l2 error against a high-accuracy ground truth
//! (FINUFFT at eps = 1e-14 for double, 6e-8 for single). We compute all
//! norms in f64 regardless of working precision.

use crate::complex::Complex;
use crate::real::Real;

/// Relative l2 error `||a - b||_2 / ||b||_2`, with `b` the reference.
///
/// Conventions for degenerate references:
/// - both vectors all-zero (0/0): returns `0.0` — a zero estimate of a
///   zero reference is exact, not undefined;
/// - only the reference all-zero (x/0, x > 0): returns
///   [`f64::INFINITY`] — no finite relative scale exists;
/// - any NaN in either vector propagates: the result is NaN, never a
///   misleading finite error.
///
/// Norms accumulate in f64 regardless of the working precisions `T`
/// and `U`, which may differ (e.g. f32 output vs f64 ground truth).
pub fn rel_l2<T: Real, U: Real>(a: &[Complex<T>], b: &[Complex<U>]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch in rel_l2");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        let dr = x.re.to_f64() - y.re.to_f64();
        let di = x.im.to_f64() - y.im.to_f64();
        num += dr * dr + di * di;
        den += y.re.to_f64() * y.re.to_f64() + y.im.to_f64() * y.im.to_f64();
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else if num.is_nan() {
            f64::NAN
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Maximum absolute difference (debug aid). Empty inputs give `0.0`;
/// a NaN in either vector propagates to a NaN result (`f64::max` alone
/// would silently drop it).
pub fn max_abs_diff<T: Real, U: Real>(a: &[Complex<T>], b: &[Complex<U>]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let dr = x.re.to_f64() - y.re.to_f64();
            let di = x.im.to_f64() - y.im.to_f64();
            (dr * dr + di * di).sqrt()
        })
        .fold(0.0, |m, d| {
            if m.is_nan() || d.is_nan() {
                f64::NAN
            } else {
                m.max(d)
            }
        })
}

/// l2 norm of a complex vector, in f64.
pub fn l2_norm<T: Real>(a: &[Complex<T>]) -> f64 {
    a.iter()
        .map(|z| z.re.to_f64().powi(2) + z.im.to_f64().powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Complex inner product `<a, b> = sum a_j conj(b_j)` accumulated in f64;
/// used by the adjointness integration tests.
pub fn inner<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> Complex<f64> {
    assert_eq!(a.len(), b.len());
    let mut acc = Complex::<f64>::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        let x64: Complex<f64> = x.cast();
        let y64: Complex<f64> = y.cast();
        acc += x64 * y64.conj();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;

    #[test]
    fn identical_vectors_have_zero_error() {
        let a = vec![c(1.0, 2.0), c(-3.0, 0.5)];
        assert_eq!(rel_l2(&a, &a), 0.0);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn known_error() {
        let a = vec![c(1.0, 0.0)];
        let b = vec![c(2.0, 0.0)];
        assert!((rel_l2(&a, &b) - 0.5).abs() < 1e-15);
        assert!((max_abs_diff(&a, &b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn zero_reference_edge_cases() {
        let z = vec![Complex::<f64>::ZERO];
        let a = vec![c(1.0, 0.0)];
        assert_eq!(rel_l2(&z, &z), 0.0);
        assert!(rel_l2(&a, &z).is_infinite());
    }

    #[test]
    fn mixed_precision_comparison() {
        let a = vec![c(1.0f32, 0.0)];
        let b = vec![c(1.0f64, 0.0)];
        assert_eq!(rel_l2(&a, &b), 0.0);
    }

    #[test]
    fn mixed_precision_sees_f32_rounding() {
        // 0.1 is not representable in f32; both metrics should report
        // the representation error against the f64 reference, in f64.
        let a = vec![c(0.1f32, 0.0)];
        let b = vec![c(0.1f64, 0.0)];
        let expected = (0.1f32 as f64 - 0.1f64).abs();
        assert!((max_abs_diff(&a, &b) - expected).abs() < 1e-18);
        assert!((rel_l2(&a, &b) - expected / 0.1).abs() < 1e-12);
    }

    #[test]
    fn nan_inputs_propagate() {
        let nan = vec![c(f64::NAN, 0.0)];
        let one = vec![c(1.0f64, 0.0)];
        let zero = vec![Complex::<f64>::ZERO];
        assert!(rel_l2(&nan, &one).is_nan());
        assert!(rel_l2(&one, &nan).is_nan());
        // NaN beats the zero-reference infinity convention
        assert!(rel_l2(&nan, &zero).is_nan());
        assert!(max_abs_diff(&nan, &one).is_nan());
        assert!(max_abs_diff(&one, &nan).is_nan());
        // ...even when a later finite entry would win a plain f64::max
        let tail = vec![c(f64::NAN, 0.0), c(2.0, 0.0)];
        let refv = vec![c(0.0f64, 0.0), c(0.0, 0.0)];
        assert!(max_abs_diff(&tail, &refv).is_nan());
    }

    #[test]
    fn empty_vectors_are_exact() {
        let a: Vec<Complex<f64>> = vec![];
        let b: Vec<Complex<f64>> = vec![];
        assert_eq!(rel_l2(&a, &b), 0.0);
        assert_eq!(max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    fn norm_and_inner_consistency() {
        let a = vec![c(3.0, 0.0), c(0.0, 4.0)];
        assert!((l2_norm(&a) - 5.0).abs() < 1e-15);
        let ip = inner(&a, &a);
        assert!((ip.re - 25.0).abs() < 1e-12);
        assert!(ip.im.abs() < 1e-12);
    }

    #[test]
    fn inner_is_conjugate_symmetric() {
        let a = vec![c(1.0, 2.0), c(-0.5, 0.25)];
        let b = vec![c(0.3, -1.0), c(2.0, 2.0)];
        let ab = inner(&a, &b);
        let ba = inner(&b, &a);
        assert!((ab - ba.conj()).abs() < 1e-14);
    }
}
