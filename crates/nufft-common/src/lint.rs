//! Typed findings produced by the static kernel verifier (`nufft-lint`).
//!
//! The vocabulary lives here, below both `gpu-sim` (whose symbolic
//! [`AccessPlan`](https://docs.rs/) analysis emits access-plan findings)
//! and the `nufft-lint` driver (which adds source-policy findings), for
//! the same reason the hazard-report types do (see [`crate::hazard`]):
//! every layer that produces, filters, or gates on findings shares one
//! set of types without depending on the analyzer internals.
//!
//! Every finding carries a **stable identifier** (`AP0xx` for
//! access-plan findings, `SRC0xx` for source-policy findings) so
//! allowlists and CI logs survive message rewording.

use crate::hazard::AccessKind;
use std::fmt;

/// Severity of a finding. `Error` findings fail the lint gate;
/// `Warn` findings are reported but do not affect the exit status.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    Warn,
    Error,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintLevel::Warn => write!(f, "warn"),
            LintLevel::Error => write!(f, "error"),
        }
    }
}

/// What a finding is about, with the evidence the check derived.
#[derive(Clone, Debug, PartialEq)]
pub enum LintKind {
    /// `AP001` — a symbolic access term's element interval escapes the
    /// declared buffer extent for some reachable launch configuration.
    OutOfBounds {
        kernel: String,
        buffer: String,
        /// Interval (inclusive) the index expression can reach.
        lo: i64,
        hi: i64,
        /// Declared buffer length in trace elements.
        len: u64,
    },
    /// `AP002` — two conflicting symbolic accesses can land on the same
    /// element from distinct threads (intra-block, same sync epoch) or
    /// distinct blocks (inter-block, global buffers) with no ordering.
    StaticRace {
        kernel: String,
        buffer: String,
        epoch: u32,
        first: AccessKind,
        second: AccessKind,
        intra_block: bool,
    },
    /// `AP003` — the kernel's declared [`Contract`](crate::hazard)
    /// atomic count is below what the symbolic plan proves the launch
    /// must perform (the cost model undercharges).
    UnderDeclaredAtomics {
        kernel: String,
        /// `"global"` or `"shared"`.
        scope: &'static str,
        declared: u64,
        /// Minimum atomic count the plan predicts.
        predicted_min: u64,
    },
    /// `AP004` — the plan's shared-memory requirement exceeds the
    /// device (or Remark-2) budget, or the declared launch shared bytes
    /// cannot hold the plan's shared buffers.
    SharedOverBudget {
        kernel: String,
        needed_bytes: usize,
        budget_bytes: usize,
    },
    /// `AP005` — the launch shape itself is infeasible on the device
    /// (threads per block above the hardware maximum, zero threads).
    LaunchInfeasible { kernel: String, message: String },
    /// `AP006` — launch shape is legal but wasteful (threads per block
    /// not a multiple of the warp size). Warning level.
    OccupancyWaste { kernel: String, message: String },
    /// `SRC0xx` — a repo source-policy violation found by the textual
    /// scanner (`nufft-lint --src`).
    SrcPolicy {
        rule: String,
        path: String,
        line: usize,
        excerpt: String,
    },
}

/// One finding: a stable id, a severity, the typed evidence, and an
/// optional context label (the `TransformSpec` / launch-config cell the
/// access-plan checker was exploring when it fired).
#[derive(Clone, Debug, PartialEq)]
pub struct LintFinding {
    pub id: &'static str,
    pub level: LintLevel,
    pub kind: LintKind,
    pub context: Option<String>,
}

impl LintFinding {
    pub fn new(id: &'static str, level: LintLevel, kind: LintKind) -> Self {
        LintFinding {
            id,
            level,
            kind,
            context: None,
        }
    }

    pub fn with_context(mut self, ctx: &str) -> Self {
        self.context = Some(ctx.to_string());
        self
    }

    pub fn is_error(&self) -> bool {
        self.level == LintLevel::Error
    }
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: ", self.id, self.level)?;
        match &self.kind {
            LintKind::OutOfBounds {
                kernel,
                buffer,
                lo,
                hi,
                len,
            } => write!(
                f,
                "{kernel}: access to '{buffer}' can reach [{lo}, {hi}] but the buffer holds {len} element(s)"
            )?,
            LintKind::StaticRace {
                kernel,
                buffer,
                epoch,
                first,
                second,
                intra_block,
            } => {
                let scope = if *intra_block {
                    "intra-block"
                } else {
                    "inter-block"
                };
                write!(
                    f,
                    "{kernel}: {scope} {first}/{second} overlap on '{buffer}' (epoch {epoch}) with no ordering"
                )?;
            }
            LintKind::UnderDeclaredAtomics {
                kernel,
                scope,
                declared,
                predicted_min,
            } => write!(
                f,
                "{kernel}: contract declares {declared} {scope} atomic(s) but the plan proves at least {predicted_min}"
            )?,
            LintKind::SharedOverBudget {
                kernel,
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "{kernel}: needs {needed_bytes} B shared memory, budget is {budget_bytes} B (Remark 2)"
            )?,
            LintKind::LaunchInfeasible { kernel, message } => {
                write!(f, "{kernel}: {message}")?;
            }
            LintKind::OccupancyWaste { kernel, message } => {
                write!(f, "{kernel}: {message}")?;
            }
            LintKind::SrcPolicy {
                rule,
                path,
                line,
                excerpt,
            } => write!(f, "{path}:{line}: {rule}: {excerpt}")?,
        }
        if let Some(ctx) = &self.context {
            write!(f, " [{ctx}]")?;
        }
        Ok(())
    }
}

/// Aggregate result of a lint run: findings plus coverage counters so a
/// green report can state *what* it proved, not just that nothing fired.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    pub findings: Vec<LintFinding>,
    /// Launch configurations (spec x geometry cells) explored.
    pub configs_checked: usize,
    /// Kernel access plans analyzed across those configurations.
    pub plans_checked: usize,
    /// Cells skipped because the library itself would refuse the
    /// configuration (e.g. Remark-2 infeasible explicit SM).
    pub configs_skipped: usize,
    /// Source files scanned by the policy pass.
    pub files_scanned: usize,
}

impl LintReport {
    /// No error-level findings (warnings do not fail the gate).
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.is_error())
    }

    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.is_error()).count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| !f.is_error()).count()
    }

    /// Fold another report into this one, summing coverage counters.
    pub fn merge(&mut self, other: LintReport) {
        self.findings.extend(other.findings);
        self.configs_checked += other.configs_checked;
        self.plans_checked += other.plans_checked;
        self.configs_skipped += other.configs_skipped;
        self.files_scanned += other.files_scanned;
    }

    /// Findings with the given stable id.
    pub fn with_id<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a LintFinding> {
        self.findings.iter().filter(move |f| f.id == id)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint report: {} config(s), {} plan(s), {} file(s) scanned, {} skipped; {} error(s), {} warning(s)",
            self.configs_checked,
            self.plans_checked,
            self.files_scanned,
            self.configs_skipped,
            self.error_count(),
            self.warn_count()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_is_self_describing() {
        let f = LintFinding::new(
            "AP001",
            LintLevel::Error,
            LintKind::OutOfBounds {
                kernel: "spread_GM".into(),
                buffer: "fine_grid".into(),
                lo: -12,
                hi: 8200,
                len: 8192,
            },
        )
        .with_context("2d/f32/eps=1e-5");
        let s = f.to_string();
        assert!(s.contains("AP001"), "{s}");
        assert!(s.contains("fine_grid"), "{s}");
        assert!(s.contains("-12"), "{s}");
        assert!(s.contains("2d/f32"), "{s}");
    }

    #[test]
    fn report_gate_ignores_warnings() {
        let mut r = LintReport::default();
        r.findings.push(LintFinding::new(
            "AP006",
            LintLevel::Warn,
            LintKind::OccupancyWaste {
                kernel: "k".into(),
                message: "odd block".into(),
            },
        ));
        assert!(r.is_clean());
        assert_eq!(r.warn_count(), 1);
        r.findings.push(LintFinding::new(
            "AP002",
            LintLevel::Error,
            LintKind::StaticRace {
                kernel: "k".into(),
                buffer: "g".into(),
                epoch: 0,
                first: AccessKind::Write,
                second: AccessKind::Write,
                intra_block: true,
            },
        ));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn merge_sums_counters_and_findings() {
        let mut a = LintReport {
            configs_checked: 2,
            plans_checked: 5,
            ..Default::default()
        };
        let b = LintReport {
            configs_checked: 3,
            plans_checked: 7,
            files_scanned: 11,
            findings: vec![LintFinding::new(
                "SRC001",
                LintLevel::Error,
                LintKind::SrcPolicy {
                    rule: "no-unwrap".into(),
                    path: "x.rs".into(),
                    line: 3,
                    excerpt: "foo.unwrap()".into(),
                },
            )],
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.configs_checked, 5);
        assert_eq!(a.plans_checked, 12);
        assert_eq!(a.files_scanned, 11);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.with_id("SRC001").count(), 1);
    }
}
