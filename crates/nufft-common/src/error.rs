//! Error type shared by the NUFFT libraries in this workspace, mirroring
//! the integer error codes of the FINUFFT/cuFINUFFT C API with typed
//! variants.

use std::fmt;

/// Errors reported by plan construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum NufftError {
    /// Requested tolerance is too small for the working precision
    /// (FINUFFT `WARN_EPS_TOO_SMALL` made hard here).
    EpsTooSmall { eps: f64, limit: f64 },
    /// A mode dimension was zero or exceeds the supported maximum.
    BadModes(String),
    /// Number of dimensions outside the supported set.
    BadDim(usize),
    /// A nonuniform point coordinate was not finite.
    BadPoint { index: usize, value: f64 },
    /// Mismatched array lengths at execute/setpts time.
    LengthMismatch { expected: usize, got: usize },
    /// The selected spreading method is unavailable for this configuration
    /// (e.g. SM in 3D double precision with w > 8; paper Remark 2).
    MethodUnavailable(String),
    /// Simulated device out of memory.
    DeviceOom { requested: usize, available: usize },
    /// A device operation (transfer or kernel launch) faulted and
    /// bounded retry did not recover it.
    DeviceFault { op: String, attempts: u32 },
    /// execute() called before set_pts().
    PointsNotSet,
    /// Invalid option combination.
    BadOptions(String),
    /// `msub` (max points per SM subproblem) must be positive.
    BadMsub(usize),
    /// Upsampling factor sigma must exceed 1.
    BadUpsampfac(f64),
    /// A bin-size entry was zero.
    BadBinSize([usize; 3]),
}

impl fmt::Display for NufftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NufftError::EpsTooSmall { eps, limit } => write!(
                f,
                "requested tolerance {eps:.3e} below precision limit {limit:.3e}"
            ),
            NufftError::BadModes(msg) => write!(f, "invalid mode dimensions: {msg}"),
            NufftError::BadDim(d) => write!(f, "unsupported dimension: {d}"),
            NufftError::BadPoint { index, value } => {
                write!(f, "nonuniform point {index} is not finite: {value}")
            }
            NufftError::LengthMismatch { expected, got } => {
                write!(f, "array length mismatch: expected {expected}, got {got}")
            }
            NufftError::MethodUnavailable(msg) => write!(f, "method unavailable: {msg}"),
            NufftError::DeviceOom {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B free"
            ),
            NufftError::DeviceFault { op, attempts } => {
                write!(f, "device fault in '{op}' after {attempts} attempt(s)")
            }
            NufftError::PointsNotSet => write!(f, "execute() called before set_pts()"),
            NufftError::BadOptions(msg) => write!(f, "invalid options: {msg}"),
            NufftError::BadMsub(m) => {
                write!(f, "invalid msub {m}: subproblem cap must be positive")
            }
            NufftError::BadUpsampfac(s) => {
                write!(f, "invalid upsampling factor {s}: sigma must exceed 1")
            }
            NufftError::BadBinSize(b) => {
                write!(f, "invalid bin size {b:?}: entries must be positive")
            }
        }
    }
}

impl std::error::Error for NufftError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NufftError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NufftError::EpsTooSmall {
            eps: 1e-16,
            limit: 1e-14,
        };
        let s = e.to_string();
        assert!(s.contains("1e-16") || s.contains("1.000e-16"), "{s}");
        assert!(NufftError::PointsNotSet.to_string().contains("set_pts"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NufftError::BadDim(4), NufftError::BadDim(4));
        assert_ne!(NufftError::BadDim(4), NufftError::BadDim(5));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NufftError::PointsNotSet);
        assert!(!e.to_string().is_empty());
    }
}
