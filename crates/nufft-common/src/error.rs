//! Error type shared by the NUFFT libraries in this workspace, mirroring
//! the integer error codes of the FINUFFT/cuFINUFFT C API with typed
//! variants.
//!
//! [`NufftError`] is the single top-level error every layer returns:
//! plan construction and execution (`cufinufft`, `finufft-cpu`, the
//! baselines), the type-3 pipeline, and the serving front end
//! (`nufft-serve`). Serve-side failures wrap their cause in
//! [`NufftError::Request`], whose [`std::error::Error::source`] exposes
//! the underlying plan/device error for `anyhow`-style chains.

use std::fmt;

/// Errors reported by plan construction, execution, and serving.
#[derive(Debug, Clone, PartialEq)]
pub enum NufftError {
    /// Requested tolerance is too small for the working precision
    /// (FINUFFT `WARN_EPS_TOO_SMALL` made hard here).
    EpsTooSmall { eps: f64, limit: f64 },
    /// A mode dimension was zero or exceeds the supported maximum.
    BadModes(String),
    /// Number of dimensions outside the supported set.
    BadDim(usize),
    /// A nonuniform point coordinate was not finite.
    BadPoint { index: usize, value: f64 },
    /// Mismatched array lengths at execute/setpts time.
    LengthMismatch { expected: usize, got: usize },
    /// The selected spreading method is unavailable for this configuration
    /// (e.g. SM in 3D double precision with w > 8; paper Remark 2).
    MethodUnavailable(String),
    /// Simulated device out of memory.
    DeviceOom { requested: usize, available: usize },
    /// A device operation (transfer or kernel launch) faulted and
    /// bounded retry did not recover it. `persistent` is true when the
    /// injected fault mode repeats on every attempt (as opposed to a
    /// transient glitch that simply exhausted the retry budget); the
    /// serve layer uses it to quarantine cached plans and trip
    /// per-spec circuit breakers.
    DeviceFault {
        op: String,
        attempts: u32,
        persistent: bool,
    },
    /// execute() called before set_pts().
    PointsNotSet,
    /// Invalid option combination.
    BadOptions(String),
    /// `msub` (max points per SM subproblem) must be positive.
    BadMsub(usize),
    /// Upsampling factor sigma must exceed 1.
    BadUpsampfac(f64),
    /// A bin-size entry was zero.
    BadBinSize([usize; 3]),
    /// A `TransformSpec` failed validation (empty/oversized dims,
    /// non-positive tolerance, ...) or did not match the request data.
    BadSpec(String),
    /// The serving queue is at capacity; the request was not admitted.
    /// Back off and resubmit, or use a blocking submit.
    QueueFull { depth: usize, capacity: usize },
    /// The shed controller rejected the request before it could queue:
    /// recent queue waits indicate the effective depth limit (which may
    /// be below the physical capacity) is already saturated.
    Overloaded {
        depth: usize,
        limit: usize,
        capacity: usize,
    },
    /// The request's deadline (simulated-time seconds, the
    /// `Device::clock()` domain) had already passed when it was checked
    /// at admission, dequeue, or a coalesced-chunk boundary.
    DeadlineExceeded { deadline: f64, now: f64 },
    /// The caller cancelled the request via `Response::cancel()` before
    /// it was executed.
    Cancelled,
    /// The per-spec circuit breaker is open after a streak of
    /// persistent device faults; the request was fast-failed without
    /// touching a device. `retry_after` is the remaining cooldown in
    /// simulated seconds.
    BreakerOpen { spec: String, retry_after: f64 },
    /// The serve worker panicked while this request was in flight; the
    /// supervisor failed the batch and respawned the worker.
    WorkerPanic(String),
    /// The server is shutting down (or shut down before this request
    /// was picked up); the request was not executed.
    Shutdown,
    /// A served request failed at the named stage (`plan.build`,
    /// `plan.setpts`, `plan.execute`, ...); the wrapped cause is also
    /// available through [`std::error::Error::source`].
    Request {
        stage: String,
        source: Box<NufftError>,
    },
}

impl NufftError {
    /// Wrap `self` as the cause of a failed serve-stage, preserving the
    /// chain for [`std::error::Error::source`].
    pub fn at_stage(self, stage: &str) -> NufftError {
        NufftError::Request {
            stage: stage.to_string(),
            source: Box::new(self),
        }
    }

    /// The root cause of a (possibly nested) [`NufftError::Request`]
    /// chain; `self` for plain errors.
    pub fn root_cause(&self) -> &NufftError {
        match self {
            NufftError::Request { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for NufftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NufftError::EpsTooSmall { eps, limit } => write!(
                f,
                "requested tolerance {eps:.3e} below precision limit {limit:.3e}"
            ),
            NufftError::BadModes(msg) => write!(f, "invalid mode dimensions: {msg}"),
            NufftError::BadDim(d) => write!(f, "unsupported dimension: {d}"),
            NufftError::BadPoint { index, value } => {
                write!(f, "nonuniform point {index} is not finite: {value}")
            }
            NufftError::LengthMismatch { expected, got } => {
                write!(f, "array length mismatch: expected {expected}, got {got}")
            }
            NufftError::MethodUnavailable(msg) => write!(f, "method unavailable: {msg}"),
            NufftError::DeviceOom {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B free"
            ),
            NufftError::DeviceFault {
                op,
                attempts,
                persistent,
            } => {
                let kind = if *persistent {
                    "persistent"
                } else {
                    "transient"
                };
                write!(
                    f,
                    "{kind} device fault in '{op}' after {attempts} attempt(s)"
                )
            }
            NufftError::PointsNotSet => write!(f, "execute() called before set_pts()"),
            NufftError::BadOptions(msg) => write!(f, "invalid options: {msg}"),
            NufftError::BadMsub(m) => {
                write!(f, "invalid msub {m}: subproblem cap must be positive")
            }
            NufftError::BadUpsampfac(s) => {
                write!(f, "invalid upsampling factor {s}: sigma must exceed 1")
            }
            NufftError::BadBinSize(b) => {
                write!(f, "invalid bin size {b:?}: entries must be positive")
            }
            NufftError::BadSpec(msg) => write!(f, "invalid transform spec: {msg}"),
            NufftError::QueueFull { depth, capacity } => write!(
                f,
                "serve queue full: {depth} request(s) queued, capacity {capacity}"
            ),
            NufftError::Overloaded {
                depth,
                limit,
                capacity,
            } => write!(
                f,
                "server overloaded: {depth} request(s) queued against shed limit \
                 {limit} (capacity {capacity})"
            ),
            NufftError::DeadlineExceeded { deadline, now } => write!(
                f,
                "deadline exceeded: due at t={deadline:.6}s, checked at t={now:.6}s"
            ),
            NufftError::Cancelled => write!(f, "request cancelled by the caller"),
            NufftError::BreakerOpen { spec, retry_after } => write!(
                f,
                "circuit breaker open for {spec}: retry after {retry_after:.6}s"
            ),
            NufftError::WorkerPanic(msg) => {
                write!(
                    f,
                    "serve worker panicked while this request was in flight: {msg}"
                )
            }
            NufftError::Shutdown => write!(f, "server shut down before the request completed"),
            NufftError::Request { stage, source } => {
                write!(f, "request failed at {stage}: {source}")
            }
        }
    }
}

impl std::error::Error for NufftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NufftError::Request { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NufftError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NufftError::EpsTooSmall {
            eps: 1e-16,
            limit: 1e-14,
        };
        let s = e.to_string();
        assert!(s.contains("1e-16") || s.contains("1.000e-16"), "{s}");
        assert!(NufftError::PointsNotSet.to_string().contains("set_pts"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NufftError::BadDim(4), NufftError::BadDim(4));
        assert_ne!(NufftError::BadDim(4), NufftError::BadDim(5));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(NufftError::PointsNotSet);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn request_wrapping_exposes_source_and_root_cause() {
        use std::error::Error;
        let cause = NufftError::DeviceFault {
            op: "h2d:chunk".into(),
            attempts: 4,
            persistent: false,
        };
        let wrapped = cause.clone().at_stage("plan.execute");
        let s = wrapped.to_string();
        assert!(s.contains("plan.execute") && s.contains("h2d:chunk"), "{s}");
        let src = wrapped.source().expect("request errors carry a source");
        assert!(src.to_string().contains("h2d:chunk"));
        assert_eq!(wrapped.root_cause(), &cause);
        // nested wrapping still resolves to the innermost cause
        let nested = wrapped.at_stage("serve.dispatch");
        assert_eq!(nested.root_cause(), &cause);
        // plain errors have no source and are their own root cause
        assert!(cause.source().is_none());
        assert_eq!(cause.root_cause(), &cause);
    }

    #[test]
    fn serve_variants_display() {
        let q = NufftError::QueueFull {
            depth: 64,
            capacity: 64,
        };
        assert!(q.to_string().contains("64"));
        assert!(NufftError::Shutdown.to_string().contains("shut down"));
        assert!(NufftError::BadSpec("no dims".into())
            .to_string()
            .contains("no dims"));
    }

    #[test]
    fn overload_variants_display() {
        let o = NufftError::Overloaded {
            depth: 7,
            limit: 4,
            capacity: 8,
        };
        let s = o.to_string();
        assert!(s.contains('7') && s.contains('4') && s.contains('8'), "{s}");
        let d = NufftError::DeadlineExceeded {
            deadline: 1.5,
            now: 2.0,
        };
        assert!(d.to_string().contains("deadline exceeded"));
        assert!(NufftError::Cancelled.to_string().contains("cancelled"));
        let b = NufftError::BreakerOpen {
            spec: "t1 [24,24] f32".into(),
            retry_after: 0.05,
        };
        assert!(b.to_string().contains("breaker open"), "{b}");
        assert!(NufftError::WorkerPanic("boom".into())
            .to_string()
            .contains("boom"));
    }

    #[test]
    fn device_fault_display_names_persistence() {
        let t = NufftError::DeviceFault {
            op: "spread_SM".into(),
            attempts: 3,
            persistent: false,
        };
        assert!(t.to_string().contains("transient"));
        let p = NufftError::DeviceFault {
            op: "spread_SM".into(),
            attempts: 3,
            persistent: true,
        };
        assert!(p.to_string().contains("persistent"));
    }
}
