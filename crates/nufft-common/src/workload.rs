//! Nonuniform-point workload generators from the paper's evaluation
//! (Sec. IV, "Tasks"): the "rand" and "cluster" distributions, plus random
//! strength vectors. All generators are deterministic given a seed.

use crate::complex::Complex;
use crate::real::Real;
use crate::shape::Shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nonuniform point distribution used in the paper's benchmarks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PointDist {
    /// iid uniform over the whole periodic box `[-pi, pi)^d`.
    Rand,
    /// iid uniform in the tiny box `[0, 8 h_1] x ... x [0, 8 h_d]` where
    /// `h_i = 2 pi / n_i` are the *fine-grid* spacings — the pathological
    /// clustered case that serializes naive atomics.
    Cluster,
}

/// Nonuniform points stored as separate coordinate arrays (structure of
/// arrays), matching the `x[], y[], z[]` interface of cuFINUFFT.
#[derive(Clone, Debug)]
pub struct Points<T> {
    pub coords: [Vec<T>; 3],
    pub dim: usize,
}

impl<T: Real> Points<T> {
    pub fn len(&self) -> usize {
        self.coords[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.coords[0].is_empty()
    }

    /// Coordinate of point `j` in dimension `i` (0 for dims >= self.dim).
    #[inline(always)]
    pub fn coord(&self, i: usize, j: usize) -> T {
        if i < self.dim {
            self.coords[i][j]
        } else {
            T::ZERO
        }
    }

    pub fn x(&self) -> &[T] {
        &self.coords[0]
    }
    pub fn y(&self) -> &[T] {
        &self.coords[1]
    }
    pub fn z(&self) -> &[T] {
        &self.coords[2]
    }
}

/// Generate `m` nonuniform points for the given distribution.
///
/// `fine` is the upsampled fine-grid shape; it only matters for
/// [`PointDist::Cluster`], whose box size is `8 h_i` (paper Sec. IV).
pub fn gen_points<T: Real>(
    dist: PointDist,
    dim: usize,
    m: usize,
    fine: Shape,
    seed: u64,
) -> Points<T> {
    assert!((1..=3).contains(&dim));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = [Vec::new(), Vec::new(), Vec::new()];
    for (i, coord) in coords.iter_mut().enumerate().take(dim) {
        coord.reserve_exact(m);
        match dist {
            PointDist::Rand => {
                for _ in 0..m {
                    let u: f64 = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
                    coord.push(T::from_f64(u));
                }
            }
            PointDist::Cluster => {
                let h = std::f64::consts::TAU / fine.n[i] as f64;
                let hi = 8.0 * h;
                for _ in 0..m {
                    let u: f64 = rng.random_range(0.0..hi);
                    coord.push(T::from_f64(u));
                }
            }
        }
    }
    Points { coords, dim }
}

/// Random unit-box complex strengths `c_j` (real and imaginary parts iid
/// uniform on `[-1, 1]`).
pub fn gen_strengths<T: Real>(m: usize, seed: u64) -> Vec<Complex<T>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            Complex::new(
                T::from_f64(rng.random_range(-1.0..1.0)),
                T::from_f64(rng.random_range(-1.0..1.0)),
            )
        })
        .collect()
}

/// Random Fourier coefficients for type-2 inputs.
pub fn gen_coeffs<T: Real>(n: usize, seed: u64) -> Vec<Complex<T>> {
    gen_strengths(n, seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// Number of nonuniform points giving density `rho` on the fine grid
/// (eq. 16): `M = rho * prod(n_i)`. The paper benchmarks `rho ~ 1` measured
/// against the *upsampled* grid.
pub fn points_for_density(fine: Shape, rho: f64) -> usize {
    ((fine.total() as f64) * rho).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_points_cover_box() {
        let fine = Shape::d2(64, 64);
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 4096, fine, 1);
        assert_eq!(pts.len(), 4096);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in pts.x() {
            assert!((-std::f64::consts::PI..std::f64::consts::PI).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // with 4096 uniform samples we must see both halves of the box
        assert!(lo < -1.0 && hi > 1.0);
    }

    #[test]
    fn cluster_points_stay_in_tiny_box() {
        let fine = Shape::d3(128, 128, 128);
        let h = std::f64::consts::TAU / 128.0;
        let pts: Points<f64> = gen_points(PointDist::Cluster, 3, 1000, fine, 7);
        for d in 0..3 {
            for j in 0..pts.len() {
                let v = pts.coord(d, j);
                assert!((0.0..8.0 * h).contains(&v), "dim {d}: {v}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let fine = Shape::d2(32, 32);
        let a: Points<f32> = gen_points(PointDist::Rand, 2, 100, fine, 42);
        let b: Points<f32> = gen_points(PointDist::Rand, 2, 100, fine, 42);
        assert_eq!(a.x(), b.x());
        assert_eq!(a.y(), b.y());
        let c: Points<f32> = gen_points(PointDist::Rand, 2, 100, fine, 43);
        assert_ne!(a.x(), c.x());
    }

    #[test]
    fn strengths_in_unit_box() {
        let cs: Vec<Complex<f64>> = gen_strengths(256, 3);
        assert_eq!(cs.len(), 256);
        for z in &cs {
            assert!(z.re.abs() <= 1.0 && z.im.abs() <= 1.0);
        }
    }

    #[test]
    fn density_formula() {
        let fine = Shape::d2(100, 100);
        assert_eq!(points_for_density(fine, 1.0), 10_000);
        assert_eq!(points_for_density(fine, 0.5), 5_000);
        assert_eq!(points_for_density(fine, 2.0), 20_000);
    }

    #[test]
    fn unused_dims_read_zero() {
        let fine = Shape::d1(32);
        let pts: Points<f64> = gen_points(PointDist::Rand, 1, 10, fine, 5);
        assert_eq!(pts.coord(1, 3), 0.0);
        assert_eq!(pts.coord(2, 9), 0.0);
    }
}
