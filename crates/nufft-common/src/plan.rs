//! Backend-agnostic plan interface.
//!
//! Every NUFFT implementation in this workspace — the paper's GPU
//! library, the CPU reference library, and the two GPU baselines —
//! follows the same plan lifecycle: construct for a transform type and
//! mode shape, bind nonuniform points (where sorting happens, reused
//! across executes), then execute one or many strength/coefficient
//! vectors. [`NufftPlan`] captures that lifecycle so cross-library
//! tests and benchmarks can drive any backend through one code path.

use crate::complex::Complex;
use crate::error::{NufftError, Result};
use crate::real::Real;
use crate::shape::Shape;
use crate::workload::Points;
use crate::TransformType;

/// Common plan lifecycle implemented by every backend in the workspace.
///
/// Lengths are per transform: type 1 consumes `num_points()` strengths
/// and produces `modes().total()` coefficients; type 2 is the reverse.
/// [`NufftPlan::execute_many`] accepts `B` stacked vectors and infers
/// `B` from the input length; the default implementation loops
/// [`NufftPlan::execute`], while backends with a native batched path
/// (batched FFT, stream-pipelined transfers) override it.
pub trait NufftPlan<T: Real> {
    /// Which transform this plan computes.
    fn transform_type(&self) -> TransformType;

    /// Requested (non-upsampled) mode shape.
    fn modes(&self) -> Shape;

    /// Number of nonuniform points bound by the last
    /// [`NufftPlan::set_points`] call (0 before any).
    fn num_points(&self) -> usize;

    /// Bind nonuniform points. Point preprocessing (validation,
    /// bin-sorting, transfers) happens here once and is reused by every
    /// subsequent execute.
    fn set_points(&mut self, pts: &Points<T>) -> Result<()>;

    /// Run a single transform.
    fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()>;

    /// Per-transform input length implied by the plan state.
    fn input_len(&self) -> usize {
        match self.transform_type() {
            TransformType::Type1 => self.num_points(),
            TransformType::Type2 => self.modes().total(),
        }
    }

    /// Per-transform output length implied by the plan state.
    fn output_len(&self) -> usize {
        match self.transform_type() {
            TransformType::Type1 => self.modes().total(),
            TransformType::Type2 => self.num_points(),
        }
    }

    /// Run `B` stacked transforms, inferring `B` from `input.len()`.
    ///
    /// The default loops [`NufftPlan::execute`] per vector; backends
    /// with native batching override it. The error contract matches the
    /// native implementations: a zero per-transform length is
    /// [`NufftError::BadOptions`], any length inconsistency is
    /// [`NufftError::LengthMismatch`].
    fn execute_many(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let in_per = self.input_len();
        let out_per = self.output_len();
        if in_per == 0 {
            return Err(NufftError::BadOptions(
                "cannot infer batch size: per-transform input length is zero".into(),
            ));
        }
        if input.is_empty() || !input.len().is_multiple_of(in_per) {
            return Err(NufftError::LengthMismatch {
                expected: in_per,
                got: input.len(),
            });
        }
        let b = input.len() / in_per;
        if output.len() != out_per * b {
            return Err(NufftError::LengthMismatch {
                expected: out_per * b,
                got: output.len(),
            });
        }
        for v in 0..b {
            self.execute(
                &input[v * in_per..(v + 1) * in_per],
                &mut output[v * out_per..(v + 1) * out_per],
            )?;
        }
        Ok(())
    }

    /// Seconds spent in the core transform stages (spread/interp, FFT,
    /// deconvolve) during the last execute call, as tracked by the
    /// backend's own timing model.
    fn exec_time(&self) -> f64;

    /// End-to-end seconds for the last plan lifecycle, including point
    /// sorting and (for GPU backends) host/device transfers.
    fn total_time(&self) -> f64;

    /// Short backend name for reports and benchmark labels.
    fn backend_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{gen_points, PointDist};

    /// Minimal in-crate backend so the default `execute_many` logic is
    /// unit-tested without depending on downstream crates.
    struct CopyPlan {
        ttype: TransformType,
        modes: Shape,
        m: usize,
        executes: usize,
    }

    impl NufftPlan<f32> for CopyPlan {
        fn transform_type(&self) -> TransformType {
            self.ttype
        }
        fn modes(&self) -> Shape {
            self.modes
        }
        fn num_points(&self) -> usize {
            self.m
        }
        fn set_points(&mut self, pts: &Points<f32>) -> Result<()> {
            self.m = pts.len();
            Ok(())
        }
        fn execute(&mut self, input: &[Complex<f32>], output: &mut [Complex<f32>]) -> Result<()> {
            self.executes += 1;
            let n = input.len().min(output.len());
            output[..n].copy_from_slice(&input[..n]);
            Ok(())
        }
        fn exec_time(&self) -> f64 {
            0.0
        }
        fn total_time(&self) -> f64 {
            0.0
        }
        fn backend_name(&self) -> &'static str {
            "copy"
        }
    }

    fn plan() -> CopyPlan {
        let mut p = CopyPlan {
            ttype: TransformType::Type1,
            modes: Shape::from_slice(&[8, 8]),
            m: 0,
            executes: 0,
        };
        let pts = gen_points::<f32>(PointDist::Rand, 2, 5, Shape::from_slice(&[16, 16]), 1);
        p.set_points(&pts).unwrap();
        p
    }

    #[test]
    fn default_execute_many_infers_batch_and_loops() {
        let mut p = plan();
        let input = vec![Complex::<f32>::ZERO; 5 * 3];
        let mut output = vec![Complex::<f32>::ZERO; 64 * 3];
        p.execute_many(&input, &mut output).unwrap();
        assert_eq!(p.executes, 3);
    }

    #[test]
    fn default_execute_many_rejects_bad_lengths() {
        let mut p = plan();
        let mut out = vec![Complex::<f32>::ZERO; 64];
        // empty input
        assert!(matches!(
            p.execute_many(&[], &mut out),
            Err(NufftError::LengthMismatch { .. })
        ));
        // input not a multiple of num_points
        let input = vec![Complex::<f32>::ZERO; 7];
        assert!(matches!(
            p.execute_many(&input, &mut out),
            Err(NufftError::LengthMismatch { .. })
        ));
        // output wrong for inferred batch of 2
        let input = vec![Complex::<f32>::ZERO; 10];
        assert!(matches!(
            p.execute_many(&input, &mut out),
            Err(NufftError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn per_transform_lengths_follow_transform_type() {
        let p = plan();
        assert_eq!(p.input_len(), 5);
        assert_eq!(p.output_len(), 64);
        let mut p2 = plan();
        p2.ttype = TransformType::Type2;
        assert_eq!(p2.input_len(), 64);
        assert_eq!(p2.output_len(), 5);
    }
}
