//! Scalar abstraction over `f32` and `f64`.
//!
//! The whole reproduction is generic over the working precision, exactly as
//! cuFINUFFT ships single- and double-precision builds. Rather than pull in
//! `num-traits`, we define the minimal surface the NUFFT pipeline needs.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar (`f32` or `f64`).
///
/// All numeric code in the workspace is generic over this trait so every
/// transform exists in both precisions, mirroring the paper's
/// single/double-precision comparisons (Figs. 4-7).
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const HALF: Self;
    const PI: Self;
    const TAU: Self;
    /// Machine epsilon of the concrete type.
    const EPSILON: Self;
    /// Number of bytes of the concrete type (4 or 8); used by the device
    /// memory model.
    const BYTES: usize;
    /// `true` for `f64`; lets the GPU cost model halve FLOP throughput and
    /// double memory traffic for double precision, as on a V100.
    const IS_DOUBLE: bool;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn sin_cos(self) -> (Self, Self);
    fn floor(self) -> Self;
    fn ceil(self) -> Self;
    fn round(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn is_finite(self) -> bool;
    fn max(self, other: Self) -> Self;
    fn min(self, other: Self) -> Self;
    /// Fused multiply-add when available.
    fn mul_add(self, a: Self, b: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $bytes:expr, $is_double:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const PI: Self = std::f64::consts::PI as $t;
            const TAU: Self = std::f64::consts::TAU as $t;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = $bytes;
            const IS_DOUBLE: bool = $is_double;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                <$t>::sin_cos(self)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                <$t>::floor(self)
            }
            #[inline(always)]
            fn ceil(self) -> Self {
                <$t>::ceil(self)
            }
            #[inline(always)]
            fn round(self) -> Self {
                <$t>::round(self)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
        }
    };
}

impl_real!(f32, 4, false);
impl_real!(f64, 8, true);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Real>() {
        let x = T::from_f64(1.5);
        assert_eq!(x.to_f64(), 1.5);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert!((T::PI.to_f64() - std::f64::consts::PI).abs() < 1e-6);
        assert!((T::TAU.to_f64() - 2.0 * std::f64::consts::PI).abs() < 1e-5);
    }

    #[test]
    fn roundtrip_f32() {
        generic_roundtrip::<f32>();
    }

    #[test]
    fn roundtrip_f64() {
        generic_roundtrip::<f64>();
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting the consts is the point
    fn constants_match_type() {
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert!(!f32::IS_DOUBLE);
        assert!(f64::IS_DOUBLE);
    }

    #[test]
    fn sin_cos_consistent() {
        let x = 0.7f64;
        let (s, c) = Real::sin_cos(x);
        assert!((s - x.sin()).abs() < 1e-15);
        assert!((c - x.cos()).abs() < 1e-15);
    }

    #[test]
    fn mul_add_matches() {
        let r: f32 = Real::mul_add(2.0f32, 3.0, 4.0);
        assert_eq!(r, 10.0);
    }
}
