//! Small helpers describing 1-3 dimensional grids.

/// Grid shape for up to three dimensions. Unused trailing dimensions are 1,
/// so `total()` and strides work uniformly across 1D/2D/3D code paths.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Extents `[n1, n2, n3]`; `n1` is the fastest-varying (x) axis,
    /// matching the paper's "x axis fast, y slow" ordering.
    pub n: [usize; 3],
    /// Number of meaningful dimensions (1, 2 or 3).
    pub dim: usize,
}

impl Shape {
    pub fn d1(n1: usize) -> Self {
        Shape {
            n: [n1, 1, 1],
            dim: 1,
        }
    }
    pub fn d2(n1: usize, n2: usize) -> Self {
        Shape {
            n: [n1, n2, 1],
            dim: 2,
        }
    }
    pub fn d3(n1: usize, n2: usize, n3: usize) -> Self {
        Shape {
            n: [n1, n2, n3],
            dim: 3,
        }
    }

    /// Build from a slice of 1-3 extents.
    pub fn from_slice(dims: &[usize]) -> Self {
        assert!(
            (1..=3).contains(&dims.len()),
            "Shape supports 1-3 dimensions, got {}",
            dims.len()
        );
        let mut n = [1usize; 3];
        n[..dims.len()].copy_from_slice(dims);
        Shape { n, dim: dims.len() }
    }

    /// Total number of grid points.
    #[inline]
    pub fn total(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// Row-major-in-x strides: element `(l1,l2,l3)` lives at
    /// `l1 + n1*(l2 + n2*l3)`.
    #[inline]
    pub fn strides(&self) -> [usize; 3] {
        [1, self.n[0], self.n[0] * self.n[1]]
    }

    /// Linear index of a grid point.
    #[inline(always)]
    pub fn idx(&self, l1: usize, l2: usize, l3: usize) -> usize {
        debug_assert!(l1 < self.n[0] && l2 < self.n[1] && l3 < self.n[2]);
        l1 + self.n[0] * (l2 + self.n[1] * l3)
    }

    /// Inverse of [`Shape::idx`].
    #[inline]
    pub fn coords(&self, idx: usize) -> [usize; 3] {
        let l1 = idx % self.n[0];
        let r = idx / self.n[0];
        [l1, r % self.n[1], r / self.n[1]]
    }

    /// Apply a per-dimension map, keeping `dim`.
    pub fn map<F: FnMut(usize, usize) -> usize>(&self, mut f: F) -> Shape {
        let mut n = [1usize; 3];
        for (i, ni) in n.iter_mut().enumerate().take(self.dim) {
            *ni = f(i, self.n[i]);
        }
        Shape { n, dim: self.dim }
    }
}

/// The integer Fourier frequency grid `I_N = {-N/2, ..., N/2 - 1}` (eq. 2 of
/// the paper). Returns the starting (most negative) frequency.
#[inline]
pub fn freq_start(n: usize) -> i64 {
    -((n as i64) / 2)
}

/// Iterate the frequencies of `I_N` in output order (ascending `k`).
pub fn freqs(n: usize) -> impl Iterator<Item = i64> {
    let k0 = freq_start(n);
    (0..n as i64).map(move |j| k0 + j)
}

/// Map a signed frequency `k in I_n` to its DFT bin in `[0, n)`.
#[inline(always)]
pub fn freq_to_bin(k: i64, n: usize) -> usize {
    k.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_strides() {
        let s = Shape::d3(4, 3, 2);
        assert_eq!(s.total(), 24);
        assert_eq!(s.strides(), [1, 4, 12]);
        let s = Shape::d2(5, 7);
        assert_eq!(s.total(), 35);
        assert_eq!(s.n[2], 1);
    }

    #[test]
    fn idx_coords_roundtrip() {
        let s = Shape::d3(4, 3, 2);
        for i in 0..s.total() {
            let [a, b, c] = s.coords(i);
            assert_eq!(s.idx(a, b, c), i);
        }
    }

    #[test]
    fn from_slice_dims() {
        assert_eq!(Shape::from_slice(&[8]), Shape::d1(8));
        assert_eq!(Shape::from_slice(&[8, 4]), Shape::d2(8, 4));
        assert_eq!(Shape::from_slice(&[8, 4, 2]), Shape::d3(8, 4, 2));
    }

    #[test]
    #[should_panic]
    fn from_slice_rejects_empty() {
        Shape::from_slice(&[]);
    }

    #[test]
    fn frequency_grid_matches_paper() {
        // I_4 = {-2,-1,0,1}; I_5 = {-2,-1,0,1,2}
        assert_eq!(freqs(4).collect::<Vec<_>>(), vec![-2, -1, 0, 1]);
        assert_eq!(freqs(5).collect::<Vec<_>>(), vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn bin_mapping_wraps_negatives() {
        assert_eq!(freq_to_bin(0, 8), 0);
        assert_eq!(freq_to_bin(3, 8), 3);
        assert_eq!(freq_to_bin(-1, 8), 7);
        assert_eq!(freq_to_bin(-4, 8), 4);
    }
}
