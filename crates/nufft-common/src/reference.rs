//! Naive `O(N M)` direct evaluation of the type 1 and type 2 sums
//! (eqs. 1 and 3 of the paper), accumulated in f64. These are the ground
//! truth for every accuracy test in the workspace; they are exact up to
//! rounding, independent of any kernel/grid approximation.

use crate::complex::Complex;
use crate::real::Real;
use crate::shape::{freqs, Shape};
use crate::workload::Points;

/// Direct type 1: `f_k = sum_j c_j e^{i sign k . x_j}` for all
/// `k in I_{N1} x I_{N2} x I_{N3}` (paper eq. 1 uses `sign = -1`).
///
/// Output is in generalized row-major order with `k1` fastest, each axis
/// running over ascending frequencies `-N/2 .. N/2-1`.
pub fn type1_direct<T: Real>(
    pts: &Points<T>,
    strengths: &[Complex<T>],
    modes: Shape,
    sign: i32,
) -> Vec<Complex<f64>> {
    assert_eq!(pts.len(), strengths.len());
    let s = sign as f64;
    let mut out = vec![Complex::<f64>::ZERO; modes.total()];
    // Loop order: points outer, modes inner, with incremental phase updates
    // per axis would be O(NM) anyway; keep it simple and robust.
    let k1s: Vec<i64> = freqs(modes.n[0]).collect();
    let k2s: Vec<i64> = freqs(modes.n[1]).collect();
    let k3s: Vec<i64> = freqs(modes.n[2]).collect();
    for (j, sj) in strengths.iter().enumerate().take(pts.len()) {
        let x = pts.coord(0, j).to_f64();
        let y = pts.coord(1, j).to_f64();
        let z = pts.coord(2, j).to_f64();
        let cj: Complex<f64> = sj.cast();
        let mut idx = 0usize;
        for &k3 in &k3s {
            for &k2 in &k2s {
                let base = s * (k2 as f64 * y + k3 as f64 * z);
                for &k1 in &k1s {
                    let phase = s * (k1 as f64 * x) + base;
                    out[idx] += cj * Complex::cis(phase);
                    idx += 1;
                }
            }
        }
    }
    out
}

/// Direct type 2: `c_j = sum_k f_k e^{i sign k . x_j}` (paper eq. 3 uses
/// `sign = +1`).
pub fn type2_direct<T: Real>(
    pts: &Points<T>,
    coeffs: &[Complex<T>],
    modes: Shape,
    sign: i32,
) -> Vec<Complex<f64>> {
    assert_eq!(coeffs.len(), modes.total());
    let s = sign as f64;
    let k1s: Vec<i64> = freqs(modes.n[0]).collect();
    let k2s: Vec<i64> = freqs(modes.n[1]).collect();
    let k3s: Vec<i64> = freqs(modes.n[2]).collect();
    (0..pts.len())
        .map(|j| {
            let x = pts.coord(0, j).to_f64();
            let y = pts.coord(1, j).to_f64();
            let z = pts.coord(2, j).to_f64();
            let mut acc = Complex::<f64>::ZERO;
            let mut idx = 0usize;
            for &k3 in &k3s {
                for &k2 in &k2s {
                    let base = s * (k2 as f64 * y + k3 as f64 * z);
                    for &k1 in &k1s {
                        let fk: Complex<f64> = coeffs[idx].cast();
                        acc += fk * Complex::cis(s * (k1 as f64 * x) + base);
                        idx += 1;
                    }
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;
    use crate::metrics::rel_l2;
    use crate::workload::{gen_points, gen_strengths, PointDist};

    /// A single point at the origin with unit strength gives f_k = 1 for
    /// every mode.
    #[test]
    fn type1_point_at_origin() {
        let pts = Points::<f64> {
            coords: [vec![0.0], vec![0.0], vec![]],
            dim: 2,
        };
        let out = type1_direct(&pts, &[c(1.0, 0.0)], Shape::d2(4, 4), -1);
        for z in &out {
            assert!((z.re - 1.0).abs() < 1e-14 && z.im.abs() < 1e-14);
        }
    }

    /// Plane-wave coefficients pick out a single exponential in type 2.
    #[test]
    fn type2_single_mode() {
        let modes = Shape::d1(8);
        let mut coeffs = vec![Complex::<f64>::ZERO; 8];
        // k = +2 lives at output index k - (-N/2) = 2 + 4 = 6
        coeffs[6] = c(1.0, 0.0);
        let xs = [0.3f64, -1.1, 2.0];
        let pts = Points::<f64> {
            coords: [xs.to_vec(), vec![], vec![]],
            dim: 1,
        };
        let out = type2_direct(&pts, &coeffs, modes, 1);
        for (j, &x) in xs.iter().enumerate() {
            let expect = Complex::cis(2.0 * x);
            assert!((out[j] - expect).abs() < 1e-14);
        }
    }

    /// Adjointness: <A c, f> = <c, A^H f> where A is type 1 with sign s and
    /// A^H is type 2 with sign -s.
    #[test]
    fn type1_type2_adjoint_pair() {
        let modes = Shape::d2(6, 5);
        let fine = modes; // unused by Rand
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 17, fine, 11);
        let cvec = gen_strengths::<f64>(17, 1);
        let fvec = gen_strengths::<f64>(modes.total(), 2);
        let a_c = type1_direct(&pts, &cvec, modes, -1);
        let ah_f = type2_direct(&pts, &fvec, modes, 1);
        let lhs = crate::metrics::inner(
            &a_c.iter().map(|z| z.cast::<f64>()).collect::<Vec<_>>(),
            &fvec,
        );
        let rhs = crate::metrics::inner(
            &cvec,
            &ah_f.iter().map(|z| z.cast::<f64>()).collect::<Vec<_>>(),
        );
        // <Ac, f> = <c, A^H f>  (A^H uses the conjugate exponential)
        assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    /// The two signs are complex conjugates of each other for real
    /// strengths placed symmetrically — sanity check sign handling.
    #[test]
    fn sign_flip_conjugates_output() {
        let pts = Points::<f64> {
            coords: [vec![0.7], vec![-0.2], vec![]],
            dim: 2,
        };
        let cs = [c(1.0, 0.0)];
        let plus = type1_direct(&pts, &cs, Shape::d2(4, 4), 1);
        let minus = type1_direct(&pts, &cs, Shape::d2(4, 4), -1);
        for (p, m) in plus.iter().zip(minus.iter()) {
            assert!((*p - m.conj()).abs() < 1e-14);
        }
    }

    #[test]
    fn linearity_of_type1() {
        let modes = Shape::d2(4, 4);
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 9, modes, 3);
        let c1 = gen_strengths::<f64>(9, 5);
        let c2 = gen_strengths::<f64>(9, 6);
        let sum: Vec<_> = c1.iter().zip(&c2).map(|(a, b)| *a + *b).collect();
        let f1 = type1_direct(&pts, &c1, modes, -1);
        let f2 = type1_direct(&pts, &c2, modes, -1);
        let fs = type1_direct(&pts, &sum, modes, -1);
        let combined: Vec<_> = f1.iter().zip(&f2).map(|(a, b)| *a + *b).collect();
        assert!(rel_l2(&fs, &combined) < 1e-13);
    }
}
