//! Shared numerics for the cuFINUFFT reproduction.
//!
//! This crate holds everything the higher layers agree on: the
//! [`real::Real`] scalar abstraction (so every transform exists in
//! f32 and f64), an interleaved [`complex::Complex`] type,
//! 5-smooth FFT size selection, grid/frequency indexing conventions, the
//! paper's benchmark workloads ("rand" and "cluster" point distributions),
//! error metrics, a typed error enum, and naive `O(NM)` reference
//! transforms used as ground truth by every accuracy test.

#![forbid(unsafe_code)]

pub mod complex;
pub mod error;
pub mod hazard;
pub mod lint;
pub mod metrics;
pub mod plan;
pub mod real;
pub mod reference;
pub mod shape;
pub mod smooth;
pub mod spec;
pub mod workload;

/// Transform type (paper Sec. I). Shared vocabulary across the CPU and
/// GPU libraries.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TransformType {
    /// Nonuniform to uniform (paper eq. 1).
    Type1,
    /// Uniform to nonuniform (paper eq. 3).
    Type2,
}

pub use complex::{c, Complex};
pub use error::{NufftError, Result};
pub use hazard::{
    AccessKind, AccessSite, ContractViolation, Hazard, HazardReport, KernelHazardReport,
};
pub use lint::{LintFinding, LintKind, LintLevel, LintReport};
pub use plan::NufftPlan;
pub use real::Real;
pub use shape::{freq_start, freq_to_bin, freqs, Shape};
pub use spec::{Method, ModeOrder, Precision, TransformSpec};
pub use workload::{gen_coeffs, gen_points, gen_strengths, points_for_density, PointDist, Points};
