//! Typed reports produced by the simulated-GPU hazard analysis
//! (`gpu-sim`'s access tracer + happens-before checker).
//!
//! The types live here, below `gpu-sim`, so every layer of the stack —
//! the simulator that detects hazards, the cuFINUFFT plan that exposes
//! them, and the tests that gate on them — shares one vocabulary
//! without depending on the simulator's internals.
//!
//! Terminology follows the ThreadSanitizer happens-before family of
//! dynamic race detectors: two memory accesses *conflict* when they
//! touch the same element of the same buffer from different threads (or
//! thread blocks) and are not both reads and not both atomics. A
//! conflict is a **hazard** when no synchronization orders the two
//! accesses — for threads of one block, a `barrier()`
//! (`__syncthreads`) between them; for different blocks of one launch,
//! nothing short of atomics can order them.

use std::fmt;

/// How a traced access touched memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain (non-atomic) store or read-modify-write.
    Write,
    /// Atomic read-modify-write (e.g. `atomicAdd`).
    Atomic,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Atomic => write!(f, "atomic"),
        }
    }
}

/// One side of a detected conflict: where in the launch the access came
/// from. `epoch` counts barriers the block has executed before the
/// access (the block-local sync epoch).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessSite {
    pub block: u32,
    pub thread: u32,
    pub epoch: u32,
    pub kind: AccessKind,
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by block {} thread {} (epoch {})",
            self.kind, self.block, self.thread, self.epoch
        )
    }
}

/// One detected data race: two unsynchronized conflicting accesses to
/// the same element of a named buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hazard {
    /// Name the kernel registered the buffer under.
    pub buffer: String,
    /// Element index within the buffer (tracer granularity, typically
    /// one real word so the two words of a complex add stay distinct).
    pub elem: u64,
    pub first: AccessSite,
    pub second: AccessSite,
    /// `true` for a same-block conflict (missing barrier), `false` for
    /// an inter-block conflict on a global buffer (missing atomic).
    pub intra_block: bool,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scope = if self.intra_block {
            "intra-block"
        } else {
            "inter-block"
        };
        write!(
            f,
            "{scope} hazard on '{}'[{}]: {} vs {}",
            self.buffer, self.elem, self.first, self.second
        )
    }
}

/// A mismatch between what a kernel *declared* to the performance model
/// and what its traced memory behavior *observed* — the drift the
/// contract checker exists to catch (a cost model charging for atomics
/// the functional code no longer performs, or vice versa).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContractViolation {
    /// Global atomics charged to the cost model vs. atomics traced on
    /// global buffers.
    GlobalAtomicCount { declared: u64, observed: u64 },
    /// Shared-memory atomics charged vs. traced on shared buffers.
    SharedAtomicCount { declared: u64, observed: u64 },
    /// The traced shared-memory high-water footprint exceeds the bytes
    /// declared in the launch configuration.
    SharedFootprint {
        declared_bytes: usize,
        observed_bytes: usize,
    },
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractViolation::GlobalAtomicCount { declared, observed } => write!(
                f,
                "global atomic count drift: cost model charged {declared}, trace observed {observed}"
            ),
            ContractViolation::SharedAtomicCount { declared, observed } => write!(
                f,
                "shared atomic count drift: cost model charged {declared}, trace observed {observed}"
            ),
            ContractViolation::SharedFootprint {
                declared_bytes,
                observed_bytes,
            } => write!(
                f,
                "shared footprint overflow: declared {declared_bytes} B, trace touched {observed_bytes} B"
            ),
        }
    }
}

/// Analysis result for one kernel launch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelHazardReport {
    pub kernel: String,
    /// Thread blocks the launch traced.
    pub blocks: u32,
    /// Total access records analyzed.
    pub accesses: u64,
    /// Detected hazards, capped at a reporting limit; `hazards_total`
    /// keeps the uncapped count.
    pub hazards: Vec<Hazard>,
    pub hazards_total: u64,
    pub violations: Vec<ContractViolation>,
}

impl KernelHazardReport {
    pub fn is_clean(&self) -> bool {
        self.hazards_total == 0 && self.violations.is_empty()
    }
}

impl fmt::Display for KernelHazardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} accesses over {} blocks, {} hazard(s), {} contract violation(s)",
            self.kernel,
            self.accesses,
            self.blocks,
            self.hazards_total,
            self.violations.len()
        )?;
        for h in &self.hazards {
            write!(f, "\n  {h}")?;
        }
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Aggregate of every kernel checked while hazard mode was active.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HazardReport {
    pub kernels: Vec<KernelHazardReport>,
}

impl HazardReport {
    pub fn is_clean(&self) -> bool {
        self.kernels.iter().all(|k| k.is_clean())
    }

    pub fn total_hazards(&self) -> u64 {
        self.kernels.iter().map(|k| k.hazards_total).sum()
    }

    pub fn total_violations(&self) -> usize {
        self.kernels.iter().map(|k| k.violations.len()).sum()
    }

    /// Reports for launches of the given kernel name.
    pub fn for_kernel<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a KernelHazardReport> {
        self.kernels.iter().filter(move |k| k.kernel == name)
    }
}

impl fmt::Display for HazardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hazard report: {} kernel launch(es), {} hazard(s), {} contract violation(s)",
            self.kernels.len(),
            self.total_hazards(),
            self.total_violations()
        )?;
        for k in &self.kernels {
            writeln!(f, "{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(block: u32, thread: u32, kind: AccessKind) -> AccessSite {
        AccessSite {
            block,
            thread,
            epoch: 0,
            kind,
        }
    }

    #[test]
    fn hazard_display_names_buffer_and_sites() {
        let h = Hazard {
            buffer: "fine_grid".into(),
            elem: 42,
            first: site(0, 1, AccessKind::Write),
            second: site(0, 2, AccessKind::Write),
            intra_block: true,
        };
        let s = h.to_string();
        assert!(s.contains("fine_grid"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("thread 1") && s.contains("thread 2"), "{s}");
        assert!(s.contains("intra-block"), "{s}");
    }

    #[test]
    fn report_cleanliness() {
        let mut r = HazardReport::default();
        r.kernels.push(KernelHazardReport {
            kernel: "spread_GM".into(),
            ..Default::default()
        });
        assert!(r.is_clean());
        r.kernels[0].hazards_total = 3;
        assert!(!r.is_clean());
        assert_eq!(r.total_hazards(), 3);
    }

    #[test]
    fn violation_display_shows_counts() {
        let v = ContractViolation::GlobalAtomicCount {
            declared: 10,
            observed: 4,
        };
        let s = v.to_string();
        assert!(s.contains("10") && s.contains('4'), "{s}");
        let v = ContractViolation::SharedFootprint {
            declared_bytes: 100,
            observed_bytes: 200,
        };
        assert!(v.to_string().contains("overflow"));
    }
}
