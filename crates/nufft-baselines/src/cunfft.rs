//! CUNFFT-style GPU NUFFT (Kunis & Kunis 2012), reimplemented on the
//! simulated device as the paper's input-driven baseline.
//!
//! Characteristics modeled from the real library and the paper's
//! measurements:
//!
//! * truncated **Gaussian** kernel ("fast Gaussian gridding",
//!   `-DCOM_FG_PSI=ON`) — needs roughly twice the ES kernel's width for
//!   the same accuracy, which is why CUNFFT falls behind as the
//!   tolerance tightens;
//! * **unsorted input-driven spreading** (one thread per point, user
//!   order, global atomics) — the paper's GM scheme; on clustered points
//!   its atomic traffic "essentially serializes the method" (Sec. III-A),
//!   observed as a ~200x slowdown in Fig. 6. We model the extra
//!   serialization of its atomic emulation with a CAS replay penalty
//!   calibrated to that figure;
//! * device memory is allocated at init (`cunfft_init`), so the paper
//!   could not separate "total" from "total+mem" — we therefore report
//!   only exec/total+mem-style aggregates.

use cufinufft::interp::interp_gm;
use cufinufft::plan::GpuStageTimings;
use cufinufft::spread::{spread_gm, PtsRef};
use gpu_sim::{Device, GpuBuffer, Precision};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::{freq_to_bin, freqs, Shape};
use nufft_common::smooth::fine_grid_size;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use nufft_fft::Direction;
use nufft_kernels::deconv::correction_rows;
use nufft_kernels::GaussianKernel;

/// Replay penalty of CUNFFT's atomic accumulation under same-sector
/// contention, calibrated to the ~200x clustered-vs-random slowdown of
/// paper Fig. 6.
pub const CUNFFT_CAS_PENALTY: f64 = 64.0;

/// A CUNFFT-style plan.
pub struct CunfftPlan<T: Real> {
    ttype: TransformType,
    modes: Shape,
    fine: Shape,
    iflag: i32,
    kernel: GaussianKernel,
    dev: Device,
    fft: gpu_fft::GpuFftPlan<T>,
    corr: [Vec<f64>; 3],
    d_grid: GpuBuffer<Complex<T>>,
    d_in: GpuBuffer<Complex<T>>,
    d_out: GpuBuffer<Complex<T>>,
    pts: Option<([GpuBuffer<T>; 3], usize, usize)>,
    timings: GpuStageTimings,
}

/// Map a device fault to the library error space. The baselines carry
/// no retry machinery: any fault surfaces immediately as a typed error.
pub(crate) fn dev_err(f: gpu_sim::DeviceFault) -> NufftError {
    match f.kind {
        gpu_sim::FaultKind::Oom {
            requested,
            available,
        } => NufftError::DeviceOom {
            requested,
            available,
        },
        _ => NufftError::DeviceFault {
            op: f.op,
            attempts: 1,
            persistent: !f.transient,
        },
    }
}

impl<T: Real> CunfftPlan<T> {
    pub fn new(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        eps: f64,
        dev: &Device,
    ) -> Result<Self> {
        if modes.is_empty() || modes.len() > 3 {
            return Err(NufftError::BadDim(modes.len()));
        }
        let sigma = 2.0;
        let kernel = GaussianKernel::for_tolerance(eps, sigma);
        let modes = Shape::from_slice(modes);
        let fine = modes.map(|_, n| fine_grid_size(n, sigma, kernel.w));
        let corr = correction_rows(&kernel, modes, fine);
        let fft = gpu_fft::GpuFftPlan::new(fine);
        let t0 = dev.clock();
        let d_grid = dev.alloc("cunfft_grid", fine.total()).map_err(dev_err)?;
        let d_in = dev.alloc("cunfft_in", 0).map_err(dev_err)?;
        let d_out = dev.alloc("cunfft_out", 0).map_err(dev_err)?;
        let timings = GpuStageTimings {
            alloc: dev.clock() - t0,
            ..Default::default()
        };
        Ok(CunfftPlan {
            ttype,
            modes,
            fine,
            iflag: if iflag >= 0 { 1 } else { -1 },
            kernel,
            dev: dev.clone(),
            fft,
            corr,
            d_grid,
            d_in,
            d_out,
            pts: None,
            timings,
        })
    }

    pub fn kernel(&self) -> &GaussianKernel {
        &self.kernel
    }

    pub fn timings(&self) -> GpuStageTimings {
        self.timings
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.fine
    }

    pub fn modes(&self) -> Shape {
        self.modes
    }

    pub fn transform_type(&self) -> TransformType {
        self.ttype
    }

    pub fn num_points(&self) -> usize {
        self.pts.as_ref().map_or(0, |p| p.1)
    }

    /// Transfer points to the device. CUNFFT does no sorting.
    pub fn set_pts(&mut self, pts: &Points<T>) -> Result<()> {
        if pts.dim != self.modes.dim {
            return Err(NufftError::BadDim(pts.dim));
        }
        let m = pts.len();
        let t0 = self.dev.clock();
        let mut bufs = [
            self.dev.alloc("cunfft_x", m).map_err(dev_err)?,
            self.dev
                .alloc("cunfft_y", if pts.dim >= 2 { m } else { 0 })
                .map_err(dev_err)?,
            self.dev
                .alloc("cunfft_z", if pts.dim >= 3 { m } else { 0 })
                .map_err(dev_err)?,
        ];
        let t_alloc = self.dev.clock() - t0;
        let t1 = self.dev.clock();
        for (buf, coords) in bufs.iter_mut().zip(&pts.coords).take(pts.dim) {
            self.dev.memcpy_htod(buf, coords).map_err(dev_err)?;
        }
        self.timings.h2d_pts = self.dev.clock() - t1;
        self.timings.alloc += t_alloc;
        self.timings.sort = 0.0; // no preprocessing
        self.pts = Some((bufs, m, pts.dim));
        Ok(())
    }

    pub fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let (bufs, m, dim) = match &self.pts {
            Some(s) => (&s.0, s.1, s.2),
            None => return Err(NufftError::PointsNotSet),
        };
        let n = self.modes.total();
        let (want_in, want_out) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != want_in || output.len() != want_out {
            return Err(NufftError::LengthMismatch {
                expected: want_in,
                got: input.len(),
            });
        }
        let prec = if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        };
        let cb = std::mem::size_of::<Complex<T>>();
        let t0 = self.dev.clock();
        if self.d_in.len() != want_in {
            self.d_in = self.dev.alloc("cunfft_in", want_in).map_err(dev_err)?;
        }
        if self.d_out.len() != want_out {
            self.d_out = self.dev.alloc("cunfft_out", want_out).map_err(dev_err)?;
        }
        self.timings.alloc += self.dev.clock() - t0;
        let t1 = self.dev.clock();
        self.dev
            .memcpy_htod(&mut self.d_in, input)
            .map_err(dev_err)?;
        self.timings.h2d_data = self.dev.clock() - t1;
        let pr = PtsRef {
            coords: [bufs[0].as_slice(), bufs[1].as_slice(), bufs[2].as_slice()],
            dim,
        };
        let natural: Vec<u32> = (0..m as u32).collect();
        let dir = Direction::from_sign(self.iflag);
        match self.ttype {
            TransformType::Type1 => {
                let t = self.dev.clock();
                self.d_grid
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|z| *z = Complex::ZERO);
                self.dev
                    .bulk_op("cunfft_memset", 0, self.fine.total() * cb, 0.0, prec);
                spread_gm(
                    &self.dev,
                    "cunfft_spread",
                    &self.kernel,
                    self.fine,
                    &pr,
                    self.d_in.as_slice(),
                    &natural,
                    self.d_grid.as_mut_slice(),
                    256, // THREAD_DIM_X * THREAD_DIM_Y = 16 * 16
                    CUNFFT_CAS_PENALTY,
                )
                .map_err(dev_err)?;
                self.timings.spread_interp = self.dev.clock() - t;
                let t = self.dev.clock();
                self.fft.execute(&self.dev, &mut self.d_grid, dir);
                self.timings.fft = self.dev.clock() - t;
                let t = self.dev.clock();
                deconv_copy(
                    &self.corr,
                    self.modes,
                    self.fine,
                    self.d_grid.as_slice(),
                    self.d_out.as_mut_slice(),
                    false,
                );
                self.dev
                    .bulk_op("cunfft_deconv", n * cb, n * cb, n as f64 * 8.0, prec);
                self.timings.deconv = self.dev.clock() - t;
            }
            TransformType::Type2 => {
                let t = self.dev.clock();
                self.d_grid
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|z| *z = Complex::ZERO);
                self.dev
                    .bulk_op("cunfft_memset", 0, self.fine.total() * cb, 0.0, prec);
                deconv_copy(
                    &self.corr,
                    self.modes,
                    self.fine,
                    self.d_in.as_slice(),
                    self.d_grid.as_mut_slice(),
                    true,
                );
                self.dev
                    .bulk_op("cunfft_precorrect", n * cb, n * cb, n as f64 * 8.0, prec);
                self.timings.deconv = self.dev.clock() - t;
                let t = self.dev.clock();
                self.fft.execute(&self.dev, &mut self.d_grid, dir);
                self.timings.fft = self.dev.clock() - t;
                let t = self.dev.clock();
                interp_gm(
                    &self.dev,
                    "cunfft_interp",
                    &self.kernel,
                    self.fine,
                    &pr,
                    self.d_grid.as_slice(),
                    &natural,
                    self.d_out.as_mut_slice(),
                    256,
                )
                .map_err(dev_err)?;
                self.timings.spread_interp = self.dev.clock() - t;
            }
        }
        let t2 = self.dev.clock();
        self.dev.memcpy_dtoh(output, &self.d_out).map_err(dev_err)?;
        self.timings.d2h = self.dev.clock() - t2;
        Ok(())
    }
}

/// CUNFFT has no native batching; the trait's default `execute_many`
/// loop applies.
impl<T: Real> nufft_common::NufftPlan<T> for CunfftPlan<T> {
    fn transform_type(&self) -> TransformType {
        self.ttype
    }

    fn modes(&self) -> Shape {
        self.modes
    }

    fn num_points(&self) -> usize {
        CunfftPlan::num_points(self)
    }

    fn set_points(&mut self, pts: &Points<T>) -> Result<()> {
        self.set_pts(pts)
    }

    fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        CunfftPlan::execute(self, input, output)
    }

    fn exec_time(&self) -> f64 {
        self.timings.exec()
    }

    fn total_time(&self) -> f64 {
        self.timings.total_mem()
    }

    fn backend_name(&self) -> &'static str {
        "cunfft"
    }
}

/// Shared mode<->fine-grid copy with correction factors. `into_grid`
/// selects the type-2 direction (write into the zero-padded grid).
pub(crate) fn deconv_copy<T: Real>(
    corr: &[Vec<f64>; 3],
    modes: Shape,
    fine: Shape,
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    into_grid: bool,
) {
    let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
        .enumerate()
        .map(|(j, k)| (freq_to_bin(k, fine.n[0]), corr[0][j]))
        .collect();
    let mut idx = 0usize;
    for (j3, k3) in freqs(modes.n[2]).enumerate() {
        let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
        let p3 = corr[2][j3];
        for (j2, k2) in freqs(modes.n[1]).enumerate() {
            let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
            let p23 = p3 * corr[1][j2];
            for (b1, p1) in &k1s {
                if into_grid {
                    dst[b2 + b1] = src[idx].scale(T::from_f64(p1 * p23));
                } else {
                    dst[idx] = src[b2 + b1].scale(T::from_f64(p1 * p23));
                }
                idx += 1;
            }
        }
    }
}
