//! GPU NUFFT comparator libraries, reimplemented on the simulated device
//! so the paper's cross-library benchmarks (Figs. 4-7) can run end to
//! end: [`cunfft::CunfftPlan`] (input-driven Gaussian gridding, unsorted)
//! and [`gpunufft::GpunufftPlan`] (output-driven sector gather with a
//! Kaiser-Bessel lookup-table kernel).

#![forbid(unsafe_code)]

pub mod cunfft;
pub mod gpunufft;

pub use cunfft::CunfftPlan;
pub use gpunufft::GpunufftPlan;
