//! gpuNUFFT-style GPU gridding (Knoll et al. 2014), reimplemented on the
//! simulated device as the paper's output-driven (gather) baseline.
//!
//! Characteristics modeled from the real library:
//!
//! * **Kaiser–Bessel** kernel evaluated through a lookup table — the LUT
//!   quantization puts a floor on achievable accuracy (the paper observed
//!   gpuNUFFT's error "appears always to exceed 1e-3");
//! * kernel width capped by the **sector width 8** design;
//! * **CPU pre-sorting** of points into sectors when the operator is
//!   built (the paper excludes this from "total+mem"; so do we);
//! * type 1 gridding is **output-driven**: thread blocks own sectors and
//!   gather from candidate points of the 3^d sector neighbourhood,
//!   paying a distance check for every (cell, candidate) pair — the
//!   brute-force factor that makes gpuNUFFT an order of magnitude slower
//!   than input-driven spreading at matched accuracy;
//! * host (CPU) arrays in, host arrays out, so every call pays transfers.

use cufinufft::interp::interp_gm;
use cufinufft::plan::GpuStageTimings;
use cufinufft::spread::PtsRef;
use gpu_sim::{Device, GpuBuffer, LaunchConfig, Precision};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_common::smooth::fine_grid_size;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use nufft_fft::Direction;
use nufft_kernels::deconv::correction_rows;
use nufft_kernels::{grid_coord, spread_footprint, KaiserBesselKernel, Kernel1d};

/// gpuNUFFT's fixed sector width in fine-grid cells.
pub const SECTOR_WIDTH: usize = 8;
/// Entries in the kernel lookup table (sets the accuracy floor).
pub const LUT_SIZE: usize = 1024;
/// Candidate-chunk size per thread block (sector processing in passes).
const CHUNK: usize = 512;

/// Kaiser–Bessel kernel evaluated through a nearest-entry lookup table,
/// as gpuNUFFT's texture fetch does.
#[derive(Copy, Clone)]
pub struct LutKernel {
    pub inner: KaiserBesselKernel,
    table: [f64; LUT_SIZE],
}

impl LutKernel {
    pub fn new(inner: KaiserBesselKernel) -> Self {
        let mut table = [0.0; LUT_SIZE];
        for (i, t) in table.iter_mut().enumerate() {
            let z = i as f64 / (LUT_SIZE - 1) as f64;
            *t = inner.eval(z);
        }
        LutKernel { inner, table }
    }
}

impl Kernel1d for LutKernel {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn eval(&self, z: f64) -> f64 {
        let a = z.abs();
        if a > 1.0 {
            return 0.0;
        }
        let i = (a * (LUT_SIZE - 1) as f64).round() as usize;
        self.table[i.min(LUT_SIZE - 1)]
    }

    fn ft(&self, xi: f64) -> f64 {
        self.inner.ft(xi)
    }
}

/// Host-side sector sort (gpuNUFFT builds this on the CPU when the
/// operator is created; no device time charged).
struct SectorSort {
    nsec: [usize; 3],
    /// point indices grouped by sector (CSR layout)
    perm: Vec<u32>,
    starts: Vec<u32>,
}

fn sector_sort<T: Real>(pts: &Points<T>, fine: Shape) -> SectorSort {
    let mut nsec = [1usize; 3];
    for (ns, &n) in nsec.iter_mut().zip(&fine.n).take(fine.dim) {
        *ns = n.div_ceil(SECTOR_WIDTH);
    }
    let total = nsec[0] * nsec[1] * nsec[2];
    let m = pts.len();
    let sector_of = |j: usize| -> usize {
        let mut s = [0usize; 3];
        for (i, si) in s.iter_mut().enumerate().take(pts.dim) {
            let g = grid_coord(pts.coord(i, j).to_f64(), fine.n[i]);
            *si = ((g as usize).min(fine.n[i] - 1)) / SECTOR_WIDTH;
        }
        s[0] + nsec[0] * (s[1] + nsec[1] * s[2])
    };
    let mut counts = vec![0u32; total + 1];
    let secs: Vec<u32> = (0..m)
        .map(|j| {
            let s = sector_of(j);
            counts[s + 1] += 1;
            s as u32
        })
        .collect();
    for s in 0..total {
        counts[s + 1] += counts[s];
    }
    let starts = counts.clone();
    let mut cursor = counts;
    let mut perm = vec![0u32; m];
    for (j, &s) in secs.iter().enumerate() {
        perm[cursor[s as usize] as usize] = j as u32;
        cursor[s as usize] += 1;
    }
    SectorSort { nsec, perm, starts }
}

/// A gpuNUFFT-style plan.
pub struct GpunufftPlan<T: Real> {
    ttype: TransformType,
    modes: Shape,
    fine: Shape,
    iflag: i32,
    kernel: LutKernel,
    dev: Device,
    fft: gpu_fft::GpuFftPlan<T>,
    corr: [Vec<f64>; 3],
    d_grid: GpuBuffer<Complex<T>>,
    d_in: GpuBuffer<Complex<T>>,
    d_out: GpuBuffer<Complex<T>>,
    pts_host: Option<Points<T>>,
    sort: Option<SectorSort>,
    d_pts: Option<[GpuBuffer<T>; 3]>,
    timings: GpuStageTimings,
}

use crate::cunfft::dev_err;

impl<T: Real> GpunufftPlan<T> {
    pub fn new(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        eps: f64,
        dev: &Device,
    ) -> Result<Self> {
        if modes.is_empty() || modes.len() > 3 {
            return Err(NufftError::BadDim(modes.len()));
        }
        let sigma = 2.0;
        let kb = KaiserBesselKernel::for_tolerance(eps, sigma);
        let kernel = LutKernel::new(kb);
        let modes = Shape::from_slice(modes);
        let fine = modes.map(|_, n| {
            // sector tiling requires fine sizes to be sector multiples
            let base = fine_grid_size(n, sigma, kernel.width());
            base.div_ceil(SECTOR_WIDTH) * SECTOR_WIDTH
        });
        let corr = correction_rows(&kernel, modes, fine);
        let fft = gpu_fft::GpuFftPlan::new(fine);
        let t0 = dev.clock();
        let d_grid = dev.alloc("gpunufft_grid", fine.total()).map_err(dev_err)?;
        let d_in = dev.alloc("gpunufft_in", 0).map_err(dev_err)?;
        let d_out = dev.alloc("gpunufft_out", 0).map_err(dev_err)?;
        let timings = GpuStageTimings {
            alloc: dev.clock() - t0,
            ..Default::default()
        };
        Ok(GpunufftPlan {
            ttype,
            modes,
            fine,
            iflag: if iflag >= 0 { 1 } else { -1 },
            kernel,
            dev: dev.clone(),
            fft,
            corr,
            d_grid,
            d_in,
            d_out,
            pts_host: None,
            sort: None,
            d_pts: None,
            timings,
        })
    }

    pub fn kernel_width(&self) -> usize {
        self.kernel.width()
    }

    pub fn timings(&self) -> GpuStageTimings {
        self.timings
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.fine
    }

    pub fn modes(&self) -> Shape {
        self.modes
    }

    pub fn transform_type(&self) -> TransformType {
        self.ttype
    }

    pub fn num_points(&self) -> usize {
        self.pts_host.as_ref().map_or(0, |p| p.len())
    }

    /// Build the operator: CPU sector sort (uncharged, per the paper's
    /// timing methodology) + transfer of the sorted point arrays.
    pub fn set_pts(&mut self, pts: &Points<T>) -> Result<()> {
        if pts.dim != self.modes.dim {
            return Err(NufftError::BadDim(pts.dim));
        }
        let m = pts.len();
        let sort = sector_sort(pts, self.fine);
        let t0 = self.dev.clock();
        let mut bufs = [
            self.dev.alloc("gpunufft_x", m).map_err(dev_err)?,
            self.dev
                .alloc("gpunufft_y", if pts.dim >= 2 { m } else { 0 })
                .map_err(dev_err)?,
            self.dev
                .alloc("gpunufft_z", if pts.dim >= 3 { m } else { 0 })
                .map_err(dev_err)?,
        ];
        for (buf, coords) in bufs.iter_mut().zip(&pts.coords).take(pts.dim) {
            self.dev.memcpy_htod(buf, coords).map_err(dev_err)?;
        }
        // the paper excludes operator construction from total+mem; track
        // the transfer under h2d but zero the sort stage
        self.timings.h2d_pts = self.dev.clock() - t0;
        self.timings.sort = 0.0;
        self.sort = Some(sort);
        self.d_pts = Some(bufs);
        self.pts_host = Some(pts.clone());
        Ok(())
    }

    pub fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let m = self
            .pts_host
            .as_ref()
            .map(|p| p.len())
            .ok_or(NufftError::PointsNotSet)?;
        let n = self.modes.total();
        let (want_in, want_out) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != want_in || output.len() != want_out {
            return Err(NufftError::LengthMismatch {
                expected: want_in,
                got: input.len(),
            });
        }
        let prec = if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        };
        let cb = std::mem::size_of::<Complex<T>>();
        let t0 = self.dev.clock();
        if self.d_in.len() != want_in {
            self.d_in = self.dev.alloc("gpunufft_in", want_in).map_err(dev_err)?;
        }
        if self.d_out.len() != want_out {
            self.d_out = self.dev.alloc("gpunufft_out", want_out).map_err(dev_err)?;
        }
        self.timings.alloc += self.dev.clock() - t0;
        let t1 = self.dev.clock();
        self.dev
            .memcpy_htod(&mut self.d_in, input)
            .map_err(dev_err)?;
        self.timings.h2d_data = self.dev.clock() - t1;
        let dir = Direction::from_sign(self.iflag);
        match self.ttype {
            TransformType::Type1 => {
                let t = self.dev.clock();
                self.d_grid
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|z| *z = Complex::ZERO);
                self.dev
                    .bulk_op("gpunufft_memset", 0, self.fine.total() * cb, 0.0, prec);
                self.gather_gridding().map_err(dev_err)?;
                self.timings.spread_interp = self.dev.clock() - t;
                let t = self.dev.clock();
                self.fft.execute(&self.dev, &mut self.d_grid, dir);
                self.timings.fft = self.dev.clock() - t;
                let t = self.dev.clock();
                crate::cunfft::deconv_copy(
                    &self.corr,
                    self.modes,
                    self.fine,
                    self.d_grid.as_slice(),
                    self.d_out.as_mut_slice(),
                    false,
                );
                self.dev
                    .bulk_op("gpunufft_deconv", n * cb, n * cb, n as f64 * 8.0, prec);
                self.timings.deconv = self.dev.clock() - t;
            }
            TransformType::Type2 => {
                let t = self.dev.clock();
                self.d_grid
                    .as_mut_slice()
                    .iter_mut()
                    .for_each(|z| *z = Complex::ZERO);
                self.dev
                    .bulk_op("gpunufft_memset", 0, self.fine.total() * cb, 0.0, prec);
                crate::cunfft::deconv_copy(
                    &self.corr,
                    self.modes,
                    self.fine,
                    self.d_in.as_slice(),
                    self.d_grid.as_mut_slice(),
                    true,
                );
                self.dev
                    .bulk_op("gpunufft_precorrect", n * cb, n * cb, n as f64 * 8.0, prec);
                self.timings.deconv = self.dev.clock() - t;
                let t = self.dev.clock();
                self.fft.execute(&self.dev, &mut self.d_grid, dir);
                self.timings.fft = self.dev.clock() - t;
                let t = self.dev.clock();
                let sort = self.sort.as_ref().expect("points set");
                let bufs = self.d_pts.as_ref().expect("points set");
                let pr = PtsRef {
                    coords: [bufs[0].as_slice(), bufs[1].as_slice(), bufs[2].as_slice()],
                    dim: self.modes.dim,
                };
                interp_gm(
                    &self.dev,
                    "gpunufft_forward",
                    &self.kernel,
                    self.fine,
                    &pr,
                    self.d_grid.as_slice(),
                    &sort.perm,
                    self.d_out.as_mut_slice(),
                    SECTOR_WIDTH * SECTOR_WIDTH,
                )
                .map_err(dev_err)?;
                // per-pair distance computation + LUT fetches without
                // tensor-product factorization (same inefficiency as the
                // adjoint path), on top of the generic gather cost
                let w = self.kernel.width();
                let pairs = m as f64 * (w as f64).powi(self.modes.dim as i32);
                self.dev
                    .bulk_op("gpunufft_forward_pairs", 0, 0, pairs * 90.0, prec);
                self.timings.spread_interp = self.dev.clock() - t;
            }
        }
        let t2 = self.dev.clock();
        self.dev.memcpy_dtoh(output, &self.d_out).map_err(dev_err)?;
        self.timings.d2h = self.dev.clock() - t2;
        Ok(())
    }

    /// Output-driven adjoint gridding: one block per (sector, candidate
    /// chunk); each of the sector's cells checks every candidate point.
    fn gather_gridding(&mut self) -> std::result::Result<(), gpu_sim::DeviceFault> {
        let pts = self.pts_host.as_ref().expect("points set");
        let sort = self.sort.as_ref().expect("points set");
        let fine = self.fine;
        let dim = self.modes.dim;
        let [n1, n2, n3] = fine.n;
        let cb = std::mem::size_of::<Complex<T>>();
        let prec = if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        };
        let strengths = self.d_in.as_slice();
        let grid = self.d_grid.as_mut_slice();
        let cells_per_sector = SECTOR_WIDTH.pow(dim as u32);
        let mut k = self.dev.kernel(
            "gpunufft_adjoint",
            LaunchConfig::new(prec, cells_per_sector.min(512)),
        )?;
        k.atomic_region(fine.total(), cb);
        let nsec = sort.nsec;
        let total_sectors = nsec[0] * nsec[1] * nsec[2];
        let neighbors = |s: usize| -> Vec<usize> {
            let s1 = s % nsec[0];
            let r = s / nsec[0];
            let (s2, s3) = (r % nsec[1], r / nsec[1]);
            let mut out = Vec::new();
            let span = |c: usize, n: usize| -> Vec<usize> {
                if n == 1 {
                    vec![0]
                } else {
                    // periodic 3-neighbourhood
                    let mut v = vec![c];
                    v.push((c + 1) % n);
                    v.push((c + n - 1) % n);
                    v.sort_unstable();
                    v.dedup();
                    v
                }
            };
            for a3 in span(s3, nsec[2]) {
                for a2 in span(s2, nsec[1]) {
                    for a1 in span(s1, nsec[0]) {
                        out.push(a1 + nsec[0] * (a2 + nsec[1] * a3));
                    }
                }
            }
            out
        };
        let mut addrs = [0usize; 32];
        for sec in 0..total_sectors {
            // candidate list: all points of the 3^d sector neighbourhood
            let mut candidates: Vec<u32> = Vec::new();
            for nb in neighbors(sec) {
                candidates.extend_from_slice(
                    &sort.perm[sort.starts[nb] as usize..sort.starts[nb + 1] as usize],
                );
            }
            if candidates.is_empty() {
                continue;
            }
            // sector cell origin
            let s1 = sec % nsec[0];
            let r = sec / nsec[0];
            let (s2, s3) = (r % nsec[1], r / nsec[1]);
            let o = [s1 * SECTOR_WIDTH, s2 * SECTOR_WIDTH, s3 * SECTOR_WIDTH];
            for chunk in candidates.chunks(CHUNK) {
                let mut b = k.block();
                // candidate point loads (scattered gathers)
                for warp in chunk.chunks(32) {
                    for arr in 0..dim + 1 {
                        for (l, &j) in warp.iter().enumerate() {
                            addrs[l] = j as usize * T::BYTES + arr * 7919; // distinct arrays
                        }
                        b.warp_access(&addrs[..warp.len()]);
                    }
                }
                // every (cell, candidate) pair pays distance computation
                // in all axes plus the in-range test (gpuNUFFT computes
                // these per pair; no tensor-product factorization)
                let checked = cells_per_sector as u64 * chunk.len() as u64;
                b.flops(checked * 24);
                // functional + accepted-pair accounting via footprints
                let mut accepted = 0u64;
                for &jr in chunk {
                    let j = jr as usize;
                    let prf = PtsRef {
                        coords: [&pts.coords[0], &pts.coords[1], &pts.coords[2]],
                        dim,
                    };
                    let fp = sector_clipped_footprint(&self.kernel, fine, &prf, j, o, dim);
                    if let Some((cells, weights)) = fp {
                        accepted += cells.len() as u64;
                        let c = strengths[j];
                        for (cell, wgt) in cells.iter().zip(weights.iter()) {
                            grid[*cell] += c.scale(T::from_f64(*wgt));
                            b.global_atomic(*cell);
                            b.global_atomic(*cell);
                        }
                    }
                }
                // accepted pairs additionally pay per-axis LUT fetches
                // and the complex multiply-accumulate
                b.flops(accepted * 80);
                // sector-region writes: contiguous rows of the sector
                for c3 in 0..if dim >= 3 { SECTOR_WIDTH } else { 1 } {
                    for c2 in 0..if dim >= 2 { SECTOR_WIDTH } else { 1 } {
                        let base = (o[2] + c3) * n1 * n2 + (o[1] + c2) * n1 + o[0];
                        b.stream_span(base * cb, SECTOR_WIDTH * cb, true);
                    }
                }
                b.finish();
            }
        }
        let _ = n3;
        self.dev.launch_end(k);
        Ok(())
    }
}

/// gpuNUFFT has no native batching; the trait's default `execute_many`
/// loop applies.
impl<T: Real> nufft_common::NufftPlan<T> for GpunufftPlan<T> {
    fn transform_type(&self) -> TransformType {
        self.ttype
    }

    fn modes(&self) -> Shape {
        self.modes
    }

    fn num_points(&self) -> usize {
        GpunufftPlan::num_points(self)
    }

    fn set_points(&mut self, pts: &Points<T>) -> Result<()> {
        self.set_pts(pts)
    }

    fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        GpunufftPlan::execute(self, input, output)
    }

    fn exec_time(&self) -> f64 {
        self.timings.exec()
    }

    fn total_time(&self) -> f64 {
        self.timings.total_mem()
    }

    fn backend_name(&self) -> &'static str {
        "gpunufft"
    }
}

/// Compute the (cell, weight) pairs of point `j`'s footprint clipped to
/// the sector starting at `o` (size SECTOR_WIDTH^dim), with periodic
/// wrapping. Returns `None` when the footprint misses the sector.
fn sector_clipped_footprint<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    j: usize,
    o: [usize; 3],
    dim: usize,
) -> Option<(Vec<usize>, Vec<f64>)> {
    let w = kernel.width();
    let [n1, n2, _n3] = fine.n;
    let mut idx: [Vec<(usize, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for i in 0..3 {
        if i >= dim {
            idx[i].push((0, 1.0));
            continue;
        }
        let n = fine.n[i];
        let g = grid_coord(pts.coord(i, j).to_f64(), n);
        let (l0, z0) = spread_footprint(g, w);
        let step = 2.0 / w as f64;
        for t in 0..w {
            let cell = (l0 + t as i64).rem_euclid(n as i64) as usize;
            if cell >= o[i] && cell < o[i] + SECTOR_WIDTH {
                idx[i].push((cell, kernel.eval(z0 + t as f64 * step)));
            }
        }
        if idx[i].is_empty() {
            return None;
        }
    }
    let mut cells = Vec::new();
    let mut weights = Vec::new();
    for &(c3, w3) in &idx[2] {
        for &(c2, w2) in &idx[1] {
            for &(c1, w1) in &idx[0] {
                cells.push(c1 + n1 * (c2 + n2 * c3));
                weights.push(w1 * w2 * w3);
            }
        }
    }
    Some((cells, weights))
}
