//! Correctness and behaviour of the comparator libraries.

use gpu_sim::Device;
use nufft_baselines::{CunfftPlan, GpunufftPlan};
use nufft_common::metrics::rel_l2;
use nufft_common::reference::{type1_direct, type2_direct};
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, Points, Shape, TransformType};

#[test]
fn cunfft_type1_meets_moderate_tolerances() {
    for eps in [1e-2, 1e-4, 1e-6] {
        let dev = Device::v100();
        let modes = [20usize, 16];
        let shape = Shape::from_slice(&modes);
        let mut plan = CunfftPlan::<f64>::new(TransformType::Type1, &modes, -1, eps, &dev).unwrap();
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 300, plan.fine_grid_shape(), 1);
        let cs = gen_strengths::<f64>(300, 2);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, shape, -1);
        let err = rel_l2(&out, &want);
        assert!(err < 30.0 * eps, "eps={eps}: err={err}");
    }
}

#[test]
fn cunfft_type2_works() {
    let dev = Device::v100();
    let modes = [18usize, 22];
    let shape = Shape::from_slice(&modes);
    let mut plan = CunfftPlan::<f64>::new(TransformType::Type2, &modes, 1, 1e-5, &dev).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, 250, plan.fine_grid_shape(), 3);
    let f = gen_coeffs::<f64>(shape.total(), 4);
    plan.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; 250];
    plan.execute(&f, &mut out).unwrap();
    let want = type2_direct(&pts, &f, shape, 1);
    assert!(rel_l2(&out, &want) < 1e-4);
}

#[test]
fn cunfft_needs_wider_kernel_than_cufinufft() {
    let dev = Device::v100();
    let cn = CunfftPlan::<f32>::new(TransformType::Type1, &[64, 64], -1, 1e-5, &dev).unwrap();
    let cf = cufinufft::Plan::<f32>::builder(TransformType::Type1, &[64, 64])
        .eps(1e-5)
        .build(&dev)
        .unwrap();
    assert!(cn.kernel().w > cf.kernel().w);
}

#[test]
fn cunfft_collapses_on_clustered_points() {
    // the paper's Fig. 6: CUNFFT slows ~200x on "cluster" for type 1
    let dev = Device::v100();
    let modes = [256usize, 256];
    let m = 50_000;
    let run = |dist: PointDist| -> f64 {
        let mut plan =
            CunfftPlan::<f32>::new(TransformType::Type1, &modes, -1, 1e-2, &dev).unwrap();
        let pts: Points<f32> = gen_points(dist, 2, m, plan.fine_grid_shape(), 5);
        let cs = gen_strengths::<f32>(m, 6);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f32>::ZERO; modes[0] * modes[1]];
        plan.execute(&cs, &mut out).unwrap();
        plan.timings().exec()
    };
    let t_rand = run(PointDist::Rand);
    let t_cluster = run(PointDist::Cluster);
    assert!(
        t_cluster > 30.0 * t_rand,
        "cluster {t_cluster} should be >30x rand {t_rand}"
    );
}

#[test]
fn gpunufft_type1_accuracy_floor() {
    // LUT kernel + width cap: fine at 1e-2, saturates by ~1e-4
    let dev = Device::v100();
    let modes = [20usize, 20];
    let shape = Shape::from_slice(&modes);
    let mut errs = Vec::new();
    for eps in [1e-2, 1e-8] {
        let mut plan =
            GpunufftPlan::<f64>::new(TransformType::Type1, &modes, -1, eps, &dev).unwrap();
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 300, plan.fine_grid_shape(), 7);
        let cs = gen_strengths::<f64>(300, 8);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, shape, -1);
        errs.push(rel_l2(&out, &want));
    }
    assert!(errs[0] < 1e-1, "moderate accuracy works: {}", errs[0]);
    // requesting 1e-8 cannot be honored: floor well above it
    assert!(errs[1] > 1e-7, "LUT/width floor expected: {}", errs[1]);
}

#[test]
fn gpunufft_type2_works() {
    let dev = Device::v100();
    let modes = [16usize, 12];
    let shape = Shape::from_slice(&modes);
    let mut plan = GpunufftPlan::<f64>::new(TransformType::Type2, &modes, 1, 1e-3, &dev).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, 200, plan.fine_grid_shape(), 9);
    let f = gen_coeffs::<f64>(shape.total(), 10);
    plan.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; 200];
    plan.execute(&f, &mut out).unwrap();
    let want = type2_direct(&pts, &f, shape, 1);
    assert!(rel_l2(&out, &want) < 1e-2);
}

#[test]
fn gpunufft_3d_gather_matches_direct() {
    let dev = Device::v100();
    let modes = [8usize, 10, 6];
    let shape = Shape::from_slice(&modes);
    let mut plan = GpunufftPlan::<f64>::new(TransformType::Type1, &modes, -1, 1e-3, &dev).unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 3, 150, plan.fine_grid_shape(), 11);
    let cs = gen_strengths::<f64>(150, 12);
    plan.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; shape.total()];
    plan.execute(&cs, &mut out).unwrap();
    let want = type1_direct(&pts, &cs, shape, -1);
    assert!(rel_l2(&out, &want) < 1e-2, "{}", rel_l2(&out, &want));
}

#[test]
fn gpunufft_gather_agrees_with_cufinufft_structurally() {
    // same transform through the output-driven gather and cuFINUFFT must
    // agree up to the kernels' differing accuracy (~LUT floor)
    let dev = Device::v100();
    let modes = [24usize, 24];
    let shape = Shape::from_slice(&modes);
    let mut g = GpunufftPlan::<f64>::new(TransformType::Type1, &modes, -1, 1e-3, &dev).unwrap();
    let mut c = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes)
        .eps(1e-9)
        .build(&dev)
        .unwrap();
    let pts: Points<f64> = gen_points(PointDist::Cluster, 2, 400, g.fine_grid_shape(), 13);
    let cs = gen_strengths::<f64>(400, 14);
    g.set_pts(&pts).unwrap();
    c.set_pts(&pts).unwrap();
    let mut go = vec![Complex::<f64>::ZERO; shape.total()];
    let mut co = vec![Complex::<f64>::ZERO; shape.total()];
    g.execute(&cs, &mut go).unwrap();
    c.execute(&cs, &mut co).unwrap();
    assert!(rel_l2(&go, &co) < 1e-2);
}

#[test]
fn gpunufft_slower_than_cufinufft_at_matched_settings() {
    let dev = Device::v100();
    let modes = [256usize, 256];
    let m = 100_000;
    let mut g = GpunufftPlan::<f32>::new(TransformType::Type1, &modes, -1, 1e-2, &dev).unwrap();
    let pts: Points<f32> = gen_points(PointDist::Rand, 2, m, g.fine_grid_shape(), 15);
    let cs = gen_strengths::<f32>(m, 16);
    g.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f32>::ZERO; modes[0] * modes[1]];
    g.execute(&cs, &mut out).unwrap();
    let t_g = g.timings().exec();
    let mut c = cufinufft::Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-2)
        .build(&dev)
        .unwrap();
    c.set_pts(&pts).unwrap();
    c.execute(&cs, &mut out).unwrap();
    let t_c = c.timings().exec();
    assert!(
        t_g > 5.0 * t_c,
        "gpuNUFFT {t_g} should be much slower than cuFINUFFT {t_c}"
    );
}
