//! Integration tier for the static kernel verifier:
//!
//! * **quick matrix green** — every shipped kernel plan over the quick
//!   spec matrix is bounds-safe, race-class-clean, contract-consistent,
//!   and launch-feasible, with `lint.*` counters mirrored to the trace;
//! * **negative controls** — a deliberately out-of-bounds footprint and
//!   an under-declared-atomics contract are both flagged statically,
//!   with their stable finding ids;
//! * **static refines dynamic** — replay real `HazardMode::Check`
//!   kernel traces from full plan lifecycles (type 1 + type 2) and
//!   assert every recorded access is contained in the static plan's
//!   predicted set, across GM / GM-sort / SM × 2D / 3D × precisions.

use std::collections::BTreeMap;

use cufinufft::access_plan::{
    plans_for, spread_gm_oob_plan, spread_gm_racy_plan, spread_gm_underdeclared_plan, PlanGeometry,
};
use cufinufft::{Method, Plan, Tuning};
use gpu_sim::{AccessPlan, Device, DeviceProps, HazardMode};
use nufft_common::real::Real;
use nufft_common::spec::{Precision, TransformSpec};
use nufft_common::workload::{gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, TransformType};
use nufft_lint::lint_access_plans;
use nufft_trace::Trace;

#[test]
fn quick_matrix_proves_all_shipped_kernels_clean() {
    let trace = Trace::new();
    let report = lint_access_plans(false, Some(&trace));
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(report.is_clean(), "{}", rendered.join("\n"));
    assert!(report.configs_checked >= 40, "{}", report.configs_checked);
    assert!(report.plans_checked >= 100, "{}", report.plans_checked);
    let rep = trace.report();
    for key in [
        "lint.configs_checked",
        "lint.configs_skipped",
        "lint.plans_checked",
        "lint.errors",
        "lint.warnings",
    ] {
        assert!(rep.counters.contains_key(key), "missing counter {key}");
    }
    assert_eq!(rep.counters["lint.errors"], 0);
}

#[test]
fn negative_controls_are_flagged_through_the_full_checker() {
    let spec = TransformSpec::type1(&[64, 64])
        .eps(1e-5)
        .precision(Precision::F32);
    let props = DeviceProps::v100();
    let g = PlanGeometry::from_spec(&spec, 2000, &Tuning::default(), props.shared_mem_per_block)
        .expect("geometry");
    let budget = Tuning::default()
        .shared_mem_budget
        .min(props.shared_mem_per_block);

    let oob = spread_gm_oob_plan(&g).check_all(&props, budget);
    assert!(oob.iter().any(|f| f.id == "AP001"), "{oob:?}");

    let under = spread_gm_underdeclared_plan(&g).check_all(&props, budget);
    assert!(under.iter().any(|f| f.id == "AP003"), "{under:?}");

    let racy = spread_gm_racy_plan(&g).check_all(&props, budget);
    assert!(racy.iter().any(|f| f.id == "AP002"), "{racy:?}");
}

/// Run a full checked plan lifecycle (type 1 spread + type 2 interp) on
/// one device and return every retained kernel access trace.
fn traced_lifecycle<T: Real>(
    modes: &[usize],
    method: Method,
    m: usize,
) -> Vec<gpu_sim::KernelTrace> {
    let dev = Device::v100();
    dev.retain_access_traces(true);
    for (ttype, seed) in [(TransformType::Type1, 31), (TransformType::Type2, 32)] {
        let mut plan = Plan::<T>::builder(ttype, modes)
            .eps(1e-5)
            .method(method)
            .hazard(HazardMode::Check)
            .build(&dev)
            .expect("plan build");
        let dim = modes.len();
        let pts = gen_points::<T>(PointDist::Rand, dim, m, plan.fine_grid_shape(), seed);
        plan.set_pts(&pts).expect("set_pts");
        let nmodes: usize = modes.iter().product();
        match ttype {
            TransformType::Type1 => {
                let c = gen_strengths::<T>(m, seed + 1);
                let mut f = vec![Complex::<T>::ZERO; nmodes];
                plan.execute(&c, &mut f).expect("type1 execute");
            }
            _ => {
                let f = gen_strengths::<T>(nmodes, seed + 1);
                let mut c = vec![Complex::<T>::ZERO; m];
                plan.execute(&f, &mut c).expect("type2 execute");
            }
        }
    }
    assert!(dev.hazard_findings().is_clean(), "dynamic hazards present");
    dev.take_access_traces()
        .into_iter()
        .map(|(t, _)| t)
        .collect()
}

/// Static plans for both transform types of one configuration, keyed by
/// kernel name (type-1 and type-2 geometries agree wherever a kernel
/// name repeats, so one plan per name suffices).
fn static_plans<T: Real>(
    modes: &[usize],
    method: Method,
    m: usize,
) -> BTreeMap<String, AccessPlan> {
    let props = DeviceProps::v100();
    let precision = if T::IS_DOUBLE {
        Precision::F64
    } else {
        Precision::F32
    };
    let mut plans = BTreeMap::new();
    for spec in [
        TransformSpec::type1(modes)
            .eps(1e-5)
            .precision(precision)
            .method(method),
        TransformSpec::type2(modes)
            .eps(1e-5)
            .precision(precision)
            .method(method),
    ] {
        let g = PlanGeometry::from_spec(&spec, m, &Tuning::default(), props.shared_mem_per_block)
            .expect("geometry");
        for plan in plans_for(&g) {
            plans.insert(plan.kernel.clone(), plan);
        }
    }
    plans
}

/// The cross-validation harness: every dynamic access recorded during a
/// real checked execution must fall inside the static plan's predicted
/// set — "static refines dynamic".
fn assert_static_refines_dynamic<T: Real>(
    modes: &[usize],
    method: Method,
    m: usize,
    expect_kernels: &[&str],
) {
    let traces = traced_lifecycle::<T>(modes, method, m);
    assert!(!traces.is_empty(), "no kernel traces retained");
    let plans = static_plans::<T>(modes, method, m);
    let mut covered = Vec::new();
    for trace in &traces {
        let Some(plan) = plans.get(trace.name()) else {
            // kernels without a declared access plan (FFT, deconvolve)
            // are outside the verifier's scope
            continue;
        };
        let mismatches = plan.contains_trace(trace);
        assert!(
            mismatches.is_empty(),
            "{} {:?} dim{}: dynamic access escaped the static plan:\n{}",
            trace.name(),
            method,
            modes.len(),
            mismatches.join("\n")
        );
        covered.push(trace.name().to_string());
    }
    for want in expect_kernels {
        assert!(
            covered.iter().any(|k| k == want),
            "expected a dynamic trace for {want}, saw {covered:?}"
        );
    }
}

const GM_KERNELS: &[&str] = &["spread_GM", "interp_GM"];
const GM_SORT_KERNELS: &[&str] = &[
    "calc_binidx",
    "bin_histogram",
    "bin_scan",
    "bin_scatter",
    "spread_GM-sort",
    "interp_GM-sort",
];
const SM_KERNELS: &[&str] = &[
    "calc_binidx",
    "bin_histogram",
    "bin_scan",
    "bin_scatter",
    "spread_SM",
    "interp_GM-sort",
];

#[test]
fn static_refines_dynamic_gm_2d_and_3d() {
    assert_static_refines_dynamic::<f32>(&[32, 32], Method::Gm, 1200, GM_KERNELS);
    assert_static_refines_dynamic::<f32>(&[16, 16, 16], Method::Gm, 1200, GM_KERNELS);
}

#[test]
fn static_refines_dynamic_gm_sort_2d_and_3d() {
    assert_static_refines_dynamic::<f32>(&[32, 32], Method::GmSort, 1200, GM_SORT_KERNELS);
    assert_static_refines_dynamic::<f32>(&[16, 16, 16], Method::GmSort, 1200, GM_SORT_KERNELS);
}

#[test]
fn static_refines_dynamic_sm_2d_and_3d() {
    // type 2 degrades SM to a sorted interp, so the SM spread kernel
    // itself appears via the type-1 leg
    assert_static_refines_dynamic::<f32>(&[32, 32], Method::Sm, 1200, SM_KERNELS);
    assert_static_refines_dynamic::<f32>(&[16, 16, 16], Method::Sm, 1200, SM_KERNELS);
}

#[test]
fn static_refines_dynamic_double_precision() {
    // 2D f64 SM is Remark-2 feasible at this tolerance; 3D f64 GM-sort
    // covers the wide-stride double path
    assert_static_refines_dynamic::<f64>(&[32, 32], Method::Sm, 1200, SM_KERNELS);
    assert_static_refines_dynamic::<f64>(&[16, 16, 16], Method::GmSort, 1200, GM_SORT_KERNELS);
}

#[test]
fn prime_grid_lifecycles_stay_inside_static_plans() {
    use nufft_common::smooth::FineSizing;
    // Bluestein-path fine grids (FineSizing::Exact on a prime size)
    // produce awkward strides; the static plans must still contain them.
    let props = DeviceProps::v100();
    let dev = Device::v100();
    dev.retain_access_traces(true);
    let spec = TransformSpec::type1(&[37, 16])
        .eps(1e-5)
        .precision(Precision::F32)
        .method(Method::GmSort)
        .fine_sizing(FineSizing::Exact);
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[37, 16])
        .eps(1e-5)
        .method(Method::GmSort)
        .fine_sizing(FineSizing::Exact)
        .hazard(HazardMode::Check)
        .build(&dev)
        .expect("plan build");
    let m = 900;
    let pts = gen_points::<f32>(PointDist::Rand, 2, m, plan.fine_grid_shape(), 41);
    plan.set_pts(&pts).expect("set_pts");
    let c = gen_strengths::<f32>(m, 42);
    let mut f = vec![Complex::<f32>::ZERO; 37 * 16];
    plan.execute(&c, &mut f).expect("execute");
    let g = PlanGeometry::from_spec(&spec, m, &Tuning::default(), props.shared_mem_per_block)
        .expect("geometry");
    let plans: BTreeMap<String, AccessPlan> = plans_for(&g)
        .into_iter()
        .map(|p| (p.kernel.clone(), p))
        .collect();
    let traces = dev.take_access_traces();
    let mut saw_spread = false;
    for (trace, _) in &traces {
        if let Some(plan) = plans.get(trace.name()) {
            let mismatches = plan.contains_trace(trace);
            assert!(
                mismatches.is_empty(),
                "{}: {}",
                trace.name(),
                mismatches.join("\n")
            );
            saw_spread |= trace.name() == "spread_GM-sort";
        }
    }
    assert!(saw_spread);
}
