//! `nufft-lint` — static kernel verifier and workspace source lint.
//!
//! With no flags, runs both fronts at the quick tier (what
//! `scripts/check.sh` does on every build): the symbolic access-plan
//! checker over the quick spec matrix, then the source-policy scanner
//! against the committed baseline. Exit status 1 on any error-level
//! finding.

use std::path::PathBuf;
use std::process::ExitCode;

use nufft_common::LintReport;
use nufft_lint::src_lint;

const USAGE: &str = "\
nufft-lint: static kernel verifier for the cuFINUFFT reproduction

USAGE: nufft-lint [--plans] [--src] [--full] [--update-allowlist]

  --plans              only the access-plan checker (bounds, races,
                       contracts, launch feasibility over the spec matrix)
  --src                only the source-policy scanner (SRC001-SRC003)
  --full               widen the access-plan matrix (1D, full eps ladder,
                       M_sub and bin-size sweeps, large point counts)
  --update-allowlist   regenerate scripts/lint-allow.txt from the tree
  -h, --help           this text

With neither --plans nor --src, both fronts run.";

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let mut do_plans = false;
    let mut do_src = false;
    let mut full = false;
    let mut update_allowlist = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--plans" => do_plans = true,
            "--src" => do_src = true,
            "--full" => full = true,
            "--update-allowlist" => update_allowlist = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("nufft-lint: unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    if update_allowlist {
        return match src_lint::write_baseline(&root) {
            Ok(groups) => {
                println!(
                    "wrote {} ({groups} rule/file groups)",
                    src_lint::baseline_path(&root).display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("nufft-lint: failed to write baseline: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if !do_plans && !do_src {
        do_plans = true;
        do_src = true;
    }
    let mut report = LintReport::default();
    if do_plans {
        let tier = if full { "full" } else { "quick" };
        println!("access-plan checker ({tier} matrix)...");
        report.merge(nufft_lint::lint_access_plans(full, None));
    }
    if do_src {
        println!("source-policy scanner...");
        let baseline = src_lint::Baseline::load(&root);
        report.merge(src_lint::lint_sources(&root, &baseline));
    }
    print!("{report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
