//! Static kernel verifier for the cuFINUFFT reproduction.
//!
//! Two independent fronts, both producing typed
//! [`LintFinding`](nufft_common::LintFinding)s with stable ids:
//!
//! * **Access-plan analysis** ([`lint_access_plans`]) — enumerates every
//!   launch configuration reachable from a [`TransformSpec`] matrix
//!   (grid sizes including Bluestein/prime fine-grid shapes, the eps
//!   ladder, bin / `M_sub` sweeps, both precisions, all spreading
//!   methods), derives the launch geometry exactly as plan construction
//!   would ([`cufinufft::access_plan::PlanGeometry`]), and runs the
//!   execution-free checker passes from `gpu_sim::access_plan` over each
//!   kernel's symbolic plan: interval bounds (AP001), static race
//!   classes (AP002), contract atomic cross-validation (AP003), and
//!   Remark-2 / launch feasibility (AP004-AP006).
//! * **Source policy** ([`src_lint`]) — a std-only textual scanner over
//!   the workspace for repo-policy violations (SRC001-SRC003), with a
//!   count-based baseline allowlist.
//!
//! The binary (`nufft-lint`) runs both by default; see `--help`.

#![forbid(unsafe_code)]

pub mod src_lint;

use cufinufft::access_plan::{plans_for, PlanGeometry};
use cufinufft::opts::Tuning;
use gpu_sim::DeviceProps;
use nufft_common::smooth::FineSizing;
use nufft_common::spec::{Method, Precision, TransformSpec};
use nufft_common::LintReport;
use nufft_trace::Trace;

/// One cell of the launch-configuration matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    pub spec: TransformSpec,
    pub m: usize,
    pub tuning: Tuning,
}

/// Grid families mirroring the conformance harness: power-of-two sizes
/// (5-smooth fine grids) and prime sizes under `FineSizing::Exact`
/// (the Bluestein path's awkward fine-grid shapes).
fn grids(dim: usize, full: bool) -> Vec<(Vec<usize>, FineSizing)> {
    let mut out = match dim {
        1 => vec![
            (vec![256], FineSizing::Smooth),
            (vec![211], FineSizing::Exact),
        ],
        2 => vec![
            (vec![32, 32], FineSizing::Smooth),
            (vec![37, 16], FineSizing::Exact),
        ],
        _ => vec![
            (vec![16, 16, 16], FineSizing::Smooth),
            (vec![37, 8, 8], FineSizing::Exact),
        ],
    };
    if full {
        // one larger anisotropic shape per dim widens the stride space
        out.push(match dim {
            1 => (vec![4096], FineSizing::Smooth),
            2 => (vec![128, 32], FineSizing::Smooth),
            _ => (vec![64, 16, 8], FineSizing::Smooth),
        });
    }
    out
}

/// The launch-configuration matrix. `full = false` is the quick tier
/// scripts/check.sh runs by default; `full = true` widens the eps
/// ladder, adds 1D, more point counts, and bin / `M_sub` tuning sweeps.
pub fn spec_matrix(full: bool) -> Vec<MatrixCell> {
    let dims: &[usize] = if full { &[1, 2, 3] } else { &[2, 3] };
    let eps_ladder: &[f64] = if full {
        &[1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9]
    } else {
        &[1e-2, 1e-5]
    };
    let ms: &[usize] = if full { &[1, 1000, 100_000] } else { &[1000] };
    let mut tunings = vec![Tuning::default()];
    if full {
        // M_sub sweep: many tiny subproblems stress the SM count ranges
        tunings.push(Tuning {
            msub: 16,
            ..Tuning::default()
        });
        // non-default bin size exercises the clamped-bin geometry
        tunings.push(Tuning {
            bin_size: Some([8, 8, 2]),
            ..Tuning::default()
        });
    }
    let mut cells = Vec::new();
    for &dim in dims {
        for (modes, sizing) in grids(dim, full) {
            for precision in [Precision::F32, Precision::F64] {
                for method in [Method::Gm, Method::GmSort, Method::Sm] {
                    for &eps in eps_ladder {
                        for &m in ms {
                            for tuning in &tunings {
                                cells.push(MatrixCell {
                                    spec: TransformSpec::type1(&modes)
                                        .eps(eps)
                                        .precision(precision)
                                        .method(method)
                                        .fine_sizing(sizing),
                                    m,
                                    tuning: *tuning,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

/// Run the static checker over every reachable launch configuration in
/// the matrix. Cells the library itself would refuse (explicit SM
/// beyond the Remark-2 budget, tolerances outside the kernel table) are
/// counted as skipped, exactly mirroring plan construction. Findings
/// carry the spec label of the cell that produced them; `lint.*`
/// counters are mirrored into `trace` when given.
pub fn lint_access_plans(full: bool, trace: Option<&Trace>) -> LintReport {
    let props = DeviceProps::v100();
    let mut report = LintReport::default();
    for cell in spec_matrix(full) {
        let geom =
            PlanGeometry::from_spec(&cell.spec, cell.m, &cell.tuning, props.shared_mem_per_block);
        let geom = match geom {
            Ok(g) => g,
            Err(_) => {
                // the library would refuse this configuration too — the
                // launches it describes are unreachable, not unproven
                report.configs_skipped += 1;
                continue;
            }
        };
        report.configs_checked += 1;
        let budget = cell
            .tuning
            .shared_mem_budget
            .min(props.shared_mem_per_block);
        let ctx = format!("{} m={}", cell.spec.label(), cell.m);
        for plan in plans_for(&geom) {
            report.plans_checked += 1;
            for finding in plan.check_all(&props, budget) {
                report.findings.push(finding.with_context(&ctx));
            }
        }
    }
    if let Some(t) = trace {
        t.counter("lint.configs_checked")
            .add(report.configs_checked as i64);
        t.counter("lint.configs_skipped")
            .add(report.configs_skipped as i64);
        t.counter("lint.plans_checked")
            .add(report.plans_checked as i64);
        t.counter("lint.errors").add(report.error_count() as i64);
        t.counter("lint.warnings").add(report.warn_count() as i64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_has_both_grid_families_and_methods() {
        let cells = spec_matrix(false);
        assert!(cells
            .iter()
            .any(|c| c.spec.fine_sizing == FineSizing::Exact));
        assert!(cells.iter().any(|c| c.spec.dim() == 3));
        for m in [Method::Gm, Method::GmSort, Method::Sm] {
            assert!(cells.iter().any(|c| c.spec.method == m));
        }
        // full strictly widens
        assert!(spec_matrix(true).len() > cells.len());
    }

    #[test]
    fn quick_access_plan_pass_is_clean_and_counts_coverage() {
        let trace = Trace::new();
        let report = lint_access_plans(false, Some(&trace));
        assert!(report.is_clean(), "{report}");
        assert!(report.configs_checked > 0);
        assert!(report.plans_checked > report.configs_checked);
        // explicit-SM Remark-2-infeasible cells exist in the matrix
        // (3D f64 at tight eps) and must be skipped, not silently green
        assert!(report.configs_skipped > 0);
        let rep = trace.report();
        assert_eq!(
            rep.counters.get("lint.configs_checked").copied(),
            Some(report.configs_checked as i64)
        );
        assert_eq!(rep.counters.get("lint.errors").copied(), Some(0));
    }
}
