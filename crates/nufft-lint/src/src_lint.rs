//! Std-only source-policy scanner over the workspace.
//!
//! Three textual lints with stable ids, each scoped to the crates where
//! the policy is load-bearing:
//!
//! * **SRC001** `unwrap-outside-tests` — `.unwrap()` / `.expect(` in
//!   non-test code anywhere in the workspace. Library paths return
//!   `Result`; panics belong in tests.
//! * **SRC002** `wall-clock-in-deterministic-path` — `Instant::now` in
//!   the deterministic crates (the simulator's clock is the only
//!   timebase there; host wall-clock makes replays diverge).
//! * **SRC003** `lossy-float-cast` — `as f32` narrowing casts in the
//!   accuracy-critical crates, where silent precision loss corrupts the
//!   eps ladder.
//!
//! Pre-existing debt is carried by a count-based baseline
//! (`scripts/lint-allow.txt`, lines `RULE path max-count`): a file may
//! keep up to its recorded number of findings per rule, but any *new*
//! occurrence pushes the file over its budget and every site is then
//! reported. `// lint:allow(SRCxxx)` on the offending line suppresses a
//! single site. `nufft-lint --update-allowlist` regenerates the file.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use nufft_common::{LintFinding, LintKind, LintLevel, LintReport};

/// `.unwrap()` / `.expect(` outside tests.
pub const SRC_UNWRAP: &str = "SRC001";
/// `Instant::now` on a deterministic path.
pub const SRC_WALLCLOCK: &str = "SRC002";
/// Lossy `as f32` cast in an accuracy-critical crate.
pub const SRC_LOSSY_CAST: &str = "SRC003";

/// Crates whose execution must be a pure function of the simulated
/// clock — host wall-clock reads are policy violations there. `mtip`
/// and the serve/bench layers time real host work, so they are exempt.
const DETERMINISTIC_CRATES: &[&str] = &[
    "gpu-sim",
    "gpu-fft",
    "nufft-fft",
    "nufft-kernels",
    "nufft-common",
    "cufinufft",
    "nufft-baselines",
    "nufft-conformance",
];

/// Crates on the accuracy-critical path where a narrowing float cast
/// can silently eat digits the eps ladder is supposed to guarantee.
const ACCURACY_CRATES: &[&str] = &[
    "nufft-kernels",
    "nufft-common",
    "cufinufft",
    "finufft-cpu",
    "gpu-fft",
    "nufft-fft",
];

// The needles are spelled via concat! so this file does not flag
// itself when the scanner walks its own crate.
const PAT_UNWRAP: &str = concat!(".unw", "rap()");
const PAT_EXPECT: &str = concat!(".exp", "ect(");
const PAT_INSTANT: &str = concat!("Inst", "ant::now");
const PAT_AS_F32: &str = concat!(" as ", "f32");
const PAT_ALLOW: &str = concat!("lint:", "allow(");
const PAT_CFG_TEST: &str = concat!("#[cfg(", "test)]");

/// One raw occurrence before baseline filtering.
#[derive(Clone, Debug)]
pub struct RawFinding {
    pub rule: &'static str,
    pub rule_name: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: usize,
    pub excerpt: String,
}

/// Count-based allowlist keyed by `(rule, path)`.
#[derive(Default, Debug)]
pub struct Baseline {
    allowed: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Load from `scripts/lint-allow.txt` under `root`. A missing file
    /// is an empty baseline, not an error; malformed lines are ignored.
    pub fn load(root: &Path) -> Baseline {
        let mut b = Baseline::default();
        let text = match fs::read_to_string(baseline_path(root)) {
            Ok(t) => t,
            Err(_) => return b,
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(path), Some(count)) =
                (parts.next(), parts.next(), parts.next())
            {
                if let Ok(n) = count.parse::<usize>() {
                    b.allowed.insert((rule.to_string(), path.to_string()), n);
                }
            }
        }
        b
    }

    fn allowance(&self, rule: &str, path: &str) -> usize {
        self.allowed
            .get(&(rule.to_string(), path.to_string()))
            .copied()
            .unwrap_or(0)
    }
}

pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("scripts").join("lint-allow.txt")
}

/// Scan the whole workspace (crate `src/` trees plus the root crate's
/// `src/`; vendored shims are exempt) and return every raw occurrence
/// not suppressed by an inline `lint:allow` marker, plus the number of
/// files scanned.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<RawFinding>, usize)> {
    let mut findings = Vec::new();
    let mut files = 0usize;
    let crates_dir = root.join("crates");
    let mut units: Vec<(String, PathBuf)> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                units.push((entry.file_name().to_string_lossy().into_owned(), src));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        units.push(("cufinufft-repro".to_string(), root_src));
    }
    units.sort();
    for (crate_name, src) in units {
        let mut rs_files = Vec::new();
        collect_rs(&src, &mut rs_files)?;
        rs_files.sort();
        for file in rs_files {
            files += 1;
            let text = fs::read_to_string(&file)?;
            let rel = relative_path(root, &file);
            scan_file(&crate_name, &rel, &text, &mut findings);
        }
    }
    Ok((findings, files))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scan one file's text. Test code is excluded by tracking the brace
/// depth of every `#[cfg(test)]`-attributed item; comments (line and
/// block) are stripped before pattern matching so doc examples do not
/// trip the lints. Public for the self-tests.
pub fn scan_file(crate_name: &str, rel_path: &str, text: &str, out: &mut Vec<RawFinding>) {
    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name);
    let accuracy = ACCURACY_CRATES.contains(&crate_name);
    let mut in_block_comment = false;
    // >0 while inside a #[cfg(test)] item's braces
    let mut test_depth: i64 = 0;
    let mut pending_cfg_test = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments(raw, &mut in_block_comment);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if test_depth > 0 {
            test_depth += opens - closes;
            if test_depth < 0 {
                test_depth = 0;
            }
            continue;
        }
        if code.contains(PAT_CFG_TEST) {
            pending_cfg_test = true;
        }
        if pending_cfg_test {
            if opens > 0 {
                let depth = opens - closes;
                pending_cfg_test = false;
                if depth > 0 {
                    test_depth = depth;
                }
            } else if code.contains(';') {
                // brace-less item (`#[cfg(test)] use ...;`) — done
                pending_cfg_test = false;
            }
            // attribute may span `#[cfg(test)]` then `mod tests {` on a
            // later line; stay pending until the item's brace opens
            continue;
        }
        let allow = |rule: &str| raw.contains(&format!("{}{})", PAT_ALLOW, rule));
        let mut hit = |rule: &'static str, rule_name: &'static str| {
            if !allow(rule) {
                out.push(RawFinding {
                    rule,
                    rule_name,
                    path: rel_path.to_string(),
                    line: line_no,
                    excerpt: raw.trim().chars().take(96).collect(),
                });
            }
        };
        if code.contains(PAT_UNWRAP) || code.contains(PAT_EXPECT) {
            hit(SRC_UNWRAP, "unwrap-outside-tests");
        }
        if deterministic && code.contains(PAT_INSTANT) {
            hit(SRC_WALLCLOCK, "wall-clock-in-deterministic-path");
        }
        if accuracy && code.contains(PAT_AS_F32) {
            hit(SRC_LOSSY_CAST, "lossy-float-cast");
        }
    }
}

/// Drop `// ...` tails and `/* ... */` spans (tracking multi-line block
/// comments via `in_block`). String literals are not parsed — the
/// baseline absorbs the rare false positive.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            *in_block = true;
            i += 2;
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            break;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Apply the baseline: per `(rule, path)` group, a count within the
/// recorded allowance is suppressed; a group over budget reports every
/// site (so the offending new line is always among them).
pub fn lint_sources(root: &Path, baseline: &Baseline) -> LintReport {
    let mut report = LintReport::default();
    let (raw, files) = match scan_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            report.findings.push(
                LintFinding::new(
                    "SRC000",
                    LintLevel::Error,
                    LintKind::SrcPolicy {
                        rule: "scan-failed".into(),
                        path: root.display().to_string(),
                        line: 0,
                        excerpt: e.to_string(),
                    },
                )
                .with_context("workspace walk failed"),
            );
            return report;
        }
    };
    report.files_scanned = files;
    let mut groups: BTreeMap<(&'static str, String), Vec<&RawFinding>> = BTreeMap::new();
    for f in &raw {
        groups.entry((f.rule, f.path.clone())).or_default().push(f);
    }
    for ((rule, path), sites) in groups {
        let allowed = baseline.allowance(rule, &path);
        if sites.len() <= allowed {
            continue;
        }
        for f in sites {
            report.findings.push(
                LintFinding::new(
                    f.rule,
                    LintLevel::Error,
                    LintKind::SrcPolicy {
                        rule: f.rule_name.to_string(),
                        path: f.path.clone(),
                        line: f.line,
                        excerpt: f.excerpt.clone(),
                    },
                )
                .with_context(&format!(
                    "{} site(s) in file, baseline allows {allowed}",
                    raw.iter()
                        .filter(|r| r.rule == rule && r.path == path)
                        .count()
                )),
            );
        }
    }
    report
}

/// Regenerate `scripts/lint-allow.txt` from the current tree. Returns
/// the number of `(rule, path)` groups written.
pub fn write_baseline(root: &Path) -> io::Result<usize> {
    let (raw, _) = scan_workspace(root)?;
    let mut groups: BTreeMap<(&'static str, String), usize> = BTreeMap::new();
    for f in &raw {
        *groups.entry((f.rule, f.path.clone())).or_default() += 1;
    }
    let mut text = String::from(
        "# Source-lint baseline: `RULE path max-count` per line.\n\
         # Regenerate with `cargo run -p nufft-lint -- --update-allowlist`.\n\
         # New findings beyond a file's count fail the lint; shrink\n\
         # counts as debt is paid down, never grow them by hand.\n",
    );
    for ((rule, path), count) in &groups {
        text.push_str(&format!("{rule} {path} {count}\n"));
    }
    fs::write(baseline_path(root), text)?;
    Ok(groups.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwrap_line() -> String {
        format!("    let x = foo(){};", PAT_UNWRAP)
    }

    #[test]
    fn flags_unwrap_outside_tests_but_not_inside() {
        let src = format!(
            "fn main() {{\n{}\n}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{\n{}\n    }}\n}}\n",
            unwrap_line(),
            unwrap_line()
        );
        let mut out = Vec::new();
        scan_file("cufinufft", "crates/cufinufft/src/x.rs", &src, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, SRC_UNWRAP);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn comments_and_inline_allow_are_suppressed() {
        let src = format!(
            "fn f() {{\n    // {u}\n    /* {u}\n       {u} */\n    {l} // {m}{r})\n}}\n",
            u = unwrap_line(),
            l = unwrap_line(),
            m = PAT_ALLOW,
            r = SRC_UNWRAP,
        );
        let mut out = Vec::new();
        scan_file("gpu-sim", "crates/gpu-sim/src/x.rs", &src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn scoped_rules_respect_crate_lists() {
        let src = format!(
            "fn f() {{ let t = {}(); let y = x{}; }}\n",
            PAT_INSTANT, PAT_AS_F32
        );
        let mut out = Vec::new();
        // mtip is neither deterministic nor accuracy-critical
        scan_file("mtip", "crates/mtip/src/x.rs", &src, &mut out);
        assert!(out.is_empty());
        scan_file("gpu-sim", "crates/gpu-sim/src/x.rs", &src, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, SRC_WALLCLOCK);
        out.clear();
        scan_file("finufft-cpu", "crates/finufft-cpu/src/x.rs", &src, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, SRC_LOSSY_CAST);
    }

    #[test]
    fn baseline_counts_gate_whole_file_groups() {
        let mut b = Baseline::default();
        b.allowed
            .insert((SRC_UNWRAP.to_string(), "crates/x/src/a.rs".to_string()), 2);
        assert_eq!(b.allowance(SRC_UNWRAP, "crates/x/src/a.rs"), 2);
        assert_eq!(b.allowance(SRC_UNWRAP, "crates/x/src/b.rs"), 0);
        assert_eq!(b.allowance(SRC_WALLCLOCK, "crates/x/src/a.rs"), 0);
    }

    #[test]
    fn workspace_scan_with_current_baseline_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let baseline = Baseline::load(&root);
        let report = lint_sources(&root, &baseline);
        assert!(report.files_scanned > 10);
        let errors: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
        assert!(report.is_clean(), "{}", errors.join("\n"));
    }
}
