//! Accuracy conformance harness (DESIGN.md §5g).
//!
//! The paper's central accuracy claim is that the ES kernel chosen from
//! eq. (6) delivers the requested tolerance `eps` uniformly across
//! transform types, dimensions, precisions, and spreading methods. This
//! crate sweeps that full matrix —
//! {type1, type2} × {2D, 3D} × {f32, f64} × {GM, GM-sort, SM} ×
//! tolerances (clipped to the precision floor) × point distributions
//! {uniform, clustered} × grid families {powers of two, odd composites,
//! primes via the Bluestein FFT path, non-square} — and checks each
//! cell's observed `rel_l2` against the direct `O(N*M)` NUDFT oracle
//! ([`nufft_common::reference`]), asserting it lands inside a calibrated
//! multiple of the requested tolerance (see [`envelope`]).
//!
//! Results are emitted as a machine-readable table under
//! `results/conformance.json` and fed into `nufft-trace` counters
//! (`conformance.cells`, `conformance.pass`, `conformance.fail`,
//! `conformance.skip`, plus a `conformance.max_ratio` gauge).
//!
//! Two tiers: [`Tier::Quick`] (uniform points, power-of-two + prime
//! grids — the default in CI) and [`Tier::Full`] (everything, run via
//! `CONFORMANCE=full scripts/check.sh`).

#![forbid(unsafe_code)]

use cufinufft::opts::Method;
use cufinufft::plan::Plan as GpuPlan;
use gpu_sim::Device;
use nufft_common::complex::Complex;
use nufft_common::error::NufftError;
use nufft_common::metrics::rel_l2;
use nufft_common::real::Real;
use nufft_common::reference::{type1_direct, type2_direct};
use nufft_common::shape::Shape;
use nufft_common::smooth::FineSizing;
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::TransformType;
use nufft_trace::Trace;

pub mod report;

pub use report::Report;

/// How much of the matrix to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Uniform points, {powers of two, prime} grid families, the core
    /// tolerance ladder. Runs in seconds; the CI default.
    Quick,
    /// Everything: clustered points, odd-composite and non-square grids,
    /// square prime grids, and a denser tolerance ladder.
    Full,
}

impl Tier {
    /// Reads the `CONFORMANCE` environment variable (`full` selects
    /// [`Tier::Full`], anything else / unset selects [`Tier::Quick`]).
    pub fn from_env() -> Tier {
        match std::env::var("CONFORMANCE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Tier::Full,
            _ => Tier::Quick,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }
}

/// Which library executes the transform in a cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The simulated-GPU cuFINUFFT plan with an explicit spread method.
    Gpu(Method),
    /// The CPU FINUFFT-style plan (its own spread/sort pipeline).
    Cpu,
}

impl Backend {
    pub fn label(self) -> String {
        match self {
            Backend::Gpu(Method::Gm) => "gm".into(),
            Backend::Gpu(Method::GmSort) => "gmsort".into(),
            Backend::Gpu(Method::Sm) => "sm".into(),
            Backend::Gpu(Method::Auto) => "auto".into(),
            Backend::Cpu => "cpu".into(),
        }
    }
}

/// Mode-size family of a cell; the concrete sizes keep the direct
/// oracle affordable while still exercising the intended FFT path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GridFamily {
    /// Power-of-two sizes: the all-radix-2 fine-FFT path.
    PowTwo,
    /// Odd composite sizes (3- and 5-smooth): odd-parity mode indexing
    /// and radix-3/5 butterflies.
    OddComposite,
    /// Prime mode sizes under [`FineSizing::Exact`], so the fine grid
    /// keeps a prime factor > 31 and the FFT runs through the Bluestein
    /// chirp-z fallback.
    Prime,
    /// Unequal per-axis sizes (mixed parity), catching axis-order and
    /// stride bugs that square grids mask.
    NonSquare,
    /// Square prime grids (every axis through Bluestein) — the most
    /// expensive family, full tier only.
    PrimeSquare,
}

impl GridFamily {
    pub fn label(self) -> &'static str {
        match self {
            GridFamily::PowTwo => "pow2",
            GridFamily::OddComposite => "oddcomp",
            GridFamily::Prime => "prime",
            GridFamily::NonSquare => "nonsquare",
            GridFamily::PrimeSquare => "primesq",
        }
    }

    /// Mode sizes for a `dim`-dimensional cell.
    pub fn modes(self, dim: usize) -> Vec<usize> {
        match (self, dim) {
            (GridFamily::PowTwo, 2) => vec![32, 32],
            (GridFamily::PowTwo, _) => vec![16, 16, 16],
            (GridFamily::OddComposite, 2) => vec![27, 45],
            (GridFamily::OddComposite, _) => vec![15, 15, 9],
            // 37 is the smallest prime whose doubled fine size (74 = 2*37)
            // exceeds the mixed-radix butterfly limit (31), forcing the
            // Bluestein path along that axis; the other axes stay small so
            // the O(N*M) oracle stays cheap.
            (GridFamily::Prime, 2) => vec![37, 16],
            (GridFamily::Prime, _) => vec![37, 8, 8],
            (GridFamily::NonSquare, 2) => vec![32, 20],
            (GridFamily::NonSquare, _) => vec![16, 12, 10],
            (GridFamily::PrimeSquare, 2) => vec![37, 37],
            (GridFamily::PrimeSquare, _) => vec![37, 37, 37],
        }
    }

    /// Prime families must keep their prime factors in the fine grid.
    pub fn fine_sizing(self) -> FineSizing {
        match self {
            GridFamily::Prime | GridFamily::PrimeSquare => FineSizing::Exact,
            _ => FineSizing::Smooth,
        }
    }
}

/// One point of the conformance matrix.
#[derive(Clone, Debug)]
pub struct Cell {
    pub ttype: TransformType,
    pub dim: usize,
    /// `true` = f64 working precision, `false` = f32.
    pub double: bool,
    pub backend: Backend,
    pub eps: f64,
    pub dist: PointDist,
    pub family: GridFamily,
}

impl Cell {
    /// Stable human-readable name, also the JSON `name` field.
    pub fn name(&self) -> String {
        format!(
            "{}-{}d-{}-{}-{}-{}-eps{:.0e}",
            match self.ttype {
                TransformType::Type1 => "t1",
                TransformType::Type2 => "t2",
            },
            self.dim,
            if self.double { "f64" } else { "f32" },
            self.backend.label(),
            self.family.label(),
            match self.dist {
                PointDist::Rand => "rand",
                PointDist::Cluster => "cluster",
            },
            self.eps,
        )
    }

    /// Deterministic per-cell seed so every cell sees distinct but
    /// reproducible points/strengths.
    fn seed(&self) -> u64 {
        // FNV-1a over the cell name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h | 1
    }
}

/// What happened when a cell ran.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Observed error within the envelope.
    Pass,
    /// Observed error above the envelope.
    Fail,
    /// Cell not runnable on this configuration, with the reason. The only
    /// expected reason is the SM shared-memory feasibility limit
    /// (paper Remark 2): a padded 3D bin of `(16+pad)(16+pad)(2+pad)`
    /// complex doubles exceeds the 49 kB budget for w >= 5, i.e. for all
    /// f64 tolerances below ~1e-3, so those (3D, f64, SM) cells cannot
    /// exist on the real hardware either. They are recorded as skipped —
    /// not silently dropped — so the JSON table shows the hole.
    Skip(String),
}

/// One evaluated cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub cell: Cell,
    pub modes: Vec<usize>,
    /// Number of nonuniform points.
    pub m: usize,
    /// Observed relative l2 error against the direct NUDFT (None when
    /// skipped).
    pub rel_l2: Option<f64>,
    /// Envelope bound the error was checked against.
    pub envelope: f64,
    pub outcome: Outcome,
}

impl CellResult {
    /// `rel_l2 / envelope`; 0 for skipped cells.
    pub fn ratio(&self) -> f64 {
        self.rel_l2.map_or(0.0, |e| e / self.envelope)
    }
}

/// Calibrated error envelope: the observed `rel_l2` of a conforming
/// implementation must satisfy `rel_l2 <= envelope(eps, double)`.
///
/// Calibration (this workspace, uniform + clustered points, all methods
/// and grid families): the observed error tracks the requested tolerance
/// within a small factor — ratios `rel_l2 / eps` stay below ~2.5 down to
/// the precision floor, where round-off takes over (~1e-13 for f64,
/// ~4e-7 for f32 — the f32 floor is dominated by rounding the inputs and
/// outputs themselves). The envelope allows 6x headroom over the
/// requested tolerance plus the round-off floor, so a regression has to
/// roughly triple the error before a cell trips, while a lost accuracy
/// digit (the bug class this harness exists for) trips immediately.
pub fn envelope(eps: f64, double: bool) -> f64 {
    let floor = if double { 2e-13 } else { 6e-7 };
    6.0 * eps + floor
}

/// Tolerance ladder for a precision, clipped to the precision floor
/// (requests below it are a plan-time error by design; see
/// `EsKernel::for_tolerance`).
pub fn tolerance_ladder(double: bool, tier: Tier) -> Vec<f64> {
    match (double, tier) {
        (true, Tier::Quick) => vec![1e-2, 1e-5, 1e-8, 1e-11, 1e-14],
        (true, Tier::Full) => vec![
            1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 1e-13, 1e-14,
        ],
        (false, Tier::Quick) => vec![1e-2, 1e-4, 1e-6, 1e-7],
        (false, Tier::Full) => vec![1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7],
    }
}

/// Grid families included in a tier.
pub fn families(tier: Tier) -> Vec<GridFamily> {
    match tier {
        Tier::Quick => vec![GridFamily::PowTwo, GridFamily::Prime],
        Tier::Full => vec![
            GridFamily::PowTwo,
            GridFamily::OddComposite,
            GridFamily::Prime,
            GridFamily::NonSquare,
            GridFamily::PrimeSquare,
        ],
    }
}

/// Point distributions included in a tier.
pub fn distributions(tier: Tier) -> Vec<PointDist> {
    match tier {
        Tier::Quick => vec![PointDist::Rand],
        Tier::Full => vec![PointDist::Rand, PointDist::Cluster],
    }
}

/// Number of nonuniform points per cell: enough to hit every bin class
/// (partial bins, wrap-around) while keeping the O(N*M) oracle cheap.
pub const POINTS_PER_CELL: usize = 220;

/// Enumerate the GPU cells of a tier: every
/// (type × dim × precision × method) combination crossed with the tier's
/// tolerance ladder, distributions, and grid families.
pub fn gpu_cells(tier: Tier) -> Vec<Cell> {
    let mut cells = Vec::new();
    for ttype in [TransformType::Type1, TransformType::Type2] {
        for dim in [2usize, 3] {
            for double in [true, false] {
                for method in [Method::Gm, Method::GmSort, Method::Sm] {
                    for &eps in &tolerance_ladder(double, tier) {
                        for dist in distributions(tier) {
                            for family in families(tier) {
                                cells.push(Cell {
                                    ttype,
                                    dim,
                                    double,
                                    backend: Backend::Gpu(method),
                                    eps,
                                    dist,
                                    family,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

/// Enumerate the CPU-backend cells (the reference pipeline shares the
/// kernel and deconvolution math, so it must meet the same envelope).
pub fn cpu_cells(tier: Tier) -> Vec<Cell> {
    let mut cells = Vec::new();
    for ttype in [TransformType::Type1, TransformType::Type2] {
        for dim in [2usize, 3] {
            for double in [true, false] {
                for &eps in &tolerance_ladder(double, tier) {
                    for dist in distributions(tier) {
                        for family in families(tier) {
                            cells.push(Cell {
                                ttype,
                                dim,
                                double,
                                backend: Backend::Cpu,
                                eps,
                                dist,
                                family,
                            });
                        }
                    }
                }
            }
        }
    }
    cells
}

/// Run one cell: build the plan, execute on generated points, compare
/// against the direct NUDFT oracle, and judge against the envelope.
pub fn run_cell(cell: &Cell, dev: &Device, trace: Option<&Trace>) -> CellResult {
    if cell.double {
        run_cell_t::<f64>(cell, dev, trace)
    } else {
        run_cell_t::<f32>(cell, dev, trace)
    }
}

fn run_cell_t<T: Real>(cell: &Cell, dev: &Device, trace: Option<&Trace>) -> CellResult {
    let modes_v = cell.family.modes(cell.dim);
    let modes = Shape::from_slice(&modes_v);
    let m = POINTS_PER_CELL;
    let seed = cell.seed();
    let pts = gen_points::<T>(cell.dist, cell.dim, m, modes, seed);
    let env = envelope(cell.eps, cell.double);
    let skip = |reason: String| CellResult {
        cell: cell.clone(),
        modes: modes_v.clone(),
        m,
        rel_l2: None,
        envelope: env,
        outcome: Outcome::Skip(reason),
    };

    let err = match cell.backend {
        Backend::Gpu(method) => {
            let iflag = match cell.ttype {
                TransformType::Type1 => -1,
                _ => 1,
            };
            let mut builder = GpuPlan::<T>::builder(cell.ttype, &modes_v)
                .eps(cell.eps)
                .iflag(iflag)
                .method(method)
                .fine_sizing(cell.family.fine_sizing());
            if let Some(t) = trace {
                builder = builder.tracing(t);
            }
            let mut plan = match builder.build(dev) {
                Ok(p) => p,
                // SM shared-memory infeasibility (Remark 2) is a
                // documented capability hole, not a conformance failure:
                // the padded 3D bin does not fit in 49 kB for wide
                // kernels, on real hardware or here. Everything else is
                // a genuine failure.
                Err(e @ NufftError::MethodUnavailable(_)) => return skip(e.to_string()),
                Err(e) => panic!("cell {}: plan build failed: {e}", cell.name()),
            };
            plan.set_pts(&pts).unwrap();
            match cell.ttype {
                TransformType::Type1 => {
                    let cs = gen_strengths::<T>(m, seed ^ 0x5f5f);
                    let mut out = vec![Complex::<T>::ZERO; modes.total()];
                    plan.execute(&cs, &mut out).unwrap();
                    let want = type1_direct(&pts, &cs, modes, iflag);
                    let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
                    rel_l2(&got, &want)
                }
                _ => {
                    let fk = gen_coeffs::<T>(modes.total(), seed ^ 0xa5a5);
                    let mut out = vec![Complex::<T>::ZERO; m];
                    plan.execute(&fk, &mut out).unwrap();
                    let want = type2_direct(&pts, &fk, modes, iflag);
                    let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
                    rel_l2(&got, &want)
                }
            }
        }
        Backend::Cpu => {
            let iflag = match cell.ttype {
                TransformType::Type1 => -1,
                _ => 1,
            };
            let opts = finufft_cpu::plan::Opts {
                nthreads: 1,
                fine_sizing: cell.family.fine_sizing(),
                ..Default::default()
            };
            let mut plan =
                finufft_cpu::plan::Plan::<T>::new(cell.ttype, &modes_v, iflag, cell.eps, opts)
                    .unwrap();
            plan.set_pts(pts.clone()).unwrap();
            match cell.ttype {
                TransformType::Type1 => {
                    let cs = gen_strengths::<T>(m, seed ^ 0x5f5f);
                    let mut out = vec![Complex::<T>::ZERO; modes.total()];
                    plan.execute(&cs, &mut out).unwrap();
                    let want = type1_direct(&pts, &cs, modes, iflag);
                    let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
                    rel_l2(&got, &want)
                }
                _ => {
                    let fk = gen_coeffs::<T>(modes.total(), seed ^ 0xa5a5);
                    let mut out = vec![Complex::<T>::ZERO; m];
                    plan.execute(&fk, &mut out).unwrap();
                    let want = type2_direct(&pts, &fk, modes, iflag);
                    let got: Vec<Complex<f64>> = out.iter().map(|z| z.cast()).collect();
                    rel_l2(&got, &want)
                }
            }
        }
    };

    let outcome = if err <= env {
        Outcome::Pass
    } else {
        Outcome::Fail
    };
    CellResult {
        cell: cell.clone(),
        modes: modes_v,
        m,
        rel_l2: Some(err),
        envelope: env,
        outcome,
    }
}

/// Run a set of cells, feeding trace counters as it goes.
pub fn run_cells(cells: &[Cell], trace: Option<&Trace>) -> Vec<CellResult> {
    let dev = Device::v100();
    let mut out = Vec::with_capacity(cells.len());
    for cell in cells {
        let r = run_cell(cell, &dev, trace);
        if let Some(t) = trace {
            t.counter("conformance.cells").inc();
            match r.outcome {
                Outcome::Pass => t.counter("conformance.pass").inc(),
                Outcome::Fail => t.counter("conformance.fail").inc(),
                Outcome::Skip(_) => t.counter("conformance.skip").inc(),
            }
            t.gauge("conformance.max_ratio").max(r.ratio());
        }
        out.push(r);
    }
    out
}

/// Run the whole matrix (GPU + CPU backends) for a tier.
pub fn run_matrix(tier: Tier, trace: Option<&Trace>) -> Report {
    let mut cells = gpu_cells(tier);
    cells.extend(cpu_cells(tier));
    let results = run_cells(&cells, trace);
    Report::new(tier, results)
}

/// `results/conformance.json` at the workspace root, regardless of the
/// test binary's working directory.
pub fn results_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/conformance.json")
        .components()
        .collect()
}
