//! Conformance report aggregation and the hand-rolled JSON emitter for
//! `results/conformance.json` (no serde: the workspace builds offline).
//!
//! Schema (`nufft-conformance/v1`):
//!
//! ```json
//! {
//!   "schema": "nufft-conformance/v1",
//!   "tier": "quick",
//!   "summary": {"total": 412, "pass": 400, "fail": 0, "skip": 12,
//!               "max_ratio": 0.41},
//!   "cells": [
//!     {"name": "t1-2d-f64-gm-pow2-rand-eps1e-05", "type": "t1",
//!      "dim": 2, "precision": "f64", "backend": "gm",
//!      "family": "pow2", "dist": "rand", "modes": [32, 32], "m": 220,
//!      "eps": 1e-5, "rel_l2": 1.1e-5, "envelope": 6.2e-5,
//!      "ratio": 0.18, "outcome": "pass"},
//!     {"name": "...", "outcome": "skip", "reason": "..."}
//!   ]
//! }
//! ```
//!
//! `ratio = rel_l2 / envelope`: below 1 passes, and the margin tells you
//! how much headroom a cell has before it would trip. Skipped cells have
//! no `rel_l2` and carry a `reason` instead (the only expected one is
//! the SM shared-memory feasibility limit of paper Remark 2).

use crate::{CellResult, Outcome, Tier};

/// Aggregated result of a conformance run.
pub struct Report {
    pub tier: Tier,
    pub results: Vec<CellResult>,
}

impl Report {
    pub fn new(tier: Tier, results: Vec<CellResult>) -> Self {
        Report { tier, results }
    }

    pub fn pass_count(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Pass))
    }

    pub fn fail_count(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Fail))
    }

    pub fn skip_count(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Skip(_)))
    }

    fn count(&self, f: impl Fn(&Outcome) -> bool) -> usize {
        self.results.iter().filter(|r| f(&r.outcome)).count()
    }

    /// Worst `rel_l2 / envelope` across all evaluated cells.
    pub fn max_ratio(&self) -> f64 {
        self.results.iter().map(|r| r.ratio()).fold(0.0, f64::max)
    }

    /// Cells that violated the envelope.
    pub fn failures(&self) -> Vec<&CellResult> {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Fail))
            .collect()
    }

    /// Serialize to the `nufft-conformance/v1` JSON schema.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.results.len() * 256);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"nufft-conformance/v1\",\n");
        s.push_str(&format!("  \"tier\": \"{}\",\n", self.tier.label()));
        s.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"pass\": {}, \"fail\": {}, \"skip\": {}, \"max_ratio\": {}}},\n",
            self.results.len(),
            self.pass_count(),
            self.fail_count(),
            self.skip_count(),
            json_f64(self.max_ratio()),
        ));
        s.push_str("  \"cells\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", json_escape(&r.cell.name())));
            s.push_str(&format!(
                "\"type\": \"{}\", ",
                match r.cell.ttype {
                    nufft_common::TransformType::Type1 => "t1",
                    nufft_common::TransformType::Type2 => "t2",
                }
            ));
            s.push_str(&format!("\"dim\": {}, ", r.cell.dim));
            s.push_str(&format!(
                "\"precision\": \"{}\", ",
                if r.cell.double { "f64" } else { "f32" }
            ));
            s.push_str(&format!("\"backend\": \"{}\", ", r.cell.backend.label()));
            s.push_str(&format!("\"family\": \"{}\", ", r.cell.family.label()));
            s.push_str(&format!(
                "\"dist\": \"{}\", ",
                match r.cell.dist {
                    nufft_common::workload::PointDist::Rand => "rand",
                    nufft_common::workload::PointDist::Cluster => "cluster",
                }
            ));
            s.push_str(&format!(
                "\"modes\": [{}], ",
                r.modes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push_str(&format!("\"m\": {}, ", r.m));
            s.push_str(&format!("\"eps\": {}, ", json_f64(r.cell.eps)));
            if let Some(e) = r.rel_l2 {
                s.push_str(&format!("\"rel_l2\": {}, ", json_f64(e)));
            }
            s.push_str(&format!("\"envelope\": {}, ", json_f64(r.envelope)));
            s.push_str(&format!("\"ratio\": {}, ", json_f64(r.ratio())));
            match &r.outcome {
                Outcome::Pass => s.push_str("\"outcome\": \"pass\""),
                Outcome::Fail => s.push_str("\"outcome\": \"fail\""),
                Outcome::Skip(reason) => s.push_str(&format!(
                    "\"outcome\": \"skip\", \"reason\": \"{}\"",
                    json_escape(reason)
                )),
            }
            s.push('}');
            if i + 1 < self.results.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON table, creating the parent directory if needed.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "conformance[{}]: {} cells, {} pass, {} fail, {} skip, max ratio {:.2}",
            self.tier.label(),
            self.results.len(),
            self.pass_count(),
            self.fail_count(),
            self.skip_count(),
            self.max_ratio(),
        )
    }
}

/// Finite f64 to JSON number (JSON has no inf/nan; clamp defensively).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Cell, GridFamily};
    use cufinufft::opts::Method;
    use nufft_common::workload::PointDist;
    use nufft_common::TransformType;

    fn sample_result(outcome: Outcome) -> CellResult {
        CellResult {
            cell: Cell {
                ttype: TransformType::Type1,
                dim: 2,
                double: true,
                backend: Backend::Gpu(Method::Gm),
                eps: 1e-5,
                dist: PointDist::Rand,
                family: GridFamily::PowTwo,
            },
            modes: vec![32, 32],
            m: 220,
            rel_l2: if matches!(outcome, Outcome::Skip(_)) {
                None
            } else {
                Some(1.1e-5)
            },
            envelope: 6.1e-5,
            outcome,
        }
    }

    #[test]
    fn json_is_well_formed_and_counts_match() {
        let report = Report::new(
            Tier::Quick,
            vec![
                sample_result(Outcome::Pass),
                sample_result(Outcome::Fail),
                sample_result(Outcome::Skip("SM infeasible".into())),
            ],
        );
        assert_eq!(report.pass_count(), 1);
        assert_eq!(report.fail_count(), 1);
        assert_eq!(report.skip_count(), 1);
        let json = report.to_json();
        // structural sanity without a parser dependency
        assert_eq!(json.matches("\"name\"").count(), 3);
        assert_eq!(json.matches("\"outcome\": \"skip\"").count(), 1);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"schema\": \"nufft-conformance/v1\""));
        assert!(json.contains("\"reason\": \"SM infeasible\""));
        // skipped cells carry no rel_l2 field
        assert_eq!(json.matches("\"rel_l2\"").count(), 2);
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_numbers_are_finite() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1e-5), "1e-5");
    }
}
