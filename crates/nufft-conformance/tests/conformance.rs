//! Named conformance tests: every (type x dim x precision x method)
//! combination gets its own test sweeping the tier's tolerance ladder,
//! distributions, and grid families, so an envelope violation surfaces
//! as a named failing test with the offending cell in the message.
//!
//! `CONFORMANCE=full` widens every test to the full matrix (denser
//! tolerance ladder, clustered points, odd-composite / non-square /
//! square-prime grids); the default quick tier keeps CI fast.

use cufinufft::opts::Method;
use gpu_sim::Device;
use nufft_common::TransformType;
use nufft_conformance::{
    cpu_cells, gpu_cells, results_path, run_cell, run_matrix, Backend, Outcome, Tier,
};
use nufft_trace::Trace;

/// Run all cells of one (type, dim, precision, method) combination for
/// the env-selected tier and assert each passes the envelope (skips are
/// allowed only for the documented SM feasibility hole).
fn assert_combo(ttype: TransformType, dim: usize, double: bool, backend: Backend) {
    let tier = Tier::from_env();
    let dev = Device::v100();
    let cells: Vec<_> = match backend {
        Backend::Gpu(_) => gpu_cells(tier),
        Backend::Cpu => cpu_cells(tier),
    }
    .into_iter()
    .filter(|c| c.ttype == ttype && c.dim == dim && c.double == double && c.backend == backend)
    .collect();
    assert!(!cells.is_empty(), "combo enumerated no cells");
    // every combo must be swept at >= 4 tolerances including a prime grid
    let tols: std::collections::BTreeSet<_> =
        cells.iter().map(|c| format!("{:e}", c.eps)).collect();
    assert!(tols.len() >= 4, "only {} tolerances in combo", tols.len());
    assert!(
        cells
            .iter()
            .any(|c| c.family == nufft_conformance::GridFamily::Prime),
        "combo lacks a prime-grid cell"
    );
    let mut failures = Vec::new();
    for cell in &cells {
        let r = run_cell(cell, &dev, None);
        match &r.outcome {
            Outcome::Pass => {}
            Outcome::Skip(reason) => {
                // Only the SM shared-memory feasibility hole (Remark 2)
                // may be skipped; anything else is a harness bug.
                assert!(
                    matches!(cell.backend, Backend::Gpu(Method::Sm)),
                    "unexpected skip for {}: {reason}",
                    cell.name()
                );
                assert!(
                    reason.contains("shared memory"),
                    "unexpected skip reason for {}: {reason}",
                    cell.name()
                );
            }
            Outcome::Fail => failures.push(format!(
                "{}: rel_l2 {:.3e} > envelope {:.3e}",
                cell.name(),
                r.rel_l2.unwrap(),
                r.envelope
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} cells violated the envelope:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

macro_rules! conformance_combo {
    ($name:ident, $ttype:ident, $dim:expr, $double:expr, $backend:expr) => {
        #[test]
        fn $name() {
            assert_combo(TransformType::$ttype, $dim, $double, $backend);
        }
    };
}

conformance_combo!(t1_2d_f64_gm, Type1, 2, true, Backend::Gpu(Method::Gm));
conformance_combo!(
    t1_2d_f64_gmsort,
    Type1,
    2,
    true,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t1_2d_f64_sm, Type1, 2, true, Backend::Gpu(Method::Sm));
conformance_combo!(t1_2d_f32_gm, Type1, 2, false, Backend::Gpu(Method::Gm));
conformance_combo!(
    t1_2d_f32_gmsort,
    Type1,
    2,
    false,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t1_2d_f32_sm, Type1, 2, false, Backend::Gpu(Method::Sm));
conformance_combo!(t1_3d_f64_gm, Type1, 3, true, Backend::Gpu(Method::Gm));
conformance_combo!(
    t1_3d_f64_gmsort,
    Type1,
    3,
    true,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t1_3d_f64_sm, Type1, 3, true, Backend::Gpu(Method::Sm));
conformance_combo!(t1_3d_f32_gm, Type1, 3, false, Backend::Gpu(Method::Gm));
conformance_combo!(
    t1_3d_f32_gmsort,
    Type1,
    3,
    false,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t1_3d_f32_sm, Type1, 3, false, Backend::Gpu(Method::Sm));
conformance_combo!(t2_2d_f64_gm, Type2, 2, true, Backend::Gpu(Method::Gm));
conformance_combo!(
    t2_2d_f64_gmsort,
    Type2,
    2,
    true,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t2_2d_f64_sm, Type2, 2, true, Backend::Gpu(Method::Sm));
conformance_combo!(t2_2d_f32_gm, Type2, 2, false, Backend::Gpu(Method::Gm));
conformance_combo!(
    t2_2d_f32_gmsort,
    Type2,
    2,
    false,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t2_2d_f32_sm, Type2, 2, false, Backend::Gpu(Method::Sm));
conformance_combo!(t2_3d_f64_gm, Type2, 3, true, Backend::Gpu(Method::Gm));
conformance_combo!(
    t2_3d_f64_gmsort,
    Type2,
    3,
    true,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t2_3d_f64_sm, Type2, 3, true, Backend::Gpu(Method::Sm));
conformance_combo!(t2_3d_f32_gm, Type2, 3, false, Backend::Gpu(Method::Gm));
conformance_combo!(
    t2_3d_f32_gmsort,
    Type2,
    3,
    false,
    Backend::Gpu(Method::GmSort)
);
conformance_combo!(t2_3d_f32_sm, Type2, 3, false, Backend::Gpu(Method::Sm));

// CPU reference pipeline: same kernel/deconvolution math, same envelope.
conformance_combo!(cpu_t1_2d_f64, Type1, 2, true, Backend::Cpu);
conformance_combo!(cpu_t1_3d_f64, Type1, 3, true, Backend::Cpu);
conformance_combo!(cpu_t2_2d_f32, Type2, 2, false, Backend::Cpu);
conformance_combo!(cpu_t2_3d_f32, Type2, 3, false, Backend::Cpu);

/// Full-matrix run that writes `results/conformance.json` and feeds the
/// `nufft-trace` counters. Always runs (quick tier by default); under
/// `CONFORMANCE=full` it covers the complete matrix.
#[test]
fn emit_conformance_json() {
    let tier = Tier::from_env();
    let trace = Trace::new();
    let report = run_matrix(tier, Some(&trace));
    println!("{}", report.summary_line());
    for f in report.failures() {
        println!(
            "FAIL {}: rel_l2 {:.3e} > envelope {:.3e}",
            f.cell.name(),
            f.rel_l2.unwrap(),
            f.envelope
        );
    }
    report.write_json(&results_path()).unwrap();
    // trace counters were fed
    let tr = trace.report();
    let counter = |name: &str| tr.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("conformance.cells"), report.results.len() as i64);
    assert_eq!(counter("conformance.pass"), report.pass_count() as i64);
    // no cell may violate the envelope
    assert_eq!(report.fail_count(), 0, "{}", report.summary_line());
    // the only permitted skips are the documented SM feasibility hole
    for r in &report.results {
        if let Outcome::Skip(reason) = &r.outcome {
            assert!(
                reason.contains("shared memory"),
                "unexpected skip: {} ({reason})",
                r.cell.name()
            );
        }
    }
}

/// Spot-check that plans forced onto the Horner kernel fast path stay
/// inside the same calibrated envelopes as the exact-exponential path
/// (DESIGN.md §5l): the fitted evaluation is a tuning choice, not an
/// accuracy trade.
#[test]
fn horner_forced_plans_stay_inside_calibrated_envelopes() {
    use cufinufft::opts::KernelEval;
    use nufft_common::metrics::rel_l2;
    use nufft_common::reference::{type1_direct, type2_direct};
    use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
    use nufft_common::{Complex, Shape};
    use nufft_conformance::{envelope, GridFamily, POINTS_PER_CELL};

    let dev = Device::v100();
    let m = POINTS_PER_CELL;

    // GPU plans across dims, methods, grid families, and tolerances.
    for (dim, method, family, eps, seed) in [
        (2usize, Method::GmSort, GridFamily::PowTwo, 1e-5, 61u64),
        (2, Method::Sm, GridFamily::Prime, 1e-8, 62),
        (3, Method::GmSort, GridFamily::PowTwo, 1e-6, 63),
    ] {
        let modes_v = family.modes(dim);
        let modes = Shape::from_slice(&modes_v);
        let env = envelope(eps, true);
        let mut plan = cufinufft::Plan::<f64>::builder(TransformType::Type1, &modes_v)
            .eps(eps)
            .iflag(-1)
            .method(method)
            .fine_sizing(family.fine_sizing())
            .kernel_eval(KernelEval::Horner)
            .build(&dev)
            .unwrap();
        let pts = gen_points::<f64>(PointDist::Rand, dim, m, modes, seed);
        let cs = gen_strengths::<f64>(m, seed ^ 0x5f5f);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; modes.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, modes, -1);
        let err = rel_l2(&out, &want);
        assert!(
            err <= env,
            "gpu horner {method:?} dim={dim} eps={eps}: rel_l2 {err:.3e} > envelope {env:.3e}"
        );
    }

    // CPU EvalKernel plan, type 2, forced Horner.
    {
        use nufft_kernels::EvalKernel;
        let modes_v = GridFamily::PowTwo.modes(2);
        let modes = Shape::from_slice(&modes_v);
        let eps = 1e-7;
        let env = envelope(eps, true);
        let opts = finufft_cpu::plan::Opts {
            nthreads: 1,
            kernel_eval: KernelEval::Horner,
            ..Default::default()
        };
        let mut plan = finufft_cpu::plan::Plan::<f64, EvalKernel>::new(
            TransformType::Type2,
            &modes_v,
            1,
            eps,
            opts,
        )
        .unwrap();
        assert!(plan.kernel().is_horner());
        let pts = gen_points::<f64>(PointDist::Rand, 2, m, modes, 64);
        let fk = gen_coeffs::<f64>(modes.total(), 64 ^ 0xa5a5);
        plan.set_pts(pts.clone()).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; m];
        plan.execute(&fk, &mut out).unwrap();
        let want = type2_direct(&pts, &fk, modes, 1);
        let err = rel_l2(&out, &want);
        assert!(
            err <= env,
            "cpu horner type2: rel_l2 {err:.3e} > envelope {env:.3e}"
        );
    }
}
