//! Spreading kernels for the NUFFT libraries in this workspace.
//!
//! The paper's contribution uses the "exponential of semicircle" (ES)
//! kernel ([`es::EsKernel`], eq. 5-6); the baselines use the truncated
//! Gaussian ([`gaussian::GaussianKernel`], CUNFFT) and Kaiser–Bessel
//! ([`kaiser_bessel::KaiserBesselKernel`], gpuNUFFT). All expose the same
//! [`Kernel1d`] interface: evaluation on the rescaled support `[-1, 1]`
//! and the Fourier transform needed for deconvolution.

#![forbid(unsafe_code)]

pub mod deconv;
pub mod es;
pub mod eval;
pub mod gauss_legendre;
pub mod gaussian;
pub mod horner;
pub mod kaiser_bessel;

pub use es::EsKernel;
pub use eval::{EvalKernel, KernelEval};
pub use gaussian::GaussianKernel;
pub use horner::HornerKernel;
pub use kaiser_bessel::KaiserBesselKernel;

/// A 1D spreading kernel on the rescaled support `[-1, 1]`, used in
/// tensor-product form in 2D/3D. `eval` must vanish outside `[-1, 1]`.
pub trait Kernel1d: Clone + Send + Sync + 'static {
    /// Support width in fine-grid points.
    fn width(&self) -> usize;
    /// Kernel value at `z` (kernel coordinate; grid spacing is `2/width`).
    fn eval(&self, z: f64) -> f64;
    /// Fourier transform `int_{-1}^{1} eval(z) e^{-i xi z} dz` (real/even).
    fn ft(&self, xi: f64) -> f64;

    /// Fill `out[t] = eval(z0 + t * 2/width)` for `t = 0..width` — one
    /// tensor-product factor for a point whose first covered grid node is
    /// at kernel coordinate `z0`.
    #[inline]
    fn eval_row(&self, z0: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.width());
        let step = 2.0 / self.width() as f64;
        for (t, o) in out.iter_mut().enumerate() {
            *o = self.eval(z0 + t as f64 * step);
        }
    }
}

/// Geometry of one point's kernel footprint along one axis.
///
/// For a point at fine-grid coordinate `g in [0, n)` and kernel width `w`,
/// the kernel covers the `w` consecutive grid nodes starting at
/// `l_start = ceil(g - w/2)` (possibly negative / beyond `n`; callers wrap
/// mod `n`). `z0` is the kernel coordinate of that first node; subsequent
/// nodes step by `2/w`, so `eval_row(z0, ..)` gives the tensor factor.
#[inline(always)]
pub fn spread_footprint(g: f64, w: usize) -> (i64, f64) {
    let l_start = (g - w as f64 / 2.0).ceil() as i64;
    let z0 = (l_start as f64 - g) * 2.0 / w as f64;
    (l_start, z0)
}

/// Fine-grid coordinate of a point `x` (any real; folded into the periodic
/// box): `g = (x mod 2 pi) / h in [0, n)`.
#[inline(always)]
pub fn grid_coord(x: f64, n: usize) -> f64 {
    let g = x.rem_euclid(std::f64::consts::TAU) / (std::f64::consts::TAU / n as f64);
    // guard the pathological x = 2pi - ulp case that folds to exactly n
    if g >= n as f64 {
        0.0
    } else {
        g
    }
}

impl Kernel1d for EsKernel {
    fn width(&self) -> usize {
        self.w
    }
    fn eval(&self, z: f64) -> f64 {
        EsKernel::eval(self, z)
    }
    fn ft(&self, xi: f64) -> f64 {
        EsKernel::ft(self, xi)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<K: Kernel1d>(k: K) {
        assert!(k.width() >= 2);
        assert!(k.eval(0.0) > 0.0);
        assert_eq!(k.eval(3.0), 0.0);
        assert!(k.ft(0.0) > 0.0);
        let mut row = vec![0.0; k.width()];
        k.eval_row(-1.0, &mut row);
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn footprint_geometry() {
        // point exactly between nodes, even width
        let (l0, z0) = spread_footprint(5.3, 4);
        assert_eq!(l0, 4);
        assert!((z0 - (4.0 - 5.3) * 0.5).abs() < 1e-15);
        // all w kernel arguments stay inside [-1, 1)
        for g in [0.0, 0.49, 5.3, 127.999] {
            for w in [2usize, 5, 6, 13] {
                let (l0, z0) = spread_footprint(g, w);
                let step = 2.0 / w as f64;
                let zlast = z0 + (w - 1) as f64 * step;
                assert!(z0 >= -1.0 - 1e-12, "g={g} w={w} z0={z0}");
                assert!(zlast <= 1.0 + 1e-12, "g={g} w={w} zlast={zlast}");
                let _ = l0;
            }
        }
    }

    #[test]
    fn grid_coord_folds_periodically() {
        let n = 100;
        let h = std::f64::consts::TAU / n as f64;
        assert!((grid_coord(0.0, n) - 0.0).abs() < 1e-12);
        assert!((grid_coord(h, n) - 1.0).abs() < 1e-9);
        // -pi folds to n/2
        assert!((grid_coord(-std::f64::consts::PI, n) - 50.0).abs() < 1e-9);
        // out-of-box inputs fold too
        let g1 = grid_coord(0.7, n);
        let g2 = grid_coord(0.7 + std::f64::consts::TAU, n);
        assert!((g1 - g2).abs() < 1e-9);
        // never returns n
        let g = grid_coord(-1e-18, n);
        assert!(g < n as f64);
    }

    #[test]
    fn all_kernels_implement_the_interface() {
        exercise(EsKernel::with_width(6));
        exercise(GaussianKernel::with_width(12, 2.0));
        exercise(KaiserBesselKernel::with_width(5, 2.0));
    }
}
