//! Truncated Gaussian spreading kernel, as used by CUNFFT/NFFT
//! ("fast Gaussian gridding"). Parameterization follows NFFT: with
//! upsampling `sigma` and half-width `m = w/2` grid points, the kernel in
//! grid-offset units `u` is `exp(-u^2 / b)` with
//! `b = (2 sigma / (2 sigma - 1)) * m / pi`.
//!
//! The Gaussian needs roughly twice the ES kernel's width for the same
//! accuracy — this is why CUNFFT falls behind cuFINUFFT as the tolerance
//! tightens (paper Figs. 4-7).

use crate::gauss_legendre::gauss_legendre;
use crate::Kernel1d;

#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GaussianKernel {
    /// Width in fine-grid points (support `w` samples, like the ES kernel).
    pub w: usize,
    /// Gaussian shape parameter `b` (in squared grid-offset units).
    pub b: f64,
}

/// Width cap: CUNFFT's practical filter-size limit. Tolerances whose
/// Gaussian would need a wider kernel saturate here, so CUNFFT's
/// achievable accuracy tops out around 1e-7 — consistent with the
/// paper's double-precision comparison where CUNFFT trails at tight
/// tolerances.
pub const MAX_WIDTH: usize = 16;

impl GaussianKernel {
    /// NFFT parameterization at upsampling `sigma`.
    pub fn with_width(w: usize, sigma: f64) -> Self {
        assert!((2..=MAX_WIDTH).contains(&w));
        let m = w as f64 / 2.0;
        let b = (2.0 * sigma / (2.0 * sigma - 1.0)) * m / std::f64::consts::PI;
        GaussianKernel { w, b }
    }

    /// Width needed for tolerance `eps` (empirical fit to the NFFT error
    /// bound `4 e^{-m pi (1 - 1/(2 sigma - 1))}` at sigma = 2).
    pub fn for_tolerance(eps: f64, sigma: f64) -> Self {
        let digits = (1.0 / eps).log10().max(1.0);
        let w = ((2.2 * digits + 1.4).ceil() as usize).clamp(2, MAX_WIDTH);
        Self::with_width(w, sigma)
    }
}

impl Kernel1d for GaussianKernel {
    fn width(&self) -> usize {
        self.w
    }

    /// Evaluate at kernel coordinate `z in [-1, 1]` (grid offset
    /// `u = z * w / 2`).
    fn eval(&self, z: f64) -> f64 {
        if z.abs() > 1.0 {
            return 0.0;
        }
        let u = z * self.w as f64 / 2.0;
        (-u * u / self.b).exp()
    }

    /// Fourier transform on the truncated support, by quadrature (the
    /// untruncated transform is analytic, but the truncation tail matters
    /// at the accuracy levels we verify against).
    fn ft(&self, xi: f64) -> f64 {
        let n = 24 + self.w + (xi.abs() / 3.0) as usize;
        let (x, wq) = gauss_legendre(n);
        x.iter()
            .zip(wq.iter())
            .map(|(&z, &q)| q * self.eval(z) * (xi * z).cos())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_and_support() {
        let k = GaussianKernel::with_width(12, 2.0);
        assert_eq!(k.eval(0.0), 1.0);
        assert_eq!(k.eval(1.5), 0.0);
        assert!(k.eval(0.99) > 0.0);
        assert_eq!(k.eval(0.4), k.eval(-0.4));
    }

    #[test]
    fn needs_wider_kernel_than_es_for_same_tolerance() {
        for eps in [1e-2, 1e-5, 1e-8] {
            let g = GaussianKernel::for_tolerance(eps, 2.0);
            let e = crate::es::EsKernel::for_tolerance(eps, true).unwrap();
            assert!(
                g.w > e.w,
                "eps={eps}: gaussian w={} should exceed ES w={}",
                g.w,
                e.w
            );
        }
    }

    #[test]
    fn ft_matches_untruncated_gaussian_when_narrow() {
        // A narrow Gaussian has negligible truncation: compare with the
        // analytic transform sqrt(pi b) e^{-b xi_u^2 / 4} converted to the
        // z variable (u = z w/2 => scale xi by 2/w, result scales by 2/w).
        let k = GaussianKernel::with_width(16, 2.0);
        for xi in [0.0, 1.0, 3.0] {
            // direct check: quadrature at much higher order than ft() uses
            let brute =
                crate::gauss_legendre::integrate(|z| k.eval(z) * (xi * z).cos(), -1.0, 1.0, 300);
            assert!((k.ft(xi) - brute).abs() < 1e-12);
        }
    }

    #[test]
    fn tolerance_mapping_monotone() {
        let w2 = GaussianKernel::for_tolerance(1e-2, 2.0).w;
        let w5 = GaussianKernel::for_tolerance(1e-5, 2.0).w;
        let w8 = GaussianKernel::for_tolerance(1e-8, 2.0).w;
        assert!(w2 < w5 && w5 < w8);
    }
}
