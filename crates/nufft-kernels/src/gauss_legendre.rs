//! Gauss–Legendre quadrature nodes and weights on `[-1, 1]`.
//!
//! Used to evaluate the Fourier transform of the spreading kernel, which
//! has no convenient closed form for the "exponential of semicircle"
//! kernel (the deconvolution factors `p_k` of eqs. 10-11 need `phi_hat`).
//! Nodes are found by Newton iteration on the Legendre polynomial `P_n`,
//! seeded with the Chebyshev-like asymptotic approximation.

/// Compute `n`-point Gauss–Legendre nodes and weights on `[-1, 1]`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut x = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // initial guess (Abramowitz & Stegun 22.16.6 flavor)
        let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp;
        loop {
            // evaluate P_n(z) and P_n'(z) by the three-term recurrence
            let mut p0 = 1.0f64;
            let mut p1 = 0.0f64;
            for j in 0..n {
                let p2 = p1;
                p1 = p0;
                p0 = ((2 * j + 1) as f64 * z * p1 - j as f64 * p2) / (j + 1) as f64;
            }
            dp = n as f64 * (z * p0 - p1) / (z * z - 1.0);
            let dz = p0 / dp;
            z -= dz;
            if dz.abs() < 1e-15 {
                break;
            }
        }
        x[i] = -z;
        x[n - 1 - i] = z;
        let wi = 2.0 / ((1.0 - z * z) * dp * dp);
        w[i] = wi;
        w[n - 1 - i] = wi;
    }
    (x, w)
}

/// Integrate `f` over `[a, b]` with `n`-point Gauss–Legendre.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    let (x, w) = gauss_legendre(n);
    let c = 0.5 * (b - a);
    let d = 0.5 * (b + a);
    x.iter()
        .zip(w.iter())
        .map(|(&xi, &wi)| wi * f(c * xi + d))
        .sum::<f64>()
        * c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [1, 2, 5, 16, 41, 64] {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-13, "n={n}: {s}");
        }
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let (x, _) = gauss_legendre(10);
        for i in 0..10 {
            assert!((x[i] + x[9 - i]).abs() < 1e-14);
            if i > 0 {
                assert!(x[i] > x[i - 1]);
            }
        }
    }

    #[test]
    fn exact_for_polynomials() {
        // n-point GL is exact through degree 2n-1
        let n = 6;
        // integral of x^10 over [-1,1] = 2/11
        let v = integrate(|x| x.powi(10), -1.0, 1.0, n);
        assert!((v - 2.0 / 11.0).abs() < 1e-14);
        // degree 12 > 2*6-1, should NOT be exact
        let v12 = integrate(|x| x.powi(12), -1.0, 1.0, n);
        assert!((v12 - 2.0 / 13.0).abs() > 1e-10);
    }

    #[test]
    fn integrates_transcendentals() {
        let v = integrate(f64::cos, 0.0, std::f64::consts::FRAC_PI_2, 30);
        assert!((v - 1.0).abs() < 1e-14);
        let v = integrate(f64::exp, 0.0, 1.0, 30);
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-14);
    }

    #[test]
    fn odd_n_includes_origin() {
        let (x, _) = gauss_legendre(7);
        assert!(x[3].abs() < 1e-15);
    }
}
