//! Piecewise-polynomial kernel evaluation, FINUFFT's fast path.
//!
//! Spreading evaluates the kernel at `w` offsets sharing one fractional
//! position: with `l_start = ceil(g - w/2)` and `xi = l_start - g` in
//! `[-w/2, -w/2 + 1)`, the `w` needed values are `phi((xi + t) 2/w)` for
//! `t = 0..w`. Each is a smooth function of `xi` alone, so FINUFFT fits a
//! polynomial per output node at plan time and replaces `w` exp+sqrt
//! calls with `w` fused polynomial evaluations. We fit in the Chebyshev
//! basis and evaluate with Clenshaw recurrence (numerically stable, same
//! cost as Horner).
//!
//! Near `z = +/-1` the ES kernel has a square-root branch point, but its
//! magnitude there is `~e^{-beta} ~ eps`, so the fit's absolute error
//! stays at the kernel's own design tolerance.

use crate::es::EsKernel;
use crate::Kernel1d;

/// Maximum Chebyshev degree used in a fit.
const MAX_DEGREE: usize = 24;

/// A kernel with precomputed per-node Chebyshev fits for `eval_row`.
#[derive(Clone, Debug)]
pub struct HornerKernel {
    inner: EsKernel,
    /// `coeffs[t]` holds the Chebyshev coefficients of node `t`'s value
    /// as a function of the normalized fractional position `u in [-1,1]`.
    coeffs: Vec<Vec<f64>>,
}

impl HornerKernel {
    /// Fit the given ES kernel. `degree` defaults to `w + 6` (capped),
    /// which reaches the kernel's own accuracy floor.
    pub fn fit(inner: EsKernel) -> Self {
        let w = inner.w;
        let degree = (w + 6).min(MAX_DEGREE);
        let n = degree + 1;
        // Chebyshev nodes and the node-t sample functions
        let mut coeffs = Vec::with_capacity(w);
        for t in 0..w {
            let f = |u: f64| {
                // xi = -w/2 + (u+1)/2 ; z_t = (u + 1 - w + 2 t) / w
                let z = (u + 1.0 - w as f64 + 2.0 * t as f64) / w as f64;
                inner.eval(z)
            };
            let mut c = vec![0.0f64; n];
            for (k, ck) in c.iter_mut().enumerate() {
                let mut acc = 0.0;
                for j in 0..n {
                    let theta = std::f64::consts::PI * (j as f64 + 0.5) / n as f64;
                    acc += f(theta.cos()) * (k as f64 * theta).cos();
                }
                *ck = 2.0 * acc / n as f64;
            }
            c[0] *= 0.5;
            coeffs.push(c);
        }
        HornerKernel { inner, coeffs }
    }

    /// Clenshaw evaluation of one node's fit at `u in [-1, 1]`.
    #[inline]
    fn clenshaw(c: &[f64], u: f64) -> f64 {
        let mut b1 = 0.0f64;
        let mut b2 = 0.0f64;
        let two_u = 2.0 * u;
        for &ck in c.iter().rev() {
            let b0 = ck + two_u * b1 - b2;
            b2 = b1;
            b1 = b0;
        }
        b1 - u * b2
    }

    pub fn inner(&self) -> &EsKernel {
        &self.inner
    }

    /// Measured maximum absolute error of the fitted `eval_row` against
    /// the exact kernel, sampled over the fractional positions spreading
    /// can produce (`z0` spanning one grid cell, including both support
    /// edges). Plan construction uses this to decide whether the fast
    /// path meets the requested tolerance.
    pub fn max_fit_error(&self) -> f64 {
        let w = self.inner.w;
        let mut exact = [0.0f64; crate::es::MAX_WIDTH];
        let mut fitted = [0.0f64; crate::es::MAX_WIDTH];
        let mut worst = 0.0f64;
        const SAMPLES: usize = 128;
        for i in 0..=SAMPLES {
            let g = 5.0 + i as f64 / SAMPLES as f64; // one full cell, both edges
            let (_, z0) = crate::spread_footprint(g, w);
            self.inner.eval_row(z0, &mut exact[..w]);
            self.eval_row(z0, &mut fitted[..w]);
            for t in 0..w {
                worst = worst.max((exact[t] - fitted[t]).abs());
            }
        }
        worst
    }
}

impl Kernel1d for HornerKernel {
    fn width(&self) -> usize {
        self.inner.w
    }

    /// Pointwise evaluation falls back to the exact kernel (used by the
    /// Fourier-transform/deconvolution path, which is not hot).
    fn eval(&self, z: f64) -> f64 {
        self.inner.eval(z)
    }

    fn ft(&self, xi: f64) -> f64 {
        self.inner.ft(xi)
    }

    /// The hot path: all `w` node values from one fractional position via
    /// the precomputed fits.
    #[inline]
    fn eval_row(&self, z0: f64, out: &mut [f64]) {
        let w = self.inner.w;
        debug_assert_eq!(out.len(), w);
        // z0 = 2 xi / w with xi in [-w/2, -w/2 + 1) => u = w z0 + w - 1
        let u = (w as f64 * z0 + w as f64 - 1.0).clamp(-1.0, 1.0);
        for (t, o) in out.iter_mut().enumerate() {
            *o = Self::clenshaw(&self.coeffs[t], u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread_footprint;

    #[test]
    fn fits_match_direct_evaluation_across_widths() {
        for w in [2usize, 3, 6, 9, 13, 16] {
            let es = EsKernel::with_width(w);
            let hk = HornerKernel::fit(es);
            let tol = (-es.beta).exp().max(1e-13) * 10.0;
            // sweep fractional positions exactly as spreading produces them
            for i in 0..200 {
                let g = 5.0 + i as f64 / 200.0; // grid coordinate in [5, 6)
                let (_, z0) = spread_footprint(g, w);
                let mut exact = vec![0.0; w];
                es.eval_row(z0, &mut exact);
                let mut fitted = vec![0.0; w];
                hk.eval_row(z0, &mut fitted);
                for t in 0..w {
                    assert!(
                        (exact[t] - fitted[t]).abs() < tol,
                        "w={w} i={i} t={t}: {} vs {} (tol {tol:.2e})",
                        exact[t],
                        fitted[t]
                    );
                }
            }
        }
    }

    proptest::proptest! {
        /// Property: for every supported width and any fractional
        /// position (including the +/- support edges, where the ES kernel
        /// has its square-root branch point), the fitted row matches the
        /// exact row within the kernel's design tolerance.
        #[test]
        fn fit_matches_exact_for_any_width_and_fraction(
            w in 2usize..=crate::es::MAX_WIDTH,
            frac in 0.0f64..1.0,
        ) {
            let es = EsKernel::with_width(w);
            let hk = HornerKernel::fit(es);
            let tol = (-es.beta).exp().max(1e-13) * 10.0;
            let (_, z0) = spread_footprint(7.0 + frac, w);
            let mut exact = vec![0.0; w];
            let mut fitted = vec![0.0; w];
            es.eval_row(z0, &mut exact);
            hk.eval_row(z0, &mut fitted);
            for t in 0..w {
                proptest::prop_assert!(
                    (exact[t] - fitted[t]).abs() < tol,
                    "w={} frac={} t={}: {} vs {} (tol {:.2e})",
                    w, frac, t, exact[t], fitted[t], tol
                );
            }
        }
    }

    #[test]
    fn fit_holds_at_exact_support_edges_for_all_widths() {
        // frac = 0 pins the first node to the -1 support edge (even w) and
        // frac -> 1 pins the last node to +1; check both exactly, plus the
        // aggregate fit-error measurement used by plan-time Auto selection.
        for w in 2..=crate::es::MAX_WIDTH {
            let es = EsKernel::with_width(w);
            let hk = HornerKernel::fit(es);
            let tol = (-es.beta).exp().max(1e-13) * 10.0;
            assert!(
                hk.max_fit_error() < tol,
                "w={w}: measured fit error {:.2e} exceeds design tol {tol:.2e}",
                hk.max_fit_error()
            );
            for frac in [0.0, 1.0 - f64::EPSILON, 1.0] {
                let (_, z0) = spread_footprint(7.0 + frac, w);
                let mut exact = vec![0.0; w];
                let mut fitted = vec![0.0; w];
                es.eval_row(z0, &mut exact);
                hk.eval_row(z0, &mut fitted);
                for t in 0..w {
                    assert!(
                        (exact[t] - fitted[t]).abs() < tol,
                        "edge w={w} frac={frac} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn pointwise_and_ft_delegate_to_exact_kernel() {
        let es = EsKernel::with_width(7);
        let hk = HornerKernel::fit(es);
        assert_eq!(hk.eval(0.3), es.eval(0.3));
        assert_eq!(hk.ft(2.0), es.ft(2.0));
        assert_eq!(hk.width(), 7);
    }

    #[test]
    fn clenshaw_evaluates_chebyshev_basis() {
        // coefficients [0,0,1] = T_2(u) = 2u^2 - 1
        let c = [0.0, 0.0, 1.0];
        for u in [-1.0, -0.3, 0.0, 0.7, 1.0] {
            let want = 2.0 * u * u - 1.0;
            assert!((HornerKernel::clenshaw(&c, u) - want).abs() < 1e-14);
        }
    }
}
