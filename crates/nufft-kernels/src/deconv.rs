//! Deconvolution (correction) factors, paper eqs. 10-11.
//!
//! The spread/interp steps convolve with the periodized kernel, which
//! multiplies Fourier coefficients by `psi_hat(k)/h^d`. The correction
//! divides it out: per dimension `p_i(k) = h_i / psi_hat_i(k) =
//! (2/w) / phi_hat(alpha_i k)` with `alpha_i = w pi / n_i`, and the full
//! factor is the tensor product. Factors are real and even in `k`.
//!
//! # Parity audit (even-size Nyquist, odd/even symmetry)
//!
//! The mode range is `k = freq_start(N) + j` for `j = 0..N`, i.e.
//! `-N/2 .. N/2-1` for even `N` and `-(N-1)/2 .. (N-1)/2` for odd `N`.
//! For even `N` the range is *asymmetric*: the Nyquist mode `k = -N/2`
//! at output index `j = 0` has no positive partner, so the evenness of
//! `phi_hat` only pairs indices `1..N-1` (`row[N/2 - k]` with
//! `row[N/2 + k]`) and `row[0]` stands alone — any symmetry-exploiting
//! rewrite must compute it explicitly, not mirror it. For odd `N` every
//! mode pairs up and index `(N-1)/2` is DC. Both cases are exercised
//! end-to-end by `tests/parity.rs`, which round-trips single pure modes
//! (including the even-size Nyquist) through type 2 then type 1 against
//! the direct NUDFT oracle in 2D and 3D; the unit tests below pin the
//! per-row indexing.

use crate::Kernel1d;
use nufft_common::shape::{freq_start, Shape};

/// Per-dimension correction factors `p_i[j]` for output mode index `j`
/// (ascending `k = -N/2 + j`).
pub fn correction_row<K: Kernel1d>(kernel: &K, n_modes: usize, n_fine: usize) -> Vec<f64> {
    let w = kernel.width() as f64;
    let alpha = w * std::f64::consts::PI / n_fine as f64;
    let k0 = freq_start(n_modes);
    (0..n_modes)
        .map(|j| {
            let k = (k0 + j as i64) as f64;
            let ft = kernel.ft(alpha * k);
            assert!(
                ft.abs() > f64::MIN_POSITIVE,
                "kernel FT vanished at k={k}; upsampling too small for this kernel"
            );
            (2.0 / w) / ft
        })
        .collect()
}

/// All per-dimension rows for a mode/fine shape pair. Unused dimensions
/// get a single factor of 1.
pub fn correction_rows<K: Kernel1d>(kernel: &K, modes: Shape, fine: Shape) -> [Vec<f64>; 3] {
    let mut rows = [vec![1.0], vec![1.0], vec![1.0]];
    for (i, row) in rows.iter_mut().enumerate().take(modes.dim) {
        *row = correction_row(kernel, modes.n[i], fine.n[i]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EsKernel;

    #[test]
    fn factors_are_even_in_k() {
        let k = EsKernel::with_width(6);
        let row = correction_row(&k, 16, 32);
        // k = -8..7; p(-k) = p(k)
        for j in 1..8 {
            let neg = row[8 - j]; // k = -j
            let pos = row[8 + j]; // k = +j
            assert!((neg - pos).abs() < 1e-12 * pos.abs(), "j={j}");
        }
    }

    #[test]
    fn even_size_nyquist_is_unpaired_and_largest() {
        // even N: row[0] is k = -N/2, the one mode with no +k partner.
        // It must match an explicit evaluation at alpha*(-N/2) and exceed
        // every paired factor (phi_hat decays monotonically).
        let k = EsKernel::with_width(6);
        let n = 16usize;
        let row = correction_row(&k, n, 2 * n);
        let alpha = 6.0 * std::f64::consts::PI / (2 * n) as f64;
        let expect = (2.0 / 6.0) / k.ft(alpha * -(n as f64 / 2.0));
        assert!((row[0] - expect).abs() < 1e-13 * expect.abs());
        assert!(row.iter().skip(1).all(|&p| p < row[0]));
    }

    #[test]
    fn odd_size_is_fully_paired() {
        // odd N: k = -(N-1)/2 .. (N-1)/2, DC at index (N-1)/2, and the
        // two extreme modes +-(N-1)/2 are partners with equal factors.
        let k = EsKernel::with_width(5);
        let n = 15usize;
        let row = correction_row(&k, n, 30);
        let dc = n / 2;
        for j in 1..=dc {
            let d = (row[dc - j] - row[dc + j]).abs();
            assert!(d < 1e-12 * row[dc + j].abs(), "j={j}");
        }
        assert!((row[0] - row[n - 1]).abs() < 1e-12 * row[0].abs());
    }

    #[test]
    fn factors_grow_towards_high_frequency() {
        // phi_hat decays, so p = const/phi_hat grows with |k|
        let k = EsKernel::with_width(8);
        let row = correction_row(&k, 32, 64);
        let center = row[16]; // k=0
        let edge = row[0]; // k=-16
        assert!(edge > center);
        // monotone on the positive half
        for j in 17..31 {
            assert!(row[j + 1] >= row[j]);
        }
    }

    #[test]
    fn dc_factor_matches_direct_formula() {
        let k = EsKernel::with_width(5);
        let row = correction_row(&k, 8, 16);
        let expect = (2.0 / 5.0) / k.ft(0.0);
        assert!((row[4] - expect).abs() < 1e-14);
    }

    #[test]
    fn rows_cover_dims() {
        let k = EsKernel::with_width(4);
        let rows = correction_rows(&k, Shape::d2(8, 10), Shape::d2(16, 20));
        assert_eq!(rows[0].len(), 8);
        assert_eq!(rows[1].len(), 10);
        assert_eq!(rows[2], vec![1.0]);
    }
}
