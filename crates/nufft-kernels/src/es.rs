//! The "exponential of semicircle" (ES) spreading kernel of
//! FINUFFT/cuFINUFFT (paper eq. 5):
//!
//! ```text
//! phi_beta(z) = exp(beta (sqrt(1 - z^2) - 1)),  |z| <= 1,   else 0,
//! ```
//!
//! with width and shape chosen from the user tolerance by eq. 6:
//! `w = ceil(log10(1/eps)) + 1`, `beta = 2.30 w` (at upsampling sigma=2).

use crate::gauss_legendre::gauss_legendre;
use nufft_common::error::{NufftError, Result};

/// Hard cap on kernel width, as in FINUFFT.
pub const MAX_WIDTH: usize = 16;

/// Smallest meaningful tolerance per precision: just above round-off for
/// the working type (FINUFFT warns below these; we error).
pub fn eps_limit(is_double: bool) -> f64 {
    if is_double {
        1e-14
    } else {
        1e-7
    }
}

/// Kernel parameters chosen from a tolerance (paper eq. 6).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EsKernel {
    /// Width in fine-grid points.
    pub w: usize,
    /// Shape parameter.
    pub beta: f64,
}

impl EsKernel {
    /// Select `w` and `beta` for tolerance `eps` (working precision given
    /// by `is_double`). Errors when `eps` is below the precision limit.
    ///
    /// # Achievable tolerances
    ///
    /// Requests below the working-precision floor return
    /// [`NufftError::EpsTooSmall`] rather than silently clamping — the
    /// kernel could be widened but round-off in the spread/FFT/deconvolve
    /// pipeline would dominate, so the requested accuracy is unreachable:
    ///
    /// | precision | smallest `eps` | widest kernel used          |
    /// |-----------|----------------|-----------------------------|
    /// | f32       | `1e-7`         | `w = 8`  (`beta = 18.4`)    |
    /// | f64       | `1e-14`        | `w = 15` (`beta = 34.5`)    |
    ///
    /// Within range, `w = ceil(log10(1/eps)) + 1` (clamped to
    /// `[2, MAX_WIDTH]`), so each extra requested digit widens the kernel
    /// by one fine-grid point:
    ///
    /// | `eps`   | 1e-2 | 1e-4 | 1e-6 | 1e-8 | 1e-10 | 1e-12 | 1e-14 |
    /// |---------|------|------|------|------|-------|-------|-------|
    /// | `w`     | 3    | 5    | 7    | 9    | 11    | 13    | 15    |
    ///
    /// The observed `rel_l2` against a direct NUDFT lands within a small
    /// multiple of `eps` (see the conformance harness in
    /// `crates/nufft-conformance` for the calibrated envelope).
    pub fn for_tolerance(eps: f64, is_double: bool) -> Result<Self> {
        let limit = eps_limit(is_double);
        if eps < limit || eps.is_nan() {
            return Err(NufftError::EpsTooSmall { eps, limit });
        }
        let digits = (1.0 / eps).log10().ceil();
        let w = ((digits as usize) + 1).clamp(2, MAX_WIDTH);
        Ok(Self::with_width(w))
    }

    /// Build directly from a width (used by parameter sweeps).
    pub fn with_width(w: usize) -> Self {
        assert!(
            (2..=MAX_WIDTH).contains(&w),
            "kernel width {w} out of range"
        );
        EsKernel {
            w,
            beta: 2.30 * w as f64,
        }
    }

    /// Generalized parameter rule for arbitrary upsampling factors
    /// `sigma > 1` (the paper fixes sigma = 2 and lists smaller sigma as
    /// future work; FINUFFT ships sigma = 1.25). Following Barnett et
    /// al. (SISC 2019): `beta = gamma pi w (1 - 1/(2 sigma))` with
    /// `gamma ~ 0.97`, which gives about
    /// `gamma pi (1 - 1/(2 sigma)) / ln 10` accuracy digits per unit
    /// width. At sigma = 2 this reduces to `beta ~ 2.29 w`, matching the
    /// paper's `2.30 w`.
    ///
    /// Like [`EsKernel::for_tolerance`], `eps` below the precision floor
    /// (`1e-7` for f32, `1e-14` for f64 — see [`eps_limit`]) is an
    /// [`NufftError::EpsTooSmall`] error, never a silent clamp. Smaller
    /// `sigma` buys fewer digits per unit width, so the same `eps` needs
    /// a wider kernel (e.g. at `sigma = 1.25`, `eps = 1e-6` takes `w = 9`
    /// versus `w = 7` at `sigma = 2`).
    pub fn for_tolerance_sigma(eps: f64, sigma: f64, is_double: bool) -> Result<Self> {
        assert!(sigma > 1.0, "upsampling factor must exceed 1");
        let limit = eps_limit(is_double);
        if eps < limit || eps.is_nan() {
            return Err(NufftError::EpsTooSmall { eps, limit });
        }
        let gamma = 0.97;
        let digits_per_w =
            gamma * std::f64::consts::PI * (1.0 - 1.0 / (2.0 * sigma)) / std::f64::consts::LN_10;
        let digits = (1.0 / eps).log10();
        let w = ((digits / digits_per_w).ceil() as usize + 1).clamp(2, MAX_WIDTH);
        let beta = gamma * std::f64::consts::PI * w as f64 * (1.0 - 1.0 / (2.0 * sigma));
        Ok(EsKernel { w, beta })
    }

    /// Evaluate `phi_beta(z)`; zero outside `[-1, 1]`.
    #[inline]
    pub fn eval(&self, z: f64) -> f64 {
        let t = 1.0 - z * z;
        if t <= 0.0 {
            // include the endpoint |z|=1 where the kernel is e^{-beta}
            if z.abs() <= 1.0 {
                return (-self.beta).exp();
            }
            return 0.0;
        }
        (self.beta * (t.sqrt() - 1.0)).exp()
    }

    /// Evaluate the kernel at the `w` grid offsets covering a point whose
    /// fractional distance from the first covered grid node is `z0 in
    /// [-1, -1 + 2/w]`-ish; concretely fills `out[t] = phi(z0 + t*(2/w))`.
    /// This is the tensor-product 1D factor used by all spread/interp
    /// loops (kernel support is rescaled so the grid offsets step by
    /// `2/w` in the kernel's own coordinate).
    #[inline]
    pub fn eval_row(&self, z0: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.w);
        let step = 2.0 / self.w as f64;
        for (t, o) in out.iter_mut().enumerate() {
            *o = self.eval(z0 + t as f64 * step);
        }
    }

    /// Fourier transform `phi_hat(xi) = int_{-1}^{1} phi(z) e^{-i xi z} dz`
    /// (real and even), by Gauss–Legendre quadrature.
    ///
    /// The substitution `z = sin(t)` removes the square-root endpoint
    /// nonsmoothness of `sqrt(1 - z^2)`, making the integrand analytic so
    /// the quadrature converges exponentially:
    /// `int_{-pi/2}^{pi/2} e^{beta (cos t - 1)} cos(xi sin t) cos t dt`.
    pub fn ft(&self, xi: f64) -> f64 {
        let n = 24 + 2 * self.w + (xi.abs() / 2.0) as usize;
        let (x, wq) = gauss_legendre(n);
        let half_pi = std::f64::consts::FRAC_PI_2;
        let mut acc = 0.0;
        for (&u, &q) in x.iter().zip(wq.iter()) {
            let t = half_pi * u;
            let (st, ct) = t.sin_cos();
            acc += q * (self.beta * (ct - 1.0)).exp() * (xi * st).cos() * ct;
        }
        acc * half_pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_rule_matches_paper() {
        // w = ceil(log10(1/eps)) + 1
        assert_eq!(EsKernel::for_tolerance(1e-2, true).unwrap().w, 3);
        assert_eq!(EsKernel::for_tolerance(1e-5, true).unwrap().w, 6);
        assert_eq!(EsKernel::for_tolerance(1e-12, true).unwrap().w, 13);
        // beta = 2.30 w
        let k = EsKernel::for_tolerance(1e-5, true).unwrap();
        assert!((k.beta - 13.8).abs() < 1e-12);
    }

    #[test]
    fn tolerance_below_precision_errors() {
        assert!(matches!(
            EsKernel::for_tolerance(1e-9, false),
            Err(NufftError::EpsTooSmall { .. })
        ));
        assert!(matches!(
            EsKernel::for_tolerance(1e-15, true),
            Err(NufftError::EpsTooSmall { .. })
        ));
        assert!(EsKernel::for_tolerance(1e-7, false).is_ok());
        assert!(EsKernel::for_tolerance(1e-14, true).is_ok());
    }

    #[test]
    fn sigma_rule_tolerance_below_precision_errors() {
        // both precisions, both just-below and at the floor, for the
        // generalized-sigma selector too
        assert!(matches!(
            EsKernel::for_tolerance_sigma(9e-8, 2.0, false),
            Err(NufftError::EpsTooSmall { .. })
        ));
        assert!(matches!(
            EsKernel::for_tolerance_sigma(9e-15, 1.25, true),
            Err(NufftError::EpsTooSmall { .. })
        ));
        assert!(EsKernel::for_tolerance_sigma(1e-7, 1.25, false).is_ok());
        assert!(EsKernel::for_tolerance_sigma(1e-14, 2.0, true).is_ok());
        // NaN never sneaks through either selector
        assert!(EsKernel::for_tolerance_sigma(f64::NAN, 2.0, true).is_err());
        assert!(EsKernel::for_tolerance(f64::NAN, false).is_err());
    }

    #[test]
    fn documented_width_table_holds() {
        // the rustdoc table on for_tolerance: w = ceil(log10(1/eps)) + 1
        for (eps, w) in [
            (1e-2, 3usize),
            (1e-4, 5),
            (1e-6, 7),
            (1e-8, 9),
            (1e-10, 11),
            (1e-12, 13),
            (1e-14, 15),
        ] {
            assert_eq!(EsKernel::for_tolerance(eps, true).unwrap().w, w, "{eps}");
        }
        // f32 floor row: eps = 1e-7 -> w = 8, beta = 18.4
        let k32 = EsKernel::for_tolerance(1e-7, false).unwrap();
        assert_eq!(k32.w, 8);
        assert!((k32.beta - 18.4).abs() < 1e-12);
    }

    #[test]
    fn kernel_shape() {
        let k = EsKernel::with_width(6);
        assert_eq!(k.eval(0.0), 1.0); // peak value e^0
        assert!(k.eval(0.5) < 1.0);
        assert!((k.eval(1.0) - (-k.beta).exp()).abs() < 1e-300);
        assert_eq!(k.eval(1.0001), 0.0);
        assert_eq!(k.eval(-2.0), 0.0);
        // even function
        assert_eq!(k.eval(0.3), k.eval(-0.3));
        // monotone decreasing on [0,1]
        let mut prev = k.eval(0.0);
        for i in 1..=10 {
            let v = k.eval(i as f64 / 10.0);
            assert!(v < prev);
            prev = v;
        }
    }

    /// High-order reference using the same analyticity-restoring
    /// `z = sin(t)` substitution, at 4x the node count.
    fn ft_reference(k: &EsKernel, xi: f64) -> f64 {
        let half_pi = std::f64::consts::FRAC_PI_2;
        crate::gauss_legendre::integrate(
            |t| (k.beta * (t.cos() - 1.0)).exp() * (xi * t.sin()).cos() * t.cos(),
            -half_pi,
            half_pi,
            400,
        )
    }

    #[test]
    fn ft_at_zero_is_kernel_mass() {
        let k = EsKernel::with_width(7);
        let mass = ft_reference(&k, 0.0);
        assert!((k.ft(0.0) - mass).abs() < 1e-13);
        assert!(mass > 0.0);
    }

    #[test]
    fn ft_decays_with_frequency() {
        let k = EsKernel::with_width(8);
        let f0 = k.ft(0.0);
        let f5 = k.ft(5.0).abs();
        let f12 = k.ft(12.0).abs();
        assert!(f5 < f0);
        assert!(f12 < f5);
    }

    #[test]
    fn ft_is_even() {
        let k = EsKernel::with_width(5);
        for xi in [0.5, 2.0, 7.7] {
            assert!((k.ft(xi) - k.ft(-xi)).abs() < 1e-13);
        }
    }

    #[test]
    fn ft_quadrature_converged() {
        // compare against a 400-node reference with the same substitution
        let k = EsKernel::with_width(13);
        for xi in [0.0, 3.0, 10.0, 20.0] {
            let brute = ft_reference(&k, xi);
            assert!(
                (k.ft(xi) - brute).abs() <= 1e-13 * brute.abs().max(1.0),
                "xi={xi}: {} vs {brute}",
                k.ft(xi)
            );
        }
    }

    #[test]
    fn sigma_general_rule_reduces_to_paper_at_two() {
        let k2 = EsKernel::for_tolerance_sigma(1e-6, 2.0, true).unwrap();
        let kp = EsKernel::for_tolerance(1e-6, true).unwrap();
        // widths agree within one grid point; beta within a few percent
        assert!((k2.w as i64 - kp.w as i64).abs() <= 1);
        assert!((k2.beta / k2.w as f64 - 2.30).abs() < 0.05);
    }

    #[test]
    fn smaller_sigma_needs_wider_kernel() {
        let k125 = EsKernel::for_tolerance_sigma(1e-6, 1.25, true).unwrap();
        let k2 = EsKernel::for_tolerance_sigma(1e-6, 2.0, true).unwrap();
        assert!(k125.w > k2.w, "{} vs {}", k125.w, k2.w);
    }

    #[test]
    fn eval_row_spans_support() {
        let k = EsKernel::with_width(4);
        let mut row = [0.0; 4];
        k.eval_row(-0.9, &mut row);
        let step = 2.0 / 4.0;
        for (t, &v) in row.iter().enumerate() {
            assert_eq!(v, k.eval(-0.9 + t as f64 * step));
        }
    }
}
