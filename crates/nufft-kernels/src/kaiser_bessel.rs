//! Kaiser–Bessel spreading kernel, as used by gpuNUFFT (MRI gridding):
//!
//! ```text
//! phi(z) = I0(beta sqrt(1 - z^2)) / I0(beta),  |z| <= 1,
//! ```
//!
//! with Beatty's shape rule `beta = pi sqrt(w^2/sigma^2 (sigma-1/2)^2 - 0.8)`.
//! gpuNUFFT limits the kernel width to small values (its sector design
//! assumes a narrow kernel), which caps its achievable accuracy — the
//! behaviour the paper notes ("gpuNUFFT's error appears always to exceed
//! 1e-3" in double precision).

use crate::Kernel1d;

/// gpuNUFFT-style width cap (kernel must fit well inside sector width 8).
pub const MAX_WIDTH: usize = 7;

#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KaiserBesselKernel {
    pub w: usize,
    pub beta: f64,
    /// Cached `I0(beta)` normalizer.
    i0_beta: f64,
}

/// Modified Bessel function of the first kind, order zero, by its power
/// series `I0(x) = sum_k (x^2/4)^k / (k!)^2`. All terms are positive so
/// there is no cancellation, and the series converges for every finite
/// argument (term count grows ~ |x|); the betas used here are < 20.
pub fn bessel_i0(x: f64) -> f64 {
    let t = x * x / 4.0;
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    for k in 1..2000u64 {
        term *= t / ((k * k) as f64);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum
}

impl KaiserBesselKernel {
    pub fn with_width(w: usize, sigma: f64) -> Self {
        assert!(
            (2..=MAX_WIDTH).contains(&w),
            "KB width {w} out of gpuNUFFT range"
        );
        let wf = w as f64;
        let arg = (wf / sigma * (sigma - 0.5)).powi(2) - 0.8;
        let beta = std::f64::consts::PI * arg.max(0.1).sqrt();
        KaiserBesselKernel {
            w,
            beta,
            i0_beta: bessel_i0(beta),
        }
    }

    /// Best width for tolerance `eps` under the gpuNUFFT cap: same
    /// digits+1 rule as ES, but saturating at [`MAX_WIDTH`].
    pub fn for_tolerance(eps: f64, sigma: f64) -> Self {
        let digits = (1.0 / eps).log10().max(1.0);
        let w = ((digits as usize) + 1).clamp(2, MAX_WIDTH);
        Self::with_width(w, sigma)
    }
}

impl Kernel1d for KaiserBesselKernel {
    fn width(&self) -> usize {
        self.w
    }

    fn eval(&self, z: f64) -> f64 {
        let t = 1.0 - z * z;
        if t < 0.0 {
            return 0.0;
        }
        bessel_i0(self.beta * t.sqrt()) / self.i0_beta
    }

    /// The KB transform is analytic:
    /// `phi_hat(xi) = 2 sinh(sqrt(beta^2 - xi^2)) / (I0(beta) sqrt(beta^2 - xi^2))`
    /// for `|xi| < beta`, continuing as `sinc` beyond the cutoff.
    fn ft(&self, xi: f64) -> f64 {
        let d = self.beta * self.beta - xi * xi;
        let v = if d > 1e-12 {
            let s = d.sqrt();
            s.sinh() / s
        } else if d < -1e-12 {
            let s = (-d).sqrt();
            s.sin() / s
        } else {
            1.0
        };
        2.0 * v / self.i0_beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-16);
        // I0(1) = 1.2660658777520082
        assert!((bessel_i0(1.0) - 1.2660658777520082).abs() < 1e-14);
        // I0(5) = 27.239871823604442
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-11);
        // larger argument: I0(20) = 4.3558282559553553e7
        assert!((bessel_i0(20.0) - 4.3558282559553553e7).abs() / 4.356e7 < 1e-13);
        // even function
        assert_eq!(bessel_i0(-3.0), bessel_i0(3.0));
    }

    #[test]
    fn bessel_series_smooth_at_moderate_arguments() {
        // monotone increasing and smooth: finite differences behave
        let lo = bessel_i0(14.999);
        let hi = bessel_i0(15.001);
        assert!(hi > lo);
        assert!((hi / lo - 1.0) < 1e-2);
    }

    #[test]
    fn kernel_shape() {
        let k = KaiserBesselKernel::with_width(5, 2.0);
        assert!((k.eval(0.0) - 1.0).abs() < 1e-15);
        assert!(k.eval(0.5) < 1.0);
        assert_eq!(k.eval(1.2), 0.0);
        assert_eq!(k.eval(-0.3), k.eval(0.3));
    }

    #[test]
    fn ft_matches_quadrature() {
        let k = KaiserBesselKernel::with_width(6, 2.0);
        for xi in [0.0, 2.0, k.beta - 0.5, k.beta + 0.5, 2.0 * k.beta] {
            let brute =
                crate::gauss_legendre::integrate(|z| k.eval(z) * (xi * z).cos(), -1.0, 1.0, 300);
            assert!(
                (k.ft(xi) - brute).abs() < 1e-10 * brute.abs().max(1.0),
                "xi={xi}: analytic {} vs quad {brute}",
                k.ft(xi)
            );
        }
    }

    #[test]
    fn width_saturates_at_cap() {
        let k = KaiserBesselKernel::for_tolerance(1e-12, 2.0);
        assert_eq!(k.w, MAX_WIDTH);
        let k = KaiserBesselKernel::for_tolerance(1e-2, 2.0);
        assert_eq!(k.w, 3);
    }
}
