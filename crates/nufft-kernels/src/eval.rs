//! Plan-time kernel-evaluation selection: exact exponential vs the
//! fitted Horner/Chebyshev fast path.
//!
//! Plans construct an [`EvalKernel`] once at build time. Under
//! [`KernelEval::Auto`] the Chebyshev table is fitted and its measured
//! error checked against the plan tolerance: the fast path is used when
//! the fit consumes at most 10% of the error budget
//! (`max_fit_error <= eps / 10`), and the exact exponential is kept
//! otherwise. The fallback triggers at the tightest double-precision
//! tolerances (`eps <= ~1e-13`), where the capped fit degree floors the
//! measured error around `1e-14` — within tolerance but too large a
//! fraction of it.

use crate::es::EsKernel;
use crate::horner::HornerKernel;
use crate::Kernel1d;

/// User-facing knob selecting how `eval_row` is computed inside a plan.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum KernelEval {
    /// Fit the Horner fast path at plan time; use it iff the measured fit
    /// error meets the plan tolerance, else fall back to the exact
    /// exponential.
    #[default]
    Auto,
    /// Always evaluate `exp(beta (sqrt(1 - z^2) - 1))` directly.
    Exact,
    /// Always use the fitted piecewise-polynomial evaluation.
    Horner,
}

/// The kernel evaluator a plan actually runs with: the exact ES kernel
/// or its fitted Horner fast path. Both evaluate the *same* ES kernel
/// (`ft` and pointwise `eval` always delegate to the exact form); they
/// differ only in how `eval_row` computes the `w` node values.
#[derive(Clone, Debug)]
pub enum EvalKernel {
    Exact(EsKernel),
    Horner(HornerKernel),
}

impl EvalKernel {
    /// Resolve the knob at plan time. `eps` is the plan tolerance the
    /// `Auto` fit-error check compares against.
    pub fn select(es: EsKernel, eps: f64, choice: KernelEval) -> Self {
        match choice {
            KernelEval::Exact => EvalKernel::Exact(es),
            KernelEval::Horner => EvalKernel::Horner(HornerKernel::fit(es)),
            KernelEval::Auto => {
                let hk = HornerKernel::fit(es);
                if hk.max_fit_error() <= eps * 0.1 {
                    EvalKernel::Horner(hk)
                } else {
                    EvalKernel::Exact(es)
                }
            }
        }
    }

    /// The underlying exact ES kernel (width/beta parameters).
    pub fn es(&self) -> &EsKernel {
        match self {
            EvalKernel::Exact(es) => es,
            EvalKernel::Horner(hk) => hk.inner(),
        }
    }

    /// Whether the Horner fast path is active.
    pub fn is_horner(&self) -> bool {
        matches!(self, EvalKernel::Horner(_))
    }
}

impl Kernel1d for EvalKernel {
    fn width(&self) -> usize {
        self.es().w
    }

    fn eval(&self, z: f64) -> f64 {
        self.es().eval(z)
    }

    fn ft(&self, xi: f64) -> f64 {
        self.es().ft(xi)
    }

    #[inline]
    fn eval_row(&self, z0: f64, out: &mut [f64]) {
        match self {
            EvalKernel::Exact(es) => es.eval_row(z0, out),
            EvalKernel::Horner(hk) => hk.eval_row(z0, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_picks_horner_at_moderate_tolerance() {
        let es = EsKernel::for_tolerance(1e-6, true).unwrap();
        let k = EvalKernel::select(es, 1e-6, KernelEval::Auto);
        assert!(k.is_horner(), "fit error ~eps/10 should pass the check");
        assert_eq!(k.es(), &es);
    }

    #[test]
    fn auto_falls_back_to_exact_near_machine_precision() {
        // At the tightest double-precision tolerances the capped fit
        // degree floors the measured error around 1e-14 — within
        // tolerance, but more than the 10% of the budget Auto allows.
        for eps in [1e-13, 1e-14] {
            let es = EsKernel::for_tolerance(eps, true).unwrap();
            let k = EvalKernel::select(es, eps, KernelEval::Auto);
            assert!(!k.is_horner(), "eps={eps}: fast path must stay exact");
        }
        // One notch looser, the fast path is back on.
        let es = EsKernel::for_tolerance(1e-12, true).unwrap();
        assert!(EvalKernel::select(es, 1e-12, KernelEval::Auto).is_horner());
    }

    #[test]
    fn forced_variants_ignore_the_fit_check() {
        let es = EsKernel::for_tolerance(1e-14, true).unwrap();
        assert!(EvalKernel::select(es, 1e-14, KernelEval::Horner).is_horner());
        let es2 = EsKernel::for_tolerance(1e-4, false).unwrap();
        assert!(!EvalKernel::select(es2, 1e-4, KernelEval::Exact).is_horner());
    }

    #[test]
    fn eval_and_ft_always_delegate_to_exact() {
        let es = EsKernel::with_width(8);
        let k = EvalKernel::select(es, 1e-6, KernelEval::Horner);
        assert_eq!(k.eval(0.25), es.eval(0.25));
        assert_eq!(k.ft(1.5), es.ft(1.5));
        assert_eq!(k.width(), 8);
    }
}
