//! On-device bin sorting and subproblem construction (paper Sec. III-A).
//!
//! The real library does this with a handful of small CUDA kernels
//! (bin-index, histogram, exclusive scan, scatter). Functionally we
//! compute the same permutation on the host; the device is charged one
//! bulk pass per kernel with the same byte traffic the CUDA version
//! would generate.

use gpu_sim::{Contract, Device, KernelTrace, Precision, Scope};
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_common::workload::Points;
use nufft_kernels::grid_coord;

/// Bin decomposition of the fine grid.
#[derive(Copy, Clone, Debug)]
pub struct BinLayout {
    pub bin_size: [usize; 3],
    pub nbins: [usize; 3],
    pub fine: Shape,
}

impl BinLayout {
    pub fn new(fine: Shape, bin_size: [usize; 3]) -> Self {
        let mut bs = [1usize; 3];
        let mut nb = [1usize; 3];
        for i in 0..fine.dim {
            bs[i] = bin_size[i].max(1).min(fine.n[i]);
            nb[i] = fine.n[i].div_ceil(bs[i]);
        }
        BinLayout {
            bin_size: bs,
            nbins: nb,
            fine,
        }
    }

    pub fn total(&self) -> usize {
        self.nbins[0] * self.nbins[1] * self.nbins[2]
    }

    /// Fine-grid cell origin `(Delta_1, Delta_2, Delta_3)` of a bin.
    pub fn origin(&self, bin: usize) -> [usize; 3] {
        let b0 = bin % self.nbins[0];
        let r = bin / self.nbins[0];
        [
            b0 * self.bin_size[0],
            (r % self.nbins[1]) * self.bin_size[1],
            (r / self.nbins[1]) * self.bin_size[2],
        ]
    }

    #[inline]
    pub fn bin_of_cell(&self, cell: [usize; 3]) -> usize {
        cell[0] / self.bin_size[0]
            + self.nbins[0]
                * (cell[1] / self.bin_size[1] + self.nbins[1] * (cell[2] / self.bin_size[2]))
    }
}

/// Result of the device bin sort.
pub struct GpuBinSort {
    pub layout: BinLayout,
    /// Points in bin order: `perm[r]` is the original index.
    pub perm: Vec<u32>,
    /// CSR-style offsets into `perm`, length `bins + 1`.
    pub starts: Vec<u32>,
}

/// One SM spreading subproblem: a slice of `perm` plus its bin.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Subproblem {
    pub bin: u32,
    pub start: u32,
    pub len: u32,
}

/// Compute a point's fine-grid cell.
#[inline]
pub fn cell_of<T: Real>(pts: &Points<T>, j: usize, fine: Shape) -> [usize; 3] {
    let mut cell = [0usize; 3];
    for (i, c) in cell.iter_mut().enumerate().take(pts.dim) {
        let g = grid_coord(pts.coord(i, j).to_f64(), fine.n[i]);
        // `grid_coord` guarantees g in [0, n); the `min` is belt and
        // braces for the boundary-pinned cases (x = ±π exactly, x just
        // below 0 whose fold rounds to 2π) where g lands on n - ulp and
        // truncation must still produce the last cell, never n.
        debug_assert!(g >= 0.0 && g < fine.n[i] as f64, "fold escaped [0,n): {g}");
        *c = (g as usize).min(fine.n[i] - 1);
    }
    cell
}

/// Bin-sort the points "on the device": host-side counting sort, device
/// charged for the bin-index kernel, histogram, scan and scatter passes.
pub fn gpu_bin_sort<T: Real>(
    dev: &Device,
    pts: &Points<T>,
    fine: Shape,
    bin_size: [usize; 3],
) -> GpuBinSort {
    let layout = BinLayout::new(fine, bin_size);
    let nb = layout.total();
    let m = pts.len();
    let prec = if T::IS_DOUBLE {
        Precision::Double
    } else {
        Precision::Single
    };
    let coord_bytes = m * pts.dim * T::BYTES;

    let mut bin_of = vec![0u32; m];
    for (j, b) in bin_of.iter_mut().enumerate() {
        *b = layout.bin_of_cell(cell_of(pts, j, fine)) as u32;
    }
    // kernel 1: compute bin index per point
    dev.bulk_op("calc_binidx", coord_bytes, m * 4, m as f64 * 12.0, prec);

    let mut counts = vec![0u32; nb + 1];
    for &b in &bin_of {
        counts[b as usize + 1] += 1;
    }
    // kernel 2: histogram (atomic adds into bin counters)
    dev.bulk_op("bin_histogram", m * 4, nb * 4, m as f64 * 2.0, prec);

    for b in 0..nb {
        counts[b + 1] += counts[b];
    }
    // kernel 3: exclusive scan over bins
    dev.bulk_op("bin_scan", nb * 4, nb * 4, nb as f64 * 2.0, prec);

    let starts = counts.clone();
    let mut cursor = counts;
    let mut perm = vec![0u32; m];
    for (j, &b) in bin_of.iter().enumerate() {
        perm[cursor[b as usize] as usize] = j as u32;
        cursor[b as usize] += 1;
    }
    // kernel 4: scatter point indices into bin order
    dev.bulk_op("bin_scatter", m * 8, m * 4, m as f64 * 2.0, prec);

    if let Some(trace) = dev.trace() {
        record_bin_stats(&trace, &starts, nb, m);
    }
    if dev.hazard_checking() {
        trace_bin_sort_passes(dev, &bin_of, &starts, nb, pts.dim);
    }

    GpuBinSort {
        layout,
        perm,
        starts,
    }
}

/// Replay the four bin-sort passes through the access tracer. The passes
/// run as `bulk_op`s (host loops pricing device traffic), so unlike the
/// spread/interp kernels there is no per-block execution to instrument
/// in place; instead we reconstruct the access pattern each CUDA kernel
/// would issue — one thread per point, 256 threads per block — and
/// submit it with an explicit [`Contract`].
fn trace_bin_sort_passes(dev: &Device, bin_of: &[u32], starts: &[u32], nb: usize, dim: usize) {
    let m = bin_of.len();
    let tid = |j: usize| ((j / 256) as u32, (j % 256) as u32);

    // kernel 1: bin_of[j] = bin(points[j]) — pure map, no atomics
    let mut t = KernelTrace::new("calc_binidx");
    let pts_buf = t.buffer("points", Scope::Global, 8);
    let bin_buf = t.buffer("bin_of", Scope::Global, 4);
    for j in 0..m {
        let (b, l) = tid(j);
        for arr in 0..dim {
            t.read(pts_buf, b, l, (j * 4 + arr) as u64);
        }
        t.write(bin_buf, b, l, j as u64);
    }
    dev.submit_access_trace(
        t,
        Contract {
            global_atomics: Some(0),
            ..Contract::default()
        },
    );

    // kernel 2: histogram — one global atomic per point on its bin counter
    let mut t = KernelTrace::new("bin_histogram");
    let bin_buf = t.buffer("bin_of", Scope::Global, 4);
    let cnt_buf = t.buffer("bin_counts", Scope::Global, 4);
    for (j, &bin) in bin_of.iter().enumerate() {
        let (b, l) = tid(j);
        t.read(bin_buf, b, l, j as u64);
        t.atomic(cnt_buf, b, l, bin as u64);
    }
    dev.submit_access_trace(
        t,
        Contract {
            global_atomics: Some(m as u64),
            ..Contract::default()
        },
    );

    // kernel 3: exclusive scan — single-threaded reference shape
    let mut t = KernelTrace::new("bin_scan");
    let cnt_buf = t.buffer("bin_counts", Scope::Global, 4);
    for b in 0..nb {
        t.read(cnt_buf, 0, 0, b as u64);
        t.write(cnt_buf, 0, 0, b as u64 + 1);
    }
    dev.submit_access_trace(
        t,
        Contract {
            global_atomics: Some(0),
            ..Contract::default()
        },
    );

    // kernel 4: scatter — atomic cursor bump per point, unique perm slot
    let mut t = KernelTrace::new("bin_scatter");
    let bin_buf = t.buffer("bin_of", Scope::Global, 4);
    let cur_buf = t.buffer("bin_cursor", Scope::Global, 4);
    let perm_buf = t.buffer("perm", Scope::Global, 4);
    let mut cursor: Vec<u32> = starts[..nb].to_vec();
    for (j, &bin) in bin_of.iter().enumerate() {
        let (b, l) = tid(j);
        t.read(bin_buf, b, l, j as u64);
        t.atomic(cur_buf, b, l, bin as u64);
        let slot = cursor[bin as usize];
        cursor[bin as usize] += 1;
        t.write(perm_buf, b, l, slot as u64);
    }
    dev.submit_access_trace(
        t,
        Contract {
            global_atomics: Some(m as u64),
            ..Contract::default()
        },
    );
}

/// Publish per-bin load-balance counters: the bin occupancy histogram
/// (power-of-two buckets) and the max/mean imbalance ratio. These are
/// the trace-level counterpart of paper Fig. 6's uniform-vs-clustered
/// comparison — a clustered distribution shifts the histogram mass into
/// the high buckets and blows up `bins.imbalance`, while the SM scheme's
/// `M_sub` cap keeps the execution time flat.
fn record_bin_stats(trace: &gpu_sim::Trace, starts: &[u32], nb: usize, m: usize) {
    trace.counter("bins.total").add(nb as i64);
    trace.counter("bins.points").add(m as i64);
    let mut max_count = 0u32;
    for b in 0..nb {
        let c = starts[b + 1] - starts[b];
        max_count = max_count.max(c);
        if c == 0 {
            trace.counter("bins.hist.empty").inc();
        } else {
            trace.counter("bins.nonempty").inc();
            // bucket k counts bins holding (2^(k-1), 2^k] points
            let bucket = u32::BITS - (c - 1).leading_zeros();
            trace.counter(&format!("bins.hist.p2_{bucket:02}")).inc();
        }
    }
    trace.gauge("bins.max_points").max(max_count as f64);
    if nb > 0 && m > 0 {
        let mean = m as f64 / nb as f64;
        trace.gauge("bins.imbalance").max(max_count as f64 / mean);
    }
}

/// Split bins into subproblems of at most `msub` points each (paper
/// Sec. III-A Step 1). Charged as one light device pass over the bins.
pub fn build_subproblems(dev: &Device, sort: &GpuBinSort, msub: usize) -> Vec<Subproblem> {
    assert!(msub > 0);
    let mut subs = Vec::new();
    for bin in 0..sort.layout.total() {
        let s = sort.starts[bin] as usize;
        let e = sort.starts[bin + 1] as usize;
        let mut off = s;
        while off < e {
            let len = (e - off).min(msub);
            subs.push(Subproblem {
                bin: bin as u32,
                start: off as u32,
                len: len as u32,
            });
            off += len;
        }
    }
    let nb = sort.layout.total();
    dev.bulk_op(
        "build_subprob",
        nb * 4,
        subs.len() * 12,
        nb as f64 * 4.0,
        Precision::Single,
    );
    if let Some(trace) = dev.trace() {
        trace.counter("subprob.count").add(subs.len() as i64);
        // idle slots: points of padding a full-width launch would waste
        // (each subproblem is scheduled as if it held `msub` points)
        let idle: i64 = subs.iter().map(|sp| msub as i64 - sp.len as i64).sum();
        trace.counter("subprob.idle_slots").add(idle);
        let max_len = subs.iter().map(|sp| sp.len).max().unwrap_or(0);
        trace.gauge("subprob.max_len").max(max_len as f64);
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::workload::{gen_points, PointDist};

    #[test]
    fn sort_is_permutation_and_binned() {
        let dev = Device::v100();
        let fine = Shape::d2(128, 128);
        let pts = gen_points::<f32>(PointDist::Rand, 2, 2000, fine, 3);
        let s = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let mut seen = vec![false; 2000];
        for &p in &s.perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
        // every point's cell lies in its bin
        for bin in 0..s.layout.total() {
            let o = s.layout.origin(bin);
            for r in s.starts[bin] as usize..s.starts[bin + 1] as usize {
                let cell = cell_of(&pts, s.perm[r] as usize, fine);
                for i in 0..2 {
                    assert!(cell[i] >= o[i] && cell[i] < o[i] + s.layout.bin_size[i]);
                }
            }
        }
    }

    #[test]
    fn sorting_charges_the_device() {
        let dev = Device::v100();
        let fine = Shape::d2(64, 64);
        let pts = gen_points::<f32>(PointDist::Rand, 2, 1000, fine, 5);
        let t0 = dev.clock();
        let _ = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        assert!(dev.clock() > t0);
        let names: Vec<String> = dev.timeline().iter().map(|r| r.name.clone()).collect();
        for k in ["calc_binidx", "bin_histogram", "bin_scan", "bin_scatter"] {
            assert!(names.iter().any(|n| n == k), "missing kernel {k}");
        }
    }

    #[test]
    fn subproblems_respect_msub_and_cover_all_points() {
        let dev = Device::v100();
        let fine = Shape::d2(256, 256);
        // clustered: all points land in bin 0 -> must split
        let pts = gen_points::<f32>(PointDist::Cluster, 2, 5000, fine, 6);
        let s = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let subs = build_subproblems(&dev, &s, 1024);
        assert_eq!(subs.len(), 5); // ceil(5000/1024)
        let total: u32 = subs.iter().map(|s| s.len).sum();
        assert_eq!(total, 5000);
        assert!(subs.iter().all(|sp| sp.len <= 1024));
        assert!(subs.iter().all(|sp| sp.bin == 0));
    }

    #[test]
    fn rand_distribution_many_small_subproblems() {
        let dev = Device::v100();
        let fine = Shape::d2(256, 256);
        let pts = gen_points::<f32>(PointDist::Rand, 2, 8192, fine, 7);
        let s = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let subs = build_subproblems(&dev, &s, 1024);
        // 8x8 = 64 bins, 8192 points -> ~128/bin, all under the cap
        assert_eq!(subs.len(), 64);
        // contiguous, ordered coverage of perm
        let mut cursor = 0u32;
        for sp in &subs {
            assert_eq!(sp.start, cursor);
            cursor += sp.len;
        }
        assert_eq!(cursor, 8192);
    }

    #[test]
    fn bin_origin_roundtrip() {
        let layout = BinLayout::new(Shape::d3(64, 64, 16), [16, 16, 2]);
        for bin in 0..layout.total() {
            let o = layout.origin(bin);
            assert_eq!(layout.bin_of_cell(o), bin);
        }
    }
}
