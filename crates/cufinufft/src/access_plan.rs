//! Symbolic [`AccessPlan`]s for every shipped kernel, declared next to
//! the kernels they describe.
//!
//! Each plan is the static counterpart of the shadow-memory
//! instrumentation in [`crate::spread`], [`crate::interp`], and
//! [`crate::bins`]: same buffer names, same traced element granularity
//! (one real word for complex data), same sync epochs — but with the
//! per-thread index arithmetic expressed as interval/stride terms
//! instead of executed. The FINUFFT kernel analysis makes this possible
//! in closed form: a point's spreading footprint is `w` cells wide per
//! dimension (`w = ceil(log10(1/eps)) + 1`-style, paper Sec. II),
//! wrapped periodically into the fine grid, so every element index any
//! launch can touch is `offset + Σ stride_i · (v_i mod n_i)` with known
//! variable ranges.
//!
//! [`PlanGeometry::from_spec`] re-derives exactly the geometry
//! `Plan::build_impl` would (kernel width from the tolerance, fine-grid
//! sizes under the sizing policy — including Bluestein/prime shapes —
//! Remark-1 bin sizes, Remark-2 method resolution), so the static
//! checker explores the same launch configurations the library would
//! actually run, without a device. [`plans_for`] then yields one plan
//! per kernel the configuration can launch; `gpu-sim`'s checker passes
//! ([`AccessPlan::check_all`]) and the trace-containment test
//! ([`AccessPlan::contains_trace`]) do the rest.

use crate::bins::BinLayout;
use crate::opts::{default_bin_size, resolve_spread_method, Method, Tuning};
use gpu_sim::{AccessPlan, DimTerm, IndexExpr, Scope, ThreadMap};
use nufft_common::hazard::AccessKind;
use nufft_common::shape::Shape;
use nufft_common::smooth::fine_grid_size_with;
use nufft_common::spec::{Precision, TransformSpec};
use nufft_common::Result;
use nufft_kernels::EsKernel;

/// Threads per block the SM spread and the bin-sort passes use (fixed
/// in their kernels, unlike the GM paths which take it from [`Tuning`]).
const SM_TPB: usize = 256;

/// Everything about one reachable launch configuration that the
/// symbolic plans depend on, derived from a [`TransformSpec`] + point
/// count + [`Tuning`] exactly the way plan construction derives it.
#[derive(Clone, Debug)]
pub struct PlanGeometry {
    pub dim: usize,
    /// Upsampled fine-grid shape under the spec's sizing policy.
    pub fine: Shape,
    /// Nonuniform point count the plans are instantiated for (≥ 1).
    pub m: usize,
    /// Kernel width for the spec's tolerance and precision.
    pub w: usize,
    /// Bin size clamped per-dimension to the fine grid (what
    /// [`BinLayout`] actually uses).
    pub bin_size: [usize; 3],
    /// Total bins of the layout.
    pub nbins: usize,
    /// SM subproblem point cap.
    pub msub: usize,
    /// Threads per block of the GM spread/interp kernels.
    pub threads_per_block: usize,
    pub real_bytes: usize,
    pub complex_bytes: usize,
    /// Resolved spreading method (never `Auto`).
    pub method: Method,
}

impl PlanGeometry {
    /// Re-derive the launch geometry `Plan::build_impl` would produce
    /// for this spec, point count, and tuning. `device_shared_cap` is
    /// the device's shared-memory-per-block limit (the Remark-2 budget
    /// is `tuning.shared_mem_budget.min(device_shared_cap)`, as at plan
    /// build). Fails exactly where plan construction would: invalid
    /// spec, tolerance outside the kernel table, explicit SM infeasible.
    pub fn from_spec(
        spec: &TransformSpec,
        m: usize,
        tuning: &Tuning,
        device_shared_cap: usize,
    ) -> Result<PlanGeometry> {
        spec.validate()?;
        let is_double = spec.precision == Precision::F64;
        let real_bytes = spec.precision.bytes();
        let complex_bytes = 2 * real_bytes;
        let kernel = if (tuning.upsampfac - 2.0).abs() < 1e-12 {
            EsKernel::for_tolerance(spec.eps, is_double)?
        } else {
            EsKernel::for_tolerance_sigma(spec.eps, tuning.upsampfac, is_double)?
        };
        let modes = Shape::from_slice(&spec.modes);
        let fine =
            modes.map(|_, n| fine_grid_size_with(n, tuning.upsampfac, kernel.w, spec.fine_sizing));
        let dim = modes.dim;
        let bin_size = tuning.bin_size.unwrap_or_else(|| default_bin_size(dim));
        let budget = tuning.shared_mem_budget.min(device_shared_cap);
        let method =
            resolve_spread_method(spec.method, bin_size, dim, kernel.w, complex_bytes, budget)?;
        let layout = BinLayout::new(fine, bin_size);
        Ok(PlanGeometry {
            dim,
            fine,
            m: m.max(1),
            w: kernel.w,
            bin_size: layout.bin_size,
            nbins: layout.total(),
            msub: tuning.msub.max(1),
            threads_per_block: tuning.threads_per_block.max(1),
            real_bytes,
            complex_bytes,
            method,
        })
    }

    /// Padded SM bin extents `(bin_i + 2 ceil(w/2))` (paper eq. 13) and
    /// their cell count.
    fn padded_bin(&self) -> ([usize; 3], usize) {
        let pad = 2 * self.w.div_ceil(2);
        let mut p = [1usize; 3];
        for (pi, &bs) in p.iter_mut().zip(&self.bin_size).take(self.dim) {
            *pi = bs + pad;
        }
        (p, p[0] * p[1] * p[2])
    }

    /// Number of SM subproblems, as a `[lo, hi]` range: at least
    /// `ceil(m / msub)` (all points in one bin), at most `m` (every
    /// subproblem holds at least one point). Distribution-dependent, so
    /// the static model carries the whole range.
    fn nsub_range(&self) -> (u64, u64) {
        (self.m.div_ceil(self.msub) as u64, self.m as u64)
    }

    /// The point-coordinate read set shared by every kernel that
    /// gathers point data: element `j*4 + arr`, `j` over the points,
    /// `arr` over the coordinate arrays (x, y, z, c slots).
    fn points_expr(&self) -> IndexExpr {
        IndexExpr::new(0)
            .dim(DimTerm::var(4, 0, self.m as i64 - 1))
            .dim(DimTerm::var(1, 0, self.dim as i64 - 1))
    }

    /// The fine-grid word set of a `w`-wide wrapped footprint: element
    /// `2·(i1 + n1·(i2 + n2·i3)) + word` with each `i_k` the wrap of a
    /// raw index that may stray up to `w` cells past either grid edge.
    /// With `wrap = true` this is exactly the `rem_euclid` the kernels
    /// apply; `wrap = false` models a kernel that forgot to wrap (the
    /// out-of-bounds negative control).
    fn fine_grid_expr(&self, wrap: bool) -> IndexExpr {
        let [n1, n2, n3] = self.fine.n.map(|n| n as i64);
        let w = self.w as i64;
        let mut e = IndexExpr::new(0).dim(DimTerm::var(1, 0, 1));
        let mut stride = 2i64;
        for (i, n) in [n1, n2, n3].into_iter().enumerate().take(self.dim) {
            let _ = i;
            e = e.dim(if wrap {
                DimTerm::wrapped(stride, -w, n - 1 + w, n)
            } else {
                DimTerm::var(stride, -w, n - 1 + w)
            });
            stride *= n;
        }
        e
    }
}

/// Every plan the configuration can launch, covering both transform
/// directions: the bin-sort passes (all methods except GM), the
/// resolved spread kernel, and the interp kernel (GM in user order,
/// GM-sort when a permutation exists — SM spreading interpolates via
/// GM-sort). Names match the dynamic kernel names exactly so traces can
/// be paired with plans.
pub fn plans_for(g: &PlanGeometry) -> Vec<AccessPlan> {
    let mut plans = Vec::new();
    match g.method {
        Method::Gm => {
            plans.push(spread_gm_plan(g, "spread_GM"));
            plans.push(interp_plan(g, "interp_GM"));
        }
        Method::GmSort => {
            plans.extend(bin_sort_plans(g));
            plans.push(spread_gm_plan(g, "spread_GM-sort"));
            plans.push(interp_plan(g, "interp_GM-sort"));
        }
        Method::Sm => {
            plans.extend(bin_sort_plans(g));
            plans.push(spread_sm_plan(g));
            plans.push(interp_plan(g, "interp_GM-sort"));
        }
        Method::Auto => unreachable!("PlanGeometry::from_spec resolves Auto"),
    }
    plans
}

/// GM spreading (paper Sec. III-B): one thread per point, `w^d` wrapped
/// fine-grid cells per point, two global atomic words per cell.
pub fn spread_gm_plan(g: &PlanGeometry, name: &str) -> AccessPlan {
    let m = g.m as u64;
    let nf = g.fine.total() as u64;
    let wd = (g.w as u64).pow(g.dim as u32);
    let tpb = g.threads_per_block;
    let mut p = AccessPlan::new(name, tpb as u32, g.m.div_ceil(tpb) as u64);
    let pts = p.buffer("points", Scope::Global, g.real_bytes, 4 * m);
    let stren = p.buffer("strengths", Scope::Global, g.complex_bytes, m);
    let grid = p.buffer("fine_grid", Scope::Global, g.complex_bytes / 2, 2 * nf);
    // Point and strength loads: each element read by exactly one thread
    // of one block (the thread that owns point j).
    let md = m * g.dim as u64;
    p.term(
        pts,
        AccessKind::Read,
        0,
        g.points_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (md, md),
    );
    p.term(
        stren,
        AccessKind::Read,
        0,
        IndexExpr::new(0).dim(DimTerm::var(1, 0, m as i64 - 1)),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (m, m),
    );
    // Footprint accumulation: atomic adds, overlapping by construction
    // (neighbouring points share cells) — safe because atomic.
    p.term(
        grid,
        AccessKind::Atomic,
        0,
        g.fine_grid_expr(true),
        ThreadMap::Overlapping,
        ThreadMap::Overlapping,
        (2 * m * wd, 2 * m * wd),
    );
    p.contract.global_atomics = Some(2 * m * wd);
    p.contract.shared_atomics = Some(0);
    p.contract.shared_bytes = Some(0);
    p
}

/// SM spreading (paper Fig. 1): one block per subproblem; zero-fill the
/// padded shared bin, barrier, accumulate with shared atomics, barrier,
/// flush each padded cell to the fine grid with global atomics.
pub fn spread_sm_plan(g: &PlanGeometry) -> AccessPlan {
    let m = g.m as u64;
    let nf = g.fine.total() as u64;
    let wd = (g.w as u64).pow(g.dim as u32);
    let (pb, pc) = g.padded_bin();
    let (nsub_lo, nsub_hi) = g.nsub_range();
    let pc64 = pc as u64;
    let mut p = AccessPlan::new("spread_SM", SM_TPB as u32, nsub_hi);
    p.shared_bytes = pc * g.complex_bytes;
    let pts = p.buffer("points", Scope::Global, g.real_bytes, 4 * m);
    let stren = p.buffer("strengths", Scope::Global, g.complex_bytes, m);
    let bin = p.buffer("sm_bin", Scope::Shared, g.complex_bytes / 2, 2 * pc64);
    let grid = p.buffer("fine_grid", Scope::Global, g.complex_bytes / 2, 2 * nf);
    // Epoch 0: grid-stride zero fill of the padded bin. Word -> thread
    // is `word % 256`, functional, so the write term is exclusive.
    p.term(
        bin,
        AccessKind::Write,
        0,
        IndexExpr::new(0).dim(DimTerm::var(1, 0, 2 * pc as i64 - 1)),
        ThreadMap::Exclusive,
        ThreadMap::Overlapping,
        (2 * pc64 * nsub_lo, 2 * pc64 * nsub_hi),
    );
    // Epoch 1 (after the first barrier): gather point data and
    // accumulate into the shared bin with shared atomics.
    let md = m * g.dim as u64;
    p.term(
        pts,
        AccessKind::Read,
        1,
        g.points_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (md, md),
    );
    p.term(
        stren,
        AccessKind::Read,
        1,
        IndexExpr::new(0).dim(DimTerm::var(1, 0, m as i64 - 1)),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (m, m),
    );
    p.term(
        bin,
        AccessKind::Atomic,
        1,
        IndexExpr::new(0)
            .dim(DimTerm::var(1, 0, 1))
            .dim(DimTerm::var(2, 0, pc as i64 - 1)),
        ThreadMap::Overlapping,
        ThreadMap::Overlapping,
        (2 * m * wd, 2 * m * wd),
    );
    // Epoch 2 (after the second barrier): each thread reads its own
    // shared words and atomically adds them to the wrapped fine grid.
    p.term(
        bin,
        AccessKind::Read,
        2,
        IndexExpr::new(0)
            .dim(DimTerm::var(1, 0, 1))
            .dim(DimTerm::var(2, 0, pc as i64 - 1)),
        ThreadMap::Exclusive,
        ThreadMap::Overlapping,
        (2 * pc64 * nsub_lo, 2 * pc64 * nsub_hi),
    );
    // Padded-bin cell -> fine cell: per dimension the raw index is the
    // bin origin minus the halo, plus the local offset, wrapped mod n.
    let half = g.w.div_ceil(2) as i64;
    let [n1, n2, n3] = g.fine.n.map(|n| n as i64);
    let mut flush = IndexExpr::new(0).dim(DimTerm::var(1, 0, 1));
    let mut stride = 2i64;
    for (i, n) in [n1, n2, n3].into_iter().enumerate().take(g.dim) {
        flush = flush.dim(DimTerm::wrapped(stride, -half, n - 1 + pb[i] as i64, n));
        stride *= n;
    }
    p.term(
        grid,
        AccessKind::Atomic,
        2,
        flush,
        ThreadMap::Overlapping,
        ThreadMap::Overlapping,
        (2 * pc64 * nsub_lo, 2 * pc64 * nsub_hi),
    );
    p.contract.global_atomics = Some(2 * pc64 * nsub_lo);
    p.contract.shared_atomics = Some(2 * m * wd);
    p.contract.shared_bytes = Some(pc * g.complex_bytes);
    p
}

/// GM interpolation (type 2): one thread per point, reads its wrapped
/// footprint and writes its own output words — no atomics at all.
pub fn interp_plan(g: &PlanGeometry, name: &str) -> AccessPlan {
    let m = g.m as u64;
    let nf = g.fine.total() as u64;
    let wd = (g.w as u64).pow(g.dim as u32);
    let tpb = g.threads_per_block;
    let mut p = AccessPlan::new(name, tpb as u32, g.m.div_ceil(tpb) as u64);
    let pts = p.buffer("points", Scope::Global, g.real_bytes, 4 * m);
    let grid = p.buffer("fine_grid", Scope::Global, g.complex_bytes / 2, 2 * nf);
    let out = p.buffer("out", Scope::Global, g.complex_bytes / 2, 2 * m);
    let md = m * g.dim as u64;
    p.term(
        pts,
        AccessKind::Read,
        0,
        g.points_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (md, md),
    );
    p.term(
        grid,
        AccessKind::Read,
        0,
        g.fine_grid_expr(true),
        ThreadMap::Overlapping,
        ThreadMap::Overlapping,
        (2 * m * wd, 2 * m * wd),
    );
    // out[2j], out[2j+1]: written only by point j's thread.
    p.term(
        out,
        AccessKind::Write,
        0,
        IndexExpr::new(0)
            .dim(DimTerm::var(1, 0, 1))
            .dim(DimTerm::var(2, 0, m as i64 - 1)),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (2 * m, 2 * m),
    );
    p.contract.global_atomics = Some(0);
    p.contract.shared_atomics = Some(0);
    p.contract.shared_bytes = Some(0);
    p
}

/// The four bin-sort passes (paper Sec. III-A): bin index, histogram,
/// exclusive scan, scatter. One thread per point (256 per block) except
/// the scan, which runs in the single-threaded reference shape.
pub fn bin_sort_plans(g: &PlanGeometry) -> Vec<AccessPlan> {
    let m = g.m as u64;
    let nb = g.nbins as u64;
    let md = m * g.dim as u64;
    let point_blocks = g.m.div_ceil(SM_TPB) as u64;
    let j_expr = || IndexExpr::new(0).dim(DimTerm::var(1, 0, m as i64 - 1));
    let bin_expr = || IndexExpr::new(0).dim(DimTerm::var(1, 0, nb as i64 - 1));

    // calc_binidx: pure map from point coordinates to bin ids. The
    // dynamic trace declares the point buffer at 8-byte elements.
    let mut calc = AccessPlan::new("calc_binidx", SM_TPB as u32, point_blocks);
    let pts = calc.buffer("points", Scope::Global, 8, 4 * m);
    let bin_of = calc.buffer("bin_of", Scope::Global, 4, m);
    calc.term(
        pts,
        AccessKind::Read,
        0,
        g.points_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (md, md),
    );
    calc.term(
        bin_of,
        AccessKind::Write,
        0,
        j_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (m, m),
    );
    calc.contract.global_atomics = Some(0);

    // bin_histogram: one atomic bump of a bin counter per point.
    let mut hist = AccessPlan::new("bin_histogram", SM_TPB as u32, point_blocks);
    let bin_of = hist.buffer("bin_of", Scope::Global, 4, m);
    let counts = hist.buffer("bin_counts", Scope::Global, 4, nb + 1);
    hist.term(
        bin_of,
        AccessKind::Read,
        0,
        j_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (m, m),
    );
    hist.term(
        counts,
        AccessKind::Atomic,
        0,
        bin_expr(),
        ThreadMap::Overlapping,
        ThreadMap::Overlapping,
        (m, m),
    );
    hist.contract.global_atomics = Some(m);

    // bin_scan: serial exclusive scan — reads cnt[b], writes cnt[b+1],
    // all from one thread of one block, so the read/write overlap on
    // bin_counts carries no race.
    let mut scan = AccessPlan::new("bin_scan", 32, 1);
    let counts = scan.buffer("bin_counts", Scope::Global, 4, nb + 1);
    scan.term(
        counts,
        AccessKind::Read,
        0,
        bin_expr(),
        ThreadMap::Single,
        ThreadMap::Single,
        (nb, nb),
    );
    scan.term(
        counts,
        AccessKind::Write,
        0,
        IndexExpr::new(1).dim(DimTerm::var(1, 0, nb as i64 - 1)),
        ThreadMap::Single,
        ThreadMap::Single,
        (nb, nb),
    );
    scan.contract.global_atomics = Some(0);

    // bin_scatter: atomic cursor bump per point, then a write into the
    // point's unique permutation slot.
    let mut scat = AccessPlan::new("bin_scatter", SM_TPB as u32, point_blocks);
    let bin_of = scat.buffer("bin_of", Scope::Global, 4, m);
    let cursor = scat.buffer("bin_cursor", Scope::Global, 4, nb);
    let perm = scat.buffer("perm", Scope::Global, 4, m);
    scat.term(
        bin_of,
        AccessKind::Read,
        0,
        j_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (m, m),
    );
    scat.term(
        cursor,
        AccessKind::Atomic,
        0,
        bin_expr(),
        ThreadMap::Overlapping,
        ThreadMap::Overlapping,
        (m, m),
    );
    scat.term(
        perm,
        AccessKind::Write,
        0,
        j_expr(),
        ThreadMap::Exclusive,
        ThreadMap::Exclusive,
        (m, m),
    );
    scat.contract.global_atomics = Some(m);

    vec![calc, hist, scan, scat]
}

/// Negative control: a GM spread whose footprint indices were "never
/// wrapped" — the raw `[-w, n-1+w]` halo range escapes the grid on both
/// edges, which the bounds pass must flag (AP001). Mirrors the dynamic
/// checker's `spread_gm_racy` control: proof the verifier is not
/// vacuously green.
#[doc(hidden)]
pub fn spread_gm_oob_plan(g: &PlanGeometry) -> AccessPlan {
    let mut p = spread_gm_plan(g, "spread_GM_oob");
    let grid_term = p
        .terms
        .iter_mut()
        .find(|t| t.kind == AccessKind::Atomic)
        .expect("GM plan has a fine-grid atomic term");
    grid_term.expr = g.fine_grid_expr(false);
    p
}

/// Negative control: a GM spread whose contract declares zero global
/// atomics while the plan proves `2·m·w^d` of them — the
/// under-declared-contract drift the static contract pass must flag
/// (AP003).
#[doc(hidden)]
pub fn spread_gm_underdeclared_plan(g: &PlanGeometry) -> AccessPlan {
    let mut p = spread_gm_plan(g, "spread_GM_underdeclared");
    p.contract.global_atomics = Some(0);
    p
}

/// Negative control: the static shape of `spread_gm_racy` — fine-grid
/// updates as plain writes from overlapping threads, which the race
/// pass must flag (AP002) just as the dynamic checker flags the traced
/// variant.
#[doc(hidden)]
pub fn spread_gm_racy_plan(g: &PlanGeometry) -> AccessPlan {
    let mut p = spread_gm_plan(g, "spread_GM_racy");
    let grid_term = p
        .terms
        .iter_mut()
        .find(|t| t.kind == AccessKind::Atomic)
        .expect("GM plan has a fine-grid atomic term");
    grid_term.kind = AccessKind::Write;
    p.contract.global_atomics = Some(0);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceProps;

    fn geom(spec: &TransformSpec) -> PlanGeometry {
        PlanGeometry::from_spec(spec, 1000, &Tuning::default(), 49_152).unwrap()
    }

    #[test]
    fn geometry_matches_plan_build() {
        let spec = TransformSpec::type1(&[64, 64])
            .eps(1e-5)
            .precision(Precision::F32);
        let g = geom(&spec);
        assert_eq!(g.dim, 2);
        assert_eq!(g.fine.n[0], 128);
        assert_eq!(g.w, 6); // ceil(log10(1e5)) + 1
        assert_eq!(g.bin_size, [32, 32, 1]);
        assert_eq!(g.method, Method::Sm); // Auto resolves to SM in 2D f32
    }

    #[test]
    fn remark2_infeasible_explicit_sm_is_an_error() {
        let spec = TransformSpec::type1(&[32, 32, 32])
            .eps(1e-8)
            .method(nufft_common::spec::Method::Sm); // 3D f64 w=9: infeasible
        assert!(PlanGeometry::from_spec(&spec, 100, &Tuning::default(), 49_152).is_err());
        // ...while Auto degrades to GM-sort
        let auto = TransformSpec::type1(&[32, 32, 32]).eps(1e-8);
        assert_eq!(geom(&auto).method, Method::GmSort);
    }

    #[test]
    fn shipped_plans_are_clean_across_methods() {
        let props = DeviceProps::v100();
        for method in [
            nufft_common::spec::Method::Gm,
            nufft_common::spec::Method::GmSort,
            nufft_common::spec::Method::Sm,
        ] {
            let spec = TransformSpec::type1(&[64, 64])
                .eps(1e-5)
                .precision(Precision::F32)
                .method(method);
            let g = geom(&spec);
            for plan in plans_for(&g) {
                let findings = plan.check_all(&props, 49_000);
                assert!(
                    findings.iter().all(|f| !f.is_error()),
                    "{}: {:?}",
                    plan.kernel,
                    findings
                );
            }
        }
    }

    #[test]
    fn negative_controls_are_flagged() {
        let spec = TransformSpec::type1(&[64, 64])
            .eps(1e-5)
            .precision(Precision::F32);
        let g = geom(&spec);
        let oob = spread_gm_oob_plan(&g).check_bounds();
        assert!(oob.iter().any(|f| f.id == "AP001"), "{oob:?}");
        let under = spread_gm_underdeclared_plan(&g).check_contract();
        assert!(under.iter().any(|f| f.id == "AP003"), "{under:?}");
        let racy = spread_gm_racy_plan(&g).check_races();
        assert!(racy.iter().any(|f| f.id == "AP002"), "{racy:?}");
    }

    #[test]
    fn prime_fine_grid_shapes_stay_bounds_safe() {
        use nufft_common::smooth::FineSizing;
        let spec = TransformSpec::type1(&[37, 16])
            .eps(1e-6)
            .precision(Precision::F32)
            .fine_sizing(FineSizing::Exact);
        let g = geom(&spec);
        assert_eq!(g.fine.n[0], 74); // exact 2x, not rounded to 5-smooth
        let props = DeviceProps::v100();
        for plan in plans_for(&g) {
            let findings = plan.check_all(&props, 49_000);
            assert!(
                findings.iter().all(|f| !f.is_error()),
                "{}: {:?}",
                plan.kernel,
                findings
            );
        }
    }

    #[test]
    fn sm_shared_footprint_matches_remark2_formula() {
        let spec = TransformSpec::type1(&[64, 64])
            .eps(1e-5)
            .precision(Precision::F32)
            .method(nufft_common::spec::Method::Sm);
        let g = geom(&spec);
        let plan = spread_sm_plan(&g);
        assert_eq!(
            plan.shared_bytes,
            crate::opts::sm_shared_bytes(g.bin_size, g.dim, g.w, g.complex_bytes)
        );
    }
}
