//! The three GPU spreading schemes of the paper (Sec. III-A): **GM**,
//! **GM-sort** and **SM**, executed functionally with warp/block-level
//! cost accounting on the simulated device.
//!
//! All three produce identical sums up to floating-point reassociation;
//! what differs is the *memory behaviour* the device prices:
//!
//! * GM: threads in user order — scattered sectors, global atomics whose
//!   contention explodes for clustered points;
//! * GM-sort: threads in bin order — neighbouring lanes hit neighbouring
//!   sectors (coalesced), same atomic contention;
//! * SM: per-subproblem accumulation in shared memory, one global atomic
//!   per padded-bin cell at the end, subproblems capped at `M_sub` for
//!   load balance.

use crate::bins::{BinLayout, Subproblem};
use crate::opts::Method;
use gpu_sim::{Device, DeviceFault, LaunchConfig, LaunchReport, Precision, Scope};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_kernels::{grid_coord, spread_footprint, Kernel1d};

/// Maximum kernel width across all supported kernels (the Gaussian
/// baseline needs up to 26).
pub const MAX_W: usize = 32;

/// Borrowed structure-of-arrays view of the device-resident points.
#[derive(Copy, Clone)]
pub struct PtsRef<'a, T> {
    pub coords: [&'a [T]; 3],
    pub dim: usize,
}

impl<'a, T: Real> PtsRef<'a, T> {
    pub fn len(&self) -> usize {
        self.coords[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.coords[0].is_empty()
    }

    #[inline(always)]
    pub fn coord(&self, i: usize, j: usize) -> T {
        if i < self.dim {
            self.coords[i][j]
        } else {
            T::ZERO
        }
    }
}

pub(crate) struct Footprint {
    pub l0: [i64; 3],
    pub wd: [usize; 3],
    pub ker: [[f64; MAX_W]; 3],
    /// Wrapped grid indices `(l0 + t).rem_euclid(n)` per dimension,
    /// precomputed once per point so the w^d lockstep/update loops do
    /// table lookups instead of one i64 division per cell visit (the
    /// dominant host cost of a simulated spread launch).
    pub idx: [[usize; MAX_W]; 3],
}

#[inline]
pub(crate) fn footprint<T: Real, K: Kernel1d>(
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    j: usize,
) -> Footprint {
    let w = kernel.width();
    let mut fp = Footprint {
        l0: [0; 3],
        wd: [1; 3],
        ker: [[1.0; MAX_W]; 3],
        idx: [[0; MAX_W]; 3],
    };
    for i in 0..pts.dim {
        let g = grid_coord(pts.coord(i, j).to_f64(), fine.n[i]);
        let (l0, z0) = spread_footprint(g, w);
        fp.l0[i] = l0;
        fp.wd[i] = w;
        let n = fine.n[i] as i64;
        for (t, slot) in fp.idx[i][..w].iter_mut().enumerate() {
            *slot = (l0 + t as i64).rem_euclid(n) as usize;
        }
        kernel.eval_row(z0, &mut fp.ker[i][..w]);
    }
    fp
}

/// Report one kernel-footprint row (contiguous in x, wrapped mod n1) to
/// the block's DRAM line model. `write` for atomic read-modify-write.
#[inline]
pub(crate) fn account_row(
    b: &mut gpu_sim::BlockAcc<'_>,
    row_base_cell: usize, // cell index of (0, c2, c3) in the grid
    l0: i64,
    w: usize,
    n1: usize,
    cb: usize,
    write: bool,
) {
    let start = l0.rem_euclid(n1 as i64) as usize;
    if start + w <= n1 {
        b.dram_span((row_base_cell + start) * cb, w * cb, write);
    } else {
        let first = n1 - start;
        b.dram_span((row_base_cell + start) * cb, first * cb, write);
        b.dram_span(row_base_cell * cb, (w - first) * cb, write);
    }
}

fn precision<T: Real>() -> Precision {
    if T::IS_DOUBLE {
        Precision::Double
    } else {
        Precision::Single
    }
}

/// FLOPs charged per kernel evaluation (exp + sqrt + mults on a GPU SFU).
const FLOPS_PER_EVAL: u64 = 30;
/// FLOPs per grid-cell update (complex scale + add).
const FLOPS_PER_CELL: u64 = 8;

/// GM / GM-sort spreading: one thread per nonuniform point, processed in
/// `order` (user order for GM, bin-sorted for GM-sort). The distinction
/// is entirely in the coalescing the order produces.
#[allow(clippy::too_many_arguments)]
pub fn spread_gm<T: Real, K: Kernel1d>(
    dev: &Device,
    name: &str,
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    strengths: &[Complex<T>],
    order: &[u32],
    grid: &mut [Complex<T>],
    threads_per_block: usize,
    cas_atomic_penalty: f64,
) -> Result<LaunchReport, DeviceFault> {
    spread_gm_impl(
        dev,
        name,
        kernel,
        fine,
        pts,
        strengths,
        order,
        grid,
        threads_per_block,
        cas_atomic_penalty,
        false,
    )
}

/// Deliberately broken GM spread that updates the fine grid with plain
/// (non-atomic) writes — the "fast because it races" bug the hazard
/// checker exists to catch. The serial simulation still produces correct
/// sums, which is exactly why the race would go unnoticed without the
/// checker. Test-only: used as the negative control proving the detector
/// is not vacuously green.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn spread_gm_racy<T: Real, K: Kernel1d>(
    dev: &Device,
    name: &str,
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    strengths: &[Complex<T>],
    order: &[u32],
    grid: &mut [Complex<T>],
    threads_per_block: usize,
) -> Result<LaunchReport, DeviceFault> {
    spread_gm_impl(
        dev,
        name,
        kernel,
        fine,
        pts,
        strengths,
        order,
        grid,
        threads_per_block,
        1.0,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn spread_gm_impl<T: Real, K: Kernel1d>(
    dev: &Device,
    name: &str,
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    strengths: &[Complex<T>],
    order: &[u32],
    grid: &mut [Complex<T>],
    threads_per_block: usize,
    cas_atomic_penalty: f64,
    racy: bool,
) -> Result<LaunchReport, DeviceFault> {
    assert_eq!(grid.len(), fine.total());
    let m = order.len();
    let cb = std::mem::size_of::<Complex<T>>();
    let prec = precision::<T>();
    let mut k = dev.kernel(
        name,
        LaunchConfig::new(prec, threads_per_block).with_cas_penalty(cas_atomic_penalty),
    )?;
    k.atomic_region(fine.total(), cb);
    // named buffers for the shadow-memory access trace (no-ops when the
    // device is not in hazard mode); the grid is traced per real word so
    // counts line up with the two-atomics-per-complex-add accounting
    let traced = k.access_traced();
    let tb_pts = k.trace_buffer("points", Scope::Global, T::BYTES);
    let tb_str = k.trace_buffer("strengths", Scope::Global, cb);
    let tb_grid = k.trace_buffer("fine_grid", Scope::Global, cb / 2);
    let w = kernel.width();
    let dim = pts.dim;
    let [n1, n2, _] = fine.n;
    let n_blocks = m.div_ceil(threads_per_block);
    // One task per thread block, run on the host pool (bit-identical to
    // serial; see `Kernel::run_blocks`). The block body reports costs to
    // its private accumulator and returns the grid updates as an ordered
    // delta list; `apply` folds them in block-id order so the
    // floating-point accumulation order matches a serial sweep exactly.
    let pts = *pts;
    let body = |bid: usize, b: &mut gpu_sim::BlockAcc<'_>| {
        let block = &order[bid * threads_per_block..m.min((bid + 1) * threads_per_block)];
        let mut addrs = [0usize; 32];
        let mut fps: Vec<Footprint> = Vec::with_capacity(32);
        let mut deltas: Vec<(usize, Complex<T>)> =
            Vec::with_capacity(block.len() * w.pow(dim as u32));
        for (wi, warp) in block.chunks(32).enumerate() {
            let lane0 = (wi * 32) as u32; // thread id of this warp's lane 0
                                          // point-data loads: one access per array (x, y, z, c)
            for arr in 0..dim {
                for (l, &j) in warp.iter().enumerate() {
                    addrs[l] = j as usize * T::BYTES + arr;
                    b.trace_read(tb_pts, lane0 + l as u32, (j as u64) * 4 + arr as u64);
                }
                b.warp_access(&addrs[..warp.len()]);
            }
            for (l, &j) in warp.iter().enumerate() {
                addrs[l] = j as usize * cb;
                b.trace_read(tb_str, lane0 + l as u32, j as u64);
            }
            b.warp_access(&addrs[..warp.len()]);
            b.flops(warp.len() as u64 * (dim * w) as u64 * FLOPS_PER_EVAL);

            // footprints for the warp (wrapped indices precomputed)
            fps.clear();
            fps.extend(
                warp.iter()
                    .map(|&j| footprint(kernel, fine, &pts, j as usize)),
            );
            let [wd1, wd2, wd3] = fps[0].wd;
            // lockstep loop over the w^d cells (x fastest, matching the
            // serial step order): lanes touch their own cell; L2
            // coalescing per step, DRAM reuse per footprint row
            let mut rowb = [0usize; 32];
            for t3 in 0..wd3 {
                for t2 in 0..wd2 {
                    for (l, fp) in fps.iter().enumerate() {
                        rowb[l] = n1 * (fp.idx[1][t2] + n2 * fp.idx[2][t3]);
                    }
                    for t1 in 0..wd1 {
                        for (l, fp) in fps.iter().enumerate() {
                            let cell = fp.idx[0][t1] + rowb[l];
                            addrs[l] = cell * cb;
                            if traced {
                                let lane = lane0 + l as u32;
                                if racy {
                                    // the bug under test: plain
                                    // read-modify-write of a grid word
                                    // other threads also update
                                    b.trace_write(tb_grid, lane, 2 * cell as u64);
                                    b.trace_write(tb_grid, lane, 2 * cell as u64 + 1);
                                } else {
                                    b.trace_atomic(tb_grid, lane, 2 * cell as u64);
                                    b.trace_atomic(tb_grid, lane, 2 * cell as u64 + 1);
                                }
                            }
                        }
                        b.l2_access(&addrs[..fps.len()]);
                    }
                }
            }
            // per-cell update flops, summed once (u64→f64 sums of this
            // size are exact, so the total matches per-step reporting)
            b.flops((wd1 * wd2 * wd3) as u64 * fps.len() as u64 * FLOPS_PER_CELL);
            // DRAM-side traffic: each footprint row filtered through the
            // L2 line model (this is where sorting pays off); atomic op
            // cost + contention ride along, batched per contiguous row
            // segment — two atomic words per complex add, totals
            // identical to per-cell `global_atomic_n`
            for fp in fps.iter() {
                for t3 in 0..fp.wd[2] {
                    for t2 in 0..fp.wd[1] {
                        let row = n1 * (fp.idx[1][t2] + n2 * fp.idx[2][t3]);
                        account_row(b, row, fp.l0[0], fp.wd[0], n1, cb, true);
                        if !racy {
                            let start = fp.idx[0][0];
                            let w1 = fp.wd[0];
                            if start + w1 <= n1 {
                                b.global_atomic_run(row + start, w1, 2);
                            } else {
                                let first = n1 - start;
                                b.global_atomic_run(row + start, first, 2);
                                b.global_atomic_run(row, w1 - first, 2);
                            }
                        }
                    }
                }
            }
            // functional update, emitted as an ordered delta list
            for (&j, fp) in warp.iter().zip(fps.iter()) {
                let c = strengths[j as usize];
                for t3 in 0..fp.wd[2] {
                    let off3 = fp.idx[2][t3] * n1 * n2;
                    for t2 in 0..fp.wd[1] {
                        let c23 = c.scale(T::from_f64(fp.ker[1][t2] * fp.ker[2][t3]));
                        let base = off3 + fp.idx[1][t2] * n1;
                        for (&i1, &k1) in fp.idx[0][..fp.wd[0]].iter().zip(fp.ker[0].iter()) {
                            deltas.push((base + i1, c23.scale(T::from_f64(k1))));
                        }
                    }
                }
            }
        }
        deltas
    };
    k.run_blocks(n_blocks, body, |_bid, deltas| {
        for (cell, v) in deltas {
            grid[cell] += v;
        }
    });
    Ok(dev.launch_end(k))
}

/// SM spreading (paper Fig. 1): one thread block per subproblem, local
/// accumulation in a shared-memory padded bin, then one global atomic add
/// per padded-bin cell.
#[allow(clippy::too_many_arguments)]
pub fn spread_sm<T: Real, K: Kernel1d>(
    dev: &Device,
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    strengths: &[Complex<T>],
    perm: &[u32],
    layout: &BinLayout,
    subproblems: &[Subproblem],
    grid: &mut [Complex<T>],
) -> Result<LaunchReport, DeviceFault> {
    assert_eq!(grid.len(), fine.total());
    let cb = std::mem::size_of::<Complex<T>>();
    let prec = precision::<T>();
    let w = kernel.width();
    let pad = 2 * w.div_ceil(2);
    let dim = pts.dim;
    // padded bin extents (eq. 13)
    let mut p = [1usize; 3];
    for (pi, &bs) in p.iter_mut().zip(&layout.bin_size).take(dim) {
        *pi = bs + pad;
    }
    let padded_cells = p[0] * p[1] * p[2];
    let shared_bytes = padded_cells * cb;
    let mut k = dev.kernel(
        "spread_SM",
        LaunchConfig::new(prec, 256)
            .with_shared(shared_bytes.min(dev.props().shared_mem_per_block)),
    )?;
    k.atomic_region(fine.total(), cb);
    // traced buffers (no-ops unless the device is in hazard mode); the
    // shared bin and the fine grid are traced per real word
    let traced = k.access_traced();
    let tb_pts = k.trace_buffer("points", Scope::Global, T::BYTES);
    let tb_str = k.trace_buffer("strengths", Scope::Global, cb);
    let tb_bin = k.trace_buffer("sm_bin", Scope::Shared, cb / 2);
    let tb_grid = k.trace_buffer("fine_grid", Scope::Global, cb / 2);
    let tpb = 256u32; // threads per block, for trace thread ids
    let [n1, n2, n3] = fine.n;
    let half = (pad / 2) as i64;
    let pts = *pts;
    // One subproblem per thread block, run on the host pool; grid updates
    // come back as an ordered delta list per block (see `spread_gm_impl`).
    let body = |bid: usize, b: &mut gpu_sim::BlockAcc<'_>| {
        let sp = &subproblems[bid];
        let mut local = vec![Complex::<T>::ZERO; padded_cells];
        let mut addrs = [0usize; 32];
        let mut deltas: Vec<(usize, Complex<T>)> = Vec::with_capacity(padded_cells);
        let o = layout.origin(sp.bin as usize);
        // shared-memory zero fill (grid-stride over the padded bin), then
        // a __syncthreads before any thread accumulates into the bin
        b.shared_ops(padded_cells as u64);
        if traced {
            for word in 0..2 * padded_cells as u64 {
                b.trace_write(tb_bin, (word % tpb as u64) as u32, word);
            }
            b.barrier();
        }
        // offset of the padded bin within the fine grid (can be negative)
        let delta = [
            o[0] as i64 - half * (dim >= 1) as i64,
            o[1] as i64 - half * (dim >= 2) as i64,
            o[2] as i64 - half * (dim >= 3) as i64,
        ];
        let members = &perm[sp.start as usize..(sp.start + sp.len) as usize];
        for (wi, warp) in members.chunks(32).enumerate() {
            let lane0 = (wi as u32 * 32) % tpb; // thread id of lane 0
                                                // gather point data (scattered: members are original indices)
            for arr in 0..dim {
                for (l, &j) in warp.iter().enumerate() {
                    addrs[l] = j as usize * T::BYTES + arr;
                    b.trace_read(
                        tb_pts,
                        (lane0 + l as u32) % tpb,
                        (j as u64) * 4 + arr as u64,
                    );
                }
                b.warp_access(&addrs[..warp.len()]);
            }
            for (l, &j) in warp.iter().enumerate() {
                addrs[l] = j as usize * cb;
                b.trace_read(tb_str, (lane0 + l as u32) % tpb, j as u64);
            }
            b.warp_access(&addrs[..warp.len()]);
            b.flops(warp.len() as u64 * (dim * w) as u64 * FLOPS_PER_EVAL);
            for (l, &j) in warp.iter().enumerate() {
                let thread = (lane0 + l as u32) % tpb;
                let fp = footprint(kernel, fine, &pts, j as usize);
                let c = strengths[j as usize];
                let b1 = (fp.l0[0] - delta[0]) as usize;
                let b2 = if dim >= 2 {
                    (fp.l0[1] - delta[1]) as usize
                } else {
                    0
                };
                let b3 = if dim >= 3 {
                    (fp.l0[2] - delta[2]) as usize
                } else {
                    0
                };
                // In-range invariant for boundary-pinned points: the
                // point's cell lies inside this subproblem's bin, so its
                // w-wide footprint fits the padded extent. This is what
                // the fold guard in `grid_coord` protects — a point
                // folded to g = n would land one cell past the pad.
                debug_assert!(
                    b1 + fp.wd[0] <= p[0]
                        && (dim < 2 || b2 + fp.wd[1] <= p[1])
                        && (dim < 3 || b3 + fp.wd[2] <= p[2]),
                    "SM footprint escapes padded bin: point {j} local \
                     ({b1},{b2},{b3}) + w{w} > padded {p:?}"
                );
                for t3 in 0..fp.wd[2] {
                    let off3 = (b3 + t3) * p[0] * p[1];
                    for t2 in 0..fp.wd[1] {
                        let c23 = c.scale(T::from_f64(fp.ker[1][t2] * fp.ker[2][t3]));
                        let base = off3 + (b2 + t2) * p[0] + b1;
                        for t1 in 0..fp.wd[0] {
                            let cell = base + t1;
                            // two shared atomics per cell (re, im words)
                            b.shared_atomic(cell);
                            b.shared_atomic(cell);
                            b.trace_atomic(tb_bin, thread, 2 * cell as u64);
                            b.trace_atomic(tb_bin, thread, 2 * cell as u64 + 1);
                            local[cell] += c23.scale(T::from_f64(fp.ker[0][t1]));
                        }
                    }
                }
                b.flops((fp.wd[0] * fp.wd[1] * fp.wd[2]) as u64 * FLOPS_PER_CELL);
            }
        }
        // Step 3: __syncthreads, then atomic add the padded bin back to
        // global memory (each thread reads its own shared words)
        if traced {
            b.barrier();
        }
        b.shared_ops(padded_cells as u64); // shared reads
        for i3 in 0..p[2] {
            let g3 = ((delta[2] + i3 as i64).rem_euclid(n3 as i64)) as usize;
            for i2 in 0..p[1] {
                let g2 = ((delta[1] + i2 as i64).rem_euclid(n2 as i64)) as usize;
                let row_base = g3 * n1 * n2 + g2 * n1;
                let lrow = (i3 * p[1] + i2) * p[0];
                let mut l = 0usize;
                while l < p[0] {
                    let lanes = (p[0] - l).min(32);
                    for (s, slot) in addrs.iter_mut().enumerate().take(lanes) {
                        let g1 = ((delta[0] + (l + s) as i64).rem_euclid(n1 as i64)) as usize;
                        *slot = (row_base + g1) * cb;
                    }
                    b.l2_access(&addrs[..lanes]);
                    for s in 0..lanes {
                        let g1 = ((delta[0] + (l + s) as i64).rem_euclid(n1 as i64)) as usize;
                        let cell = row_base + g1;
                        b.global_atomic(cell);
                        b.global_atomic(cell);
                        if traced {
                            let lcell = lrow + l + s;
                            let thread = (lcell % tpb as usize) as u32;
                            b.trace_read(tb_bin, thread, 2 * lcell as u64);
                            b.trace_read(tb_bin, thread, 2 * lcell as u64 + 1);
                            b.trace_atomic(tb_grid, thread, 2 * cell as u64);
                            b.trace_atomic(tb_grid, thread, 2 * cell as u64 + 1);
                        }
                        deltas.push((cell, local[lrow + l + s]));
                    }
                    l += lanes;
                }
                account_row(b, row_base, delta[0], p[0], n1, cb, true);
            }
        }
        b.flops(padded_cells as u64 * 2);
        deltas
    };
    k.run_blocks(subproblems.len(), body, |_bid, deltas| {
        for (cell, v) in deltas {
            grid[cell] += v;
        }
    });
    Ok(dev.launch_end(k))
}

/// Borrowed view of a plan's registered points plus the sort artifacts
/// the spreading methods consume. The plan keeps ownership of the
/// device buffers; batched execution builds one view per chunk and
/// slices the stacked strength/grid buffers per vector.
#[derive(Copy, Clone)]
pub struct SpreadInputs<'a, T> {
    pub pts: PtsRef<'a, T>,
    /// Bin-sorted point order (present for GM-sort and SM).
    pub sort_perm: Option<&'a [u32]>,
    /// Bin layout backing `sort_perm` (needed by SM).
    pub layout: Option<&'a BinLayout>,
    /// SM subproblem list (empty unless the SM method is active).
    pub subproblems: &'a [Subproblem],
}

/// Spread `bc` stacked strength vectors into `bc` stacked fine grids
/// with the given method. Vector `v` occupies `strengths[v*M..]` and
/// `grids[v*nf..]` (the `ntransf` layout). The point order is resolved
/// once per call and every vector launches the same kernel as the
/// single-transform path, so results are bitwise identical to `bc`
/// separate dispatches.
#[allow(clippy::too_many_arguments)]
pub fn spread_batch<T: Real, K: Kernel1d>(
    dev: &Device,
    kernel: &K,
    fine: Shape,
    method: Method,
    threads_per_block: usize,
    inputs: &SpreadInputs<'_, T>,
    bc: usize,
    strengths: &[Complex<T>],
    grids: &mut [Complex<T>],
) -> Result<(), DeviceFault> {
    let m = inputs.pts.len();
    let nf = fine.total();
    assert!(strengths.len() >= bc * m && grids.len() >= bc * nf);
    let _span = nufft_trace::span!(
        "spread",
        dim = inputs.pts.dim,
        method = format!("{method:?}"),
        m = m,
        bc = bc,
        subproblems = inputs.subproblems.len(),
    );
    match method {
        Method::Gm => {
            let natural: Vec<u32> = (0..m as u32).collect();
            for v in 0..bc {
                spread_gm(
                    dev,
                    "spread_GM",
                    kernel,
                    fine,
                    &inputs.pts,
                    &strengths[v * m..(v + 1) * m],
                    &natural,
                    &mut grids[v * nf..(v + 1) * nf],
                    threads_per_block,
                    1.0,
                )?;
            }
        }
        Method::GmSort => {
            let perm = inputs.sort_perm.expect("GM-sort requires sorting");
            for v in 0..bc {
                spread_gm(
                    dev,
                    "spread_GM-sort",
                    kernel,
                    fine,
                    &inputs.pts,
                    &strengths[v * m..(v + 1) * m],
                    perm,
                    &mut grids[v * nf..(v + 1) * nf],
                    threads_per_block,
                    1.0,
                )?;
            }
        }
        Method::Sm => {
            let perm = inputs.sort_perm.expect("SM requires sorting");
            let layout = inputs.layout.expect("SM requires a bin layout");
            for v in 0..bc {
                spread_sm(
                    dev,
                    kernel,
                    fine,
                    &inputs.pts,
                    &strengths[v * m..(v + 1) * m],
                    perm,
                    layout,
                    inputs.subproblems,
                    &mut grids[v * nf..(v + 1) * nf],
                )?;
            }
        }
        Method::Auto => unreachable!("method resolved at plan time"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::{build_subproblems, gpu_bin_sort};
    use nufft_common::metrics::rel_l2;
    use nufft_common::workload::{gen_points, gen_strengths, PointDist, Points};
    use nufft_kernels::EsKernel;

    fn pts_ref<T: Real>(p: &Points<T>) -> PtsRef<'_, T> {
        PtsRef {
            coords: [&p.coords[0], &p.coords[1], &p.coords[2]],
            dim: p.dim,
        }
    }

    /// CPU reference: serial spread in natural order.
    fn reference(
        kernel: &EsKernel,
        fine: Shape,
        pts: &Points<f64>,
        cs: &[Complex<f64>],
    ) -> Vec<Complex<f64>> {
        let mut out = vec![Complex::<f64>::ZERO; fine.total()];
        let order: Vec<u32> = (0..pts.len() as u32).collect();
        let pr = pts_ref(pts);
        for &j in &order {
            let fp = footprint(kernel, fine, &pr, j as usize);
            let [n1, n2, n3] = fine.n;
            let mut idx = [[0usize; MAX_W]; 3];
            for i in 0..3 {
                let n = [n1, n2, n3][i] as i64;
                for (t, slot) in idx[i][..fp.wd[i]].iter_mut().enumerate() {
                    *slot = (fp.l0[i] + t as i64).rem_euclid(n) as usize;
                }
            }
            let c = cs[j as usize];
            for t3 in 0..fp.wd[2] {
                for t2 in 0..fp.wd[1] {
                    let c23 = c.scale(fp.ker[1][t2] * fp.ker[2][t3]);
                    let base = idx[2][t3] * n1 * n2 + idx[1][t2] * n1;
                    for t1 in 0..fp.wd[0] {
                        out[base + idx[0][t1]] += c23.scale(fp.ker[0][t1]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn gm_matches_reference_2d() {
        let dev = Device::v100();
        let fine = Shape::d2(64, 64);
        let kernel = EsKernel::with_width(6);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 500, fine, 1);
        let cs = gen_strengths::<f64>(500, 2);
        let order: Vec<u32> = (0..500).collect();
        let mut grid = vec![Complex::<f64>::ZERO; fine.total()];
        spread_gm(
            &dev,
            "spread_GM",
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &order,
            &mut grid,
            128,
            1.0,
        )
        .unwrap();
        let want = reference(&kernel, fine, &pts, &cs);
        assert!(rel_l2(&grid, &want) < 1e-13);
    }

    #[test]
    fn gm_sort_same_sums_different_order() {
        let dev = Device::v100();
        let fine = Shape::d2(64, 64);
        let kernel = EsKernel::with_width(4);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 800, fine, 3);
        let cs = gen_strengths::<f64>(800, 4);
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let mut grid = vec![Complex::<f64>::ZERO; fine.total()];
        spread_gm(
            &dev,
            "spread_GM-sort",
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &sort.perm,
            &mut grid,
            128,
            1.0,
        )
        .unwrap();
        let want = reference(&kernel, fine, &pts, &cs);
        assert!(rel_l2(&grid, &want) < 1e-13);
    }

    #[test]
    fn sm_matches_reference_2d() {
        let dev = Device::v100();
        let fine = Shape::d2(128, 128);
        let kernel = EsKernel::with_width(6);
        let pts = gen_points::<f64>(PointDist::Rand, 2, 3000, fine, 5);
        let cs = gen_strengths::<f64>(3000, 6);
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let subs = build_subproblems(&dev, &sort, 1024);
        let mut grid = vec![Complex::<f64>::ZERO; fine.total()];
        spread_sm(
            &dev,
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &sort.perm,
            &sort.layout,
            &subs,
            &mut grid,
        )
        .unwrap();
        let want = reference(&kernel, fine, &pts, &cs);
        assert!(rel_l2(&grid, &want) < 1e-13);
    }

    #[test]
    fn sm_matches_reference_3d_and_cluster() {
        let dev = Device::v100();
        let fine = Shape::d3(32, 32, 32);
        let kernel = EsKernel::with_width(5);
        for dist in [PointDist::Rand, PointDist::Cluster] {
            let pts = gen_points::<f64>(dist, 3, 2000, fine, 7);
            let cs = gen_strengths::<f64>(2000, 8);
            let sort = gpu_bin_sort(&dev, &pts, fine, [16, 16, 2]);
            let subs = build_subproblems(&dev, &sort, 256);
            let mut grid = vec![Complex::<f64>::ZERO; fine.total()];
            spread_sm(
                &dev,
                &kernel,
                fine,
                &pts_ref(&pts),
                &cs,
                &sort.perm,
                &sort.layout,
                &subs,
                &mut grid,
            )
            .unwrap();
            let want = reference(&kernel, fine, &pts, &cs);
            assert!(rel_l2(&grid, &want) < 1e-13, "{dist:?}");
        }
    }

    #[test]
    fn gm_sort_prices_faster_than_gm_on_large_rand_grids() {
        // grid must exceed L2 (the paper's large-grid regime, Fig. 2) and
        // the density must be high enough that sorted neighbours share
        // cache lines
        let dev = Device::v100();
        let fine = Shape::d2(2048, 2048);
        let kernel = EsKernel::with_width(6);
        let m = 500_000;
        let pts = gen_points::<f32>(PointDist::Rand, 2, m, fine, 9);
        let cs = gen_strengths::<f32>(m, 10);
        let natural: Vec<u32> = (0..m as u32).collect();
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let mut g1 = vec![Complex::<f32>::ZERO; fine.total()];
        let r_gm = spread_gm(
            &dev,
            "gm",
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &natural,
            &mut g1,
            128,
            1.0,
        )
        .unwrap();
        let mut g2 = vec![Complex::<f32>::ZERO; fine.total()];
        let r_gs = spread_gm(
            &dev,
            "gms",
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &sort.perm,
            &mut g2,
            128,
            1.0,
        )
        .unwrap();
        assert!(
            r_gs.duration < r_gm.duration / 2.0,
            "GM-sort {} should beat GM {}",
            r_gs.duration,
            r_gm.duration
        );
        // and the results agree
        assert!(rel_l2(&g1, &g2) < 1e-4);
    }

    #[test]
    fn sm_crushes_gm_on_clustered_points() {
        let dev = Device::v100();
        let fine = Shape::d2(512, 512);
        let kernel = EsKernel::with_width(6);
        let m = 50_000;
        let pts = gen_points::<f32>(PointDist::Cluster, 2, m, fine, 11);
        let cs = gen_strengths::<f32>(m, 12);
        let natural: Vec<u32> = (0..m as u32).collect();
        let mut g1 = vec![Complex::<f32>::ZERO; fine.total()];
        let r_gm = spread_gm(
            &dev,
            "gm",
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &natural,
            &mut g1,
            128,
            1.0,
        )
        .unwrap();
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let subs = build_subproblems(&dev, &sort, 1024);
        let mut g2 = vec![Complex::<f32>::ZERO; fine.total()];
        let r_sm = spread_sm(
            &dev,
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &sort.perm,
            &sort.layout,
            &subs,
            &mut g2,
        )
        .unwrap();
        assert!(
            r_sm.duration < r_gm.duration / 3.0,
            "SM {} should crush GM {} on clusters",
            r_sm.duration,
            r_gm.duration
        );
        assert!(rel_l2(&g1, &g2) < 1e-5);
        // the GM run must show a hot atomic sector
        assert!(r_gm.atomic_hotspot_count > 10_000);
        assert!(r_sm.atomic_hotspot_count < r_gm.atomic_hotspot_count / 10);
    }
}
