//! Graceful degradation under device faults.
//!
//! cuFINUFFT's production posture (ROADMAP north star) is that a
//! transform request should survive the failures a busy shared GPU
//! actually produces: transient transfer or launch glitches, memory
//! pressure from co-tenant plans, and configurations where the SM
//! spreader does not fit. The [`RecoveryPolicy`] on
//! [`GpuOpts`](crate::GpuOpts) drives three behaviors in the plan
//! pipeline:
//!
//! 1. **Method fallback** — an explicit [`Method::Sm`](crate::Method)
//!    request that exceeds the shared-memory budget falls back to
//!    GM-sort (what `Auto` would have picked) instead of erroring, when
//!    `allow_method_fallback` is set.
//! 2. **Chunk shrinking** — `execute_many` responds to a device OOM in
//!    its staging allocations by halving the batch chunk (down to
//!    `min_chunk`) and re-planning the buffers, so a batch that fits
//!    memory at B=1 always completes.
//! 3. **Bounded retry** — transient memcpy/launch faults are retried up
//!    to `max_retries` times with linear backoff in *simulated* time.
//!
//! Every recovery action is mirrored into the plan's `nufft-trace`
//! session (`recovery.*` counters) and accumulated in the
//! [`RecoveryReport`] returned by `Plan::recovery_report()`.

use gpu_sim::{Device, DeviceFault, FaultKind, Trace};
use nufft_common::error::{NufftError, Result};

/// Knobs for the plan pipeline's fault recovery; set via
/// [`GpuOpts::recovery`](crate::GpuOpts) or `PlanBuilder::recovery`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries per transient device fault before giving up (0 = fail on
    /// the first fault).
    pub max_retries: u32,
    /// Simulated seconds of backoff charged before retry `k` (scaled
    /// linearly: `k * backoff`). Must be finite and non-negative.
    pub backoff: f64,
    /// Fall back from an infeasible explicit `Method::Sm` to GM-sort
    /// instead of returning `MethodUnavailable`.
    pub allow_method_fallback: bool,
    /// Floor for OOM-driven batch-chunk halving in `execute_many`;
    /// 0 disables shrinking (OOM surfaces as `DeviceOom`).
    pub min_chunk: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff: 1e-6,
            allow_method_fallback: false,
            min_chunk: 1,
        }
    }
}

impl RecoveryPolicy {
    /// Fail-fast policy: no retries, no fallback, no shrinking — every
    /// fault surfaces immediately as a typed error (the pre-recovery
    /// behavior, useful for tests and strict callers).
    pub fn none() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff: 0.0,
            allow_method_fallback: false,
            min_chunk: 0,
        }
    }

    /// Check the policy's fields are usable (finite, non-negative
    /// backoff). Run implicitly at plan build; callers holding a policy
    /// long before building (e.g. a server config) can check eagerly.
    pub fn validate(&self) -> Result<()> {
        if !(self.backoff.is_finite() && self.backoff >= 0.0) {
            return Err(NufftError::BadOptions(format!(
                "recovery backoff must be finite and non-negative, got {}",
                self.backoff
            )));
        }
        Ok(())
    }
}

/// What the recovery layer did during a plan's lifetime so far;
/// returned by `Plan::recovery_report()`. Counts accumulate across
/// `set_pts`/`execute` calls on the same plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Infeasible-SM requests downgraded to GM-sort.
    pub method_fallbacks: u32,
    /// Individual retry attempts issued for transient faults.
    pub retries: u32,
    /// Operations that ultimately succeeded after at least one retry.
    pub recovered: u32,
    /// Operations abandoned after exhausting retries (each corresponds
    /// to a returned `DeviceFault`/`DeviceOom` error).
    pub unrecovered: u32,
    /// Times `execute_many` halved its batch chunk in response to OOM.
    pub chunk_shrinks: u32,
    /// The chunk size after the most recent shrink (None = never shrunk).
    pub final_chunk: Option<usize>,
    /// Human-readable log of every recovery action, in order.
    pub events: Vec<String>,
}

impl RecoveryReport {
    /// True when no fault was ever observed by this plan.
    pub fn is_clean(&self) -> bool {
        self == &RecoveryReport::default()
    }
}

/// Map an unrecovered device fault to the library error space: OOM
/// keeps its dedicated variant (so chunk-shrinking and callers can
/// match on it), everything else becomes `DeviceFault`.
pub(crate) fn fault_error(f: &DeviceFault, attempts: u32) -> NufftError {
    match f.kind {
        FaultKind::Oom {
            requested,
            available,
        } => NufftError::DeviceOom {
            requested,
            available,
        },
        _ => NufftError::DeviceFault {
            op: f.op.clone(),
            attempts,
            persistent: !f.transient,
        },
    }
}

/// Run `f`, retrying transient device faults up to `policy.max_retries`
/// times with linear backoff in simulated time. Persistent faults and
/// exhausted retries surface as typed errors; outcomes are recorded in
/// `rec` and the `recovery.*` trace counters.
pub(crate) fn with_retry<R>(
    dev: &Device,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
    rec: &mut RecoveryReport,
    what: &str,
    mut f: impl FnMut() -> std::result::Result<R, DeviceFault>,
) -> Result<R> {
    let mut attempt: u32 = 0;
    loop {
        match f() {
            Ok(r) => {
                if attempt > 0 {
                    rec.recovered += 1;
                    rec.events
                        .push(format!("recovered '{what}' after {attempt} retry(s)"));
                    if let Some(t) = trace {
                        t.counter("recovery.recovered").inc();
                    }
                }
                return Ok(r);
            }
            Err(fault) => {
                if !fault.transient || attempt >= policy.max_retries {
                    rec.unrecovered += 1;
                    rec.events.push(format!(
                        "gave up on '{what}' after {} attempt(s): {fault}",
                        attempt + 1
                    ));
                    if let Some(t) = trace {
                        t.counter("recovery.unrecovered").inc();
                    }
                    return Err(fault_error(&fault, attempt + 1));
                }
                attempt += 1;
                rec.retries += 1;
                rec.events.push(format!(
                    "retry {attempt}/{} for '{what}': {fault}",
                    policy.max_retries
                ));
                if let Some(t) = trace {
                    t.counter("recovery.retries").inc();
                }
                if policy.backoff > 0.0 {
                    dev.advance("recovery.backoff", policy.backoff * attempt as f64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::FaultKind;

    fn transient(op: &str) -> DeviceFault {
        DeviceFault {
            op: op.into(),
            kind: FaultKind::Memcpy,
            transient: true,
        }
    }

    #[test]
    fn retry_recovers_transient_fault() {
        let dev = Device::v100();
        let policy = RecoveryPolicy::default();
        let mut rec = RecoveryReport::default();
        let mut calls = 0;
        let r = with_retry(&dev, &policy, None, &mut rec, "op", || {
            calls += 1;
            if calls < 3 {
                Err(transient("op"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(rec.retries, 2);
        assert_eq!(rec.recovered, 1);
        assert_eq!(rec.unrecovered, 0);
        assert!(!rec.is_clean());
    }

    #[test]
    fn retry_budget_is_bounded() {
        let dev = Device::v100();
        let policy = RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        };
        let mut rec = RecoveryReport::default();
        let mut calls = 0u32;
        let r: Result<()> = with_retry(&dev, &policy, None, &mut rec, "op", || {
            calls += 1;
            Err(transient("op"))
        });
        assert_eq!(calls, 3, "initial attempt + 2 retries");
        assert!(matches!(
            r,
            Err(NufftError::DeviceFault { attempts: 3, .. })
        ));
        assert_eq!(rec.unrecovered, 1);
    }

    #[test]
    fn persistent_fault_fails_immediately() {
        let dev = Device::v100();
        let policy = RecoveryPolicy::default();
        let mut rec = RecoveryReport::default();
        let mut calls = 0u32;
        let r: Result<()> = with_retry(&dev, &policy, None, &mut rec, "op", || {
            calls += 1;
            Err(DeviceFault {
                op: "op".into(),
                kind: FaultKind::KernelLaunch,
                transient: false,
            })
        });
        assert_eq!(calls, 1, "persistent faults are not retried");
        assert!(r.is_err());
    }

    #[test]
    fn oom_kind_maps_to_device_oom() {
        let f = DeviceFault {
            op: "alloc:x".into(),
            kind: FaultKind::Oom {
                requested: 100,
                available: 10,
            },
            transient: false,
        };
        assert_eq!(
            fault_error(&f, 1),
            NufftError::DeviceOom {
                requested: 100,
                available: 10
            }
        );
    }

    #[test]
    fn backoff_advances_simulated_time() {
        let dev = Device::v100();
        let policy = RecoveryPolicy {
            max_retries: 1,
            backoff: 0.25,
            ..RecoveryPolicy::default()
        };
        let mut rec = RecoveryReport::default();
        let mut calls = 0;
        let c0 = dev.clock();
        let _ = with_retry(&dev, &policy, None, &mut rec, "op", || {
            calls += 1;
            if calls < 2 {
                Err(transient("op"))
            } else {
                Ok(())
            }
        });
        assert!(dev.clock() - c0 >= 0.25, "backoff charged to the clock");
    }

    #[test]
    fn none_policy_disables_everything() {
        let p = RecoveryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.min_chunk, 0);
        assert!(!p.allow_method_fallback);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_backoff() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let p = RecoveryPolicy {
                backoff: bad,
                ..RecoveryPolicy::default()
            };
            assert!(p.validate().is_err(), "backoff {bad} accepted");
        }
    }
}
