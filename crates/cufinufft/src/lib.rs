//! cuFINUFFT in Rust: the paper's load-balanced GPU nonuniform FFT,
//! running on the workspace's simulated CUDA-class device.
//!
//! Supports type 1 (nonuniform -> uniform) and type 2 (uniform ->
//! nonuniform) transforms in 2 and 3 dimensions (plus 1D as an
//! extension), single or double precision, with the paper's three
//! spreading schemes:
//!
//! * [`Method::Gm`] — input-driven global-memory atomics (baseline);
//! * [`Method::GmSort`] — bin-sorted point order for coalesced access;
//! * [`Method::Sm`] — shared-memory subproblems capped at `M_sub` points
//!   (type 1 only; infeasible configurations fall back per Remark 2).
//!
//! The interface is the C library's plan lifecycle, built fluently:
//!
//! ```
//! use cufinufft::Plan;
//! use gpu_sim::Device;
//! use nufft_common::{gen_points, gen_strengths, Complex, PointDist, Shape, TransformType};
//!
//! let device = Device::v100();
//! let mut plan = Plan::<f32>::builder(TransformType::Type1, &[64, 64])
//!     .eps(1e-5)
//!     .iflag(-1)
//!     .ntransf(4)
//!     .build(&device)
//!     .unwrap();
//! let pts = gen_points::<f32>(PointDist::Rand, 2, 1000, plan.fine_grid_shape(), 7);
//! plan.set_pts(&pts).unwrap();
//!
//! // one transform...
//! let c = gen_strengths::<f32>(1000, 8);
//! let mut f = vec![Complex::<f32>::ZERO; 64 * 64];
//! plan.execute(&c, &mut f).unwrap();
//!
//! // ...or a stacked batch, pipelined on two streams: the sort is
//! // reused, the FFT runs batched, and transfers hide under compute
//! let batch = gen_strengths::<f32>(1000 * 4, 9);
//! let mut out = vec![Complex::<f32>::ZERO; 64 * 64 * 4];
//! plan.execute_many(&batch, &mut out).unwrap();
//! let t = plan.timings();
//! println!(
//!     "batched exec: {:.3} ms wall, {:.3} ms hidden by overlap",
//!     t.pipe_wall * 1e3,
//!     t.overlap_saving() * 1e3,
//! );
//! ```

#![forbid(unsafe_code)]

pub mod access_plan;
pub mod bins;
pub mod interp;
pub mod opts;
pub mod plan;
pub mod recovery;
pub mod spread;
pub mod type3;

pub use nufft_common::TransformType;
pub use opts::{
    default_bin_size, degraded_method_for, sm_feasible, sm_shared_bytes, GpuOpts, Method,
    ModeOrder, Tuning,
};
pub use plan::{BatchTimings, ChunkTiming, GpuStageTimings, Plan, PlanBuilder};
pub use recovery::{RecoveryPolicy, RecoveryReport};
pub use type3::GpuType3Plan;

/// Everything a typical user needs in one import: the plan lifecycle
/// ([`Plan`], [`PlanBuilder`]), the canonical request/spec vocabulary
/// ([`TransformSpec`](nufft_common::TransformSpec),
/// [`Precision`](nufft_common::Precision), [`Method`], [`ModeOrder`],
/// [`Tuning`]), the cross-backend [`NufftPlan`](nufft_common::NufftPlan)
/// trait, and the error types.
///
/// ```
/// use cufinufft::prelude::*;
/// use gpu_sim::Device;
///
/// let spec = TransformSpec::type1(&[32, 32]).eps(1e-5).precision(Precision::F32);
/// let plan = Plan::<f32>::from_spec(&spec, &Device::v100()).unwrap();
/// assert_eq!(plan.modes().total(), 1024);
/// ```
pub mod prelude {
    pub use crate::{
        GpuOpts, GpuStageTimings, GpuType3Plan, Method, ModeOrder, Plan, PlanBuilder,
        RecoveryPolicy, Tuning,
    };
    pub use nufft_common::{
        Complex, NufftError, NufftPlan, Points, Precision, Result, TransformSpec, TransformType,
    };
}
