//! GPU type 3 NUFFT: nonuniform to nonuniform — the paper's future-work
//! item implemented on the simulated device.
//!
//! Same Lee–Greengard structure as `finufft_cpu::type3` (see that module
//! for the derivation): rescale sources into the periodic box, spread
//! with the SM/GM-sort machinery, reorder to the centered layout, run an
//! inner GPU **type 2** at the rescaled target frequencies, divide out
//! the source kernel's transform. Every stage is priced by the device
//! model, so type-3 timings compose from the same primitives the paper
//! benchmarks.

use crate::bins::{build_subproblems, gpu_bin_sort};
use crate::opts::{default_bin_size, resolve_spread_method, GpuOpts, Method};
use crate::plan::{GpuStageTimings, Plan};
use crate::recovery::{with_retry, RecoveryReport};
use crate::spread::{spread_gm, spread_sm, PtsRef};
use gpu_sim::{Device, GpuBuffer, Precision};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_common::smooth::next_smooth;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use nufft_kernels::EsKernel;

/// A GPU type 3 plan.
pub struct GpuType3Plan<T: Real> {
    dim: usize,
    iflag: i32,
    eps: f64,
    kernel: EsKernel,
    opts: GpuOpts,
    dev: Device,
    nf: Shape,
    spread_method: Method,
    /// Rescaled sources on the device.
    d_x: Option<[GpuBuffer<T>; 3]>,
    xp_host: Option<Points<T>>,
    inner: Option<Plan<T>>,
    corr: Vec<f64>,
    m_sources: usize,
    n_targets: usize,
    d_grid: Option<GpuBuffer<Complex<T>>>,
    timings: GpuStageTimings,
    recovery: RecoveryReport,
}

impl<T: Real> GpuType3Plan<T> {
    pub fn new(dim: usize, iflag: i32, eps: f64, opts: GpuOpts, dev: &Device) -> Result<Self> {
        if !(1..=3).contains(&dim) {
            return Err(NufftError::BadDim(dim));
        }
        let kernel = EsKernel::for_tolerance(eps, T::IS_DOUBLE)?;
        Ok(GpuType3Plan {
            dim,
            iflag: if iflag >= 0 { 1 } else { -1 },
            eps,
            kernel,
            opts,
            dev: dev.clone(),
            nf: Shape::from_slice(&vec![1; dim]),
            spread_method: Method::Auto,
            d_x: None,
            xp_host: None,
            inner: None,
            corr: Vec::new(),
            m_sources: 0,
            n_targets: 0,
            d_grid: None,
            timings: GpuStageTimings::default(),
            recovery: RecoveryReport::default(),
        })
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.nf
    }

    pub fn spread_method(&self) -> Method {
        self.spread_method
    }

    pub fn timings(&self) -> GpuStageTimings {
        self.timings
    }

    /// Recovery actions taken by this plan's own stages (the inner
    /// type-2 plan keeps its own report).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Register sources `x` and target frequencies `s`.
    pub fn set_pts(&mut self, x: &Points<T>, s: &Points<T>) -> Result<()> {
        if x.dim != self.dim || s.dim != self.dim {
            return Err(NufftError::BadDim(x.dim.max(s.dim)));
        }
        // a non-finite source or target frequency would silently poison
        // the box rescaling below
        for i in 0..self.dim {
            for (j, &v) in x.coords[i].iter().enumerate() {
                if !v.is_finite() {
                    return Err(NufftError::BadPoint {
                        index: j,
                        value: v.to_f64(),
                    });
                }
            }
            for (k, &v) in s.coords[i].iter().enumerate() {
                if !v.is_finite() {
                    return Err(NufftError::BadPoint {
                        index: k,
                        value: v.to_f64(),
                    });
                }
            }
        }
        let w = self.kernel.w;
        let sigma = 2.0f64;
        let mut nfs = vec![0usize; self.dim];
        let mut gamma = [1.0f64; 3];
        for i in 0..self.dim {
            let xw = x.coords[i]
                .iter()
                .map(|v| v.to_f64().abs())
                .fold(0.0f64, f64::max)
                .max(1e-3);
            let sw = s.coords[i]
                .iter()
                .map(|v| v.to_f64().abs())
                .fold(0.0f64, f64::max)
                .max(1e-3);
            let target = (sigma * 2.0 * xw * sw / std::f64::consts::PI).ceil() as usize + 2 * w;
            nfs[i] = next_smooth(target.max(2 * w + 2));
            gamma[i] = nfs[i] as f64 / (2.0 * sigma * sw);
        }
        let nf = Shape::from_slice(&nfs);
        let cb = std::mem::size_of::<Complex<T>>();
        let bin_size = self
            .opts
            .tuning
            .bin_size
            .unwrap_or_else(|| default_bin_size(self.dim));
        let spread_method = match resolve_spread_method(
            self.opts.method,
            bin_size,
            self.dim,
            w,
            cb,
            self.opts
                .tuning
                .shared_mem_budget
                .min(self.dev.props().shared_mem_per_block),
        ) {
            Ok(m) => m,
            Err(e @ NufftError::MethodUnavailable(_))
                if self.opts.recovery.allow_method_fallback =>
            {
                self.recovery.method_fallbacks += 1;
                self.recovery
                    .events
                    .push(format!("method fallback to GM-sort: {e}"));
                if let Some(t) = &self.opts.trace {
                    t.counter("recovery.fallbacks").inc();
                }
                Method::GmSort
            }
            Err(e) => return Err(e),
        };
        // rescaled sources, transferred to the device
        let m = x.len();
        let mut xp = Points {
            coords: [Vec::new(), Vec::new(), Vec::new()],
            dim: self.dim,
        };
        for (i, xc) in xp.coords.iter_mut().enumerate().take(self.dim) {
            *xc = x.coords[i]
                .iter()
                .map(|&v| T::from_f64(v.to_f64() / gamma[i]))
                .collect();
        }
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let trace = self.opts.trace.clone();
        let rec = &mut self.recovery;
        let t0 = dev.clock();
        let my = if self.dim >= 2 { m } else { 0 };
        let mz = if self.dim >= 3 { m } else { 0 };
        let mut bufs = [
            with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:t3_x", || {
                dev.alloc("t3_x", m)
            })?,
            with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:t3_y", || {
                dev.alloc("t3_y", my)
            })?,
            with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:t3_z", || {
                dev.alloc("t3_z", mz)
            })?,
        ];
        for (buf, coords) in bufs.iter_mut().zip(&xp.coords).take(self.dim) {
            with_retry(&dev, &policy, trace.as_ref(), rec, "h2d:t3_pts", || {
                dev.memcpy_htod(buf, coords)
            })?;
        }
        let d_grid = with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:t3_grid", || {
            dev.alloc("t3_grid", nf.total())
        })?;
        self.timings.alloc = dev.clock() - t0;
        // inner type 2 at tau = gamma h s
        let mut tau = Points {
            coords: [Vec::new(), Vec::new(), Vec::new()],
            dim: self.dim,
        };
        for (i, tc) in tau.coords.iter_mut().enumerate().take(self.dim) {
            let h = std::f64::consts::TAU / nf.n[i] as f64;
            *tc = s.coords[i]
                .iter()
                .map(|&v| T::from_f64(gamma[i] * h * v.to_f64()))
                .collect();
        }
        let mut inner = Plan::<T>::builder(TransformType::Type2, &nfs)
            .iflag(self.iflag)
            .eps(self.eps)
            .opts(self.opts.clone())
            .build(&self.dev)?;
        inner.set_pts(&tau)?;
        // per-target corrections
        let n_targets = s.len();
        let mut corr = vec![1.0f64; n_targets];
        for (i, &g) in gamma.iter().enumerate().take(self.dim) {
            let h = std::f64::consts::TAU / nf.n[i] as f64;
            let alpha = w as f64 * h / 2.0;
            for (k, c) in corr.iter_mut().enumerate() {
                let ft = self.kernel.ft(alpha * g * s.coords[i][k].to_f64());
                if ft.abs() < f64::MIN_POSITIVE {
                    return Err(NufftError::BadOptions(format!(
                        "type-3 target {k} outside the resolvable band"
                    )));
                }
                *c *= (2.0 / w as f64) / ft;
            }
        }
        self.timings.sort = inner.timings().sort;
        self.timings.h2d_pts = inner.timings().h2d_pts;
        self.nf = nf;
        self.spread_method = spread_method;
        self.m_sources = m;
        self.n_targets = n_targets;
        self.corr = corr;
        self.d_x = Some(bufs);
        self.xp_host = Some(xp);
        self.inner = Some(inner);
        self.d_grid = Some(d_grid);
        Ok(())
    }

    pub fn execute(&mut self, strengths: &[Complex<T>], out: &mut [Complex<T>]) -> Result<()> {
        let bufs = self.d_x.as_ref().ok_or(NufftError::PointsNotSet)?;
        let xp = self.xp_host.as_ref().expect("points set");
        if strengths.len() != self.m_sources {
            return Err(NufftError::LengthMismatch {
                expected: self.m_sources,
                got: strengths.len(),
            });
        }
        if out.len() != self.n_targets {
            return Err(NufftError::LengthMismatch {
                expected: self.n_targets,
                got: out.len(),
            });
        }
        let prec = if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        };
        let nf = self.nf;
        let cb = std::mem::size_of::<Complex<T>>();
        // transfer strengths
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let trace = self.opts.trace.clone();
        let msrc = self.m_sources;
        let t0 = self.dev.clock();
        let mut d_c = with_retry(
            &dev,
            &policy,
            trace.as_ref(),
            &mut self.recovery,
            "alloc:t3_c",
            || dev.alloc("t3_c", msrc),
        )?;
        with_retry(
            &dev,
            &policy,
            trace.as_ref(),
            &mut self.recovery,
            "h2d:t3_c",
            || dev.memcpy_htod(&mut d_c, strengths),
        )?;
        self.timings.h2d_data = self.dev.clock() - t0;
        // spread on the device
        let t1 = self.dev.clock();
        let d_grid = self.d_grid.as_mut().expect("points set");
        d_grid
            .as_mut_slice()
            .iter_mut()
            .for_each(|z| *z = Complex::ZERO);
        self.dev.bulk_op("t3_memset", 0, nf.total() * cb, 0.0, prec);
        let pr = PtsRef {
            coords: [bufs[0].as_slice(), bufs[1].as_slice(), bufs[2].as_slice()],
            dim: self.dim,
        };
        let bin_size = self
            .opts
            .tuning
            .bin_size
            .unwrap_or_else(|| default_bin_size(self.dim));
        match self.spread_method {
            Method::Sm => {
                let sort = gpu_bin_sort(&self.dev, xp, nf, bin_size);
                let subs = build_subproblems(&self.dev, &sort, self.opts.tuning.msub);
                with_retry(
                    &dev,
                    &policy,
                    trace.as_ref(),
                    &mut self.recovery,
                    "t3:spread_SM",
                    || {
                        spread_sm(
                            &dev,
                            &self.kernel,
                            nf,
                            &pr,
                            d_c.as_slice(),
                            &sort.perm,
                            &sort.layout,
                            &subs,
                            d_grid.as_mut_slice(),
                        )
                    },
                )?;
            }
            Method::GmSort => {
                let sort = gpu_bin_sort(&self.dev, xp, nf, bin_size);
                with_retry(
                    &dev,
                    &policy,
                    trace.as_ref(),
                    &mut self.recovery,
                    "t3:spread_GMs",
                    || {
                        spread_gm(
                            &dev,
                            "t3_spread_GMs",
                            &self.kernel,
                            nf,
                            &pr,
                            d_c.as_slice(),
                            &sort.perm,
                            d_grid.as_mut_slice(),
                            self.opts.tuning.threads_per_block,
                            1.0,
                        )
                    },
                )?;
            }
            _ => {
                let natural: Vec<u32> = (0..self.m_sources as u32).collect();
                with_retry(
                    &dev,
                    &policy,
                    trace.as_ref(),
                    &mut self.recovery,
                    "t3:spread_GM",
                    || {
                        spread_gm(
                            &dev,
                            "t3_spread_GM",
                            &self.kernel,
                            nf,
                            &pr,
                            d_c.as_slice(),
                            &natural,
                            d_grid.as_mut_slice(),
                            self.opts.tuning.threads_per_block,
                            1.0,
                        )
                    },
                )?;
            }
        }
        // centered reorder (one device pass over the grid)
        let grid = d_grid.as_slice();
        let mut centered = vec![Complex::<T>::ZERO; nf.total()];
        for l3 in 0..nf.n[2] {
            let c3 = (l3 + nf.n[2] / 2) % nf.n[2];
            for l2 in 0..nf.n[1] {
                let c2 = (l2 + nf.n[1] / 2) % nf.n[1];
                for l1 in 0..nf.n[0] {
                    let c1 = (l1 + nf.n[0] / 2) % nf.n[0];
                    centered[nf.idx(c1, c2, c3)] = grid[nf.idx(l1, l2, l3)];
                }
            }
        }
        self.dev
            .bulk_op("t3_fftshift", nf.total() * cb, nf.total() * cb, 0.0, prec);
        self.timings.spread_interp = self.dev.clock() - t1;
        // inner type 2 + correction
        let inner = self.inner.as_mut().expect("points set");
        inner.execute(&centered, out)?;
        let it = inner.timings();
        self.timings.fft = it.fft;
        self.timings.deconv = it.deconv;
        let t2 = self.dev.clock();
        for (z, &c) in out.iter_mut().zip(self.corr.iter()) {
            *z = z.scale(T::from_f64(c));
        }
        self.dev.bulk_op(
            "t3_correct",
            self.n_targets * cb,
            self.n_targets * cb,
            self.n_targets as f64 * 2.0,
            prec,
        );
        self.timings.d2h = it.d2h;
        let _ = t2;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn direct(
        x: &Points<f64>,
        cs: &[Complex<f64>],
        s: &Points<f64>,
        iflag: i32,
    ) -> Vec<Complex<f64>> {
        (0..s.len())
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &c) in cs.iter().enumerate().take(x.len()) {
                    let mut phase = 0.0;
                    for i in 0..x.dim {
                        phase += s.coord(i, k) * x.coord(i, j);
                    }
                    acc += c * Complex::cis(iflag as f64 * phase);
                }
                acc
            })
            .collect()
    }

    fn random_pts(dim: usize, n: usize, hw: f64, seed: u64) -> Points<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coords = [Vec::new(), Vec::new(), Vec::new()];
        for coord in coords.iter_mut().take(dim) {
            *coord = (0..n).map(|_| rng.random_range(-hw..hw)).collect();
        }
        Points { coords, dim }
    }

    #[test]
    fn gpu_type3_2d_matches_direct() {
        let eps = 1e-8;
        let x = random_pts(2, 180, 2.0, 1);
        let s = random_pts(2, 140, 10.0, 2);
        let cs: Vec<Complex<f64>> = (0..180).map(|j| c((j as f64).sin(), 0.5)).collect();
        let dev = Device::v100();
        let mut plan = GpuType3Plan::<f64>::new(2, 1, eps, GpuOpts::default(), &dev).unwrap();
        plan.set_pts(&x, &s).unwrap();
        let mut out = vec![Complex::ZERO; 140];
        plan.execute(&cs, &mut out).unwrap();
        let want = direct(&x, &cs, &s, 1);
        let err = rel_l2(&out, &want);
        assert!(err < 50.0 * eps, "err={err}");
        // timings recorded and device clock advanced
        assert!(plan.timings().spread_interp > 0.0);
        assert!(plan.timings().fft > 0.0);
    }

    #[test]
    fn gpu_type3_agrees_with_cpu_type3() {
        let eps = 1e-9;
        let x = random_pts(2, 120, 1.5, 3);
        let s = random_pts(2, 110, 8.0, 4);
        let cs: Vec<Complex<f64>> = (0..120).map(|j| c(1.0 / (j + 1) as f64, -0.25)).collect();
        let dev = Device::v100();
        let mut gp = GpuType3Plan::<f64>::new(2, -1, eps, GpuOpts::default(), &dev).unwrap();
        gp.set_pts(&x, &s).unwrap();
        let mut go = vec![Complex::ZERO; 110];
        gp.execute(&cs, &mut go).unwrap();
        let mut cp = finufft_cpu::Type3Plan::<f64>::new(2, -1, eps).unwrap();
        cp.set_pts(&x, &s, eps).unwrap();
        let mut co = vec![Complex::ZERO; 110];
        cp.execute(&cs, &mut co).unwrap();
        assert!(rel_l2(&go, &co) < 1e-10);
    }

    #[test]
    fn gpu_type3_3d_and_reuse() {
        let eps = 1e-5;
        let x = random_pts(3, 90, 1.0, 5);
        let s = random_pts(3, 80, 5.0, 6);
        let dev = Device::v100();
        let mut plan = GpuType3Plan::<f32>::new(3, 1, eps, GpuOpts::default(), &dev).unwrap();
        let x32 = Points::<f32> {
            coords: [
                x.coords[0].iter().map(|&v| v as f32).collect(),
                x.coords[1].iter().map(|&v| v as f32).collect(),
                x.coords[2].iter().map(|&v| v as f32).collect(),
            ],
            dim: 3,
        };
        let s32 = Points::<f32> {
            coords: [
                s.coords[0].iter().map(|&v| v as f32).collect(),
                s.coords[1].iter().map(|&v| v as f32).collect(),
                s.coords[2].iter().map(|&v| v as f32).collect(),
            ],
            dim: 3,
        };
        plan.set_pts(&x32, &s32).unwrap();
        for seed in [7u64, 8] {
            let mut rng = StdRng::seed_from_u64(seed);
            let cs64: Vec<Complex<f64>> = (0..90)
                .map(|_| c(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
                .collect();
            let cs: Vec<Complex<f32>> = cs64.iter().map(|z| z.cast()).collect();
            let mut out = vec![Complex::<f32>::ZERO; 80];
            plan.execute(&cs, &mut out).unwrap();
            let want = direct(&x, &cs64, &s, 1);
            assert!(rel_l2(&out, &want) < 1e-3, "seed {seed}");
        }
    }
}
