//! The cuFINUFFT plan: "plan, setpts, execute, destroy" on the simulated
//! GPU, mirroring `cufinufft_makeplan` / `cufinufft_setpts` /
//! `cufinufft_execute` / `cufinufft_destroy` (destroy = `Drop`).

use crate::bins::{build_subproblems, gpu_bin_sort, GpuBinSort, Subproblem};
use crate::interp::interp_gm;
use crate::opts::{default_bin_size, resolve_spread_method, GpuOpts, Method, ModeOrder};
use crate::spread::{spread_gm, spread_sm, PtsRef};
use gpu_sim::{Device, GpuBuffer, Precision};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::{freq_to_bin, freqs, Shape};
use nufft_common::smooth::fine_grid_size;
use nufft_common::workload::Points;
use nufft_common::TransformType;
use nufft_fft::Direction;
use nufft_kernels::deconv::correction_rows;
use nufft_kernels::EsKernel;

/// Simulated-device time spent in each stage (seconds). The aggregates
/// match the paper's reporting:
/// * "exec" = spread/interp + FFT + deconvolution (re-usable transform);
/// * "total" = exec + point preprocessing (sort, subproblem setup);
/// * "total+mem" = total + allocation + all host-device transfers.
#[derive(Copy, Clone, Debug, Default)]
pub struct GpuStageTimings {
    pub alloc: f64,
    pub h2d_pts: f64,
    pub sort: f64,
    pub h2d_data: f64,
    pub spread_interp: f64,
    pub fft: f64,
    pub deconv: f64,
    pub d2h: f64,
}

impl GpuStageTimings {
    pub fn exec(&self) -> f64 {
        self.spread_interp + self.fft + self.deconv
    }

    pub fn total(&self) -> f64 {
        self.exec() + self.sort
    }

    pub fn total_mem(&self) -> f64 {
        self.total() + self.alloc + self.h2d_pts + self.h2d_data + self.d2h
    }
}

struct PtsState<T: Real> {
    bufs: [GpuBuffer<T>; 3],
    m: usize,
    dim: usize,
    /// Bin sort (present for GM-sort and SM; absent for plain GM).
    sort: Option<GpuBinSort>,
    /// SM subproblem list (empty unless the SM method is active).
    subproblems: Vec<Subproblem>,
}

/// A cuFINUFFT plan bound to a device.
pub struct Plan<T: Real> {
    ttype: TransformType,
    modes: Shape,
    fine: Shape,
    iflag: i32,
    kernel: EsKernel,
    opts: GpuOpts,
    bin_size: [usize; 3],
    /// Resolved spreading method for type 1.
    spread_method: Method,
    dev: Device,
    fft: gpu_fft::GpuFftPlan<T>,
    corr: [Vec<f64>; 3],
    d_grid: GpuBuffer<Complex<T>>,
    d_in: GpuBuffer<Complex<T>>,
    d_out: GpuBuffer<Complex<T>>,
    pts: Option<PtsState<T>>,
    timings: GpuStageTimings,
}

fn oom(e: gpu_sim::OomError) -> NufftError {
    NufftError::DeviceOom {
        requested: e.requested,
        available: e.available,
    }
}

impl<T: Real> Plan<T> {
    /// Create a plan (cufinufft_makeplan). Fine-grid sizing, kernel
    /// selection and correction factors follow Sec. II; the spreading
    /// method is resolved per Sec. III / Remark 2.
    pub fn new(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        eps: f64,
        opts: GpuOpts,
        dev: &Device,
    ) -> Result<Self> {
        if modes.is_empty() || modes.len() > 3 {
            return Err(NufftError::BadDim(modes.len()));
        }
        if modes.iter().any(|&n| n == 0) {
            return Err(NufftError::BadModes("zero-size mode dimension".into()));
        }
        let kernel = if (opts.upsampfac - 2.0).abs() < 1e-12 {
            EsKernel::for_tolerance(eps, T::IS_DOUBLE)?
        } else {
            EsKernel::for_tolerance_sigma(eps, opts.upsampfac, T::IS_DOUBLE)?
        };
        let modes = Shape::from_slice(modes);
        let fine = modes.map(|_, n| fine_grid_size(n, opts.upsampfac, kernel.w));
        let bin_size = opts.bin_size.unwrap_or_else(|| default_bin_size(modes.dim));
        let cb = std::mem::size_of::<Complex<T>>();
        let spread_method = resolve_spread_method(
            opts.method,
            bin_size,
            modes.dim,
            kernel.w,
            cb,
            opts.shared_mem_budget.min(dev.props().shared_mem_per_block),
        )?;
        let corr = correction_rows(&kernel, modes, fine);
        let fft = gpu_fft::GpuFftPlan::new(fine);
        let t0 = dev.clock();
        let d_grid = dev.alloc("fine_grid", fine.total()).map_err(oom)?;
        let d_in = dev.alloc("in", 0).map_err(oom)?;
        let d_out = dev.alloc("out", 0).map_err(oom)?;
        let mut timings = GpuStageTimings::default();
        timings.alloc = dev.clock() - t0;
        Ok(Plan {
            ttype,
            modes,
            fine,
            iflag: if iflag >= 0 { 1 } else { -1 },
            kernel,
            opts,
            bin_size,
            spread_method,
            dev: dev.clone(),
            fft,
            corr,
            d_grid,
            d_in,
            d_out,
            pts: None,
            timings,
        })
    }

    pub fn modes(&self) -> Shape {
        self.modes
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.fine
    }

    pub fn kernel(&self) -> &EsKernel {
        &self.kernel
    }

    /// The spreading method actually in use for type-1 transforms.
    pub fn spread_method(&self) -> Method {
        self.spread_method
    }

    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Per-stage simulated timings accumulated by the most recent
    /// `set_pts` + `execute` pair.
    pub fn timings(&self) -> GpuStageTimings {
        self.timings
    }

    pub fn num_points(&self) -> usize {
        self.pts.as_ref().map_or(0, |p| p.m)
    }

    /// Register nonuniform points (cufinufft_setpts): transfer to the
    /// device, bin-sort, and build SM subproblems if applicable.
    pub fn set_pts(&mut self, pts: &Points<T>) -> Result<()> {
        if pts.dim != self.modes.dim {
            return Err(NufftError::BadDim(pts.dim));
        }
        let m = pts.len();
        for i in 0..pts.dim {
            if pts.coords[i].len() != m {
                return Err(NufftError::LengthMismatch {
                    expected: m,
                    got: pts.coords[i].len(),
                });
            }
            for (j, &v) in pts.coords[i].iter().enumerate() {
                if !v.is_finite() {
                    return Err(NufftError::BadPoint {
                        index: j,
                        value: v.to_f64(),
                    });
                }
            }
        }
        let t0 = self.dev.clock();
        let mut bufs = [
            self.dev.alloc("pts_x", m).map_err(oom)?,
            self.dev.alloc("pts_y", if pts.dim >= 2 { m } else { 0 }).map_err(oom)?,
            self.dev.alloc("pts_z", if pts.dim >= 3 { m } else { 0 }).map_err(oom)?,
        ];
        let t_alloc = self.dev.clock() - t0;
        let t1 = self.dev.clock();
        for i in 0..pts.dim {
            self.dev.memcpy_htod(&mut bufs[i], &pts.coords[i]);
        }
        let t_h2d = self.dev.clock() - t1;
        let t2 = self.dev.clock();
        let needs_sort = !(self.ttype == TransformType::Type1 && self.spread_method == Method::Gm)
            && !(self.ttype == TransformType::Type2 && self.spread_method == Method::Gm);
        let sort = needs_sort.then(|| gpu_bin_sort(&self.dev, pts, self.fine, self.bin_size));
        let subproblems = if self.ttype == TransformType::Type1 && self.spread_method == Method::Sm
        {
            build_subproblems(&self.dev, sort.as_ref().expect("SM requires sorting"), self.opts.msub)
        } else {
            Vec::new()
        };
        let t_sort = self.dev.clock() - t2;
        self.timings.alloc += t_alloc;
        self.timings.h2d_pts = t_h2d;
        self.timings.sort = t_sort;
        self.pts = Some(PtsState {
            bufs,
            m,
            dim: pts.dim,
            sort,
            subproblems,
        });
        Ok(())
    }

    fn precision() -> Precision {
        if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        }
    }

    /// Execute the transform (cufinufft_execute). Type 1: `input` = M
    /// strengths, `output` = N modes; type 2 swaps the roles. Host-device
    /// transfers of input/output are included and reported separately in
    /// [`GpuStageTimings`].
    pub fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = state.m;
        let n = self.modes.total();
        let (want_in, want_out) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != want_in {
            return Err(NufftError::LengthMismatch {
                expected: want_in,
                got: input.len(),
            });
        }
        if output.len() != want_out {
            return Err(NufftError::LengthMismatch {
                expected: want_out,
                got: output.len(),
            });
        }
        // (re)allocate IO buffers on first use or size change
        let t0 = self.dev.clock();
        if self.d_in.len() != want_in {
            self.d_in = self.dev.alloc("in", want_in).map_err(oom)?;
        }
        if self.d_out.len() != want_out {
            self.d_out = self.dev.alloc("out", want_out).map_err(oom)?;
        }
        let alloc_extra = self.dev.clock() - t0;
        self.timings.alloc += alloc_extra;
        let t1 = self.dev.clock();
        self.dev.memcpy_htod(&mut self.d_in, input);
        self.timings.h2d_data = self.dev.clock() - t1;

        match self.ttype {
            TransformType::Type1 => self.exec_type1()?,
            TransformType::Type2 => self.exec_type2()?,
        }

        let t2 = self.dev.clock();
        self.dev.memcpy_dtoh(output, &self.d_out);
        self.timings.d2h = self.dev.clock() - t2;
        Ok(())
    }

    /// Execute `n_transf` stacked transforms sharing the same nonuniform
    /// points (the C API's `ntransf` batching). `input` and `output` hold
    /// the vectors concatenated; sorting is shared, and per-vector
    /// spread/FFT/deconvolve stages accumulate into the timing report —
    /// the amortization the paper's "exec" timing captures.
    pub fn execute_batch(
        &mut self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        n_transf: usize,
    ) -> Result<()> {
        if n_transf == 0 {
            return Err(NufftError::BadOptions("n_transf must be positive".into()));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = state.m;
        let n = self.modes.total();
        let (in_per, out_per) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != in_per * n_transf {
            return Err(NufftError::LengthMismatch {
                expected: in_per * n_transf,
                got: input.len(),
            });
        }
        if output.len() != out_per * n_transf {
            return Err(NufftError::LengthMismatch {
                expected: out_per * n_transf,
                got: output.len(),
            });
        }
        let mut acc = GpuStageTimings::default();
        acc.alloc = self.timings.alloc;
        acc.h2d_pts = self.timings.h2d_pts;
        acc.sort = self.timings.sort;
        for t in 0..n_transf {
            self.execute(
                &input[t * in_per..(t + 1) * in_per],
                &mut output[t * out_per..(t + 1) * out_per],
            )?;
            let lt = self.timings;
            acc.h2d_data += lt.h2d_data;
            acc.spread_interp += lt.spread_interp;
            acc.fft += lt.fft;
            acc.deconv += lt.deconv;
            acc.d2h += lt.d2h;
        }
        self.timings = acc;
        Ok(())
    }

    /// Spread-only entry point (FINUFFT's `spreadinterponly` use case,
    /// used by particle codes \[13\]\[14\]): spread the strengths onto the
    /// plan's fine grid and return the grid contents, skipping the FFT
    /// and deconvolution. The plan must be type 1.
    pub fn spread_only(&mut self, strengths: &[Complex<T>], grid_out: &mut [Complex<T>]) -> Result<()> {
        if self.ttype != TransformType::Type1 {
            return Err(NufftError::BadOptions(
                "spread_only requires a type 1 plan".into(),
            ));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        if strengths.len() != state.m {
            return Err(NufftError::LengthMismatch {
                expected: state.m,
                got: strengths.len(),
            });
        }
        if grid_out.len() != self.fine.total() {
            return Err(NufftError::LengthMismatch {
                expected: self.fine.total(),
                got: grid_out.len(),
            });
        }
        if self.d_in.len() != state.m {
            self.d_in = self.dev.alloc("in", state.m).map_err(oom)?;
        }
        self.dev.memcpy_htod(&mut self.d_in, strengths);
        let t0 = self.dev.clock();
        self.d_grid.as_mut_slice().iter_mut().for_each(|z| *z = Complex::ZERO);
        let cb = std::mem::size_of::<Complex<T>>();
        self.dev
            .bulk_op("memset_grid", 0, self.fine.total() * cb, 0.0, Self::precision());
        self.run_spread();
        self.timings.spread_interp = self.dev.clock() - t0;
        self.dev.memcpy_dtoh(grid_out, &self.d_grid);
        Ok(())
    }

    /// Interpolation-only entry point: evaluate the given fine-grid data
    /// at the plan's points, skipping pre-correction and the FFT. The
    /// plan must be type 2.
    pub fn interp_only(&mut self, grid_in: &[Complex<T>], out: &mut [Complex<T>]) -> Result<()> {
        if self.ttype != TransformType::Type2 {
            return Err(NufftError::BadOptions(
                "interp_only requires a type 2 plan".into(),
            ));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        if grid_in.len() != self.fine.total() {
            return Err(NufftError::LengthMismatch {
                expected: self.fine.total(),
                got: grid_in.len(),
            });
        }
        if out.len() != state.m {
            return Err(NufftError::LengthMismatch {
                expected: state.m,
                got: out.len(),
            });
        }
        self.dev.memcpy_htod(&mut self.d_grid, grid_in);
        if self.d_out.len() != state.m {
            self.d_out = self.dev.alloc("out", state.m).map_err(oom)?;
        }
        let t0 = self.dev.clock();
        self.run_interp();
        self.timings.spread_interp = self.dev.clock() - t0;
        self.dev.memcpy_dtoh(out, &self.d_out);
        Ok(())
    }

    /// Batched execution with copy/compute overlap on two streams, the
    /// real library's batching strategy: the host-device transfer of
    /// batch `i+1` hides under the kernels of batch `i`. Returns the
    /// pipelined wall-clock time; numerical results are identical to
    /// [`Plan::execute_batch`].
    pub fn execute_batch_pipelined(
        &mut self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        n_transf: usize,
    ) -> Result<f64> {
        use gpu_sim::{EngineState, Stream, StreamOp};
        if n_transf == 0 {
            return Err(NufftError::BadOptions("n_transf must be positive".into()));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = state.m;
        let n = self.modes.total();
        let (in_per, out_per) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != in_per * n_transf || output.len() != out_per * n_transf {
            return Err(NufftError::LengthMismatch {
                expected: in_per * n_transf,
                got: input.len(),
            });
        }
        // snapshot the clock: the batch members run serially below (for
        // exact numerics and per-stage durations), and the stream model
        // re-times those durations with copy/compute overlap, all
        // relative to this base
        let base = self.dev.clock();
        let mut engines = EngineState::default();
        let mut streams = [Stream::new(&self.dev), Stream::new(&self.dev)];
        for t in 0..n_transf {
            self.execute(
                &input[t * in_per..(t + 1) * in_per],
                &mut output[t * out_per..(t + 1) * out_per],
            )?;
            let lt = self.timings;
            // queue the measured durations on alternating streams
            let s = &mut streams[t % 2];
            s.enqueue(&mut engines, StreamOp::TransferH2D, lt.h2d_data);
            s.enqueue(&mut engines, StreamOp::Compute, lt.exec());
            s.enqueue(&mut engines, StreamOp::TransferD2H, lt.d2h);
        }
        let wall = streams.iter().map(|s| s.head()).fold(base, f64::max) - base;
        Ok(wall)
    }

    /// Dispatch the configured spreading method from `d_in` into
    /// `d_grid` (the grid must already be zeroed and priced).
    fn run_spread(&mut self) {
        let state = self.pts.as_ref().expect("points checked");
        let pr = PtsRef {
            coords: [
                state.bufs[0].as_slice(),
                state.bufs[1].as_slice(),
                state.bufs[2].as_slice(),
            ],
            dim: state.dim,
        };
        let strengths = self.d_in.as_slice();
        let grid = self.d_grid.as_mut_slice();
        match self.spread_method {
            Method::Gm => {
                let natural: Vec<u32> = (0..state.m as u32).collect();
                spread_gm(
                    &self.dev,
                    "spread_GM",
                    &self.kernel,
                    self.fine,
                    &pr,
                    strengths,
                    &natural,
                    grid,
                    self.opts.threads_per_block,
                    1.0,
                );
            }
            Method::GmSort => {
                let sort = state.sort.as_ref().expect("GM-sort requires sorting");
                spread_gm(
                    &self.dev,
                    "spread_GM-sort",
                    &self.kernel,
                    self.fine,
                    &pr,
                    strengths,
                    &sort.perm,
                    grid,
                    self.opts.threads_per_block,
                    1.0,
                );
            }
            Method::Sm => {
                let sort = state.sort.as_ref().expect("SM requires sorting");
                spread_sm(
                    &self.dev,
                    &self.kernel,
                    self.fine,
                    &pr,
                    strengths,
                    &sort.perm,
                    &sort.layout,
                    &state.subproblems,
                    grid,
                );
            }
            Method::Auto => unreachable!("method resolved at plan time"),
        }
    }

    fn exec_type1(&mut self) -> Result<()> {
        // memset the fine grid
        let cb = std::mem::size_of::<Complex<T>>();
        let t0 = self.dev.clock();
        self.d_grid.as_mut_slice().iter_mut().for_each(|z| *z = Complex::ZERO);
        self.dev
            .bulk_op("memset_grid", 0, self.fine.total() * cb, 0.0, Self::precision());
        self.run_spread();
        self.timings.spread_interp = self.dev.clock() - t0;
        // FFT
        let t1 = self.dev.clock();
        self.fft
            .execute(&self.dev, &mut self.d_grid, Direction::from_sign(self.iflag));
        self.timings.fft = self.dev.clock() - t1;
        // deconvolve + truncate
        let t2 = self.dev.clock();
        deconv_type1(
            &self.corr,
            self.modes,
            self.fine,
            self.opts.modeord,
            self.d_grid.as_slice(),
            self.d_out.as_mut_slice(),
        );
        self.dev.bulk_op(
            "deconvolve",
            self.modes.total() * cb,
            self.modes.total() * cb,
            self.modes.total() as f64 * 8.0,
            Self::precision(),
        );
        self.timings.deconv = self.dev.clock() - t2;
        Ok(())
    }

    fn exec_type2(&mut self) -> Result<()> {
        let cb = std::mem::size_of::<Complex<T>>();
        // pre-correct + zero-pad
        let t0 = self.dev.clock();
        self.d_grid.as_mut_slice().iter_mut().for_each(|z| *z = Complex::ZERO);
        self.dev
            .bulk_op("memset_grid", 0, self.fine.total() * cb, 0.0, Self::precision());
        deconv_type2(
            &self.corr,
            self.modes,
            self.fine,
            self.opts.modeord,
            self.d_in.as_slice(),
            self.d_grid.as_mut_slice(),
        );
        self.dev.bulk_op(
            "precorrect",
            self.modes.total() * cb,
            self.modes.total() * cb,
            self.modes.total() as f64 * 8.0,
            Self::precision(),
        );
        self.timings.deconv = self.dev.clock() - t0;
        // FFT
        let t1 = self.dev.clock();
        self.fft
            .execute(&self.dev, &mut self.d_grid, Direction::from_sign(self.iflag));
        self.timings.fft = self.dev.clock() - t1;
        // interpolate
        let t2 = self.dev.clock();
        self.run_interp();
        self.timings.spread_interp = self.dev.clock() - t2;
        Ok(())
    }

    /// Dispatch interpolation from `d_grid` into `d_out`.
    fn run_interp(&mut self) {
        let state = self.pts.as_ref().expect("points checked");
        let pr = PtsRef {
            coords: [
                state.bufs[0].as_slice(),
                state.bufs[1].as_slice(),
                state.bufs[2].as_slice(),
            ],
            dim: state.dim,
        };
        let out = self.d_out.as_mut_slice();
        match (&state.sort, self.spread_method) {
            (_, Method::Gm) | (None, _) => {
                let natural: Vec<u32> = (0..state.m as u32).collect();
                interp_gm(
                    &self.dev,
                    "interp_GM",
                    &self.kernel,
                    self.fine,
                    &pr,
                    self.d_grid.as_slice(),
                    &natural,
                    out,
                    self.opts.threads_per_block,
                );
            }
            (Some(sort), _) => {
                interp_gm(
                    &self.dev,
                    "interp_GM-sort",
                    &self.kernel,
                    self.fine,
                    &pr,
                    self.d_grid.as_slice(),
                    &sort.perm,
                    out,
                    self.opts.threads_per_block,
                );
            }
        }
    }
}

/// Caller-array index of mode `(j1,j2,j3)` (ascending-frequency
/// enumeration indices) under the plan's mode ordering.
#[inline]
fn mode_index(modes: Shape, modeord: ModeOrder, j1: usize, j2: usize, j3: usize) -> usize {
    match modeord {
        ModeOrder::Centered => j1 + modes.n[0] * (j2 + modes.n[1] * j3),
        ModeOrder::Fft => {
            // j enumerates k = -N/2 + j; FFT order stores k at k mod N
            let f = |j: usize, n: usize| (j + n - n / 2) % n;
            f(j1, modes.n[0])
                + modes.n[0] * (f(j2, modes.n[1]) + modes.n[1] * f(j3, modes.n[2]))
        }
    }
}

/// Type 1 step 3 on device data (host-functional).
fn deconv_type1<T: Real>(
    corr: &[Vec<f64>; 3],
    modes: Shape,
    fine: Shape,
    modeord: ModeOrder,
    grid: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
        .enumerate()
        .map(|(j, k)| (freq_to_bin(k, fine.n[0]), corr[0][j]))
        .collect();
    for (j3, k3) in freqs(modes.n[2]).enumerate() {
        let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
        let p3 = corr[2][j3];
        for (j2, k2) in freqs(modes.n[1]).enumerate() {
            let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
            let p23 = p3 * corr[1][j2];
            for (j1, (b1, p1)) in k1s.iter().enumerate() {
                out[mode_index(modes, modeord, j1, j2, j3)] =
                    grid[b2 + b1].scale(T::from_f64(p1 * p23));
            }
        }
    }
}

/// Type 2 step 1 on device data (host-functional). `grid` must be zeroed.
fn deconv_type2<T: Real>(
    corr: &[Vec<f64>; 3],
    modes: Shape,
    fine: Shape,
    modeord: ModeOrder,
    input: &[Complex<T>],
    grid: &mut [Complex<T>],
) {
    let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
        .enumerate()
        .map(|(j, k)| (freq_to_bin(k, fine.n[0]), corr[0][j]))
        .collect();
    for (j3, k3) in freqs(modes.n[2]).enumerate() {
        let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
        let p3 = corr[2][j3];
        for (j2, k2) in freqs(modes.n[1]).enumerate() {
            let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
            let p23 = p3 * corr[1][j2];
            for (j1, (b1, p1)) in k1s.iter().enumerate() {
                grid[b2 + b1] =
                    input[mode_index(modes, modeord, j1, j2, j3)].scale(T::from_f64(p1 * p23));
            }
        }
    }
}
