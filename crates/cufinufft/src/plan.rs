//! The cuFINUFFT plan: "plan, setpts, execute, destroy" on the simulated
//! GPU, mirroring `cufinufft_makeplan` / `cufinufft_setpts` /
//! `cufinufft_execute` / `cufinufft_destroy` (destroy = `Drop`).

use crate::bins::{build_subproblems, gpu_bin_sort, GpuBinSort, Subproblem};
use crate::interp::interp_batch;
use crate::opts::{default_bin_size, resolve_spread_method, GpuOpts, Method, ModeOrder, Tuning};
use crate::recovery::{with_retry, RecoveryReport};
use crate::spread::{spread_batch, PtsRef, SpreadInputs};
use gpu_sim::{Device, GpuBuffer, HazardMode, HazardReport, Lane, Precision, Trace, TraceReport};
use nufft_common::complex::Complex;
use nufft_common::error::{NufftError, Result};
use nufft_common::real::Real;
use nufft_common::shape::{freq_to_bin, freqs, Shape};
use nufft_common::smooth::{fine_grid_size_with, FineSizing};
use nufft_common::spec::{Precision as SpecPrecision, TransformSpec};
use nufft_common::workload::Points;
use nufft_common::TransformType;
use nufft_fft::Direction;
use nufft_kernels::deconv::correction_rows;
use nufft_kernels::{EsKernel, EvalKernel};

/// Lowercase metric tag for a (resolved) spread method, used to key the
/// per-stage duration histograms (`stage.<stage>.<method>`).
fn method_tag(m: Method) -> &'static str {
    match m {
        Method::Auto => "auto",
        Method::Gm => "gm",
        Method::GmSort => "gm_sort",
        Method::Sm => "sm",
    }
}

/// Simulated-device time spent in each stage (seconds). The aggregates
/// match the paper's reporting:
/// * "exec" = spread/interp + FFT + deconvolution (re-usable transform);
/// * "total" = exec + point preprocessing (sort, subproblem setup);
/// * "total+mem" = total + allocation + all host-device transfers.
///
/// Batched executions ([`Plan::execute_many`]) accumulate the per-vector
/// stages over all transforms and additionally report the pipelined wall
/// time of the data-movement + compute region (`pipe_wall`), which is
/// shorter than the serial sum whenever transfers hid under compute.
#[derive(Copy, Clone, Debug, Default)]
pub struct GpuStageTimings {
    pub alloc: f64,
    pub h2d_pts: f64,
    pub sort: f64,
    pub h2d_data: f64,
    pub spread_interp: f64,
    pub fft: f64,
    pub deconv: f64,
    pub d2h: f64,
    /// Number of transforms covered by the most recent execution (1 for
    /// a plain `execute`; B for `execute_many`).
    pub batches: usize,
    /// Stream-scheduled wall time of the per-vector H2D -> spread/FFT/
    /// deconv -> D2H region. Zero when the execution was serial.
    pub pipe_wall: f64,
}

impl GpuStageTimings {
    pub fn exec(&self) -> f64 {
        self.spread_interp + self.fft + self.deconv
    }

    pub fn total(&self) -> f64 {
        self.exec() + self.sort
    }

    /// Serial cost of the per-vector region: what the same work costs on
    /// one stream with no overlap.
    pub fn batch_serial(&self) -> f64 {
        self.h2d_data + self.exec() + self.d2h
    }

    /// End-to-end cost including setup, allocation, and host-device
    /// transfers. For pipelined batches the transfer/compute region is
    /// priced at its overlapped wall time rather than the serial sum.
    pub fn total_mem(&self) -> f64 {
        let region = if self.pipe_wall > 0.0 {
            self.pipe_wall
        } else {
            self.batch_serial()
        };
        self.sort + self.alloc + self.h2d_pts + region
    }

    /// Time hidden by transfer/compute overlap in the last execution
    /// (zero for serial executions).
    pub fn overlap_saving(&self) -> f64 {
        if self.pipe_wall > 0.0 {
            (self.batch_serial() - self.pipe_wall).max(0.0)
        } else {
            0.0
        }
    }

    /// Average exec-stage time per transform in the batch.
    pub fn per_transform_exec(&self) -> f64 {
        self.exec() / self.batches.max(1) as f64
    }
}

/// Per-chunk detail of one [`Plan::execute_many`] call. Times are
/// relative to the start of the pipelined region.
#[derive(Copy, Clone, Debug, Default)]
pub struct ChunkTiming {
    /// Transforms in this chunk.
    pub ntransf: usize,
    /// Serial durations of the chunk's three pipeline stages.
    pub h2d: f64,
    pub exec: f64,
    pub d2h: f64,
    /// Scheduled start of the chunk's H2D (relative seconds).
    pub start: f64,
    /// Scheduled completion of the chunk's D2H (relative seconds).
    pub done: f64,
}

/// Batch-level report of the most recent [`Plan::execute_many`]:
/// per-chunk schedules plus the serial-vs-pipelined totals.
#[derive(Clone, Debug, Default)]
pub struct BatchTimings {
    pub chunks: Vec<ChunkTiming>,
    /// Sum of all stage durations (one-stream cost).
    pub serial: f64,
    /// Overlapped wall time of the whole region.
    pub wall: f64,
}

impl BatchTimings {
    /// Time hidden by the two-stream pipeline.
    pub fn saving(&self) -> f64 {
        (self.serial - self.wall).max(0.0)
    }
}

struct PtsState<T: Real> {
    bufs: [GpuBuffer<T>; 3],
    m: usize,
    dim: usize,
    /// Bin sort (present for GM-sort and SM; absent for plain GM).
    sort: Option<GpuBinSort>,
    /// SM subproblem list (empty unless the SM method is active).
    subproblems: Vec<Subproblem>,
}

impl<T: Real> PtsState<T> {
    /// Borrowed view handed to the spread/interp dispatchers
    /// ([`spread_batch`] / [`interp_batch`]), so those can live next to
    /// the kernels while the plan keeps ownership of the buffers.
    fn inputs(&self) -> SpreadInputs<'_, T> {
        SpreadInputs {
            pts: PtsRef {
                coords: [
                    self.bufs[0].as_slice(),
                    self.bufs[1].as_slice(),
                    self.bufs[2].as_slice(),
                ],
                dim: self.dim,
            },
            sort_perm: self.sort.as_ref().map(|s| s.perm.as_slice()),
            layout: self.sort.as_ref().map(|s| &s.layout),
            subproblems: &self.subproblems,
        }
    }
}

/// A cuFINUFFT plan bound to a device.
pub struct Plan<T: Real> {
    ttype: TransformType,
    modes: Shape,
    fine: Shape,
    iflag: i32,
    kernel: EsKernel,
    /// Kernel evaluator the spread/interp hot paths run with: the exact
    /// ES kernel or its Horner/Chebyshev fast path, resolved once at
    /// plan time from `Tuning::kernel_eval` (see DESIGN.md §5l).
    eval_kernel: EvalKernel,
    opts: GpuOpts,
    bin_size: [usize; 3],
    /// Resolved spreading method for type 1.
    spread_method: Method,
    /// Declared batch width (builder hint); `execute_many` accepts any
    /// width, but declaring it up front pre-sizes the batch grid.
    ntransf: usize,
    dev: Device,
    fft: gpu_fft::GpuFftPlan<T>,
    corr: [Vec<f64>; 3],
    d_grid: GpuBuffer<Complex<T>>,
    d_in: GpuBuffer<Complex<T>>,
    d_out: GpuBuffer<Complex<T>>,
    /// Chunk-sized staging buffers for `execute_many`, allocated lazily
    /// (or up front when the builder declares `ntransf > 1`).
    d_in_batch: Option<GpuBuffer<Complex<T>>>,
    d_grid_batch: Option<GpuBuffer<Complex<T>>>,
    d_out_batch: Option<GpuBuffer<Complex<T>>>,
    pts: Option<PtsState<T>>,
    timings: GpuStageTimings,
    batch: BatchTimings,
    recovery: RecoveryReport,
    /// Sticky chunk-size override installed by OOM-driven shrinking, so
    /// later batches skip the doomed allocation sizes.
    shrunk_chunk: Option<usize>,
}

/// Fluent constructor for [`Plan`]: transform type and mode dimensions
/// are mandatory, everything else has a sensible default.
///
/// ```ignore
/// let plan = Plan::<f32>::builder(TransformType::Type1, &[64, 64])
///     .eps(1e-5)
///     .iflag(-1)
///     .method(Method::Sm)
///     .ntransf(8)
///     .build(&dev)?;
/// ```
pub struct PlanBuilder<T: Real> {
    ttype: TransformType,
    modes: Vec<usize>,
    eps: f64,
    iflag: i32,
    opts: GpuOpts,
    ntransf: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Real> PlanBuilder<T> {
    /// Build a plan from a canonical [`TransformSpec`] — the same value
    /// the serving layer uses as its request API and plan-cache key, so
    /// "what was requested" and "what the plan computes" cannot drift
    /// apart. The spec is validated here and its precision must match
    /// `T`; tuning and operational knobs (tracing, recovery, ...) stay
    /// at their defaults and can still be set fluently afterwards.
    ///
    /// ```ignore
    /// let spec = TransformSpec::type1(&[64, 64]).eps(1e-5).precision(Precision::F32);
    /// let plan = PlanBuilder::<f32>::from_spec(&spec)?.tuning(tuning).build(&dev)?;
    /// ```
    pub fn from_spec(spec: &TransformSpec) -> Result<Self> {
        spec.validate()?;
        if !spec.matches_precision::<T>() {
            return Err(NufftError::BadSpec(format!(
                "spec requests {} but the plan is being built for {}",
                spec.precision,
                SpecPrecision::of::<T>(),
            )));
        }
        Ok(Self::new(spec.ttype, &spec.modes)
            .eps(spec.eps)
            .iflag(spec.iflag)
            .method(spec.method)
            .modeord(spec.modeord)
            .fine_sizing(spec.fine_sizing))
    }

    /// [`from_spec`](Self::from_spec) with the spreading method
    /// overridden — the replan hook the serve layer's brownout mode
    /// uses to degrade a faulting spec (e.g. SM → GM-sort) without
    /// mutating the caller's spec or the cache key it hashes to.
    pub fn from_spec_with_method(spec: &TransformSpec, method: Method) -> Result<Self> {
        Ok(Self::from_spec(spec)?.method(method))
    }

    fn new(ttype: TransformType, modes: &[usize]) -> Self {
        PlanBuilder {
            ttype,
            modes: modes.to_vec(),
            eps: 1e-6,
            // the conventional sign: type 1 accumulates with e^{-ikx},
            // type 2 evaluates with e^{+ikx}
            iflag: match ttype {
                TransformType::Type1 => -1,
                TransformType::Type2 => 1,
            },
            opts: GpuOpts::default(),
            ntransf: 1,
            _marker: std::marker::PhantomData,
        }
    }

    /// Requested tolerance (default `1e-6`).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sign of the imaginary unit in the exponential (normalized to ±1).
    pub fn iflag(mut self, iflag: i32) -> Self {
        self.iflag = iflag;
        self
    }

    /// Replace the whole option block at once.
    pub fn opts(mut self, opts: GpuOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Spreading method (default [`Method::Auto`]).
    pub fn method(mut self, method: Method) -> Self {
        self.opts.method = method;
        self
    }

    /// Output mode ordering (default [`ModeOrder::Centered`]).
    pub fn modeord(mut self, modeord: ModeOrder) -> Self {
        self.opts.modeord = modeord;
        self
    }

    /// Replace the whole tuning block at once (see [`Tuning`]); the
    /// per-knob setters below are thin shims over its fields.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.opts.tuning = tuning;
        self
    }

    /// Override the bin size used for sorting and SM subproblems.
    pub fn bin_size(mut self, bin_size: [usize; 3]) -> Self {
        self.opts.tuning.bin_size = Some(bin_size);
        self
    }

    /// Maximum points per SM subproblem.
    pub fn msub(mut self, msub: usize) -> Self {
        self.opts.tuning.msub = msub;
        self
    }

    /// Kernel-evaluation choice for the spread/interp hot paths (exact
    /// exponential vs the fitted Horner fast path; default Auto).
    pub fn kernel_eval(mut self, ke: crate::opts::KernelEval) -> Self {
        self.opts.tuning.kernel_eval = ke;
        self
    }

    /// Upsampling factor sigma (default 2.0).
    pub fn upsampfac(mut self, upsampfac: f64) -> Self {
        self.opts.tuning.upsampfac = upsampfac;
        self
    }

    /// Fine-grid sizing policy (default [`FineSizing::Smooth`], the
    /// paper's 5-smooth rounding). [`FineSizing::Exact`] keeps
    /// `max(ceil(sigma*n), 2w)` exactly, routing prime sizes through the
    /// Bluestein FFT; the conformance harness uses this.
    pub fn fine_sizing(mut self, sizing: FineSizing) -> Self {
        self.opts.fine_sizing = sizing;
        self
    }

    /// Threads per block for GM kernels.
    pub fn threads_per_block(mut self, threads: usize) -> Self {
        self.opts.tuning.threads_per_block = threads;
        self
    }

    /// Shared-memory budget per block (bytes).
    pub fn shared_mem_budget(mut self, bytes: usize) -> Self {
        self.opts.tuning.shared_mem_budget = bytes;
        self
    }

    /// Expected number of stacked transforms per `execute_many` call
    /// (default 1). Declaring it pre-sizes the batch fine grid.
    pub fn ntransf(mut self, ntransf: usize) -> Self {
        self.ntransf = ntransf.max(1);
        self
    }

    /// Cap on transforms per pipelined chunk (0 = choose automatically).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.opts.max_batch = max_batch;
        self
    }

    /// Record plan lifecycle spans, device events, and load-balance
    /// counters into `trace` (see [`Plan::trace_report`]).
    pub fn tracing(mut self, trace: &Trace) -> Self {
        self.opts.trace = Some(trace.clone());
        self
    }

    /// Fault-recovery policy: bounded retry of transient device faults,
    /// OOM-driven chunk shrinking, and opt-in SM method fallback (see
    /// [`crate::RecoveryPolicy`]; `RecoveryPolicy::none()` restores
    /// fail-fast behavior).
    pub fn recovery(mut self, policy: crate::RecoveryPolicy) -> Self {
        self.opts.recovery = policy;
        self
    }

    /// Race / access-contract checking mode (default
    /// [`HazardMode::Off`]). Under [`HazardMode::Check`] every
    /// instrumented kernel launched by this plan records a shadow
    /// access trace and the device's happens-before checker runs over
    /// it; collect the findings with [`Plan::hazard_findings`].
    pub fn hazard(mut self, mode: HazardMode) -> Self {
        self.opts.hazard = mode;
        self
    }

    /// Validate the options and build the plan.
    pub fn build(self, dev: &Device) -> Result<Plan<T>> {
        self.opts.validate()?;
        let mut plan = Plan::build_impl(
            self.ttype,
            &self.modes,
            self.iflag,
            self.eps,
            self.opts,
            dev,
        )?;
        plan.ntransf = self.ntransf;
        if self.ntransf > 1 {
            // pre-size the batched fine grid so the first execute_many
            // pays no allocation inside the pipelined region
            let chunk = plan.chunk_size(self.ntransf);
            let policy = plan.opts.recovery;
            let trace = plan.opts.trace.clone();
            let nf = plan.fine.total();
            let t0 = dev.clock();
            let mut rec = std::mem::take(&mut plan.recovery);
            let res = with_retry(
                dev,
                &policy,
                trace.as_ref(),
                &mut rec,
                "alloc:fine_grid_batch",
                || dev.alloc("fine_grid_batch", nf * chunk),
            );
            plan.recovery = rec;
            match res {
                Ok(buf) => plan.d_grid_batch = Some(buf),
                // leave the batch grid unallocated: execute_many's
                // shrink loop will find a chunk size that fits
                Err(NufftError::DeviceOom { .. }) if policy.min_chunk > 0 => {
                    plan.recovery
                        .events
                        .push("pre-size OOM: deferring batch grid to execute_many".into());
                }
                Err(e) => return Err(e),
            }
            plan.timings.alloc += dev.clock() - t0;
        }
        Ok(plan)
    }
}

impl<T: Real> Plan<T> {
    /// Start building a plan; see [`PlanBuilder`].
    pub fn builder(ttype: TransformType, modes: &[usize]) -> PlanBuilder<T> {
        PlanBuilder::new(ttype, modes)
    }

    /// Build a plan directly from a canonical [`TransformSpec`] with
    /// default tuning; shorthand for
    /// [`PlanBuilder::from_spec`]`(spec)?.build(dev)`.
    pub fn from_spec(spec: &TransformSpec, dev: &Device) -> Result<Self> {
        PlanBuilder::from_spec(spec)?.build(dev)
    }

    /// Create a plan (cufinufft_makeplan). Fine-grid sizing, kernel
    /// selection and correction factors follow Sec. II; the spreading
    /// method is resolved per Sec. III / Remark 2.
    fn build_impl(
        ttype: TransformType,
        modes: &[usize],
        iflag: i32,
        eps: f64,
        opts: GpuOpts,
        dev: &Device,
    ) -> Result<Self> {
        let trace = opts.trace.clone();
        if let Some(t) = &trace {
            dev.attach_trace(t);
        }
        dev.set_hazard_mode(opts.hazard);
        let _on = trace.as_ref().map(|t| t.activate());
        let _span = trace.as_ref().map(|t| {
            t.span_with(
                "plan.build",
                &[
                    ("ttype", format!("{ttype:?}")),
                    ("dim", modes.len().to_string()),
                    ("eps", format!("{eps:e}")),
                ],
            )
        });
        if modes.is_empty() || modes.len() > 3 {
            return Err(NufftError::BadDim(modes.len()));
        }
        if modes.contains(&0) {
            return Err(NufftError::BadModes("zero-size mode dimension".into()));
        }
        let kernel = if (opts.tuning.upsampfac - 2.0).abs() < 1e-12 {
            EsKernel::for_tolerance(eps, T::IS_DOUBLE)?
        } else {
            EsKernel::for_tolerance_sigma(eps, opts.tuning.upsampfac, T::IS_DOUBLE)?
        };
        let modes = Shape::from_slice(modes);
        let fine = modes
            .map(|_, n| fine_grid_size_with(n, opts.tuning.upsampfac, kernel.w, opts.fine_sizing));
        let bin_size = opts
            .tuning
            .bin_size
            .unwrap_or_else(|| default_bin_size(modes.dim));
        // Resolve the kernel evaluator once: under Auto, fit the Horner
        // table and keep it iff the measured fit error spends at most 10%
        // of the plan's error budget (exact-exp fallback otherwise).
        let eval_kernel = EvalKernel::select(kernel, eps, opts.tuning.kernel_eval);
        let cb = std::mem::size_of::<Complex<T>>();
        let mut recovery = RecoveryReport::default();
        let spread_method = match resolve_spread_method(
            opts.method,
            bin_size,
            modes.dim,
            kernel.w,
            cb,
            opts.tuning
                .shared_mem_budget
                .min(dev.props().shared_mem_per_block),
        ) {
            Ok(m) => m,
            Err(e @ NufftError::MethodUnavailable(_)) if opts.recovery.allow_method_fallback => {
                // the policy prefers a working plan over the requested
                // method: degrade to GM-sort, the method Auto would use
                recovery.method_fallbacks += 1;
                recovery
                    .events
                    .push(format!("method fallback to GM-sort: {e}"));
                if let Some(t) = &trace {
                    t.counter("recovery.fallbacks").inc();
                }
                Method::GmSort
            }
            Err(e) => return Err(e),
        };
        let corr = correction_rows(&kernel, modes, fine);
        let fft = gpu_fft::GpuFftPlan::new(fine);
        let policy = opts.recovery;
        let t0 = dev.clock();
        let d_grid = with_retry(
            dev,
            &policy,
            trace.as_ref(),
            &mut recovery,
            "alloc:fine_grid",
            || dev.alloc("fine_grid", fine.total()),
        )?;
        let d_in = with_retry(
            dev,
            &policy,
            trace.as_ref(),
            &mut recovery,
            "alloc:in",
            || dev.alloc("in", 0),
        )?;
        let d_out = with_retry(
            dev,
            &policy,
            trace.as_ref(),
            &mut recovery,
            "alloc:out",
            || dev.alloc("out", 0),
        )?;
        let timings = GpuStageTimings {
            alloc: dev.clock() - t0,
            ..Default::default()
        };
        Ok(Plan {
            ttype,
            modes,
            fine,
            iflag: if iflag >= 0 { 1 } else { -1 },
            kernel,
            eval_kernel,
            opts,
            bin_size,
            spread_method,
            ntransf: 1,
            dev: dev.clone(),
            fft,
            corr,
            d_grid,
            d_in,
            d_out,
            d_in_batch: None,
            d_grid_batch: None,
            d_out_batch: None,
            pts: None,
            timings,
            batch: BatchTimings::default(),
            recovery,
            shrunk_chunk: None,
        })
    }

    /// Transforms per pipelined chunk for a batch of `b`: the explicit
    /// `max_batch` option if set, else roughly a quarter of the batch so
    /// the two-stream pipeline has several chunks to overlap.
    fn chunk_size(&self, b: usize) -> usize {
        if self.opts.max_batch > 0 {
            self.opts.max_batch.min(b).max(1)
        } else {
            b.div_ceil(4).max(1)
        }
    }

    pub fn modes(&self) -> Shape {
        self.modes
    }

    /// Which transform this plan computes.
    pub fn transform_type(&self) -> TransformType {
        self.ttype
    }

    pub fn fine_grid_shape(&self) -> Shape {
        self.fine
    }

    pub fn kernel(&self) -> &EsKernel {
        &self.kernel
    }

    /// The kernel evaluator the hot paths run with (exact vs the fitted
    /// Horner fast path; resolved at plan time from `Tuning::kernel_eval`).
    pub fn eval_kernel(&self) -> &EvalKernel {
        &self.eval_kernel
    }

    /// The spreading method actually in use for type-1 transforms.
    pub fn spread_method(&self) -> Method {
        self.spread_method
    }

    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Per-stage simulated timings accumulated by the most recent
    /// `set_pts` + `execute` pair.
    pub fn timings(&self) -> GpuStageTimings {
        self.timings
    }

    /// Per-chunk schedule of the most recent [`Plan::execute_many`]
    /// (empty before the first batched execution).
    pub fn batch_timings(&self) -> &BatchTimings {
        &self.batch
    }

    /// Batch width declared at build time (1 unless the builder's
    /// `ntransf` was used).
    pub fn ntransf(&self) -> usize {
        self.ntransf
    }

    /// Snapshot of the plan's tracing session: lifecycle spans, device
    /// timeline events, and load-balance counters. `None` when the plan
    /// was built without [`PlanBuilder::tracing`] /
    /// [`GpuOpts::with_tracing`].
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.opts.trace.as_ref().map(|t| t.report())
    }

    /// What the recovery layer did over this plan's lifetime so far:
    /// method fallbacks, retries, OOM-driven chunk shrinks, and a
    /// human-readable event log (see [`RecoveryReport`]).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Everything the race / contract checker has found on this plan's
    /// device so far: one [`gpu_sim::KernelHazardReport`] per checked
    /// launch. Empty (and vacuously clean) unless the plan was built
    /// with [`PlanBuilder::hazard`]`(HazardMode::Check)` /
    /// [`GpuOpts::with_hazard_checking`].
    pub fn hazard_findings(&self) -> HazardReport {
        self.dev.hazard_findings()
    }

    /// Record a stage-level span (simulated clock, plan lane) covering
    /// `start`..now, and feed the stage's duration into a per-method
    /// histogram (`stage.spread.sm`, `stage.fft.gm_sort`, …) so the
    /// trace report exposes per-stage quantiles split by spread method.
    fn stage_span(&self, name: &str, start: f64) {
        if let Some(t) = &self.opts.trace {
            let method = method_tag(self.spread_method);
            let dur = self.dev.clock() - start;
            t.device_span(
                Lane::Plan,
                name,
                "stage",
                start,
                dur,
                &[("method", method.to_string())],
            );
            t.histogram(&format!("{name}.{method}")).observe(dur);
        }
    }

    pub fn num_points(&self) -> usize {
        self.pts.as_ref().map_or(0, |p| p.m)
    }

    /// Register nonuniform points (cufinufft_setpts): transfer to the
    /// device, bin-sort, and build SM subproblems if applicable.
    pub fn set_pts(&mut self, pts: &Points<T>) -> Result<()> {
        let mut rec = std::mem::take(&mut self.recovery);
        let r = self.set_pts_impl(pts, &mut rec);
        self.recovery = rec;
        r
    }

    fn set_pts_impl(&mut self, pts: &Points<T>, rec: &mut RecoveryReport) -> Result<()> {
        if pts.dim != self.modes.dim {
            return Err(NufftError::BadDim(pts.dim));
        }
        let m = pts.len();
        for i in 0..pts.dim {
            if pts.coords[i].len() != m {
                return Err(NufftError::LengthMismatch {
                    expected: m,
                    got: pts.coords[i].len(),
                });
            }
            for (j, &v) in pts.coords[i].iter().enumerate() {
                if !v.is_finite() {
                    return Err(NufftError::BadPoint {
                        index: j,
                        value: v.to_f64(),
                    });
                }
            }
        }
        let trace = self.opts.trace.clone();
        let _on = trace.as_ref().map(|t| t.activate());
        let _span = trace.as_ref().map(|t| {
            t.span_with(
                "plan.setpts",
                &[("m", m.to_string()), ("dim", pts.dim.to_string())],
            )
        });
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let t0 = self.dev.clock();
        let my = if pts.dim >= 2 { m } else { 0 };
        let mz = if pts.dim >= 3 { m } else { 0 };
        let mut bufs = [
            with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:pts_x", || {
                dev.alloc("pts_x", m)
            })?,
            with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:pts_y", || {
                dev.alloc("pts_y", my)
            })?,
            with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:pts_z", || {
                dev.alloc("pts_z", mz)
            })?,
        ];
        let t_alloc = self.dev.clock() - t0;
        let t1 = self.dev.clock();
        for (buf, coords) in bufs.iter_mut().zip(&pts.coords).take(pts.dim) {
            with_retry(&dev, &policy, trace.as_ref(), rec, "h2d:pts", || {
                dev.memcpy_htod(buf, coords)
            })?;
        }
        let t_h2d = self.dev.clock() - t1;
        let t2 = self.dev.clock();
        // GM works in user point order for both transform types; every
        // other method wants the bin sort
        let needs_sort = self.spread_method != Method::Gm;
        let sort = needs_sort.then(|| gpu_bin_sort(&self.dev, pts, self.fine, self.bin_size));
        let subproblems = if self.ttype == TransformType::Type1 && self.spread_method == Method::Sm
        {
            build_subproblems(
                &self.dev,
                sort.as_ref().expect("SM requires sorting"),
                self.opts.tuning.msub,
            )
        } else {
            Vec::new()
        };
        let t_sort = self.dev.clock() - t2;
        if t_sort > 0.0 {
            self.stage_span("stage.sort", t2);
        }
        self.timings.alloc += t_alloc;
        self.timings.h2d_pts = t_h2d;
        self.timings.sort = t_sort;
        self.pts = Some(PtsState {
            bufs,
            m,
            dim: pts.dim,
            sort,
            subproblems,
        });
        Ok(())
    }

    fn precision() -> Precision {
        if T::IS_DOUBLE {
            Precision::Double
        } else {
            Precision::Single
        }
    }

    /// Execute the transform (cufinufft_execute). Type 1: `input` = M
    /// strengths, `output` = N modes; type 2 swaps the roles. Host-device
    /// transfers of input/output are included and reported separately in
    /// [`GpuStageTimings`].
    pub fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let mut rec = std::mem::take(&mut self.recovery);
        let r = self.execute_impl(input, output, &mut rec);
        self.recovery = rec;
        r
    }

    fn execute_impl(
        &mut self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        rec: &mut RecoveryReport,
    ) -> Result<()> {
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = state.m;
        let n = self.modes.total();
        let (want_in, want_out) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != want_in {
            return Err(NufftError::LengthMismatch {
                expected: want_in,
                got: input.len(),
            });
        }
        if output.len() != want_out {
            return Err(NufftError::LengthMismatch {
                expected: want_out,
                got: output.len(),
            });
        }
        let trace = self.opts.trace.clone();
        let _on = trace.as_ref().map(|t| t.activate());
        let _span = trace.as_ref().map(|t| {
            t.span_with(
                "plan.execute",
                &[
                    ("ttype", format!("{:?}", self.ttype)),
                    ("method", format!("{:?}", self.spread_method)),
                ],
            )
        });
        // (re)allocate IO buffers on first use or size change
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let t0 = self.dev.clock();
        if self.d_in.len() != want_in {
            self.d_in = with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:in", || {
                dev.alloc("in", want_in)
            })?;
        }
        if self.d_out.len() != want_out {
            self.d_out = with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:out", || {
                dev.alloc("out", want_out)
            })?;
        }
        let alloc_extra = self.dev.clock() - t0;
        self.timings.alloc += alloc_extra;
        let t1 = self.dev.clock();
        with_retry(&dev, &policy, trace.as_ref(), rec, "h2d:in", || {
            self.dev.memcpy_htod(&mut self.d_in, input)
        })?;
        self.timings.h2d_data = self.dev.clock() - t1;

        // the exec stages zero the fine grid before touching it, so a
        // launch fault mid-transform can be retried wholesale
        match self.ttype {
            TransformType::Type1 => {
                with_retry(&dev, &policy, trace.as_ref(), rec, "exec:type1", || {
                    self.exec_type1()
                })?
            }
            TransformType::Type2 => {
                with_retry(&dev, &policy, trace.as_ref(), rec, "exec:type2", || {
                    self.exec_type2()
                })?
            }
        }

        let t2 = self.dev.clock();
        with_retry(&dev, &policy, trace.as_ref(), rec, "d2h:out", || {
            self.dev.memcpy_dtoh(output, &self.d_out)
        })?;
        self.timings.d2h = self.dev.clock() - t2;
        self.timings.batches = 1;
        self.timings.pipe_wall = 0.0;
        Ok(())
    }

    /// Execute `n_transf` stacked transforms sharing the same nonuniform
    /// points (the C API's `ntransf` batching). `input` and `output` hold
    /// the vectors concatenated; sorting is shared, and per-vector
    /// spread/FFT/deconvolve stages accumulate into the timing report —
    /// the amortization the paper's "exec" timing captures.
    pub fn execute_batch(
        &mut self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        n_transf: usize,
    ) -> Result<()> {
        if n_transf == 0 {
            return Err(NufftError::BadOptions("n_transf must be positive".into()));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = state.m;
        let n = self.modes.total();
        let (in_per, out_per) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if input.len() != in_per * n_transf {
            return Err(NufftError::LengthMismatch {
                expected: in_per * n_transf,
                got: input.len(),
            });
        }
        if output.len() != out_per * n_transf {
            return Err(NufftError::LengthMismatch {
                expected: out_per * n_transf,
                got: output.len(),
            });
        }
        let mut acc = GpuStageTimings {
            alloc: self.timings.alloc,
            h2d_pts: self.timings.h2d_pts,
            sort: self.timings.sort,
            batches: n_transf,
            ..Default::default()
        };
        for t in 0..n_transf {
            self.execute(
                &input[t * in_per..(t + 1) * in_per],
                &mut output[t * out_per..(t + 1) * out_per],
            )?;
            let lt = self.timings;
            acc.h2d_data += lt.h2d_data;
            acc.spread_interp += lt.spread_interp;
            acc.fft += lt.fft;
            acc.deconv += lt.deconv;
            acc.d2h += lt.d2h;
        }
        self.timings = acc;
        Ok(())
    }

    /// Spread-only entry point (FINUFFT's `spreadinterponly` use case,
    /// used by particle codes \[13\]\[14\]): spread the strengths onto the
    /// plan's fine grid and return the grid contents, skipping the FFT
    /// and deconvolution. The plan must be type 1.
    pub fn spread_only(
        &mut self,
        strengths: &[Complex<T>],
        grid_out: &mut [Complex<T>],
    ) -> Result<()> {
        let mut rec = std::mem::take(&mut self.recovery);
        let r = self.spread_only_impl(strengths, grid_out, &mut rec);
        self.recovery = rec;
        r
    }

    fn spread_only_impl(
        &mut self,
        strengths: &[Complex<T>],
        grid_out: &mut [Complex<T>],
        rec: &mut RecoveryReport,
    ) -> Result<()> {
        if self.ttype != TransformType::Type1 {
            return Err(NufftError::BadOptions(
                "spread_only requires a type 1 plan".into(),
            ));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        if strengths.len() != state.m {
            return Err(NufftError::LengthMismatch {
                expected: state.m,
                got: strengths.len(),
            });
        }
        if grid_out.len() != self.fine.total() {
            return Err(NufftError::LengthMismatch {
                expected: self.fine.total(),
                got: grid_out.len(),
            });
        }
        let m = state.m;
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let trace = self.opts.trace.clone();
        if self.d_in.len() != m {
            self.d_in = with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:in", || {
                dev.alloc("in", m)
            })?;
        }
        with_retry(&dev, &policy, trace.as_ref(), rec, "h2d:in", || {
            self.dev.memcpy_htod(&mut self.d_in, strengths)
        })?;
        let t0 = self.dev.clock();
        let cb = std::mem::size_of::<Complex<T>>();
        let nf = self.fine.total();
        with_retry(&dev, &policy, trace.as_ref(), rec, "spread", || {
            // re-zero inside the retry body so a launch fault can be
            // retried without double-accumulating
            self.d_grid
                .as_mut_slice()
                .iter_mut()
                .for_each(|z| *z = Complex::ZERO);
            self.dev
                .bulk_op("memset_grid", 0, nf * cb, 0.0, Self::precision());
            self.run_spread()
        })?;
        self.timings.spread_interp = self.dev.clock() - t0;
        with_retry(&dev, &policy, trace.as_ref(), rec, "d2h:grid", || {
            self.dev.memcpy_dtoh(grid_out, &self.d_grid)
        })?;
        Ok(())
    }

    /// Interpolation-only entry point: evaluate the given fine-grid data
    /// at the plan's points, skipping pre-correction and the FFT. The
    /// plan must be type 2.
    pub fn interp_only(&mut self, grid_in: &[Complex<T>], out: &mut [Complex<T>]) -> Result<()> {
        let mut rec = std::mem::take(&mut self.recovery);
        let r = self.interp_only_impl(grid_in, out, &mut rec);
        self.recovery = rec;
        r
    }

    fn interp_only_impl(
        &mut self,
        grid_in: &[Complex<T>],
        out: &mut [Complex<T>],
        rec: &mut RecoveryReport,
    ) -> Result<()> {
        if self.ttype != TransformType::Type2 {
            return Err(NufftError::BadOptions(
                "interp_only requires a type 2 plan".into(),
            ));
        }
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        if grid_in.len() != self.fine.total() {
            return Err(NufftError::LengthMismatch {
                expected: self.fine.total(),
                got: grid_in.len(),
            });
        }
        if out.len() != state.m {
            return Err(NufftError::LengthMismatch {
                expected: state.m,
                got: out.len(),
            });
        }
        let m = state.m;
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let trace = self.opts.trace.clone();
        with_retry(&dev, &policy, trace.as_ref(), rec, "h2d:grid", || {
            self.dev.memcpy_htod(&mut self.d_grid, grid_in)
        })?;
        if self.d_out.len() != m {
            self.d_out = with_retry(&dev, &policy, trace.as_ref(), rec, "alloc:out", || {
                dev.alloc("out", m)
            })?;
        }
        let t0 = self.dev.clock();
        with_retry(&dev, &policy, trace.as_ref(), rec, "interp", || {
            self.run_interp()
        })?;
        self.timings.spread_interp = self.dev.clock() - t0;
        with_retry(&dev, &policy, trace.as_ref(), rec, "d2h:out", || {
            self.dev.memcpy_dtoh(out, &self.d_out)
        })?;
        Ok(())
    }

    /// Execute `B` stacked transforms sharing the plan's points, with
    /// `B` inferred from `input.len()` (the vectors are concatenated:
    /// `input = [c_0, .., c_{B-1}]`, `output = [f_0, .., f_{B-1}]`).
    ///
    /// This is the library's batching strategy (the C API's `ntransf`):
    /// the point sort and subproblem setup from `set_pts` are reused for
    /// every vector, spreading/interpolation run per vector into a
    /// chunk-sized batch grid, the FFT runs batched (`cufftPlanMany`
    /// style), and each chunk's H2D -> compute -> D2H chain is scheduled
    /// on one of two streams so the transfers of chunk `i+1` hide under
    /// the kernels of chunk `i`. Results are bitwise identical to `B`
    /// sequential [`Plan::execute`] calls; [`Plan::timings`] reports the
    /// accumulated stages plus the pipelined wall (`pipe_wall`), and
    /// [`Plan::batch_timings`] the per-chunk schedule.
    pub fn execute_many(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        let mut rec = std::mem::take(&mut self.recovery);
        let r = self.execute_many_impl(input, output, &mut rec);
        self.recovery = rec;
        r
    }

    fn execute_many_impl(
        &mut self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        rec: &mut RecoveryReport,
    ) -> Result<()> {
        let state = self.pts.as_ref().ok_or(NufftError::PointsNotSet)?;
        let m = state.m;
        let n = self.modes.total();
        let (in_per, out_per) = match self.ttype {
            TransformType::Type1 => (m, n),
            TransformType::Type2 => (n, m),
        };
        if in_per == 0 {
            return Err(NufftError::BadOptions(
                "execute_many cannot infer the batch size from empty transforms".into(),
            ));
        }
        if input.is_empty() || !input.len().is_multiple_of(in_per) {
            return Err(NufftError::LengthMismatch {
                expected: in_per,
                got: input.len(),
            });
        }
        let b = input.len() / in_per;
        if output.len() != out_per * b {
            return Err(NufftError::LengthMismatch {
                expected: out_per * b,
                got: output.len(),
            });
        }
        let trace = self.opts.trace.clone();
        let _on = trace.as_ref().map(|t| t.activate());
        let _span = trace.as_ref().map(|t| {
            t.span_with(
                "plan.execute_many",
                &[("b", b.to_string()), ("ttype", format!("{:?}", self.ttype))],
            )
        });

        // stage buffers sized for one chunk, (re)allocated outside the
        // pipelined region so the schedule holds only transfers + compute.
        // A device OOM here halves the chunk (dropping the failed
        // buffers first) until it fits or `min_chunk` is reached; the
        // shrunk size sticks for later batches.
        let policy = self.opts.recovery;
        let mut chunk = self.chunk_size(b);
        if let Some(c) = self.shrunk_chunk {
            chunk = chunk.min(c).max(1);
        }
        let nf = self.fine.total();
        let t0 = self.dev.clock();
        loop {
            match self.alloc_staging(chunk, in_per, out_per, nf, rec) {
                Ok(()) => break,
                Err(NufftError::DeviceOom { .. })
                    if policy.min_chunk > 0 && chunk > policy.min_chunk =>
                {
                    self.d_in_batch = None;
                    self.d_grid_batch = None;
                    self.d_out_batch = None;
                    chunk = (chunk / 2).max(policy.min_chunk);
                    self.shrunk_chunk = Some(chunk);
                    rec.chunk_shrinks += 1;
                    rec.final_chunk = Some(chunk);
                    rec.events
                        .push(format!("device OOM: batch chunk shrunk to {chunk}"));
                    if let Some(t) = &trace {
                        t.counter("recovery.chunk_shrinks").inc();
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let alloc_extra = self.dev.clock() - t0;
        let mut bin = self.d_in_batch.take().expect("allocated above");
        let mut bgrid = self.d_grid_batch.take().expect("allocated above");
        let mut bout = self.d_out_batch.take().expect("allocated above");

        let region = self.run_pipeline(
            input, output, b, chunk, in_per, out_per, &mut bin, &mut bgrid, &mut bout, rec,
        );
        self.d_in_batch = Some(bin);
        self.d_grid_batch = Some(bgrid);
        self.d_out_batch = Some(bout);
        let (wall, chunks, stage) = region?;

        let serial: f64 = chunks.iter().map(|c| c.h2d + c.exec + c.d2h).sum();
        self.batch = BatchTimings {
            chunks,
            serial,
            wall,
        };
        let prev = self.timings;
        self.timings = GpuStageTimings {
            alloc: prev.alloc + alloc_extra,
            h2d_pts: prev.h2d_pts,
            sort: prev.sort,
            h2d_data: stage.h2d_data,
            spread_interp: stage.spread_interp,
            fft: stage.fft,
            deconv: stage.deconv,
            d2h: stage.d2h,
            batches: b,
            pipe_wall: wall,
        };
        Ok(())
    }

    /// (Re)allocate the chunk-sized staging buffers, retrying transient
    /// alloc faults; a persistent OOM propagates as `DeviceOom` for the
    /// caller's shrink loop.
    fn alloc_staging(
        &mut self,
        chunk: usize,
        in_per: usize,
        out_per: usize,
        nf: usize,
        rec: &mut RecoveryReport,
    ) -> Result<()> {
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let trace = self.opts.trace.clone();
        let undersized = |buf: &Option<GpuBuffer<Complex<T>>>, len: usize| {
            buf.as_ref().is_none_or(|g| g.len() < len)
        };
        if undersized(&self.d_in_batch, in_per * chunk) {
            self.d_in_batch = Some(with_retry(
                &dev,
                &policy,
                trace.as_ref(),
                rec,
                "alloc:in_batch",
                || dev.alloc("in_batch", in_per * chunk),
            )?);
        }
        if undersized(&self.d_grid_batch, nf * chunk) {
            self.d_grid_batch = Some(with_retry(
                &dev,
                &policy,
                trace.as_ref(),
                rec,
                "alloc:fine_grid_batch",
                || dev.alloc("fine_grid_batch", nf * chunk),
            )?);
        }
        if undersized(&self.d_out_batch, out_per * chunk) {
            self.d_out_batch = Some(with_retry(
                &dev,
                &policy,
                trace.as_ref(),
                rec,
                "alloc:out_batch",
                || dev.alloc("out_batch", out_per * chunk),
            )?);
        }
        Ok(())
    }

    /// The pipelined transfer/compute region of `execute_many`. Compute
    /// is priced on the serial device clock (the SM array serializes
    /// across streams anyway) and its measured duration is queued on the
    /// chunk's stream; async copies are queued with their analytic
    /// duration without touching the clock. The final sync advances the
    /// clock to the schedule's end, so the region's clock delta IS the
    /// pipelined wall. Chunk bodies re-zero their grid slice first, so a
    /// launch fault retries the whole chunk without double-accumulation.
    #[allow(clippy::too_many_arguments)]
    fn run_pipeline(
        &self,
        input: &[Complex<T>],
        output: &mut [Complex<T>],
        b: usize,
        chunk: usize,
        in_per: usize,
        out_per: usize,
        bin: &mut GpuBuffer<Complex<T>>,
        bgrid: &mut GpuBuffer<Complex<T>>,
        bout: &mut GpuBuffer<Complex<T>>,
        rec: &mut RecoveryReport,
    ) -> Result<(f64, Vec<ChunkTiming>, GpuStageTimings)> {
        use gpu_sim::{sync_streams, EngineState, Stream};
        let dev = self.dev.clone();
        let policy = self.opts.recovery;
        let trace = self.opts.trace.clone();
        let base = self.dev.clock();
        let mut engines = EngineState::default();
        let mut streams = [Stream::new(&self.dev), Stream::new(&self.dev)];
        let mut chunks: Vec<ChunkTiming> = Vec::new();
        let mut stage = GpuStageTimings::default();
        let mut off = 0;
        while off < b {
            let bc = chunk.min(b - off);
            let src = &input[off * in_per..(off + bc) * in_per];
            let h2d_dur = self.dev.transfer_time(std::mem::size_of_val(src));
            let si = chunks.len() % 2;
            let h2d_done = with_retry(&dev, &policy, trace.as_ref(), rec, "h2d:chunk", || {
                streams[si].memcpy_htod(&self.dev, &mut engines, bin, src)
            })?;
            let c0 = self.dev.clock();
            with_retry(
                &dev,
                &policy,
                trace.as_ref(),
                rec,
                "exec:chunk",
                || match self.ttype {
                    TransformType::Type1 => self.exec_type1_chunk(bc, bin, bgrid, bout, &mut stage),
                    TransformType::Type2 => self.exec_type2_chunk(bc, bin, bgrid, bout, &mut stage),
                },
            )?;
            let t_exec = self.dev.clock() - c0;
            streams[si].compute(&mut engines, t_exec);
            let dst = &mut output[off * out_per..(off + bc) * out_per];
            let d2h_dur = self.dev.transfer_time(std::mem::size_of_val(dst));
            let d2h_done = with_retry(&dev, &policy, trace.as_ref(), rec, "d2h:chunk", || {
                streams[si].memcpy_dtoh(&self.dev, &mut engines, dst, bout)
            })?;
            chunks.push(ChunkTiming {
                ntransf: bc,
                h2d: h2d_dur,
                exec: t_exec,
                d2h: d2h_dur,
                start: (h2d_done - h2d_dur) - base,
                done: d2h_done - base,
            });
            stage.h2d_data += h2d_dur;
            stage.d2h += d2h_dur;
            off += bc;
        }
        let wall = sync_streams(&self.dev, &[&streams[0], &streams[1]]) - base;
        Ok((wall, chunks, stage))
    }

    /// One chunk of a batched type-1 execution: zero the batch grid,
    /// spread each vector into its own fine grid, run one batched FFT,
    /// and deconvolve each vector. Per vector this performs exactly the
    /// operations of [`Plan::execute`]'s type-1 path, so results are
    /// bitwise identical.
    fn exec_type1_chunk(
        &self,
        bc: usize,
        d_in: &GpuBuffer<Complex<T>>,
        d_grid: &mut GpuBuffer<Complex<T>>,
        d_out: &mut GpuBuffer<Complex<T>>,
        stage: &mut GpuStageTimings,
    ) -> std::result::Result<(), gpu_sim::DeviceFault> {
        let state = self.pts.as_ref().expect("points checked");
        let cb = std::mem::size_of::<Complex<T>>();
        let nf = self.fine.total();
        let m = state.m;
        let n = self.modes.total();
        let t0 = self.dev.clock();
        d_grid.as_mut_slice()[..bc * nf]
            .iter_mut()
            .for_each(|z| *z = Complex::ZERO);
        self.dev
            .bulk_op("memset_grid_batch", 0, bc * nf * cb, 0.0, Self::precision());
        spread_batch(
            &self.dev,
            &self.eval_kernel,
            self.fine,
            self.spread_method,
            self.opts.tuning.threads_per_block,
            &state.inputs(),
            bc,
            &d_in.as_slice()[..bc * m],
            &mut d_grid.as_mut_slice()[..bc * nf],
        )?;
        stage.spread_interp += self.dev.clock() - t0;
        self.stage_span("stage.spread", t0);
        let t1 = self.dev.clock();
        self.fft
            .execute_many(&self.dev, d_grid, bc, Direction::from_sign(self.iflag));
        stage.fft += self.dev.clock() - t1;
        self.stage_span("stage.fft", t1);
        let t2 = self.dev.clock();
        for v in 0..bc {
            deconv_type1(
                &self.corr,
                self.modes,
                self.fine,
                self.opts.modeord,
                &d_grid.as_slice()[v * nf..(v + 1) * nf],
                &mut d_out.as_mut_slice()[v * n..(v + 1) * n],
            );
        }
        self.dev.bulk_op(
            "deconvolve_batch",
            bc * n * cb,
            bc * n * cb,
            (bc * n) as f64 * 8.0,
            Self::precision(),
        );
        stage.deconv += self.dev.clock() - t2;
        self.stage_span("stage.deconv", t2);
        Ok(())
    }

    /// One chunk of a batched type-2 execution; see
    /// [`Plan::exec_type1_chunk`].
    fn exec_type2_chunk(
        &self,
        bc: usize,
        d_in: &GpuBuffer<Complex<T>>,
        d_grid: &mut GpuBuffer<Complex<T>>,
        d_out: &mut GpuBuffer<Complex<T>>,
        stage: &mut GpuStageTimings,
    ) -> std::result::Result<(), gpu_sim::DeviceFault> {
        let state = self.pts.as_ref().expect("points checked");
        let cb = std::mem::size_of::<Complex<T>>();
        let nf = self.fine.total();
        let m = state.m;
        let n = self.modes.total();
        let t0 = self.dev.clock();
        d_grid.as_mut_slice()[..bc * nf]
            .iter_mut()
            .for_each(|z| *z = Complex::ZERO);
        self.dev
            .bulk_op("memset_grid_batch", 0, bc * nf * cb, 0.0, Self::precision());
        for v in 0..bc {
            deconv_type2(
                &self.corr,
                self.modes,
                self.fine,
                self.opts.modeord,
                &d_in.as_slice()[v * n..(v + 1) * n],
                &mut d_grid.as_mut_slice()[v * nf..(v + 1) * nf],
            );
        }
        self.dev.bulk_op(
            "precorrect_batch",
            bc * n * cb,
            bc * n * cb,
            (bc * n) as f64 * 8.0,
            Self::precision(),
        );
        stage.deconv += self.dev.clock() - t0;
        self.stage_span("stage.deconv", t0);
        let t1 = self.dev.clock();
        self.fft
            .execute_many(&self.dev, d_grid, bc, Direction::from_sign(self.iflag));
        stage.fft += self.dev.clock() - t1;
        self.stage_span("stage.fft", t1);
        let t2 = self.dev.clock();
        interp_batch(
            &self.dev,
            &self.eval_kernel,
            self.fine,
            self.spread_method,
            self.opts.tuning.threads_per_block,
            &state.inputs(),
            bc,
            &d_grid.as_slice()[..bc * nf],
            &mut d_out.as_mut_slice()[..bc * m],
        )?;
        stage.spread_interp += self.dev.clock() - t2;
        self.stage_span("stage.interp", t2);
        Ok(())
    }

    /// Dispatch the configured spreading method from `d_in` into
    /// `d_grid` (the grid must already be zeroed and priced).
    fn run_spread(&mut self) -> std::result::Result<(), gpu_sim::DeviceFault> {
        let state = self.pts.as_ref().expect("points checked");
        spread_batch(
            &self.dev,
            &self.eval_kernel,
            self.fine,
            self.spread_method,
            self.opts.tuning.threads_per_block,
            &state.inputs(),
            1,
            self.d_in.as_slice(),
            self.d_grid.as_mut_slice(),
        )
    }

    fn exec_type1(&mut self) -> std::result::Result<(), gpu_sim::DeviceFault> {
        // memset the fine grid
        let cb = std::mem::size_of::<Complex<T>>();
        let t0 = self.dev.clock();
        self.d_grid
            .as_mut_slice()
            .iter_mut()
            .for_each(|z| *z = Complex::ZERO);
        self.dev.bulk_op(
            "memset_grid",
            0,
            self.fine.total() * cb,
            0.0,
            Self::precision(),
        );
        self.run_spread()?;
        self.timings.spread_interp = self.dev.clock() - t0;
        self.stage_span("stage.spread", t0);
        // FFT
        let t1 = self.dev.clock();
        self.fft.execute(
            &self.dev,
            &mut self.d_grid,
            Direction::from_sign(self.iflag),
        );
        self.timings.fft = self.dev.clock() - t1;
        self.stage_span("stage.fft", t1);
        // deconvolve + truncate
        let t2 = self.dev.clock();
        deconv_type1(
            &self.corr,
            self.modes,
            self.fine,
            self.opts.modeord,
            self.d_grid.as_slice(),
            self.d_out.as_mut_slice(),
        );
        self.dev.bulk_op(
            "deconvolve",
            self.modes.total() * cb,
            self.modes.total() * cb,
            self.modes.total() as f64 * 8.0,
            Self::precision(),
        );
        self.timings.deconv = self.dev.clock() - t2;
        self.stage_span("stage.deconv", t2);
        Ok(())
    }

    fn exec_type2(&mut self) -> std::result::Result<(), gpu_sim::DeviceFault> {
        let cb = std::mem::size_of::<Complex<T>>();
        // pre-correct + zero-pad
        let t0 = self.dev.clock();
        self.d_grid
            .as_mut_slice()
            .iter_mut()
            .for_each(|z| *z = Complex::ZERO);
        self.dev.bulk_op(
            "memset_grid",
            0,
            self.fine.total() * cb,
            0.0,
            Self::precision(),
        );
        deconv_type2(
            &self.corr,
            self.modes,
            self.fine,
            self.opts.modeord,
            self.d_in.as_slice(),
            self.d_grid.as_mut_slice(),
        );
        self.dev.bulk_op(
            "precorrect",
            self.modes.total() * cb,
            self.modes.total() * cb,
            self.modes.total() as f64 * 8.0,
            Self::precision(),
        );
        self.timings.deconv = self.dev.clock() - t0;
        self.stage_span("stage.deconv", t0);
        // FFT
        let t1 = self.dev.clock();
        self.fft.execute(
            &self.dev,
            &mut self.d_grid,
            Direction::from_sign(self.iflag),
        );
        self.timings.fft = self.dev.clock() - t1;
        self.stage_span("stage.fft", t1);
        // interpolate
        let t2 = self.dev.clock();
        self.run_interp()?;
        self.timings.spread_interp = self.dev.clock() - t2;
        self.stage_span("stage.interp", t2);
        Ok(())
    }

    /// Dispatch interpolation from `d_grid` into `d_out`.
    fn run_interp(&mut self) -> std::result::Result<(), gpu_sim::DeviceFault> {
        let state = self.pts.as_ref().expect("points checked");
        interp_batch(
            &self.dev,
            &self.eval_kernel,
            self.fine,
            self.spread_method,
            self.opts.tuning.threads_per_block,
            &state.inputs(),
            1,
            self.d_grid.as_slice(),
            self.d_out.as_mut_slice(),
        )
    }
}

impl<T: Real> nufft_common::NufftPlan<T> for Plan<T> {
    fn transform_type(&self) -> TransformType {
        self.ttype
    }

    fn modes(&self) -> Shape {
        self.modes
    }

    fn num_points(&self) -> usize {
        Plan::num_points(self)
    }

    fn set_points(&mut self, pts: &Points<T>) -> Result<()> {
        self.set_pts(pts)
    }

    fn execute(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        Plan::execute(self, input, output)
    }

    fn execute_many(&mut self, input: &[Complex<T>], output: &mut [Complex<T>]) -> Result<()> {
        Plan::execute_many(self, input, output)
    }

    fn exec_time(&self) -> f64 {
        self.timings.exec()
    }

    fn total_time(&self) -> f64 {
        self.timings.total_mem()
    }

    fn backend_name(&self) -> &'static str {
        "cufinufft"
    }
}

/// Caller-array index of mode `(j1,j2,j3)` (ascending-frequency
/// enumeration indices) under the plan's mode ordering.
#[inline]
fn mode_index(modes: Shape, modeord: ModeOrder, j1: usize, j2: usize, j3: usize) -> usize {
    match modeord {
        ModeOrder::Centered => j1 + modes.n[0] * (j2 + modes.n[1] * j3),
        ModeOrder::Fft => {
            // j enumerates k = -N/2 + j; FFT order stores k at k mod N
            let f = |j: usize, n: usize| (j + n - n / 2) % n;
            f(j1, modes.n[0]) + modes.n[0] * (f(j2, modes.n[1]) + modes.n[1] * f(j3, modes.n[2]))
        }
    }
}

/// Type 1 step 3 on device data (host-functional).
fn deconv_type1<T: Real>(
    corr: &[Vec<f64>; 3],
    modes: Shape,
    fine: Shape,
    modeord: ModeOrder,
    grid: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
        .enumerate()
        .map(|(j, k)| (freq_to_bin(k, fine.n[0]), corr[0][j]))
        .collect();
    for (j3, k3) in freqs(modes.n[2]).enumerate() {
        let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
        let p3 = corr[2][j3];
        for (j2, k2) in freqs(modes.n[1]).enumerate() {
            let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
            let p23 = p3 * corr[1][j2];
            for (j1, (b1, p1)) in k1s.iter().enumerate() {
                out[mode_index(modes, modeord, j1, j2, j3)] =
                    grid[b2 + b1].scale(T::from_f64(p1 * p23));
            }
        }
    }
}

/// Type 2 step 1 on device data (host-functional). `grid` must be zeroed.
fn deconv_type2<T: Real>(
    corr: &[Vec<f64>; 3],
    modes: Shape,
    fine: Shape,
    modeord: ModeOrder,
    input: &[Complex<T>],
    grid: &mut [Complex<T>],
) {
    let k1s: Vec<(usize, f64)> = freqs(modes.n[0])
        .enumerate()
        .map(|(j, k)| (freq_to_bin(k, fine.n[0]), corr[0][j]))
        .collect();
    for (j3, k3) in freqs(modes.n[2]).enumerate() {
        let b3 = freq_to_bin(k3, fine.n[2]) * fine.n[0] * fine.n[1];
        let p3 = corr[2][j3];
        for (j2, k2) in freqs(modes.n[1]).enumerate() {
            let b2 = b3 + freq_to_bin(k2, fine.n[1]) * fine.n[0];
            let p23 = p3 * corr[1][j2];
            for (j1, (b1, p1)) in k1s.iter().enumerate() {
                grid[b2 + b1] =
                    input[mode_index(modes, modeord, j1, j2, j3)].scale(T::from_f64(p1 * p23));
            }
        }
    }
}
