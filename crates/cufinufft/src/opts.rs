//! Options and spreading-method selection, mirroring `cufinufft_opts`.
//!
//! The option surface is split along the semantic/performance line:
//! what a transform *is* lives in
//! [`TransformSpec`](nufft_common::TransformSpec) (type, dims,
//! tolerance, precision, method, mode order, fine sizing), while how
//! fast it runs lives in [`Tuning`] (bin sizes, `M_sub`, thread count,
//! shared-memory budget, upsampling factor). [`GpuOpts`] carries both
//! plus the operational knobs (tracing, recovery, hazard checking).

use crate::recovery::RecoveryPolicy;
use gpu_sim::{HazardMode, Trace};
use nufft_common::error::{NufftError, Result};
use nufft_common::smooth::FineSizing;
// Method and ModeOrder are part of a transform's semantic identity and
// live in nufft-common (`TransformSpec` references them); re-exported
// here so existing `cufinufft::opts::Method` imports keep working.
pub use nufft_common::spec::{Method, ModeOrder};
// Kernel-evaluation choice (exact vs Horner fast path) lives with the
// kernels; re-exported here because it is set through `Tuning`.
pub use nufft_kernels::KernelEval;

/// Performance-tuning knobs, separated from the semantic
/// [`TransformSpec`](nufft_common::TransformSpec) fields: two plans
/// whose specs match compute the same transform regardless of tuning;
/// tuning only moves the wall clock. `Default` reproduces the paper's
/// settings (sigma = 2, M_sub = 1024, Remark-1 bin sizes, 128 threads
/// per block, 49 kB shared memory).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Tuning {
    /// Bin size in fine-grid cells; `None` = paper defaults per dim
    /// (Remark 1: 32x32 in 2D, 16x16x2 in 3D).
    pub bin_size: Option<[usize; 3]>,
    /// Maximum nonuniform points per SM subproblem.
    pub msub: usize,
    /// Upsampling factor sigma.
    pub upsampfac: f64,
    /// Threads per block for the GM kernels.
    pub threads_per_block: usize,
    /// Shared-memory budget per block used in the SM feasibility check.
    /// The paper quotes 49 kB (Remark 2 uses 49000).
    pub shared_mem_budget: usize,
    /// How `eval_row` is computed in the spread/interp hot paths: the
    /// fitted Horner/Chebyshev fast path, the exact exponential, or
    /// (default) an automatic plan-time choice gated on the measured fit
    /// error meeting the plan tolerance. Tuning-only: any setting
    /// computes the same transform to within the plan tolerance.
    pub kernel_eval: KernelEval,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            bin_size: None,
            msub: 1024,
            upsampfac: 2.0,
            threads_per_block: 128,
            shared_mem_budget: 49_000,
            kernel_eval: KernelEval::Auto,
        }
    }
}

impl Tuning {
    /// Reject values that cannot produce a working plan.
    pub fn validate(&self) -> Result<()> {
        if self.msub == 0 {
            return Err(NufftError::BadMsub(self.msub));
        }
        if self.upsampfac <= 1.0 || self.upsampfac.is_nan() {
            return Err(NufftError::BadUpsampfac(self.upsampfac));
        }
        if let Some(b) = self.bin_size {
            if b.contains(&0) {
                return Err(NufftError::BadBinSize(b));
            }
        }
        if self.threads_per_block == 0 {
            return Err(NufftError::BadOptions(
                "threads_per_block must be positive".into(),
            ));
        }
        if self.shared_mem_budget == 0 {
            return Err(NufftError::BadOptions(
                "shared_mem_budget must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Plan options (defaults follow the paper: sigma = 2, M_sub = 1024,
/// bins 32x32 in 2D and 16x16x2 in 3D — Remark 1).
#[derive(Clone, Debug)]
pub struct GpuOpts {
    pub method: Method,
    /// Mode ordering of the coefficient arrays.
    pub modeord: ModeOrder,
    /// Performance-tuning knobs (bin size, `M_sub`, sigma, thread
    /// count, shared-memory budget); see [`Tuning`].
    pub tuning: Tuning,
    /// Fine-grid sizing policy: round up to a 5-smooth FFT size (paper
    /// rule, the default) or keep `max(ceil(sigma*n), 2w)` exactly so
    /// prime sizes exercise the Bluestein FFT path (conformance use).
    pub fine_sizing: FineSizing,
    /// Maximum transforms per pipelined chunk in `execute_many`
    /// (the C API's `maxbatchsize`); 0 picks a heuristic that yields
    /// several chunks so transfers can hide under compute.
    pub max_batch: usize,
    /// Tracing session the plan records into (see `nufft-trace`). When
    /// set, the plan attaches it to the device, opens host spans around
    /// build/setpts/execute, records stage-level device spans, and
    /// publishes load-balance counters. `None` disables all of it.
    pub trace: Option<Trace>,
    /// Fault-recovery behavior: bounded retry of transient device
    /// faults, OOM-driven chunk shrinking in `execute_many`, and
    /// (opt-in) SM-to-GM-sort method fallback. See
    /// [`RecoveryPolicy`]; `RecoveryPolicy::none()` restores
    /// fail-fast semantics.
    pub recovery: RecoveryPolicy,
    /// Race / access-contract checking (see `gpu_sim::hazard`). Under
    /// `HazardMode::Check` every instrumented kernel launch records a
    /// shadow access trace, the device runs the happens-before checker
    /// over it, and findings accumulate on the plan
    /// ([`Plan::hazard_findings`](crate::plan::Plan::hazard_findings)).
    /// Off by default: tracing every access is far slower than the
    /// pure performance model.
    pub hazard: HazardMode,
}

impl Default for GpuOpts {
    fn default() -> Self {
        GpuOpts {
            method: Method::Auto,
            modeord: ModeOrder::default(),
            tuning: Tuning::default(),
            fine_sizing: FineSizing::default(),
            max_batch: 0,
            trace: None,
            recovery: RecoveryPolicy::default(),
            hazard: HazardMode::default(),
        }
    }
}

impl GpuOpts {
    /// Enable tracing into `trace` (builder-style).
    pub fn with_tracing(mut self, trace: &Trace) -> Self {
        self.trace = Some(trace.clone());
        self
    }

    /// Enable race / access-contract checking (builder-style).
    pub fn with_hazard_checking(mut self) -> Self {
        self.hazard = HazardMode::Check;
        self
    }

    /// Reject option values that cannot produce a working plan. Called
    /// by the plan builder before any device work happens, so bad
    /// options surface as typed errors instead of downstream panics or
    /// silent misbehaviour.
    pub fn validate(&self) -> Result<()> {
        self.tuning.validate()?;
        self.recovery.validate()?;
        Ok(())
    }
}

/// Paper-default bin sizes (Remark 1).
pub fn default_bin_size(dim: usize) -> [usize; 3] {
    match dim {
        1 => [1024, 1, 1],
        2 => [32, 32, 1],
        _ => [16, 16, 2],
    }
}

/// Shared-memory bytes needed by an SM subproblem: the padded bin
/// `(m_i + 2 ceil(w/2))^d` in complex working precision (eq. 13).
pub fn sm_shared_bytes(bin: [usize; 3], dim: usize, w: usize, complex_bytes: usize) -> usize {
    let pad = 2 * w.div_ceil(2);
    let mut cells = 1usize;
    for b in bin.iter().take(dim) {
        cells *= b + pad;
    }
    cells * complex_bytes
}

/// The brownout downgrade for a spec's spreading method: SM (and
/// Auto, which may resolve to SM) degrade to the globally-ordered
/// GM-sort path, which exercises different kernels and shared-memory
/// behaviour and so can dodge an SM-specific fault streak. GM and
/// GM-sort have no cheaper GPU sibling — `None` tells the serve layer
/// to fall through to its next degradation tier (CPU backend or
/// fast-fail).
pub fn degraded_method_for(spec: &nufft_common::TransformSpec) -> Option<Method> {
    match spec.method {
        Method::Sm | Method::Auto => Some(Method::GmSort),
        Method::Gm | Method::GmSort => None,
    }
}

/// Check whether SM spreading is feasible for this configuration
/// (paper Remark 2: fails for 3D double precision once w > 8).
pub fn sm_feasible(
    bin: [usize; 3],
    dim: usize,
    w: usize,
    complex_bytes: usize,
    budget: usize,
) -> bool {
    sm_shared_bytes(bin, dim, w, complex_bytes) <= budget
}

/// Resolve `Auto` into a concrete method for a type-1 spread.
pub fn resolve_spread_method(
    method: Method,
    bin: [usize; 3],
    dim: usize,
    w: usize,
    complex_bytes: usize,
    budget: usize,
) -> Result<Method> {
    match method {
        Method::Auto => {
            if sm_feasible(bin, dim, w, complex_bytes, budget) {
                Ok(Method::Sm)
            } else {
                Ok(Method::GmSort)
            }
        }
        Method::Sm => {
            if sm_feasible(bin, dim, w, complex_bytes, budget) {
                Ok(Method::Sm)
            } else {
                Err(NufftError::MethodUnavailable(format!(
                    "SM needs {} B shared memory (bin {bin:?}, w={w}), budget is {budget} B",
                    sm_shared_bytes(bin, dim, w, complex_bytes)
                )))
            }
        }
        m => Ok(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bin_defaults() {
        assert_eq!(default_bin_size(2), [32, 32, 1]);
        assert_eq!(default_bin_size(3), [16, 16, 2]);
    }

    #[test]
    fn shared_bytes_formula() {
        // 2D f32: (32+6)^2 * 8 = 11552 for w=6 (pad = 2*ceil(6/2) = 6)
        assert_eq!(sm_shared_bytes([32, 32, 1], 2, 6, 8), 38 * 38 * 8);
        // 3D f32 w=5: pad 6 -> (22)(22)(8) * 8
        assert_eq!(sm_shared_bytes([16, 16, 2], 3, 5, 8), 22 * 22 * 8 * 8);
    }

    #[test]
    fn remark2_3d_double_high_accuracy_infeasible() {
        // 3D double precision, w = 9 (eps ~ 1e-8): padded bin
        // (16+10)(16+10)(2+10) * 16 B = 129792 B > 49000 B
        assert!(!sm_feasible([16, 16, 2], 3, 9, 16, 49_000));
        // but w = 5 in 3D double fits? (22*22*8)*16 = 61952 > 49000 — no.
        // 3D double is tight even at moderate w, matching the paper's
        // decision to test only GM-sort there.
        assert!(!sm_feasible([16, 16, 2], 3, 5, 16, 49_000));
        // 3D single at w=6: (22*22*8)*8 = 30976 <= 49000 — feasible.
        assert!(sm_feasible([16, 16, 2], 3, 6, 8, 49_000));
        // 2D double at w=13: (44*44)*16 = 30976 <= 49000 — feasible
        // (paper runs SM for 2D double at high accuracy).
        assert!(sm_feasible([32, 32, 1], 2, 13, 16, 49_000));
    }

    #[test]
    fn auto_resolves_by_feasibility() {
        let m = resolve_spread_method(Method::Auto, [32, 32, 1], 2, 6, 8, 49_000).unwrap();
        assert_eq!(m, Method::Sm);
        let m = resolve_spread_method(Method::Auto, [16, 16, 2], 3, 9, 16, 49_000).unwrap();
        assert_eq!(m, Method::GmSort);
    }

    #[test]
    fn explicit_sm_fails_loudly_when_infeasible() {
        let r = resolve_spread_method(Method::Sm, [16, 16, 2], 3, 9, 16, 49_000);
        assert!(r.is_err());
    }

    #[test]
    fn explicit_gm_passes_through() {
        let m = resolve_spread_method(Method::Gm, [16, 16, 2], 3, 9, 16, 49_000).unwrap();
        assert_eq!(m, Method::Gm);
    }

    #[test]
    fn default_opts_validate() {
        assert!(GpuOpts::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_msub() {
        let opts = GpuOpts {
            tuning: Tuning {
                msub: 0,
                ..Tuning::default()
            },
            ..GpuOpts::default()
        };
        assert_eq!(opts.validate(), Err(NufftError::BadMsub(0)));
    }

    #[test]
    fn validate_rejects_non_upsampling_sigma() {
        for bad in [1.0, 0.5, 0.0, -2.0, f64::NAN] {
            let opts = GpuOpts {
                tuning: Tuning {
                    upsampfac: bad,
                    ..Tuning::default()
                },
                ..GpuOpts::default()
            };
            match opts.validate() {
                Err(NufftError::BadUpsampfac(s)) => {
                    assert!(s == bad || (s.is_nan() && bad.is_nan()))
                }
                other => panic!("sigma {bad} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_zero_bin_entry() {
        let opts = GpuOpts {
            tuning: Tuning {
                bin_size: Some([32, 0, 1]),
                ..Tuning::default()
            },
            ..GpuOpts::default()
        };
        assert_eq!(opts.validate(), Err(NufftError::BadBinSize([32, 0, 1])));
    }

    #[test]
    fn validate_rejects_zero_threads() {
        let opts = GpuOpts {
            tuning: Tuning {
                threads_per_block: 0,
                ..Tuning::default()
            },
            ..GpuOpts::default()
        };
        assert!(matches!(opts.validate(), Err(NufftError::BadOptions(_))));
    }

    #[test]
    fn validate_rejects_zero_shared_mem_budget() {
        let opts = GpuOpts {
            tuning: Tuning {
                shared_mem_budget: 0,
                ..Tuning::default()
            },
            ..GpuOpts::default()
        };
        assert!(matches!(opts.validate(), Err(NufftError::BadOptions(_))));
    }

    #[test]
    fn default_tuning_matches_paper_values() {
        let t = Tuning::default();
        assert_eq!(t.msub, 1024);
        assert_eq!(t.upsampfac, 2.0);
        assert_eq!(t.threads_per_block, 128);
        assert_eq!(t.shared_mem_budget, 49_000);
        assert_eq!(t.bin_size, None);
        assert_eq!(t.kernel_eval, KernelEval::Auto);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_recovery_backoff() {
        let opts = GpuOpts {
            recovery: RecoveryPolicy {
                backoff: f64::NAN,
                ..RecoveryPolicy::default()
            },
            ..GpuOpts::default()
        };
        assert!(matches!(opts.validate(), Err(NufftError::BadOptions(_))));
    }
}
