//! Options and spreading-method selection, mirroring `cufinufft_opts`.

use crate::recovery::RecoveryPolicy;
use gpu_sim::{HazardMode, Trace};
use nufft_common::error::{NufftError, Result};
use nufft_common::smooth::FineSizing;

/// Spreading / interpolation method (paper Sec. III).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Method {
    /// Choose automatically: SM for type 1 when feasible, GM-sort
    /// otherwise (and always for type 2 interpolation).
    Auto,
    /// Input-driven global-memory spreading in user point order (the
    /// CUNFFT-style baseline).
    Gm,
    /// GM plus bin-sorting of the points for coalesced access.
    GmSort,
    /// Shared-memory subproblems with the `M_sub` load-balancing cap
    /// (type 1 only; falls back to GM-sort for interpolation).
    Sm,
}

/// Ordering of the Fourier-mode arrays exchanged with the caller,
/// mirroring the C API's `modeord` option.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ModeOrder {
    /// Ascending frequency `-N/2 .. N/2-1` (CMCL order; `modeord = 0`).
    #[default]
    Centered,
    /// FFT-style order `0 .. N/2-1, -N/2 .. -1` (`modeord = 1`).
    Fft,
}

/// Plan options (defaults follow the paper: sigma = 2, M_sub = 1024,
/// bins 32x32 in 2D and 16x16x2 in 3D — Remark 1).
#[derive(Clone, Debug)]
pub struct GpuOpts {
    pub method: Method,
    /// Mode ordering of the coefficient arrays.
    pub modeord: ModeOrder,
    /// Bin size in fine-grid cells; `None` = paper defaults per dim.
    pub bin_size: Option<[usize; 3]>,
    /// Maximum nonuniform points per SM subproblem.
    pub msub: usize,
    /// Upsampling factor sigma.
    pub upsampfac: f64,
    /// Fine-grid sizing policy: round up to a 5-smooth FFT size (paper
    /// rule, the default) or keep `max(ceil(sigma*n), 2w)` exactly so
    /// prime sizes exercise the Bluestein FFT path (conformance use).
    pub fine_sizing: FineSizing,
    /// Threads per block for the GM kernels.
    pub threads_per_block: usize,
    /// Shared-memory budget per block used in the SM feasibility check.
    /// The paper quotes 49 kB (Remark 2 uses 49000).
    pub shared_mem_budget: usize,
    /// Maximum transforms per pipelined chunk in `execute_many`
    /// (the C API's `maxbatchsize`); 0 picks a heuristic that yields
    /// several chunks so transfers can hide under compute.
    pub max_batch: usize,
    /// Tracing session the plan records into (see `nufft-trace`). When
    /// set, the plan attaches it to the device, opens host spans around
    /// build/setpts/execute, records stage-level device spans, and
    /// publishes load-balance counters. `None` disables all of it.
    pub trace: Option<Trace>,
    /// Fault-recovery behavior: bounded retry of transient device
    /// faults, OOM-driven chunk shrinking in `execute_many`, and
    /// (opt-in) SM-to-GM-sort method fallback. See
    /// [`RecoveryPolicy`]; `RecoveryPolicy::none()` restores
    /// fail-fast semantics.
    pub recovery: RecoveryPolicy,
    /// Race / access-contract checking (see `gpu_sim::hazard`). Under
    /// `HazardMode::Check` every instrumented kernel launch records a
    /// shadow access trace, the device runs the happens-before checker
    /// over it, and findings accumulate on the plan
    /// ([`Plan::hazard_findings`](crate::plan::Plan::hazard_findings)).
    /// Off by default: tracing every access is far slower than the
    /// pure performance model.
    pub hazard: HazardMode,
}

impl Default for GpuOpts {
    fn default() -> Self {
        GpuOpts {
            method: Method::Auto,
            modeord: ModeOrder::default(),
            bin_size: None,
            msub: 1024,
            upsampfac: 2.0,
            fine_sizing: FineSizing::default(),
            threads_per_block: 128,
            shared_mem_budget: 49_000,
            max_batch: 0,
            trace: None,
            recovery: RecoveryPolicy::default(),
            hazard: HazardMode::default(),
        }
    }
}

impl GpuOpts {
    /// Enable tracing into `trace` (builder-style).
    pub fn with_tracing(mut self, trace: &Trace) -> Self {
        self.trace = Some(trace.clone());
        self
    }

    /// Enable race / access-contract checking (builder-style).
    pub fn with_hazard_checking(mut self) -> Self {
        self.hazard = HazardMode::Check;
        self
    }

    /// Reject option values that cannot produce a working plan. Called
    /// by the plan builder before any device work happens, so bad
    /// options surface as typed errors instead of downstream panics or
    /// silent misbehaviour.
    pub fn validate(&self) -> Result<()> {
        if self.msub == 0 {
            return Err(NufftError::BadMsub(self.msub));
        }
        if self.upsampfac <= 1.0 || self.upsampfac.is_nan() {
            return Err(NufftError::BadUpsampfac(self.upsampfac));
        }
        if let Some(b) = self.bin_size {
            if b.contains(&0) {
                return Err(NufftError::BadBinSize(b));
            }
        }
        if self.threads_per_block == 0 {
            return Err(NufftError::BadOptions(
                "threads_per_block must be positive".into(),
            ));
        }
        if self.shared_mem_budget == 0 {
            return Err(NufftError::BadOptions(
                "shared_mem_budget must be positive".into(),
            ));
        }
        self.recovery.validate()?;
        Ok(())
    }
}

/// Paper-default bin sizes (Remark 1).
pub fn default_bin_size(dim: usize) -> [usize; 3] {
    match dim {
        1 => [1024, 1, 1],
        2 => [32, 32, 1],
        _ => [16, 16, 2],
    }
}

/// Shared-memory bytes needed by an SM subproblem: the padded bin
/// `(m_i + 2 ceil(w/2))^d` in complex working precision (eq. 13).
pub fn sm_shared_bytes(bin: [usize; 3], dim: usize, w: usize, complex_bytes: usize) -> usize {
    let pad = 2 * w.div_ceil(2);
    let mut cells = 1usize;
    for b in bin.iter().take(dim) {
        cells *= b + pad;
    }
    cells * complex_bytes
}

/// Check whether SM spreading is feasible for this configuration
/// (paper Remark 2: fails for 3D double precision once w > 8).
pub fn sm_feasible(
    bin: [usize; 3],
    dim: usize,
    w: usize,
    complex_bytes: usize,
    budget: usize,
) -> bool {
    sm_shared_bytes(bin, dim, w, complex_bytes) <= budget
}

/// Resolve `Auto` into a concrete method for a type-1 spread.
pub fn resolve_spread_method(
    method: Method,
    bin: [usize; 3],
    dim: usize,
    w: usize,
    complex_bytes: usize,
    budget: usize,
) -> Result<Method> {
    match method {
        Method::Auto => {
            if sm_feasible(bin, dim, w, complex_bytes, budget) {
                Ok(Method::Sm)
            } else {
                Ok(Method::GmSort)
            }
        }
        Method::Sm => {
            if sm_feasible(bin, dim, w, complex_bytes, budget) {
                Ok(Method::Sm)
            } else {
                Err(NufftError::MethodUnavailable(format!(
                    "SM needs {} B shared memory (bin {bin:?}, w={w}), budget is {budget} B",
                    sm_shared_bytes(bin, dim, w, complex_bytes)
                )))
            }
        }
        m => Ok(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bin_defaults() {
        assert_eq!(default_bin_size(2), [32, 32, 1]);
        assert_eq!(default_bin_size(3), [16, 16, 2]);
    }

    #[test]
    fn shared_bytes_formula() {
        // 2D f32: (32+6)^2 * 8 = 11552 for w=6 (pad = 2*ceil(6/2) = 6)
        assert_eq!(sm_shared_bytes([32, 32, 1], 2, 6, 8), 38 * 38 * 8);
        // 3D f32 w=5: pad 6 -> (22)(22)(8) * 8
        assert_eq!(sm_shared_bytes([16, 16, 2], 3, 5, 8), 22 * 22 * 8 * 8);
    }

    #[test]
    fn remark2_3d_double_high_accuracy_infeasible() {
        // 3D double precision, w = 9 (eps ~ 1e-8): padded bin
        // (16+10)(16+10)(2+10) * 16 B = 129792 B > 49000 B
        assert!(!sm_feasible([16, 16, 2], 3, 9, 16, 49_000));
        // but w = 5 in 3D double fits? (22*22*8)*16 = 61952 > 49000 — no.
        // 3D double is tight even at moderate w, matching the paper's
        // decision to test only GM-sort there.
        assert!(!sm_feasible([16, 16, 2], 3, 5, 16, 49_000));
        // 3D single at w=6: (22*22*8)*8 = 30976 <= 49000 — feasible.
        assert!(sm_feasible([16, 16, 2], 3, 6, 8, 49_000));
        // 2D double at w=13: (44*44)*16 = 30976 <= 49000 — feasible
        // (paper runs SM for 2D double at high accuracy).
        assert!(sm_feasible([32, 32, 1], 2, 13, 16, 49_000));
    }

    #[test]
    fn auto_resolves_by_feasibility() {
        let m = resolve_spread_method(Method::Auto, [32, 32, 1], 2, 6, 8, 49_000).unwrap();
        assert_eq!(m, Method::Sm);
        let m = resolve_spread_method(Method::Auto, [16, 16, 2], 3, 9, 16, 49_000).unwrap();
        assert_eq!(m, Method::GmSort);
    }

    #[test]
    fn explicit_sm_fails_loudly_when_infeasible() {
        let r = resolve_spread_method(Method::Sm, [16, 16, 2], 3, 9, 16, 49_000);
        assert!(r.is_err());
    }

    #[test]
    fn explicit_gm_passes_through() {
        let m = resolve_spread_method(Method::Gm, [16, 16, 2], 3, 9, 16, 49_000).unwrap();
        assert_eq!(m, Method::Gm);
    }

    #[test]
    fn default_opts_validate() {
        assert!(GpuOpts::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_msub() {
        let opts = GpuOpts {
            msub: 0,
            ..GpuOpts::default()
        };
        assert_eq!(opts.validate(), Err(NufftError::BadMsub(0)));
    }

    #[test]
    fn validate_rejects_non_upsampling_sigma() {
        for bad in [1.0, 0.5, 0.0, -2.0, f64::NAN] {
            let opts = GpuOpts {
                upsampfac: bad,
                ..GpuOpts::default()
            };
            match opts.validate() {
                Err(NufftError::BadUpsampfac(s)) => {
                    assert!(s == bad || (s.is_nan() && bad.is_nan()))
                }
                other => panic!("sigma {bad} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_zero_bin_entry() {
        let opts = GpuOpts {
            bin_size: Some([32, 0, 1]),
            ..GpuOpts::default()
        };
        assert_eq!(opts.validate(), Err(NufftError::BadBinSize([32, 0, 1])));
    }

    #[test]
    fn validate_rejects_zero_threads() {
        let opts = GpuOpts {
            threads_per_block: 0,
            ..GpuOpts::default()
        };
        assert!(matches!(opts.validate(), Err(NufftError::BadOptions(_))));
    }

    #[test]
    fn validate_rejects_zero_shared_mem_budget() {
        let opts = GpuOpts {
            shared_mem_budget: 0,
            ..GpuOpts::default()
        };
        assert!(matches!(opts.validate(), Err(NufftError::BadOptions(_))));
    }

    #[test]
    fn validate_rejects_bad_recovery_backoff() {
        let opts = GpuOpts {
            recovery: RecoveryPolicy {
                backoff: f64::NAN,
                ..RecoveryPolicy::default()
            },
            ..GpuOpts::default()
        };
        assert!(matches!(opts.validate(), Err(NufftError::BadOptions(_))));
    }
}
