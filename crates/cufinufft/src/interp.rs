//! GPU interpolation (type 2 step iii) — paper Sec. III-B.
//!
//! One thread per target point, in either user order (**GM**) or
//! bin-sorted order (**GM-sort**). Reads carry no write conflicts, so the
//! only effect of sorting is read coalescing; there is no SM variant
//! (the paper argues its benefit would be limited).

use crate::spread::{footprint, Footprint, PtsRef, SpreadInputs, MAX_W};
use gpu_sim::{Device, DeviceFault, LaunchConfig, LaunchReport, Precision, Scope};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use nufft_kernels::Kernel1d;

const FLOPS_PER_EVAL: u64 = 30;
const FLOPS_PER_CELL: u64 = 8;

/// Interpolate the fine grid at the points listed in `order`, writing
/// `out[j] = value at point j` (original indexing).
#[allow(clippy::too_many_arguments)]
pub fn interp_gm<T: Real, K: Kernel1d>(
    dev: &Device,
    name: &str,
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    grid: &[Complex<T>],
    order: &[u32],
    out: &mut [Complex<T>],
    threads_per_block: usize,
) -> Result<LaunchReport, DeviceFault> {
    assert_eq!(grid.len(), fine.total());
    assert_eq!(out.len(), order.len());
    let cb = std::mem::size_of::<Complex<T>>();
    let prec = if T::IS_DOUBLE {
        Precision::Double
    } else {
        Precision::Single
    };
    let mut k = dev.kernel(name, LaunchConfig::new(prec, threads_per_block))?;
    // traced buffers (no-ops unless the device is in hazard mode): the
    // grid is only read, each out[j] is written by exactly one thread
    let traced = k.access_traced();
    let tb_pts = k.trace_buffer("points", Scope::Global, T::BYTES);
    let tb_grid = k.trace_buffer("fine_grid", Scope::Global, cb / 2);
    let tb_out = k.trace_buffer("out", Scope::Global, cb / 2);
    let w = kernel.width();
    let dim = pts.dim;
    let [n1, n2, _] = fine.n;
    let sector_bytes = dev.props().sector_bytes;
    let m = order.len();
    let n_blocks = m.div_ceil(threads_per_block);
    let pts = *pts;
    // One task per thread block on the host pool (bit-identical to
    // serial; see `Kernel::run_blocks`). Each point's value is written by
    // exactly one thread, so the per-block result is a disjoint list of
    // (j, value) writes applied in block-id order.
    let body = |bid: usize, b: &mut gpu_sim::BlockAcc<'_>| {
        let block = &order[bid * threads_per_block..m.min((bid + 1) * threads_per_block)];
        let mut addrs = [0usize; 32];
        let mut fps: Vec<Footprint> = Vec::with_capacity(32);
        let mut warp_sectors: Vec<usize> = Vec::new();
        let mut writes: Vec<(usize, Complex<T>)> = Vec::with_capacity(block.len());
        for (wi, warp) in block.chunks(32).enumerate() {
            let lane0 = (wi * 32) as u32;
            // point coordinate loads
            for arr in 0..dim {
                for (l, &j) in warp.iter().enumerate() {
                    addrs[l] = j as usize * T::BYTES + arr;
                    b.trace_read(tb_pts, lane0 + l as u32, (j as u64) * 4 + arr as u64);
                }
                b.warp_access(&addrs[..warp.len()]);
            }
            b.flops(warp.len() as u64 * (dim * w) as u64 * FLOPS_PER_EVAL);
            fps.clear();
            fps.extend(
                warp.iter()
                    .map(|&j| footprint(kernel, fine, &pts, j as usize)),
            );
            let [wd1, wd2, wd3] = fps[0].wd;
            let steps = (wd1 * wd2 * wd3) as u64;
            // loads are L1-cached within the warp's footprint (unlike
            // atomics, which bypass L1): count each sector once per warp
            warp_sectors.clear();
            for t3 in 0..wd3 {
                for t2 in 0..wd2 {
                    for t1 in 0..wd1 {
                        for fp in fps.iter() {
                            let cell = fp.idx[0][t1] + n1 * (fp.idx[1][t2] + n2 * fp.idx[2][t3]);
                            warp_sectors.push(cell * cb / sector_bytes);
                        }
                    }
                }
            }
            b.flops(steps * fps.len() as u64 * FLOPS_PER_CELL);
            warp_sectors.sort_unstable();
            warp_sectors.dedup();
            b.l2_sector_count(warp_sectors.len() as u64);
            // DRAM-side grid reads, row-wise through the line model
            for fp in fps.iter() {
                for t3 in 0..fp.wd[2] {
                    for t2 in 0..fp.wd[1] {
                        let row = n1 * (fp.idx[1][t2] + n2 * fp.idx[2][t3]);
                        crate::spread::account_row(b, row, fp.l0[0], fp.wd[0], n1, cb, false);
                    }
                }
            }
            // output writes c[t(j)] — scattered when sorted
            for (l, &j) in warp.iter().enumerate() {
                addrs[l] = j as usize * cb;
            }
            b.warp_access(&addrs[..warp.len()]);
            // functional interpolation
            for (l, (&j, fp)) in warp.iter().zip(fps.iter()).enumerate() {
                let lane = lane0 + l as u32;
                let mut acc = Complex::<T>::ZERO;
                for t3 in 0..fp.wd[2] {
                    for t2 in 0..fp.wd[1] {
                        let k23 = fp.ker[1][t2] * fp.ker[2][t3];
                        let base = fp.idx[2][t3] * n1 * n2 + fp.idx[1][t2] * n1;
                        let mut row = Complex::<T>::ZERO;
                        for t1 in 0..fp.wd[0] {
                            row += grid[base + fp.idx[0][t1]].scale(T::from_f64(fp.ker[0][t1]));
                            if traced {
                                let cell = (base + fp.idx[0][t1]) as u64;
                                b.trace_read(tb_grid, lane, 2 * cell);
                                b.trace_read(tb_grid, lane, 2 * cell + 1);
                            }
                        }
                        acc += row.scale(T::from_f64(k23));
                    }
                }
                writes.push((j as usize, acc));
                b.trace_write(tb_out, lane, 2 * j as u64);
                b.trace_write(tb_out, lane, 2 * j as u64 + 1);
            }
        }
        writes
    };
    k.run_blocks(n_blocks, body, |_bid, writes| {
        for (j, v) in writes {
            out[j] = v;
        }
    });
    Ok(dev.launch_end(k))
}

/// Shared-memory interpolation (the variant the paper chose NOT to ship;
/// Sec. III-B argues its benefit would be limited because reads carry no
/// write conflicts). Implemented here as an ablation: each subproblem
/// block stages its padded bin into shared memory with coalesced global
/// reads, then its points gather from shared. Compare against
/// [`interp_gm`] with a bin-sorted order to reproduce the paper's
/// design-decision evidence.
#[allow(clippy::too_many_arguments)]
pub fn interp_sm<T: Real, K: Kernel1d>(
    dev: &Device,
    kernel: &K,
    fine: Shape,
    pts: &PtsRef<'_, T>,
    grid: &[Complex<T>],
    perm: &[u32],
    layout: &crate::bins::BinLayout,
    subproblems: &[crate::bins::Subproblem],
    out: &mut [Complex<T>],
) -> Result<LaunchReport, DeviceFault> {
    assert_eq!(grid.len(), fine.total());
    assert_eq!(out.len(), perm.len());
    let cb = std::mem::size_of::<Complex<T>>();
    let prec = if T::IS_DOUBLE {
        Precision::Double
    } else {
        Precision::Single
    };
    let w = kernel.width();
    let pad = 2 * w.div_ceil(2);
    let dim = pts.dim;
    let mut p = [1usize; 3];
    for (pi, &bs) in p.iter_mut().zip(&layout.bin_size).take(dim) {
        *pi = bs + pad;
    }
    let padded_cells = p[0] * p[1] * p[2];
    let shared_bytes = (padded_cells * cb).min(dev.props().shared_mem_per_block);
    let mut k = dev.kernel(
        "interp_SM",
        LaunchConfig::new(prec, 256).with_shared(shared_bytes),
    )?;
    let [n1, n2, n3] = fine.n;
    let half = (pad / 2) as i64;
    let mut addrs = [0usize; 32];
    let mut idx = [[0usize; MAX_W]; 3];
    for sp in subproblems {
        let mut b = k.block();
        let o = layout.origin(sp.bin as usize);
        let delta = [
            o[0] as i64 - half * (dim >= 1) as i64,
            o[1] as i64 - half * (dim >= 2) as i64,
            o[2] as i64 - half * (dim >= 3) as i64,
        ];
        // stage the padded bin: coalesced global reads + shared writes
        for i3 in 0..p[2] {
            let g3 = (delta[2] + i3 as i64).rem_euclid(n3 as i64) as usize;
            for i2 in 0..p[1] {
                let g2 = (delta[1] + i2 as i64).rem_euclid(n2 as i64) as usize;
                let row_base = (g3 * n1 * n2 + g2 * n1) * cb;
                b.stream_span(row_base, p[0] * cb, false);
            }
        }
        b.shared_ops(padded_cells as u64);
        let members = &perm[sp.start as usize..(sp.start + sp.len) as usize];
        for warp in members.chunks(32) {
            for arr in 0..dim {
                for (l, &j) in warp.iter().enumerate() {
                    addrs[l] = j as usize * T::BYTES + arr;
                }
                b.warp_access(&addrs[..warp.len()]);
            }
            b.flops(warp.len() as u64 * (dim * w) as u64 * 30);
            for &j in warp {
                let fp = footprint(kernel, fine, pts, j as usize);
                // shared-memory gathers for every cell of the footprint
                b.shared_reads((fp.wd[0] * fp.wd[1] * fp.wd[2]) as u64);
                b.flops((fp.wd[0] * fp.wd[1] * fp.wd[2]) as u64 * 8);
                // functional evaluation straight from the global grid
                for i in 0..3 {
                    let n = [n1, n2, n3][i] as i64;
                    for (t, slot) in idx[i][..fp.wd[i]].iter_mut().enumerate() {
                        *slot = (fp.l0[i] + t as i64).rem_euclid(n) as usize;
                    }
                }
                let mut acc = Complex::<T>::ZERO;
                for t3 in 0..fp.wd[2] {
                    for t2 in 0..fp.wd[1] {
                        let k23 = fp.ker[1][t2] * fp.ker[2][t3];
                        let base = idx[2][t3] * n1 * n2 + idx[1][t2] * n1;
                        let mut row = Complex::<T>::ZERO;
                        for t1 in 0..fp.wd[0] {
                            row += grid[base + idx[0][t1]].scale(T::from_f64(fp.ker[0][t1]));
                        }
                        acc += row.scale(T::from_f64(k23));
                    }
                }
                out[j as usize] = acc;
            }
            // output writes
            for (l, &j) in warp.iter().enumerate() {
                addrs[l] = j as usize * cb;
            }
            b.warp_access(&addrs[..warp.len()]);
        }
        b.finish();
    }
    Ok(dev.launch_end(k))
}

/// Interpolate `bc` stacked fine grids at the registered points into
/// `bc` stacked output vectors (the `ntransf` layout; see
/// [`spread_batch`](crate::spread::spread_batch)). Interpolation has no
/// SM variant, so the method only decides the point order: bin-sorted
/// when a sort is available and the method wants it, user order
/// otherwise.
#[allow(clippy::too_many_arguments)]
pub fn interp_batch<T: Real, K: Kernel1d>(
    dev: &Device,
    kernel: &K,
    fine: Shape,
    method: crate::opts::Method,
    threads_per_block: usize,
    inputs: &SpreadInputs<'_, T>,
    bc: usize,
    grids: &[Complex<T>],
    out: &mut [Complex<T>],
) -> Result<(), DeviceFault> {
    let m = inputs.pts.len();
    let nf = fine.total();
    assert!(grids.len() >= bc * nf && out.len() >= bc * m);
    let _span = nufft_trace::span!(
        "interp",
        dim = inputs.pts.dim,
        method = format!("{method:?}"),
        m = m,
        bc = bc,
    );
    let (name, order): (&str, std::borrow::Cow<'_, [u32]>) = match (inputs.sort_perm, method) {
        (_, crate::opts::Method::Gm) | (None, _) => {
            ("interp_GM", (0..m as u32).collect::<Vec<u32>>().into())
        }
        (Some(perm), _) => ("interp_GM-sort", perm.into()),
    };
    for v in 0..bc {
        interp_gm(
            dev,
            name,
            kernel,
            fine,
            &inputs.pts,
            &grids[v * nf..(v + 1) * nf],
            &order,
            &mut out[v * m..(v + 1) * m],
            threads_per_block,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::gpu_bin_sort;
    use nufft_common::workload::{gen_points, gen_strengths, PointDist, Points};
    use nufft_kernels::EsKernel;

    fn pts_ref<T: Real>(p: &Points<T>) -> PtsRef<'_, T> {
        PtsRef {
            coords: [&p.coords[0], &p.coords[1], &p.coords[2]],
            dim: p.dim,
        }
    }

    #[test]
    fn sorted_and_natural_order_agree_exactly() {
        let dev = Device::v100();
        let fine = Shape::d2(64, 64);
        let kernel = EsKernel::with_width(5);
        let m = 700;
        let pts = gen_points::<f64>(PointDist::Rand, 2, m, fine, 21);
        let grid = gen_strengths::<f64>(fine.total(), 22);
        let natural: Vec<u32> = (0..m as u32).collect();
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let mut a = vec![Complex::<f64>::ZERO; m];
        let mut b = vec![Complex::<f64>::ZERO; m];
        interp_gm(
            &dev,
            "interp_GM",
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &natural,
            &mut a,
            128,
        )
        .unwrap();
        interp_gm(
            &dev,
            "interp_GMs",
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &sort.perm,
            &mut b,
            128,
        )
        .unwrap();
        // interpolation is read-only per point: results are bit-identical
        for j in 0..m {
            assert_eq!(a[j].re, b[j].re);
            assert_eq!(a[j].im, b[j].im);
        }
    }

    #[test]
    fn interp_is_adjoint_of_spread() {
        use crate::spread::spread_gm;
        let dev = Device::v100();
        let fine = Shape::d2(32, 48);
        let kernel = EsKernel::with_width(6);
        let m = 150;
        let pts = gen_points::<f64>(PointDist::Rand, 2, m, fine, 31);
        let cs = gen_strengths::<f64>(m, 32);
        let g = gen_strengths::<f64>(fine.total(), 33);
        let order: Vec<u32> = (0..m as u32).collect();
        let mut sp = vec![Complex::<f64>::ZERO; fine.total()];
        spread_gm(
            &dev,
            "s",
            &kernel,
            fine,
            &pts_ref(&pts),
            &cs,
            &order,
            &mut sp,
            128,
            1.0,
        )
        .unwrap();
        let mut it = vec![Complex::<f64>::ZERO; m];
        interp_gm(
            &dev,
            "i",
            &kernel,
            fine,
            &pts_ref(&pts),
            &g,
            &order,
            &mut it,
            128,
        )
        .unwrap();
        let lhs = nufft_common::metrics::inner(&sp, &g);
        let rhs = nufft_common::metrics::inner(&cs, &it);
        assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    #[test]
    fn sorting_speeds_up_large_grid_interp() {
        // same regime as Fig. 3's right-hand side: grid well beyond L2,
        // density high enough for line reuse among sorted neighbours
        let dev = Device::v100();
        let fine = Shape::d2(2048, 2048);
        let kernel = EsKernel::with_width(6);
        let m = 500_000;
        let pts = gen_points::<f32>(PointDist::Rand, 2, m, fine, 41);
        let grid = vec![Complex::<f32>::ZERO; fine.total()];
        let natural: Vec<u32> = (0..m as u32).collect();
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let mut a = vec![Complex::<f32>::ZERO; m];
        let r_gm = interp_gm(
            &dev,
            "gm",
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &natural,
            &mut a,
            128,
        )
        .unwrap();
        let r_gs = interp_gm(
            &dev,
            "gms",
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &sort.perm,
            &mut a,
            128,
        )
        .unwrap();
        assert!(
            r_gs.duration < r_gm.duration / 1.5,
            "sorted {} vs natural {}",
            r_gs.duration,
            r_gm.duration
        );
    }

    #[test]
    fn sm_interp_matches_gm_interp_exactly() {
        use crate::bins::{build_subproblems, gpu_bin_sort};
        let dev = Device::v100();
        let fine = Shape::d2(128, 128);
        let kernel = EsKernel::with_width(6);
        let m = 2000;
        let pts = gen_points::<f64>(PointDist::Rand, 2, m, fine, 61);
        let grid = gen_strengths::<f64>(fine.total(), 62);
        let sort = gpu_bin_sort(&dev, &pts, fine, [32, 32, 1]);
        let subs = build_subproblems(&dev, &sort, 1024);
        let mut a = vec![Complex::<f64>::ZERO; m];
        let mut b = vec![Complex::<f64>::ZERO; m];
        interp_gm(
            &dev,
            "g",
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &sort.perm,
            &mut a,
            128,
        )
        .unwrap();
        interp_sm(
            &dev,
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &sort.perm,
            &sort.layout,
            &subs,
            &mut b,
        )
        .unwrap();
        for j in 0..m {
            assert_eq!(a[j].re, b[j].re);
            assert_eq!(a[j].im, b[j].im);
        }
    }

    #[test]
    fn no_atomics_in_interp() {
        let dev = Device::v100();
        let fine = Shape::d2(32, 32);
        let kernel = EsKernel::with_width(4);
        let pts = gen_points::<f32>(PointDist::Rand, 2, 100, fine, 51);
        let grid = vec![Complex::<f32>::ZERO; fine.total()];
        let order: Vec<u32> = (0..100).collect();
        let mut out = vec![Complex::<f32>::ZERO; 100];
        let r = interp_gm(
            &dev,
            "i",
            &kernel,
            fine,
            &pts_ref(&pts),
            &grid,
            &order,
            &mut out,
            128,
        )
        .unwrap();
        assert_eq!(r.global_atomics, 0);
        assert_eq!(r.atomic_hotspot_count, 0);
    }
}
