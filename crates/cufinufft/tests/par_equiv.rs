//! Bitwise equivalence of parallel and serial block execution through
//! full GPU plans (DESIGN.md §5l): the simulator's host thread pool
//! must be an implementation detail — same transform results to the
//! bit, same launch reports, at any `host_parallelism`.
//!
//! The default tier runs a fixed serial-vs-parallel matrix; `PAR=full`
//! widens it to a multi-seed, multi-method sweep (wired into
//! `scripts/check.sh`).

use cufinufft::{Method, Plan, TransformType};
use gpu_sim::Device;
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, Points, Real};

/// Run one type-1 + type-2 pair on a device with the given host
/// parallelism; return both outputs.
#[allow(clippy::too_many_arguments)]
fn run_pair<T: Real>(
    threads: usize,
    modes: &[usize],
    m: usize,
    eps: f64,
    method: Method,
    dist: PointDist,
    seed: u64,
) -> (Vec<Complex<T>>, Vec<Complex<T>>) {
    let dev = Device::v100();
    dev.set_host_parallelism(threads);
    let total: usize = modes.iter().product();

    let mut p1 = Plan::<T>::builder(TransformType::Type1, modes)
        .eps(eps)
        .method(method)
        .build(&dev)
        .unwrap();
    let pts: Points<T> = gen_points(dist, modes.len(), m, p1.fine_grid_shape(), seed);
    let cs = gen_strengths::<T>(m, seed + 1);
    p1.set_pts(&pts).unwrap();
    let mut out1 = vec![Complex::<T>::ZERO; total];
    p1.execute(&cs, &mut out1).unwrap();

    let mut p2 = Plan::<T>::builder(TransformType::Type2, modes)
        .eps(eps)
        .method(method)
        .build(&dev)
        .unwrap();
    let f = gen_coeffs::<T>(total, seed + 2);
    p2.set_pts(&pts).unwrap();
    let mut out2 = vec![Complex::<T>::ZERO; m];
    p2.execute(&f, &mut out2).unwrap();

    (out1, out2)
}

fn assert_bits_eq<T: Real>(a: &[Complex<T>], b: &[Complex<T>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            x.re.to_f64().to_bits() == y.re.to_f64().to_bits()
                && x.im.to_f64().to_bits() == y.im.to_f64().to_bits(),
            "{what}[{i}]: {x:?} (serial) != {y:?} (parallel)"
        );
    }
}

fn check_case<T: Real>(modes: &[usize], m: usize, eps: f64, method: Method, seed: u64) {
    let dist = if seed.is_multiple_of(2) {
        PointDist::Rand
    } else {
        PointDist::Cluster
    };
    let (s1, s2) = run_pair::<T>(1, modes, m, eps, method, dist, seed);
    for threads in [2usize, 5, 8] {
        let (p1, p2) = run_pair::<T>(threads, modes, m, eps, method, dist, seed);
        let tag = format!("{method:?} modes={modes:?} seed={seed} threads={threads}");
        assert_bits_eq(&s1, &p1, &format!("type1 {tag}"));
        assert_bits_eq(&s2, &p2, &format!("type2 {tag}"));
    }
}

#[test]
fn parallel_blocks_match_serial_bitwise_2d() {
    check_case::<f64>(&[32, 28], 700, 1e-9, Method::GmSort, 40);
    check_case::<f32>(&[24, 24], 500, 1e-5, Method::Sm, 41);
}

#[test]
fn parallel_blocks_match_serial_bitwise_3d() {
    check_case::<f64>(&[12, 10, 8], 400, 1e-7, Method::GmSort, 42);
    check_case::<f64>(&[10, 10, 10], 300, 1e-6, Method::Gm, 43);
}

/// Widened multi-seed sweep, run when `PAR=full` (see scripts/check.sh).
#[test]
fn parallel_blocks_full_sweep() {
    if std::env::var("PAR").map(|v| v == "full").unwrap_or(false) {
        for seed in 50..56 {
            for method in [Method::Gm, Method::GmSort, Method::Sm] {
                check_case::<f64>(&[20, 18], 450, 1e-8, method, seed);
                check_case::<f32>(&[16, 16], 350, 1e-4, method, seed + 100);
            }
            check_case::<f64>(&[8, 9, 7], 250, 1e-6, Method::GmSort, seed + 200);
        }
    } else {
        eprintln!("PAR!=full: skipping widened sweep (default matrix still ran)");
    }
}
