//! End-to-end correctness of the GPU plan: accuracy against direct sums,
//! agreement across spreading methods and with the CPU library, plan
//! reuse, timing/memory reporting semantics.

use cufinufft::{GpuOpts, Method, Plan, TransformType};
use gpu_sim::Device;
use nufft_common::metrics::rel_l2;
use nufft_common::reference::{type1_direct, type2_direct};
use nufft_common::workload::{gen_coeffs, gen_points, gen_strengths, PointDist};
use nufft_common::{Complex, NufftError, Points, Real, Shape};

fn run_t1<T: Real>(
    modes: &[usize],
    m: usize,
    eps: f64,
    method: Method,
    dist: PointDist,
    seed: u64,
) -> (Vec<Complex<T>>, Points<T>, Vec<Complex<T>>) {
    let dev = Device::v100();
    let mut plan = Plan::<T>::builder(TransformType::Type1, modes)
        .eps(eps)
        .method(method)
        .build(&dev)
        .unwrap();
    let pts: Points<T> = gen_points(dist, modes.len(), m, plan.fine_grid_shape(), seed);
    let cs = gen_strengths::<T>(m, seed + 1);
    plan.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<T>::ZERO; modes.iter().product()];
    plan.execute(&cs, &mut out).unwrap();
    (out, pts, cs)
}

#[test]
fn type1_2d_all_methods_meet_tolerance() {
    let modes = [24usize, 20];
    let shape = Shape::from_slice(&modes);
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        for eps in [1e-3, 1e-7, 1e-11] {
            let (out, pts, cs) = run_t1::<f64>(&modes, 400, eps, method, PointDist::Rand, 10);
            let want = type1_direct(&pts, &cs, shape, -1);
            let err = rel_l2(&out, &want);
            assert!(err < 10.0 * eps, "{method:?} eps={eps}: err={err}");
        }
    }
}

#[test]
fn type1_3d_all_methods_meet_tolerance() {
    let modes = [10usize, 12, 8];
    let shape = Shape::from_slice(&modes);
    // double precision: SM is infeasible in 3D (Remark 2), so test GM
    // and GM-sort there ...
    for method in [Method::Gm, Method::GmSort] {
        let (out, pts, cs) = run_t1::<f64>(&modes, 300, 1e-6, method, PointDist::Rand, 20);
        let want = type1_direct(&pts, &cs, shape, -1);
        let err = rel_l2(&out, &want);
        assert!(err < 1e-5, "{method:?}: err={err}");
    }
    // ... and SM in single precision, where it fits in shared memory.
    let (out, pts, cs) = run_t1::<f32>(&modes, 300, 1e-5, Method::Sm, PointDist::Rand, 21);
    let want = type1_direct(&pts, &cs, shape, -1);
    let err = rel_l2(&out, &want);
    assert!(err < 1e-4, "Sm f32: err={err}");
}

#[test]
fn methods_agree_with_each_other_clustered() {
    let modes = [32usize, 32];
    let mut results = Vec::new();
    for method in [Method::Gm, Method::GmSort, Method::Sm] {
        let (out, _, _) = run_t1::<f64>(&modes, 600, 1e-9, method, PointDist::Cluster, 30);
        results.push(out);
    }
    assert!(rel_l2(&results[0], &results[1]) < 1e-12);
    assert!(rel_l2(&results[0], &results[2]) < 1e-12);
}

#[test]
fn type2_2d_and_3d_meet_tolerance() {
    for (modes, m) in [(vec![22usize, 18], 350), (vec![8usize, 10, 12], 250)] {
        let dev = Device::v100();
        let shape = Shape::from_slice(&modes);
        let mut plan = Plan::<f64>::builder(TransformType::Type2, &modes)
            .eps(1e-9)
            .build(&dev)
            .unwrap();
        let pts: Points<f64> =
            gen_points(PointDist::Rand, modes.len(), m, plan.fine_grid_shape(), 40);
        let f = gen_coeffs::<f64>(shape.total(), 41);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; m];
        plan.execute(&f, &mut out).unwrap();
        let want = type2_direct(&pts, &f, shape, 1);
        let err = rel_l2(&out, &want);
        assert!(err < 1e-8, "dims {:?}: err={err}", modes);
    }
}

#[test]
fn gpu_agrees_with_cpu_library() {
    let modes = [30usize, 26];
    let shape = Shape::from_slice(&modes);
    let dev = Device::v100();
    let mut gplan = Plan::<f64>::builder(TransformType::Type1, &modes)
        .eps(1e-10)
        .build(&dev)
        .unwrap();
    let mut cplan = finufft_cpu::Plan::<f64>::new(
        finufft_cpu::TransformType::Type1,
        &modes,
        -1,
        1e-10,
        finufft_cpu::Opts::default(),
    )
    .unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, 800, gplan.fine_grid_shape(), 50);
    let cs = gen_strengths::<f64>(800, 51);
    gplan.set_pts(&pts).unwrap();
    cplan.set_pts(pts).unwrap();
    let mut gout = vec![Complex::<f64>::ZERO; shape.total()];
    let mut cout = vec![Complex::<f64>::ZERO; shape.total()];
    gplan.execute(&cs, &mut gout).unwrap();
    cplan.execute(&cs, &mut cout).unwrap();
    // identical algorithm and kernel: results agree to near round-off
    assert!(rel_l2(&gout, &cout) < 1e-12);
}

#[test]
fn single_precision_works() {
    let modes = [16usize, 16];
    let shape = Shape::from_slice(&modes);
    let (out, pts, cs) = run_t1::<f32>(&modes, 300, 1e-5, Method::Sm, PointDist::Rand, 60);
    let want = type1_direct(&pts, &cs, shape, -1);
    assert!(rel_l2(&out, &want) < 1e-4);
}

#[test]
fn sm_in_3d_double_high_accuracy_falls_back() {
    // Remark 2: Auto must resolve to GM-sort for 3D f64 at w > 8
    let dev = Device::v100();
    let plan = Plan::<f64>::builder(TransformType::Type1, &[16, 16, 16])
        .eps(1e-9)
        .build(&dev)
        .unwrap();
    assert_eq!(plan.spread_method(), Method::GmSort);
    // and in 3D single precision SM remains available
    let plan32 = Plan::<f32>::builder(TransformType::Type1, &[16, 16, 16])
        .eps(1e-5)
        .build(&dev)
        .unwrap();
    assert_eq!(plan32.spread_method(), Method::Sm);
}

#[test]
fn plan_reuse_accumulates_exec_only() {
    let dev = Device::v100();
    let modes = [64usize, 64];
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-5)
        .build(&dev)
        .unwrap();
    let pts: Points<f32> = gen_points(PointDist::Rand, 2, 5000, plan.fine_grid_shape(), 70);
    plan.set_pts(&pts).unwrap();
    let t_sort_first = plan.timings().sort;
    assert!(t_sort_first > 0.0, "set_pts must charge sorting time");
    let mut out = vec![Complex::<f32>::ZERO; modes.iter().product()];
    for seed in 0..3u64 {
        let cs = gen_strengths::<f32>(5000, seed);
        plan.execute(&cs, &mut out).unwrap();
        let t = plan.timings();
        assert!(t.exec() > 0.0);
        assert!(t.spread_interp > 0.0 && t.fft > 0.0 && t.deconv > 0.0);
        // sort time unchanged by execute
        assert_eq!(t.sort, t_sort_first);
        assert!(t.total_mem() > t.total() && t.total() > t.exec());
    }
}

#[test]
fn device_memory_tracking_reports_plan_footprint() {
    let dev = Device::v100();
    let before = dev.mem_used();
    {
        let modes = [64usize, 64];
        let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
            .eps(1e-5)
            .build(&dev)
            .unwrap();
        // fine grid is 128x128 complex f32 = 128 KiB at least
        assert!(dev.mem_used() >= before + 128 * 128 * 8);
        let pts: Points<f32> = gen_points(PointDist::Rand, 2, 10_000, plan.fine_grid_shape(), 80);
        plan.set_pts(&pts).unwrap();
        assert!(dev.mem_used() >= before + 128 * 128 * 8 + 2 * 10_000 * 4);
    }
    // dropping the plan frees everything
    assert_eq!(dev.mem_used(), before);
}

#[test]
fn error_paths() {
    use nufft_common::NufftError;
    let dev = Device::v100();
    // execute before set_pts
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[8, 8])
        .eps(1e-4)
        .build(&dev)
        .unwrap();
    let mut out = vec![Complex::<f32>::ZERO; 64];
    assert!(matches!(
        plan.execute(&[], &mut out),
        Err(NufftError::PointsNotSet)
    ));
    // eps below single-precision limit
    assert!(matches!(
        Plan::<f32>::builder(TransformType::Type1, &[8, 8])
            .eps(1e-9)
            .build(&dev),
        Err(NufftError::EpsTooSmall { .. })
    ));
    // explicit SM for an infeasible config
    assert!(matches!(
        Plan::<f64>::builder(TransformType::Type1, &[16, 16, 16])
            .eps(1e-9)
            .method(Method::Sm)
            .build(&dev),
        Err(NufftError::MethodUnavailable(_))
    ));
    // wrong point dimensionality
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &[8, 8])
        .eps(1e-4)
        .build(&dev)
        .unwrap();
    let pts1d = Points::<f32> {
        coords: [vec![0.0], vec![], vec![]],
        dim: 1,
    };
    assert!(matches!(plan.set_pts(&pts1d), Err(NufftError::BadDim(1))));
}

#[test]
fn both_iflag_signs() {
    let modes = [14usize, 14];
    let shape = Shape::from_slice(&modes);
    for iflag in [-1i32, 1] {
        let dev = Device::v100();
        let mut plan = Plan::<f64>::builder(TransformType::Type1, &modes)
            .eps(1e-9)
            .iflag(iflag)
            .build(&dev)
            .unwrap();
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 200, plan.fine_grid_shape(), 90);
        let cs = gen_strengths::<f64>(200, 91);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        let want = type1_direct(&pts, &cs, shape, iflag);
        assert!(rel_l2(&out, &want) < 1e-8, "iflag={iflag}");
    }
}

#[test]
fn batched_execute_matches_sequential() {
    let modes = [18usize, 16];
    let shape = Shape::from_slice(&modes);
    let dev = Device::v100();
    let mut plan = Plan::<f64>::builder(TransformType::Type1, &modes)
        .eps(1e-9)
        .build(&dev)
        .unwrap();
    let m = 250;
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, m, plan.fine_grid_shape(), 61);
    plan.set_pts(&pts).unwrap();
    let n_transf = 3;
    let input: Vec<_> = (0..n_transf)
        .flat_map(|t| gen_strengths::<f64>(m, 70 + t as u64))
        .collect();
    let mut batched = vec![Complex::<f64>::ZERO; shape.total() * n_transf];
    plan.execute_batch(&input, &mut batched, n_transf).unwrap();
    // timing accumulates across the batch
    let t_batch = plan.timings();
    assert!(t_batch.exec() > 0.0);
    for t in 0..n_transf {
        let mut single = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&input[t * m..(t + 1) * m], &mut single)
            .unwrap();
        assert!(
            rel_l2(
                &batched[t * shape.total()..(t + 1) * shape.total()],
                &single
            ) < 1e-14,
            "batch member {t}"
        );
    }
    // sort time is paid once, not per member
    assert!(t_batch.sort <= plan.timings().sort * 1.001 + 1e-12);
    // invalid batch sizes rejected
    assert!(plan.execute_batch(&input, &mut batched, 0).is_err());
    assert!(plan
        .execute_batch(&input[..m], &mut batched, n_transf)
        .is_err());
}

#[test]
fn one_dimensional_gpu_transforms() {
    // 1D is listed as cuFINUFFT future work (paper Sec. VI); this
    // reproduction provides it through the same machinery
    let modes = [96usize];
    let shape = Shape::from_slice(&modes);
    let dev = Device::v100();
    let mut p1 = Plan::<f64>::builder(TransformType::Type1, &modes)
        .eps(1e-10)
        .build(&dev)
        .unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 1, 500, p1.fine_grid_shape(), 90);
    let cs = gen_strengths::<f64>(500, 91);
    p1.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; shape.total()];
    p1.execute(&cs, &mut out).unwrap();
    let want = type1_direct(&pts, &cs, shape, -1);
    assert!(rel_l2(&out, &want) < 1e-9, "{}", rel_l2(&out, &want));

    let mut p2 = Plan::<f64>::builder(TransformType::Type2, &modes)
        .eps(1e-10)
        .build(&dev)
        .unwrap();
    p2.set_pts(&pts).unwrap();
    let f = gen_coeffs::<f64>(shape.total(), 92);
    let mut out2 = vec![Complex::<f64>::ZERO; 500];
    p2.execute(&f, &mut out2).unwrap();
    let want2 = type2_direct(&pts, &f, shape, 1);
    assert!(rel_l2(&out2, &want2) < 1e-9);
}

#[test]
fn fft_mode_ordering_is_a_permutation_of_centered() {
    use cufinufft::ModeOrder;
    let modes = [12usize, 10];
    let shape = Shape::from_slice(&modes);
    let dev = Device::v100();
    let run = |ord: ModeOrder| {
        let mut plan = Plan::<f64>::builder(TransformType::Type1, &modes)
            .eps(1e-9)
            .modeord(ord)
            .build(&dev)
            .unwrap();
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 150, plan.fine_grid_shape(), 95);
        let cs = gen_strengths::<f64>(150, 96);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; shape.total()];
        plan.execute(&cs, &mut out).unwrap();
        out
    };
    let centered = run(ModeOrder::Centered);
    let fftord = run(ModeOrder::Fft);
    // mode k sits at index k + N/2 (centered) vs k mod N (fft order)
    for j2 in 0..modes[1] {
        for j1 in 0..modes[0] {
            let f1 = (j1 + modes[0] - modes[0] / 2) % modes[0];
            let f2 = (j2 + modes[1] - modes[1] / 2) % modes[1];
            let a = centered[j1 + modes[0] * j2];
            let b = fftord[f1 + modes[0] * f2];
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }
    }
    // and type 2 accepts FFT-ordered input consistently: a transform
    // round trip through fft-ordered coefficients matches direct
    let mut p2 = Plan::<f64>::builder(TransformType::Type2, &modes)
        .eps(1e-9)
        .modeord(ModeOrder::Fft)
        .build(&dev)
        .unwrap();
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, 120, p2.fine_grid_shape(), 97);
    p2.set_pts(&pts).unwrap();
    // build fft-ordered coefficients from a centered reference vector
    let f_centered = gen_coeffs::<f64>(shape.total(), 98);
    let mut f_fft = vec![Complex::<f64>::ZERO; shape.total()];
    for j2 in 0..modes[1] {
        for j1 in 0..modes[0] {
            let f1 = (j1 + modes[0] - modes[0] / 2) % modes[0];
            let f2 = (j2 + modes[1] - modes[1] / 2) % modes[1];
            f_fft[f1 + modes[0] * f2] = f_centered[j1 + modes[0] * j2];
        }
    }
    let mut out = vec![Complex::<f64>::ZERO; 120];
    p2.execute(&f_fft, &mut out).unwrap();
    let want = type2_direct(&pts, &f_centered, shape, 1);
    assert!(rel_l2(&out, &want) < 1e-8);
}

#[test]
fn degenerate_sizes_are_handled() {
    let dev = Device::v100();
    // a single output mode: f_0 = sum of strengths
    let mut p = Plan::<f64>::builder(TransformType::Type1, &[1, 1])
        .build(&dev)
        .unwrap();
    let pts = Points::<f64> {
        coords: [vec![0.5, -1.0], vec![0.3, 0.7], vec![]],
        dim: 2,
    };
    p.set_pts(&pts).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; 1];
    p.execute(&[Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)], &mut out)
        .unwrap();
    assert!((out[0].re - 3.0).abs() < 1e-4 && out[0].im.abs() < 1e-6);

    // zero nonuniform points: type 1 gives zeros, type 2 gives nothing
    let empty = Points::<f64> {
        coords: [vec![], vec![], vec![]],
        dim: 2,
    };
    let mut p = Plan::<f64>::builder(TransformType::Type1, &[8, 8])
        .build(&dev)
        .unwrap();
    p.set_pts(&empty).unwrap();
    let mut out = vec![Complex::<f64>::ZERO; 64];
    p.execute(&[], &mut out).unwrap();
    assert!(out.iter().all(|z| z.re == 0.0 && z.im == 0.0));
    let mut p = Plan::<f64>::builder(TransformType::Type2, &[8, 8])
        .build(&dev)
        .unwrap();
    p.set_pts(&empty).unwrap();
    let f = vec![Complex::new(1.0, 0.0); 64];
    let mut out2: Vec<Complex<f64>> = vec![];
    p.execute(&f, &mut out2).unwrap();
}

#[test]
fn pipelined_batches_overlap_transfers() {
    let modes = [128usize, 128];
    let dev = Device::v100();
    let n_transf = 6;
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-4)
        .ntransf(n_transf)
        .build(&dev)
        .unwrap();
    let m = 40_000;
    let pts: Points<f32> = gen_points(PointDist::Rand, 2, m, plan.fine_grid_shape(), 63);
    plan.set_pts(&pts).unwrap();
    let input: Vec<_> = (0..n_transf)
        .flat_map(|t| gen_strengths::<f32>(m, 80 + t as u64))
        .collect();
    let n: usize = modes.iter().product();
    let mut out = vec![Complex::<f32>::ZERO; n * n_transf];
    plan.execute_many(&input, &mut out).unwrap();
    let lt = plan.timings();
    assert_eq!(lt.batches, n_transf);
    // the pipelined wall beats the serial sum of the same stages...
    let wall = lt.pipe_wall;
    let serial = lt.batch_serial();
    assert!(
        wall > 0.0 && wall < serial,
        "pipelined {wall} vs serial {serial}"
    );
    assert!(lt.overlap_saving() > 0.0);
    assert!((lt.overlap_saving() - (serial - wall)).abs() < 1e-12);
    // ...but is no faster than the compute-bound floor (the SM array
    // serializes across streams)
    assert!(wall >= lt.exec());
    // the chunk schedule is reported and consistent
    let bt = plan.batch_timings();
    assert!(bt.chunks.len() >= 2, "expected multiple chunks");
    assert!((bt.wall - wall).abs() < 1e-12);
    assert!((bt.saving() - lt.overlap_saving()).abs() < 1e-9);
    assert_eq!(bt.chunks.iter().map(|c| c.ntransf).sum::<usize>(), n_transf);
    for w in bt.chunks.windows(2) {
        assert!(w[1].start >= w[0].start, "chunks scheduled in order");
    }
    // numerics identical to the plain serial batch
    let mut out2 = vec![Complex::<f32>::ZERO; n * n_transf];
    plan.execute_batch(&input, &mut out2, n_transf).unwrap();
    for (a, b) in out.iter().zip(out2.iter()) {
        assert_eq!(a.re, b.re);
        assert_eq!(a.im, b.im);
    }
}

#[test]
fn batched_total_mem_beats_sequential_batches() {
    // the acceptance bar: B=8 on a 128^2 type-1 plan must report a
    // total+mem strictly below 8x the single-transform total+mem
    let modes = [128usize, 128];
    let dev = Device::v100();
    let m = 30_000;
    let n: usize = modes.iter().product();
    let mut single = Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-5)
        .build(&dev)
        .unwrap();
    let pts: Points<f32> = gen_points(PointDist::Rand, 2, m, single.fine_grid_shape(), 11);
    single.set_pts(&pts).unwrap();
    let cs = gen_strengths::<f32>(m, 12);
    let mut out1 = vec![Complex::<f32>::ZERO; n];
    single.execute(&cs, &mut out1).unwrap();
    let t_single = single.timings().total_mem();

    let b = 8;
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-5)
        .ntransf(b)
        .build(&dev)
        .unwrap();
    plan.set_pts(&pts).unwrap();
    let input: Vec<_> = (0..b)
        .flat_map(|t| gen_strengths::<f32>(m, 20 + t as u64))
        .collect();
    let mut out = vec![Complex::<f32>::ZERO; n * b];
    plan.execute_many(&input, &mut out).unwrap();
    let t_batch = plan.timings().total_mem();
    assert!(
        t_batch < t_single * b as f64,
        "batched total_mem {t_batch} vs {b}x single {}",
        t_single * b as f64
    );
    assert!(plan.timings().overlap_saving() > 0.0);
}

#[test]
fn execute_many_infers_and_validates_batch_shape() {
    use nufft_common::NufftError;
    let modes = [12usize, 12];
    let dev = Device::v100();
    let mut plan = Plan::<f64>::builder(TransformType::Type1, &modes)
        .build(&dev)
        .unwrap();
    let m = 100;
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, m, plan.fine_grid_shape(), 5);
    plan.set_pts(&pts).unwrap();
    let n: usize = modes.iter().product();
    let input = gen_strengths::<f64>(m * 3, 6);
    // output sized for the wrong batch width
    let mut short = vec![Complex::<f64>::ZERO; n * 2];
    assert!(matches!(
        plan.execute_many(&input, &mut short),
        Err(NufftError::LengthMismatch { .. })
    ));
    // input not a multiple of the per-transform size
    let mut out = vec![Complex::<f64>::ZERO; n * 3];
    assert!(matches!(
        plan.execute_many(&input[..m * 2 + 1], &mut out),
        Err(NufftError::LengthMismatch { .. })
    ));
    // empty input cannot infer a batch
    assert!(plan.execute_many(&[], &mut out).is_err());
    // correct shapes work, and B is inferred as 3
    plan.execute_many(&input, &mut out).unwrap();
    assert_eq!(plan.timings().batches, 3);
}

#[test]
fn max_batch_option_controls_chunking() {
    let modes = [32usize, 32];
    let dev = Device::v100();
    let b = 5;
    let mut plan = Plan::<f32>::builder(TransformType::Type1, &modes)
        .eps(1e-4)
        .ntransf(b)
        .max_batch(2)
        .build(&dev)
        .unwrap();
    let m = 2000;
    let pts: Points<f32> = gen_points(PointDist::Rand, 2, m, plan.fine_grid_shape(), 44);
    plan.set_pts(&pts).unwrap();
    let input: Vec<_> = (0..b)
        .flat_map(|t| gen_strengths::<f32>(m, 50 + t as u64))
        .collect();
    let n: usize = modes.iter().product();
    let mut out = vec![Complex::<f32>::ZERO; n * b];
    plan.execute_many(&input, &mut out).unwrap();
    // 5 transforms at max_batch=2 -> chunks of 2, 2, 1
    let widths: Vec<usize> = plan
        .batch_timings()
        .chunks
        .iter()
        .map(|c| c.ntransf)
        .collect();
    assert_eq!(widths, vec![2, 2, 1]);
}

#[test]
fn builder_validates_options() {
    use nufft_common::NufftError;
    let dev = Device::v100();
    assert!(matches!(
        Plan::<f32>::builder(TransformType::Type1, &[8, 8])
            .msub(0)
            .build(&dev),
        Err(NufftError::BadMsub(0))
    ));
    assert!(matches!(
        Plan::<f32>::builder(TransformType::Type1, &[8, 8])
            .upsampfac(0.9)
            .build(&dev),
        Err(NufftError::BadUpsampfac(_))
    ));
    assert!(matches!(
        Plan::<f32>::builder(TransformType::Type1, &[8, 8])
            .bin_size([0, 4, 1])
            .build(&dev),
        Err(NufftError::BadBinSize(_))
    ));
    assert!(matches!(
        Plan::<f32>::builder(TransformType::Type1, &[8, 8])
            .threads_per_block(0)
            .build(&dev),
        Err(NufftError::BadOptions(_))
    ));
}

#[test]
fn spec_constructor_builds_plans() {
    use nufft_common::spec::{Precision, TransformSpec};
    let dev = Device::v100();
    let spec = TransformSpec::type1(&[16, 16])
        .eps(1e-4)
        .precision(Precision::F32);
    let plan = Plan::<f32>::from_spec(&spec, &dev).unwrap();
    assert_eq!(plan.modes().total(), 256);
    // precision mismatch is a typed error, not a silent cast
    assert!(matches!(
        Plan::<f64>::from_spec(&spec, &dev),
        Err(NufftError::BadSpec(_))
    ));
    // invalid specs are rejected before any device work
    assert!(matches!(
        Plan::<f32>::from_spec(&TransformSpec::type1(&[]).precision(Precision::F32), &dev),
        Err(NufftError::BadSpec(_))
    ));
}

#[test]
fn spread_and_interp_only_modes() {
    // spread_only produces the raw fine-grid convolution; interp_only is
    // its adjoint — together they satisfy <S c, g> = <c, I g>
    let modes = [20usize, 16];
    let dev = Device::v100();
    let mut p1 = Plan::<f64>::builder(TransformType::Type1, &modes)
        .eps(1e-8)
        .build(&dev)
        .unwrap();
    let m = 200;
    let pts: Points<f64> = gen_points(PointDist::Rand, 2, m, p1.fine_grid_shape(), 31);
    p1.set_pts(&pts).unwrap();
    let nf = p1.fine_grid_shape().total();
    let cs = gen_strengths::<f64>(m, 32);
    let mut grid = vec![Complex::<f64>::ZERO; nf];
    p1.spread_only(&cs, &mut grid).unwrap();
    // mass sanity: grid total ~ sum of strengths * kernel row sums
    let total: Complex<f64> = grid.iter().copied().sum();
    assert!(total.abs() > 0.0);

    let mut p2 = Plan::<f64>::builder(TransformType::Type2, &modes)
        .eps(1e-8)
        .build(&dev)
        .unwrap();
    p2.set_pts(&pts).unwrap();
    let g = gen_strengths::<f64>(nf, 33);
    let mut vals = vec![Complex::<f64>::ZERO; m];
    p2.interp_only(&g, &mut vals).unwrap();
    let lhs = nufft_common::metrics::inner(&grid, &g);
    let rhs = nufft_common::metrics::inner(&cs, &vals);
    assert!(
        (lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()),
        "{lhs:?} vs {rhs:?}"
    );
    // wrong-type usage errors
    assert!(p1.interp_only(&g, &mut vals).is_err());
    assert!(p2.spread_only(&cs, &mut grid).is_err());
}

#[test]
fn spec_built_plan_matches_builder_exactly() {
    // PlanBuilder::from_spec routes through the same build path as the
    // fluent builder; the two construction paths must produce
    // bitwise-identical transforms for identical inputs.
    use nufft_common::spec::{Precision, TransformSpec};
    let modes = [18usize, 14];
    let opts = GpuOpts {
        method: Method::GmSort,
        ..Default::default()
    };
    let run = |via_spec: bool| -> (Vec<Complex<f64>>, Shape) {
        let dev = Device::v100();
        let mut plan = if via_spec {
            let spec = TransformSpec::type1(&modes)
                .iflag(1)
                .eps(1e-7)
                .precision(Precision::F64)
                .method(Method::GmSort);
            cufinufft::PlanBuilder::<f64>::from_spec(&spec)
                .unwrap()
                .build(&dev)
                .unwrap()
        } else {
            Plan::<f64>::builder(TransformType::Type1, &modes)
                .iflag(1)
                .eps(1e-7)
                .opts(opts.clone())
                .build(&dev)
                .unwrap()
        };
        let pts: Points<f64> = gen_points(PointDist::Rand, 2, 350, plan.fine_grid_shape(), 71);
        let cs = gen_strengths::<f64>(350, 72);
        plan.set_pts(&pts).unwrap();
        let mut out = vec![Complex::<f64>::ZERO; modes.iter().product()];
        plan.execute(&cs, &mut out).unwrap();
        (out, plan.fine_grid_shape())
    };
    let (out_new, fine_new) = run(true);
    let (out_builder, fine_builder) = run(false);
    assert_eq!(fine_new, fine_builder);
    for (x, y) in out_new.iter().zip(&out_builder) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}
