//! The global 1D-plan cache is bounded: flooding it with distinct sizes
//! evicts least-recently-used entries instead of growing without bound,
//! and eviction never invalidates a plan someone still holds (entries
//! are `Arc`s — the holder keeps the twiddle tables alive).
//!
//! Lives in its own integration-test binary (own process) because the
//! cache is a process-wide singleton: flooding it from inside the unit
//! test binary could evict entries the plan-sharing tests assert on.

use nufft_common::shape::Shape;
use nufft_common::Complex;
use nufft_fft::ndfft::{cached_plan, plan_cache_len};
use nufft_fft::{Direction, FftNd};

#[test]
fn plan_cache_is_bounded_and_evicts_lru_without_breaking_live_plans() {
    // Hold a plan (and an FftNd built on it), then flood the cache with
    // far more distinct sizes than the cap.
    let held = cached_plan::<f64>(48);
    let nd = FftNd::<f64>::new(Shape::d1(48));

    for n in 100..180 {
        let _ = cached_plan::<f64>(n);
    }
    let cap = plan_cache_len();
    assert!(
        cap <= 32,
        "plan cache grew past its bound: {cap} entries live"
    );

    // The held Arc survived eviction and still computes correctly.
    assert_eq!(held.len(), 48);
    let mut x = vec![Complex::<f64>::ZERO; 48];
    x[1] = Complex::ONE;
    nd.process(&mut x, Direction::Forward);
    let expect = Complex::cis(-std::f64::consts::TAU * 5.0 / 48.0);
    assert!((x[5] - expect).abs() < 1e-12);

    // An evicted size is simply rebuilt on demand and works.
    let rebuilt = cached_plan::<f64>(48);
    assert_eq!(rebuilt.len(), 48);
    let mut y = vec![Complex::<f64>::ZERO; 48];
    y[1] = Complex::ONE;
    FftNd::<f64>::new(Shape::d1(48)).process(&mut y, Direction::Forward);
    assert!((y[5] - expect).abs() < 1e-12);

    // Recency is respected: touch one old size, flood again, and the
    // touched size's slot survives longer than untouched peers would —
    // observable as the cache staying at its bound, never above it.
    let _ = cached_plan::<f64>(100);
    for n in 200..240 {
        let _ = cached_plan::<f64>(n);
    }
    assert!(plan_cache_len() <= 32);
}
