//! Bluestein chirp-z transform: an `O(n log n)` DFT for arbitrary `n`,
//! used when `n` contains a prime factor too large for a direct butterfly.
//!
//! Identity: `jk = (j^2 + k^2 - (k-j)^2) / 2`, so with chirp
//! `c_j = e^{-i pi j^2 / n}` the DFT becomes a circular convolution of
//! `a_j = x_j c_j` with `b_j = conj(c_j)`, carried out by a zero-padded
//! smooth-size FFT.

use crate::plan1d::{Direction, Fft1d};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::smooth::next_smooth;

pub struct Bluestein<T> {
    n: usize,
    m: usize,
    /// Forward chirp `c_j = e^{-i pi j^2 / n}`, j in 0..n.
    chirp: Vec<Complex<T>>,
    /// FFT of the padded kernel for each direction.
    bf_fwd: Vec<Complex<T>>,
    bf_bwd: Vec<Complex<T>>,
    inner: Fft1d<T>,
}

impl<T: Real> Bluestein<T> {
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        let m = next_smooth(2 * n - 1);
        // j^2 mod 2n keeps the angle argument exact for huge j.
        let chirp: Vec<Complex<T>> = (0..n)
            .map(|j| {
                let q = (j * j) % (2 * n);
                let ang = -std::f64::consts::PI * q as f64 / n as f64;
                Complex::new(T::from_f64(ang.cos()), T::from_f64(ang.sin()))
            })
            .collect();
        let inner = Fft1d::new(m);
        let build_kernel = |conj: bool| -> Vec<Complex<T>> {
            let mut b = vec![Complex::ZERO; m];
            for j in 0..n {
                let v = if conj { chirp[j].conj() } else { chirp[j] };
                b[j] = v;
                if j > 0 {
                    b[m - j] = v;
                }
            }
            inner.process(&mut b, Direction::Forward);
            b
        };
        // Forward DFT convolves with conj(chirp); backward with chirp.
        let bf_fwd = build_kernel(true);
        let bf_bwd = build_kernel(false);
        Bluestein {
            n,
            m,
            chirp,
            bf_fwd,
            bf_bwd,
            inner,
        }
    }

    #[allow(clippy::type_complexity)] // (kernel slice, chirp map) pair is local plumbing
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.n);
        let (kernel, chirp_of): (&[Complex<T>], fn(Complex<T>) -> Complex<T>) = match dir {
            Direction::Forward => (&self.bf_fwd, |z| z),
            Direction::Backward => (&self.bf_bwd, |z: Complex<T>| z.conj()),
        };
        let mut a = vec![Complex::ZERO; self.m];
        for j in 0..self.n {
            a[j] = data[j] * chirp_of(self.chirp[j]);
        }
        self.inner.process(&mut a, Direction::Forward);
        for (av, bv) in a.iter_mut().zip(kernel.iter()) {
            *av *= *bv;
        }
        self.inner.process(&mut a, Direction::Backward);
        let scale = T::ONE / T::from_usize(self.m);
        for k in 0..self.n {
            data[k] = a[k].scale(scale) * chirp_of(self.chirp[k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;

    fn dft(x: &[Complex<f64>], sign: i32) -> Vec<Complex<f64>> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        let ang =
                            sign as f64 * std::f64::consts::TAU * (j * k % n) as f64 / n as f64;
                        x[j] * Complex::cis(ang)
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_dft_on_primes() {
        for n in [2usize, 3, 7, 37, 41, 113, 499] {
            let b = Bluestein::<f64>::new(n);
            let x: Vec<Complex<f64>> = (0..n)
                .map(|j| c((j as f64).sin(), (j as f64).cos()))
                .collect();
            let mut y = x.clone();
            b.process(&mut y, Direction::Forward);
            assert!(rel_l2(&y, &dft(&x, -1)) < 1e-10, "fwd n={n}");
            let mut z = x.clone();
            b.process(&mut z, Direction::Backward);
            assert!(rel_l2(&z, &dft(&x, 1)) < 1e-10, "bwd n={n}");
        }
    }

    #[test]
    fn matches_dft_on_composite_with_large_prime() {
        // 2 * 53 exercises Bluestein via the plan's factor check path too
        let n = 106;
        let b = Bluestein::<f64>::new(n);
        let x: Vec<Complex<f64>> = (0..n).map(|j| c(1.0 / (j + 1) as f64, 0.25)).collect();
        let mut y = x.clone();
        b.process(&mut y, Direction::Forward);
        assert!(rel_l2(&y, &dft(&x, -1)) < 1e-10);
    }

    #[test]
    fn roundtrip_scales_by_n() {
        let n = 59;
        let b = Bluestein::<f64>::new(n);
        let x: Vec<Complex<f64>> = (0..n).map(|j| c(j as f64, -(j as f64))).collect();
        let mut y = x.clone();
        b.process(&mut y, Direction::Forward);
        b.process(&mut y, Direction::Backward);
        let scaled: Vec<_> = x.iter().map(|z| z.scale(n as f64)).collect();
        assert!(rel_l2(&y, &scaled) < 1e-10);
    }
}
