//! Bluestein chirp-z transform: an `O(n log n)` DFT for arbitrary `n`,
//! used when `n` contains a prime factor too large for a direct butterfly.
//!
//! Identity: `jk = (j^2 + k^2 - (k-j)^2) / 2`, so with chirp
//! `c_j = e^{-i pi j^2 / n}` the DFT becomes a circular convolution of
//! `a_j = x_j c_j` with `b_j = conj(c_j)`, carried out by a zero-padded
//! smooth-size FFT.
//!
//! # Precision
//!
//! The chirp products and the padded `m`-point convolution are carried out
//! in f64 regardless of the working precision `T`. Running them in f32
//! accumulated 2-3e-7 relative error on large primes (measured against a
//! direct f64 DFT at n = 101..10007) — above the ~1e-7 single-precision
//! floor the NUFFT error envelope budgets for the FFT stage. With f64
//! internals the f32 path is limited only by rounding the inputs/outputs
//! (~6e-8). The extra cost is confined to sizes with prime factors > 31,
//! which are already the slow FFT path.

use crate::plan1d::{Direction, Fft1d};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::smooth::next_smooth;
use std::marker::PhantomData;

pub struct Bluestein<T> {
    n: usize,
    m: usize,
    /// Forward chirp `c_j = e^{-i pi j^2 / n}`, j in 0..n.
    chirp: Vec<Complex<f64>>,
    /// FFT of the padded kernel for each direction, with the backward
    /// FFT's 1/m normalization folded in.
    bf_fwd: Vec<Complex<f64>>,
    bf_bwd: Vec<Complex<f64>>,
    inner: Fft1d<f64>,
    _precision: PhantomData<T>,
}

impl<T: Real> Bluestein<T> {
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        let m = next_smooth(2 * n - 1);
        // j^2 mod 2n keeps the angle argument exact for huge j.
        let chirp: Vec<Complex<f64>> = (0..n)
            .map(|j| {
                let q = (j * j) % (2 * n);
                let ang = -std::f64::consts::PI * q as f64 / n as f64;
                Complex::new(ang.cos(), ang.sin())
            })
            .collect();
        let inner = Fft1d::<f64>::new(m);
        let build_kernel = |conj: bool| -> Vec<Complex<f64>> {
            let mut b = vec![Complex::<f64>::ZERO; m];
            for j in 0..n {
                let v = if conj { chirp[j].conj() } else { chirp[j] };
                b[j] = v;
                if j > 0 {
                    b[m - j] = v;
                }
            }
            inner.process(&mut b, Direction::Forward);
            // Fold the 1/m of the unscaled backward FFT into the kernel so
            // `process` needs no final scaling pass.
            let s = 1.0 / m as f64;
            b.iter_mut().for_each(|z| *z = z.scale(s));
            b
        };
        // Forward DFT convolves with conj(chirp); backward with chirp.
        let bf_fwd = build_kernel(true);
        let bf_bwd = build_kernel(false);
        Bluestein {
            n,
            m,
            chirp,
            bf_fwd,
            bf_bwd,
            inner,
            _precision: PhantomData,
        }
    }

    #[allow(clippy::type_complexity)] // (kernel slice, chirp map) pair is local plumbing
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.n);
        let (kernel, chirp_of): (&[Complex<f64>], fn(Complex<f64>) -> Complex<f64>) = match dir {
            Direction::Forward => (&self.bf_fwd, |z| z),
            Direction::Backward => (&self.bf_bwd, |z: Complex<f64>| z.conj()),
        };
        let mut a = vec![Complex::<f64>::ZERO; self.m];
        for j in 0..self.n {
            let x: Complex<f64> = data[j].cast();
            a[j] = x * chirp_of(self.chirp[j]);
        }
        self.inner.process(&mut a, Direction::Forward);
        for (av, bv) in a.iter_mut().zip(kernel.iter()) {
            *av *= *bv;
        }
        self.inner.process(&mut a, Direction::Backward);
        // No 1/m here: the kernel spectrum carries the normalization.
        for k in 0..self.n {
            data[k] = (a[k] * chirp_of(self.chirp[k])).cast();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;

    fn dft(x: &[Complex<f64>], sign: i32) -> Vec<Complex<f64>> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        let ang =
                            sign as f64 * std::f64::consts::TAU * (j * k % n) as f64 / n as f64;
                        x[j] * Complex::cis(ang)
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_dft_on_primes() {
        for n in [2usize, 3, 7, 37, 41, 113, 499] {
            let b = Bluestein::<f64>::new(n);
            let x: Vec<Complex<f64>> = (0..n)
                .map(|j| c((j as f64).sin(), (j as f64).cos()))
                .collect();
            let mut y = x.clone();
            b.process(&mut y, Direction::Forward);
            assert!(rel_l2(&y, &dft(&x, -1)) < 1e-10, "fwd n={n}");
            let mut z = x.clone();
            b.process(&mut z, Direction::Backward);
            assert!(rel_l2(&z, &dft(&x, 1)) < 1e-10, "bwd n={n}");
        }
    }

    #[test]
    fn matches_dft_on_composite_with_large_prime() {
        // 2 * 53 exercises Bluestein via the plan's factor check path too
        let n = 106;
        let b = Bluestein::<f64>::new(n);
        let x: Vec<Complex<f64>> = (0..n).map(|j| c(1.0 / (j + 1) as f64, 0.25)).collect();
        let mut y = x.clone();
        b.process(&mut y, Direction::Forward);
        assert!(rel_l2(&y, &dft(&x, -1)) < 1e-10);
    }

    #[test]
    fn roundtrip_scales_by_n() {
        let n = 59;
        let b = Bluestein::<f64>::new(n);
        let x: Vec<Complex<f64>> = (0..n).map(|j| c(j as f64, -(j as f64))).collect();
        let mut y = x.clone();
        b.process(&mut y, Direction::Forward);
        b.process(&mut y, Direction::Backward);
        let scaled: Vec<_> = x.iter().map(|z| z.scale(n as f64)).collect();
        assert!(rel_l2(&y, &scaled) < 1e-10);
    }

    /// Regression for the f32 precision-loss bug: with the chirp products
    /// and padded convolution done in working precision, the single
    /// precision path measured 2.1-2.9e-7 relative error against a direct
    /// f64 DFT on primes 101..10007 — above the ~1e-7 f32 floor. With f64
    /// internals it must stay at the cast-rounding level.
    #[test]
    fn f32_large_primes_stay_at_precision_floor() {
        for n in [101usize, 997, 10007] {
            let x64: Vec<Complex<f64>> = (0..n)
                .map(|j| c((j as f64 * 0.37).sin(), (j as f64 * 0.71).cos()))
                .collect();
            let want = dft(&x64, -1);
            let b = Bluestein::<f32>::new(n);
            let mut y: Vec<Complex<f32>> = x64.iter().map(|z| z.cast()).collect();
            b.process(&mut y, Direction::Forward);
            let y64: Vec<Complex<f64>> = y.iter().map(|z| z.cast()).collect();
            let err = rel_l2(&y64, &want);
            assert!(err < 1.0e-7, "f32 Bluestein n={n}: rel_l2 = {err:.3e}");
        }
    }

    #[test]
    fn f32_backward_matches_direct_dft() {
        let n = 499;
        let x64: Vec<Complex<f64>> = (0..n).map(|j| c(1.0 / (j + 2) as f64, 0.1)).collect();
        let want = dft(&x64, 1);
        let b = Bluestein::<f32>::new(n);
        let mut y: Vec<Complex<f32>> = x64.iter().map(|z| z.cast()).collect();
        b.process(&mut y, Direction::Backward);
        let y64: Vec<Complex<f64>> = y.iter().map(|z| z.cast()).collect();
        assert!(rel_l2(&y64, &want) < 1.0e-7);
    }
}
