//! Mixed-radix complex FFT for the cuFINUFFT reproduction.
//!
//! This is the substrate replacing FFTW (CPU side) and the numerical half
//! of cuFFT (GPU side): a recursive decimation-in-time Cooley-Tukey with
//! hardcoded radix-2/3/5 butterflies — the only radices that arise for the
//! 5-smooth fine-grid sizes the NUFFT chooses — plus a generic small-prime
//! butterfly and a Bluestein chirp-z fallback so arbitrary sizes work too.
//! Transforms are unscaled in both directions (FFTW/cuFFT convention).

#![forbid(unsafe_code)]

pub mod bluestein;
pub mod ndfft;
pub mod plan1d;

pub use ndfft::FftNd;
pub use plan1d::{Direction, Fft1d};
