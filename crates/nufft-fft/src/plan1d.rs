//! One-dimensional complex FFT plan.
//!
//! Recursive decimation-in-time mixed-radix Cooley-Tukey with hardcoded
//! radix-2/3/5 butterflies (the only radices that occur for the 5-smooth
//! fine-grid sizes the NUFFT uses), a generic small-prime butterfly, and a
//! Bluestein chirp-z fallback for large prime factors.
//!
//! Convention: `Forward` applies `X_k = sum_j x_j e^{-2 pi i j k / n}`,
//! `Backward` the conjugate exponential. Neither direction scales, matching
//! FFTW/cuFFT, so `backward(forward(x)) = n * x`.

use crate::bluestein::Bluestein;
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::smooth::factorize;

/// Transform direction (sign of the exponent).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `e^{-2 pi i jk/n}` — the paper's type 1 sign (eq. 9).
    Forward,
    /// `e^{+2 pi i jk/n}` — the paper's type 2 sign (eq. 12).
    Backward,
}

impl Direction {
    /// The sign of the exponent: -1 for forward, +1 for backward.
    #[inline]
    pub fn sign(self) -> i32 {
        match self {
            Direction::Forward => -1,
            Direction::Backward => 1,
        }
    }

    /// Direction whose exponent carries the given sign.
    pub fn from_sign(sign: i32) -> Self {
        if sign < 0 {
            Direction::Forward
        } else {
            Direction::Backward
        }
    }
}

/// Largest prime factor handled by the direct generic butterfly; beyond
/// this a Bluestein plan is used instead.
const MAX_DIRECT_PRIME: usize = 31;

/// A reusable 1D FFT plan for a fixed size `n`.
pub struct Fft1d<T> {
    n: usize,
    /// Radix sequence, largest first (better locality at the leaves).
    factors: Vec<usize>,
    /// Forward twiddle table: `tw[j] = e^{-2 pi i j / n}`, length n.
    tw: Vec<Complex<T>>,
    /// Bluestein fallback when n contains a prime factor > MAX_DIRECT_PRIME.
    bluestein: Option<Box<Bluestein<T>>>,
}

impl<T: Real> Fft1d<T> {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "FFT size must be positive");
        let mut factors = factorize(n);
        // Largest radix first: leaves become small contiguous transforms.
        factors.sort_unstable_by(|a, b| b.cmp(a));
        let needs_bluestein = factors.iter().any(|&p| p > MAX_DIRECT_PRIME);
        let bluestein = needs_bluestein.then(|| Box::new(Bluestein::new(n)));
        let tw = (0..n)
            .map(|j| {
                let ang = -std::f64::consts::TAU * j as f64 / n as f64;
                Complex::new(T::from_f64(ang.cos()), T::from_f64(ang.sin()))
            })
            .collect();
        Fft1d {
            n,
            factors,
            tw,
            bluestein,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward twiddle `e^{-2 pi i j / n}` for `j` taken mod n, conjugated
    /// for the backward direction.
    #[inline(always)]
    fn twiddle(&self, j: usize, dir: Direction) -> Complex<T> {
        let w = self.tw[j % self.n];
        match dir {
            Direction::Forward => w,
            Direction::Backward => w.conj(),
        }
    }

    /// Transform `data` in place, using `scratch` (same length) as work
    /// space. This is the allocation-free entry point for hot loops.
    pub fn process_with_scratch(
        &self,
        data: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "data length != plan size");
        assert_eq!(scratch.len(), self.n, "scratch length != plan size");
        if self.n == 1 {
            return;
        }
        if let Some(b) = &self.bluestein {
            b.process(data, dir);
            return;
        }
        scratch.copy_from_slice(data);
        self.rec(scratch, 1, data, self.n, 0, dir);
    }

    /// Convenience wrapper that allocates its own scratch.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        let mut scratch = vec![Complex::ZERO; self.n];
        self.process_with_scratch(data, &mut scratch, dir);
    }

    /// Recursive DIT step: transform the `n`-point sequence
    /// `inp[0], inp[stride], inp[2*stride], ...` into `out[0..n]`.
    fn rec(
        &self,
        inp: &[Complex<T>],
        stride: usize,
        out: &mut [Complex<T>],
        n: usize,
        level: usize,
        dir: Direction,
    ) {
        if n == 1 {
            out[0] = inp[0];
            return;
        }
        let r = self.factors[level];
        let m = n / r;
        // Recurse on the r decimated subsequences.
        for p in 0..r {
            self.rec(
                &inp[p * stride..],
                stride * r,
                &mut out[p * m..(p + 1) * m],
                m,
                level + 1,
                dir,
            );
        }
        // Combine: X[k + q m] = sum_p (w_n^{p k} Y_p[k]) w_r^{p q},
        // where w_n is the twiddle for *this* level's size n.
        let tw_step = self.n / n; // maps level-local exponent to table index
        match r {
            2 => self.combine2(out, m, tw_step, dir),
            3 => self.combine3(out, m, tw_step, dir),
            5 => self.combine5(out, m, tw_step, dir),
            _ => self.combine_generic(out, r, m, tw_step, dir),
        }
    }

    #[inline]
    fn combine2(&self, out: &mut [Complex<T>], m: usize, tw_step: usize, dir: Direction) {
        for k in 0..m {
            let a = out[k];
            let b = out[m + k] * self.twiddle(tw_step * k, dir);
            out[k] = a + b;
            out[m + k] = a - b;
        }
    }

    #[inline]
    fn combine3(&self, out: &mut [Complex<T>], m: usize, tw_step: usize, dir: Direction) {
        // w_3 = e^{-2 pi i /3} = -1/2 - i sqrt(3)/2 (forward)
        let half = T::HALF;
        let s3 = T::from_f64(0.866_025_403_784_438_6); // sqrt(3)/2
        let sgn = match dir {
            Direction::Forward => T::ONE,
            Direction::Backward => -T::ONE,
        };
        for k in 0..m {
            let a = out[k];
            let b = out[m + k] * self.twiddle(tw_step * k, dir);
            let c = out[2 * m + k] * self.twiddle(tw_step * 2 * k, dir);
            let t1 = b + c;
            let t2 = a - t1.scale(half);
            // i*(b - c)*sqrt(3)/2 with direction sign
            let d = (b - c).scale(s3 * sgn);
            let rot = Complex::new(d.im, -d.re); // -i * d (forward)
            out[k] = a + t1;
            out[m + k] = t2 + rot;
            out[2 * m + k] = t2 - rot;
        }
    }

    #[inline]
    fn combine5(&self, out: &mut [Complex<T>], m: usize, tw_step: usize, dir: Direction) {
        // Classic radix-5 butterfly constants.
        let c1 = T::from_f64(0.309_016_994_374_947_45); // cos(2pi/5)
        let c2 = T::from_f64(-0.809_016_994_374_947_5); // cos(4pi/5)
        let s1 = T::from_f64(0.951_056_516_295_153_5); // sin(2pi/5)
        let s2 = T::from_f64(0.587_785_252_292_473_1); // sin(4pi/5)
        let sgn = match dir {
            Direction::Forward => T::ONE,
            Direction::Backward => -T::ONE,
        };
        for k in 0..m {
            let x0 = out[k];
            let x1 = out[m + k] * self.twiddle(tw_step * k, dir);
            let x2 = out[2 * m + k] * self.twiddle(tw_step * 2 * k, dir);
            let x3 = out[3 * m + k] * self.twiddle(tw_step * 3 * k, dir);
            let x4 = out[4 * m + k] * self.twiddle(tw_step * 4 * k, dir);
            let t1 = x1 + x4;
            let t2 = x2 + x3;
            let t3 = x1 - x4;
            let t4 = x2 - x3;
            let y1 = x0 + t1.scale(c1) + t2.scale(c2);
            let y2 = x0 + t1.scale(c2) + t2.scale(c1);
            // imaginary parts (multiplied by -i for forward)
            let z1 = t3.scale(s1 * sgn) + t4.scale(s2 * sgn);
            let z2 = t3.scale(s2 * sgn) - t4.scale(s1 * sgn);
            let r1 = Complex::new(z1.im, -z1.re);
            let r2 = Complex::new(z2.im, -z2.re);
            out[k] = x0 + t1 + t2;
            out[m + k] = y1 + r1;
            out[2 * m + k] = y2 + r2;
            out[3 * m + k] = y2 - r2;
            out[4 * m + k] = y1 - r1;
        }
    }

    /// Naive `O(r^2)` butterfly for other small primes (7, 11, ..., 31).
    fn combine_generic(
        &self,
        out: &mut [Complex<T>],
        r: usize,
        m: usize,
        tw_step: usize,
        dir: Direction,
    ) {
        let n = r * m;
        let mut tmp = vec![Complex::ZERO; r];
        for k in 0..m {
            for p in 0..r {
                tmp[p] = out[p * m + k] * self.twiddle(tw_step * p * k, dir);
            }
            for q in 0..r {
                let mut acc = Complex::ZERO;
                for (p, v) in tmp.iter().enumerate() {
                    // w_r^{pq} = w_n^{m p q}, reduced mod n then scaled to
                    // the global table via tw_step.
                    acc += *v * self.twiddle(tw_step * ((m * p * q) % n), dir);
                }
                out[q * m + k] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;

    /// Naive O(n^2) DFT for verification.
    fn dft(x: &[Complex<f64>], sign: i32) -> Vec<Complex<f64>> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        let ang =
                            sign as f64 * std::f64::consts::TAU * (j * k % n) as f64 / n as f64;
                        x[j] * Complex::cis(ang)
                    })
                    .sum()
            })
            .collect()
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex<f64>> {
        // tiny xorshift so this module needs no rand dependency
        let mut s = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| c(next(), next())).collect()
    }

    fn check_size(n: usize) {
        let plan = Fft1d::<f64>::new(n);
        let x = random_signal(n, n as u64 + 1);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        let want = dft(&x, -1);
        assert!(
            rel_l2(&y, &want) < 1e-11,
            "forward mismatch at n={n}: {}",
            rel_l2(&y, &want)
        );
        let mut z = x.clone();
        plan.process(&mut z, Direction::Backward);
        let want_b = dft(&x, 1);
        assert!(rel_l2(&z, &want_b) < 1e-11, "backward mismatch at n={n}");
    }

    #[test]
    fn matches_dft_powers_of_two() {
        for n in [1, 2, 4, 8, 16, 64, 256] {
            check_size(n);
        }
    }

    #[test]
    fn matches_dft_smooth_sizes() {
        for n in [3, 5, 6, 9, 10, 12, 15, 20, 30, 45, 60, 120, 360, 750] {
            check_size(n);
        }
    }

    #[test]
    fn matches_dft_small_primes() {
        for n in [7, 11, 13, 21, 22, 31, 77] {
            check_size(n);
        }
    }

    #[test]
    fn matches_dft_large_primes_via_bluestein() {
        for n in [37, 97, 101, 211] {
            check_size(n);
        }
    }

    #[test]
    fn roundtrip_scales_by_n() {
        for n in [8, 12, 15, 37, 100] {
            let plan = Fft1d::<f64>::new(n);
            let x = random_signal(n, 99);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            plan.process(&mut y, Direction::Backward);
            let scaled: Vec<_> = x.iter().map(|z| z.scale(n as f64)).collect();
            assert!(rel_l2(&y, &scaled) < 1e-12, "roundtrip at n={n}");
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let n = 24;
        let plan = Fft1d::<f64>::new(n);
        let mut x = vec![Complex::ZERO; n];
        x[0] = Complex::ONE;
        plan.process(&mut x, Direction::Forward);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-14 && z.im.abs() < 1e-14);
        }
    }

    #[test]
    fn single_precision_accuracy() {
        let n = 480;
        let plan = Fft1d::<f32>::new(n);
        let x64 = random_signal(n, 5);
        let mut x32: Vec<Complex<f32>> = x64.iter().map(|z| z.cast()).collect();
        plan.process(&mut x32, Direction::Forward);
        let want = dft(&x64, -1);
        assert!(rel_l2(&x32, &want) < 1e-5);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 120;
        let plan = Fft1d::<f64>::new(n);
        let x = random_signal(n, 17);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        plan.process(&mut y, Direction::Forward);
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!(((ey / n as f64) - ex).abs() < 1e-10 * ex);
    }
}
