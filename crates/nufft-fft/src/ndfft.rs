//! Multi-dimensional FFT built from the 1D plan, applied axis by axis.
//!
//! Data layout matches the rest of the workspace: `x` (axis 0) fastest,
//! element `(l1,l2,l3)` at `l1 + n1*(l2 + n2*l3)`. Axis 0 transforms run on
//! contiguous rows; higher axes gather a strided line into scratch,
//! transform and scatter back.

use crate::plan1d::{Direction, Fft1d};
use nufft_common::complex::Complex;
use nufft_common::real::Real;
use nufft_common::shape::Shape;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Global 1D-plan cache keyed by (scalar type, size): planning a 4096^2
/// transform after a 4096^3 one reuses the same twiddle tables, the way
/// FFT libraries cache wisdom. Entries are `Arc`s, so evicting one never
/// invalidates a live plan — holders keep their tables; only the shared
/// handle is dropped. The cache is bounded ([`PLAN_CACHE_CAP`] entries,
/// least-recently-used evicted first): a long-lived process planning
/// many distinct sizes (the serve layer's plan-cache churn) must not
/// pin every twiddle table it has ever built.
const PLAN_CACHE_CAP: usize = 32;

struct PlanSlot {
    plan: Arc<dyn Any + Send + Sync>,
    /// Monotone use stamp; the minimum across slots is the LRU victim.
    stamp: u64,
}

struct PlanCacheInner {
    slots: HashMap<(TypeId, usize), PlanSlot>,
    clock: u64,
}

type PlanCache = Mutex<PlanCacheInner>;

fn plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(PlanCacheInner {
            slots: HashMap::new(),
            clock: 0,
        })
    })
}

/// Fetch or build the cached 1D plan for size `n`.
pub fn cached_plan<T: Real>(n: usize) -> Arc<Fft1d<T>> {
    let key = (TypeId::of::<T>(), n);
    let mut cache = plan_cache().lock().expect("plan cache poisoned");
    cache.clock += 1;
    let now = cache.clock;
    if let Some(slot) = cache.slots.get_mut(&key) {
        slot.stamp = now;
        if let Ok(typed) = Arc::downcast::<Fft1d<T>>(Arc::clone(&slot.plan)) {
            return typed;
        }
    }
    let plan = Arc::new(Fft1d::<T>::new(n));
    if cache.slots.len() >= PLAN_CACHE_CAP {
        if let Some(victim) = cache
            .slots
            .iter()
            .min_by_key(|(_, s)| s.stamp)
            .map(|(k, _)| *k)
        {
            cache.slots.remove(&victim);
        }
    }
    cache.slots.insert(
        key,
        PlanSlot {
            plan: plan.clone() as Arc<dyn Any + Send + Sync>,
            stamp: now,
        },
    );
    plan
}

/// Number of live entries in the global plan cache (test introspection).
pub fn plan_cache_len() -> usize {
    plan_cache()
        .lock()
        .expect("plan cache poisoned")
        .slots
        .len()
}

/// Reusable N-dimensional (1-3) complex FFT plan.
pub struct FftNd<T> {
    shape: Shape,
    /// One 1D plan per axis; axes of equal size share a plan.
    axis_plans: Vec<Arc<Fft1d<T>>>,
}

impl<T: Real> FftNd<T> {
    pub fn new(shape: Shape) -> Self {
        let axis_plans: Vec<Arc<Fft1d<T>>> = (0..shape.dim)
            .map(|i| cached_plan::<T>(shape.n[i]))
            .collect();
        FftNd { shape, axis_plans }
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Transform `data` (length `shape.total()`) in place.
    pub fn process(&self, data: &mut [Complex<T>], dir: Direction) {
        assert_eq!(data.len(), self.shape.total(), "data length != grid size");
        let max_n = (0..self.shape.dim).map(|i| self.shape.n[i]).max().unwrap();
        let mut line = vec![Complex::ZERO; max_n];
        let mut scratch = vec![Complex::ZERO; max_n];
        for axis in 0..self.shape.dim {
            self.process_axis(data, axis, dir, &mut line, &mut scratch);
        }
    }

    fn process_axis(
        &self,
        data: &mut [Complex<T>],
        axis: usize,
        dir: Direction,
        line: &mut [Complex<T>],
        scratch: &mut [Complex<T>],
    ) {
        let n = self.shape.n[axis];
        if n == 1 {
            return;
        }
        let plan = &self.axis_plans[axis];
        let strides = self.shape.strides();
        let stride = strides[axis];
        let line = &mut line[..n];
        let scratch = &mut scratch[..n];
        if axis == 0 {
            // Contiguous rows.
            for row in data.chunks_exact_mut(n) {
                plan.process_with_scratch(row, scratch, dir);
            }
            return;
        }
        // Enumerate all lines along `axis`: iterate over the other two axes.
        let (a, b) = match axis {
            1 => (0usize, 2usize),
            2 => (0usize, 1usize),
            _ => unreachable!(),
        };
        let (na, nb) = (self.shape.n[a], self.shape.n[b]);
        let (sa, sb) = (strides[a], strides[b]);
        for ib in 0..nb {
            for ia in 0..na {
                let base = ia * sa + ib * sb;
                for (k, v) in line.iter_mut().enumerate() {
                    *v = data[base + k * stride];
                }
                plan.process_with_scratch(line, scratch, dir);
                for (k, v) in line.iter().enumerate() {
                    data[base + k * stride] = *v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::c;
    use nufft_common::metrics::rel_l2;

    /// Naive multi-d DFT.
    fn dft_nd(x: &[Complex<f64>], shape: Shape, sign: i32) -> Vec<Complex<f64>> {
        let total = shape.total();
        let mut out = vec![Complex::ZERO; total];
        for (ko, o) in out.iter_mut().enumerate() {
            let [k1, k2, k3] = shape.coords(ko);
            let mut acc = Complex::ZERO;
            for (jo, &xj) in x.iter().enumerate() {
                let [j1, j2, j3] = shape.coords(jo);
                let ang = sign as f64
                    * std::f64::consts::TAU
                    * (j1 as f64 * k1 as f64 / shape.n[0] as f64
                        + j2 as f64 * k2 as f64 / shape.n[1] as f64
                        + j3 as f64 * k3 as f64 / shape.n[2] as f64);
                acc += xj * Complex::cis(ang);
            }
            *o = acc;
        }
        out
    }

    fn signal(total: usize) -> Vec<Complex<f64>> {
        (0..total)
            .map(|j| c((j as f64 * 0.37).sin(), (j as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn matches_dft_2d() {
        for (n1, n2) in [(4, 4), (8, 6), (5, 9), (12, 10)] {
            let shape = Shape::d2(n1, n2);
            let x = signal(shape.total());
            let plan = FftNd::<f64>::new(shape);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Forward);
            let want = dft_nd(&x, shape, -1);
            assert!(rel_l2(&y, &want) < 1e-11, "2d {n1}x{n2}");
        }
    }

    #[test]
    fn matches_dft_3d() {
        for (n1, n2, n3) in [(4, 4, 4), (6, 5, 3), (8, 2, 4)] {
            let shape = Shape::d3(n1, n2, n3);
            let x = signal(shape.total());
            let plan = FftNd::<f64>::new(shape);
            let mut y = x.clone();
            plan.process(&mut y, Direction::Backward);
            let want = dft_nd(&x, shape, 1);
            assert!(rel_l2(&y, &want) < 1e-11, "3d {n1}x{n2}x{n3}");
        }
    }

    #[test]
    fn matches_dft_1d_shape() {
        let shape = Shape::d1(30);
        let x = signal(30);
        let plan = FftNd::<f64>::new(shape);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        assert!(rel_l2(&y, &dft_nd(&x, shape, -1)) < 1e-11);
    }

    #[test]
    fn roundtrip_scales_by_total() {
        let shape = Shape::d3(4, 6, 5);
        let x = signal(shape.total());
        let plan = FftNd::<f64>::new(shape);
        let mut y = x.clone();
        plan.process(&mut y, Direction::Forward);
        plan.process(&mut y, Direction::Backward);
        let scaled: Vec<_> = x.iter().map(|z| z.scale(shape.total() as f64)).collect();
        assert!(rel_l2(&y, &scaled) < 1e-11);
    }

    #[test]
    fn separable_impulse() {
        // delta at origin -> all-ones spectrum
        let shape = Shape::d2(6, 4);
        let mut x = vec![Complex::ZERO; shape.total()];
        x[0] = Complex::ONE;
        let plan = FftNd::<f64>::new(shape);
        plan.process(&mut x, Direction::Forward);
        for z in &x {
            assert!((*z - Complex::ONE).abs() < 1e-13);
        }
    }

    #[test]
    fn axis_plans_are_shared_for_equal_sizes() {
        let plan = FftNd::<f32>::new(Shape::d3(16, 16, 16));
        assert!(Arc::ptr_eq(&plan.axis_plans[0], &plan.axis_plans[1]));
        assert!(Arc::ptr_eq(&plan.axis_plans[0], &plan.axis_plans[2]));
    }

    #[test]
    fn plan_cache_shares_across_instances_and_types() {
        let a = FftNd::<f64>::new(Shape::d2(48, 48));
        let b = FftNd::<f64>::new(Shape::d1(48));
        assert!(Arc::ptr_eq(&a.axis_plans[0], &b.axis_plans[0]));
        // different scalar types get distinct plans
        let c = FftNd::<f32>::new(Shape::d1(48));
        assert_eq!(c.axis_plans[0].len(), 48);
        // cached plans still compute correctly
        let mut x = vec![Complex::<f64>::ZERO; 48];
        x[1] = Complex::ONE;
        b.process(&mut x, Direction::Forward);
        let expect = Complex::cis(-std::f64::consts::TAU * 5.0 / 48.0);
        assert!((x[5] - expect).abs() < 1e-12);
    }
}
