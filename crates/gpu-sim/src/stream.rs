//! CUDA-style streams: concurrent queues whose operations overlap.
//!
//! The real cuFINUFFT pipelines batched transforms — the host-to-device
//! copy of batch `i+1` overlaps the kernels of batch `i` on separate
//! streams. The device's default clock is a single serial queue; a
//! [`Stream`] gives work its own queue, and [`sync_streams`]
//! advances the device clock to the latest stream completion (the
//! semantics of `cudaDeviceSynchronize`).
//!
//! Copy/compute overlap is modeled faithfully for its first-order
//! effect: PCIe transfers and SM execution use disjoint resources, so a
//! stream's transfer can hide entirely under another stream's kernel;
//! two kernels on different streams, by contrast, share the SMs and are
//! serialized (the conservative choice, and what a saturating kernel
//! does on real hardware).

use crate::device::{Device, GpuBuffer, OpKind};
use crate::faults::DeviceFault;

/// Resource classes that cannot overlap with themselves. The V100 has
/// two DMA copy engines, one per direction, so H2D and D2H transfers can
/// overlap each other as well as kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// Host-to-device transfer (upload copy engine).
    TransferH2D,
    /// Device-to-host transfer (download copy engine).
    TransferD2H,
    /// Kernel execution (SM array).
    Compute,
}

/// A stream: an ordered queue of operations with its own completion time.
#[derive(Debug)]
pub struct Stream {
    /// Completion time of the last operation queued on this stream.
    head: f64,
}

/// Tracks the busy-until horizon of each shared resource so overlapping
/// streams still contend correctly for the same engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineState {
    h2d_busy_until: f64,
    d2h_busy_until: f64,
    compute_busy_until: f64,
}

impl Stream {
    /// Create a stream starting at the device's current clock.
    pub fn new(dev: &Device) -> Self {
        Stream { head: dev.clock() }
    }

    /// Completion time of the stream's queued work.
    pub fn head(&self) -> f64 {
        self.head
    }

    /// Queue an operation of the given duration. The operation starts
    /// when both the stream's previous op and the required engine are
    /// free; returns the completion time.
    pub fn enqueue(&mut self, engines: &mut EngineState, op: StreamOp, duration: f64) -> f64 {
        let engine_free = match op {
            StreamOp::TransferH2D => engines.h2d_busy_until,
            StreamOp::TransferD2H => engines.d2h_busy_until,
            StreamOp::Compute => engines.compute_busy_until,
        };
        let start = self.head.max(engine_free);
        let done = start + duration;
        match op {
            StreamOp::TransferH2D => engines.h2d_busy_until = done,
            StreamOp::TransferD2H => engines.d2h_busy_until = done,
            StreamOp::Compute => engines.compute_busy_until = done,
        }
        self.head = done;
        done
    }

    /// Asynchronous host-to-device copy (`cudaMemcpyAsync` H2D): the data
    /// moves immediately (functional simulation), but the cost is queued
    /// on this stream's upload engine instead of the serial clock. The
    /// caller makes the elapsed time visible with [`sync_streams`].
    /// Returns the completion time. An injected fault fails the copy
    /// before data moves or engine time is reserved; an injected stall
    /// stretches the queued transfer.
    pub fn memcpy_htod<T: Copy>(
        &mut self,
        dev: &Device,
        engines: &mut EngineState,
        dst: &mut GpuBuffer<T>,
        src: &[T],
    ) -> Result<f64, DeviceFault> {
        assert!(src.len() <= dst.len(), "htod copy larger than buffer");
        let stall = dev.memcpy_fault("memcpy_htod_async", "memcpy_htod_async")?;
        dst.as_mut_slice()[..src.len()].copy_from_slice(src);
        let t = dev.transfer_time(std::mem::size_of_val(src)) + stall;
        let done = self.enqueue(engines, StreamOp::TransferH2D, t);
        dev.record_async("memcpy_htod_async", OpKind::Memcpy, done - t, t);
        Ok(done)
    }

    /// Asynchronous device-to-host copy (`cudaMemcpyAsync` D2H); see
    /// [`Stream::memcpy_htod`].
    pub fn memcpy_dtoh<T: Copy>(
        &mut self,
        dev: &Device,
        engines: &mut EngineState,
        dst: &mut [T],
        src: &GpuBuffer<T>,
    ) -> Result<f64, DeviceFault> {
        assert!(dst.len() <= src.len(), "dtoh copy larger than buffer");
        let stall = dev.memcpy_fault("memcpy_dtoh_async", "memcpy_dtoh_async")?;
        dst.copy_from_slice(&src.as_slice()[..dst.len()]);
        let t = dev.transfer_time(std::mem::size_of_val(dst)) + stall;
        let done = self.enqueue(engines, StreamOp::TransferD2H, t);
        dev.record_async("memcpy_dtoh_async", OpKind::Memcpy, done - t, t);
        Ok(done)
    }

    /// Queue an already-priced compute span (a kernel or bulk op whose
    /// duration was measured off the serial clock) so downstream ops on
    /// this stream wait for it and other streams contend for the SM
    /// array. Returns the completion time.
    pub fn compute(&mut self, engines: &mut EngineState, duration: f64) -> f64 {
        self.enqueue(engines, StreamOp::Compute, duration)
    }
}

/// Synchronize: advance the device clock to the latest of the given
/// stream heads (relative to the clock at stream creation, whichever is
/// later), mirroring `cudaDeviceSynchronize`.
pub fn sync_streams(dev: &Device, streams: &[&Stream]) -> f64 {
    let latest = streams.iter().map(|s| s.head()).fold(dev.clock(), f64::max);
    let advance = latest - dev.clock();
    if advance > 0.0 {
        dev.advance("stream_sync", advance);
    }
    dev.clock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_serializes() {
        let dev = Device::v100();
        let mut eng = EngineState::default();
        let mut s = Stream::new(&dev);
        s.enqueue(&mut eng, StreamOp::TransferH2D, 1.0);
        s.enqueue(&mut eng, StreamOp::Compute, 2.0);
        assert!((s.head() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_hides_under_compute_on_another_stream() {
        let dev = Device::v100();
        let mut eng = EngineState::default();
        let mut a = Stream::new(&dev);
        let mut b = Stream::new(&dev);
        a.enqueue(&mut eng, StreamOp::Compute, 5.0);
        b.enqueue(&mut eng, StreamOp::TransferH2D, 3.0); // overlaps fully
        assert!((a.head() - 5.0).abs() < 1e-12);
        assert!((b.head() - 3.0).abs() < 1e-12);
        let done = sync_streams(&dev, &[&a, &b]);
        assert!((done - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_kernels_share_the_sm_array() {
        let dev = Device::v100();
        let mut eng = EngineState::default();
        let mut a = Stream::new(&dev);
        let mut b = Stream::new(&dev);
        a.enqueue(&mut eng, StreamOp::Compute, 5.0);
        b.enqueue(&mut eng, StreamOp::Compute, 5.0); // must wait
        assert!((b.head() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_batches_beat_serial() {
        // the cufinufft batching pattern: transfer(i+1) under compute(i)
        let t_xfer = 2.0;
        let t_comp = 3.0;
        let n = 6;
        // serial: n * (xfer + comp)
        let serial = n as f64 * (t_xfer + t_comp);
        // pipelined on two streams
        let dev = Device::v100();
        let mut eng = EngineState::default();
        let mut streams = [Stream::new(&dev), Stream::new(&dev)];
        for i in 0..n {
            let s = &mut streams[i % 2];
            s.enqueue(&mut eng, StreamOp::TransferH2D, t_xfer);
            s.enqueue(&mut eng, StreamOp::Compute, t_comp);
        }
        let pipelined = streams.iter().map(|s| s.head()).fold(0.0, f64::max);
        assert!(
            pipelined < serial - t_xfer, // at least one transfer hidden
            "pipelined {pipelined} vs serial {serial}"
        );
        // and never better than the compute-bound floor
        assert!(pipelined >= n as f64 * t_comp);
    }

    #[test]
    fn async_memcpy_moves_data_without_advancing_clock() {
        let dev = Device::v100();
        let mut eng = EngineState::default();
        let host: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let mut buf = dev.alloc::<f32>("x", 256).unwrap();
        let mut s = Stream::new(&dev);
        let c0 = dev.clock();
        let done = s.memcpy_htod(&dev, &mut eng, &mut buf, &host).unwrap();
        assert_eq!(
            dev.clock(),
            c0,
            "async copy must not advance the serial clock"
        );
        assert!(done > c0);
        let mut back = vec![0.0f32; 256];
        s.memcpy_dtoh(&dev, &mut eng, &mut back, &buf).unwrap();
        assert_eq!(host, back);
        sync_streams(&dev, &[&s]);
        assert!(dev.clock() > c0, "sync exposes the queued transfer time");
    }

    #[test]
    fn async_memcpy_costs_match_serial_pricing() {
        let dev = Device::v100();
        let bytes = 1 << 20;
        let host = vec![0u8; bytes];
        let mut buf = dev.alloc::<u8>("x", bytes).unwrap();
        let c0 = dev.clock();
        dev.memcpy_htod(&mut buf, &host).unwrap();
        let serial = dev.clock() - c0;
        assert!((dev.transfer_time(bytes) - serial).abs() < 1e-15);
        let mut eng = EngineState::default();
        let mut s = Stream::new(&dev);
        let t0 = s.head();
        let done = s.memcpy_htod(&dev, &mut eng, &mut buf, &host).unwrap();
        assert!((done - t0 - serial).abs() < 1e-15);
    }

    #[test]
    fn sync_is_idempotent() {
        let dev = Device::v100();
        let s = Stream::new(&dev);
        let c1 = sync_streams(&dev, &[&s]);
        let c2 = sync_streams(&dev, &[&s]);
        assert_eq!(c1, c2);
    }
}
