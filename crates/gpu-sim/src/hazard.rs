//! Happens-before race checker and kernel access-contract checker.
//!
//! Consumes the [`KernelTrace`] a launch produced under
//! [`crate::access::HazardMode::Check`] and reports:
//!
//! * **intra-block hazards** — two threads of one block touch the same
//!   element in the same sync epoch (no `barrier()` between them) with
//!   at least one non-atomic write involved;
//! * **inter-block hazards** — two different blocks touch the same
//!   element of a *global* buffer and the pair is not mediated by
//!   atomics. Blocks of one launch have no ordering primitive in the
//!   CUDA model, so epochs are irrelevant across blocks;
//! * **contract violations** — the traced behavior disagrees with what
//!   the launch declared to the performance model (atomic counts,
//!   shared-memory footprint), i.e. the cost model has drifted from the
//!   functional code.
//!
//! The conflict rule is the classic race-detection matrix: Read/Read and
//! Atomic/Atomic pairs are safe, every other combination conflicts.
//! Detection is exact (no sampling): for each (buffer, element) the
//! checker keeps, per access kind, up to two representative accesses
//! with distinct thread (or block) ids — enough to decide whether *any*
//! conflicting pair from distinct threads exists, in O(records) time.

use crate::access::{AccessRecord, Contract, KernelTrace, Scope};
use nufft_common::hazard::{AccessKind, AccessSite, ContractViolation, Hazard, KernelHazardReport};
use std::collections::HashMap;

/// At most this many hazards are materialized per kernel report;
/// `hazards_total` still counts every one.
pub const MAX_REPORTED_HAZARDS: usize = 16;

#[inline]
fn kind_idx(k: AccessKind) -> usize {
    match k {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Atomic => 2,
    }
}

#[inline]
fn conflicts(a: AccessKind, b: AccessKind) -> bool {
    // read/read and atomic/atomic commute; everything else conflicts
    !((a == AccessKind::Read && b == AccessKind::Read)
        || (a == AccessKind::Atomic && b == AccessKind::Atomic))
}

/// Per access kind, up to two representatives with distinct ids (thread
/// ids for intra-block analysis, block ids for inter-block). Two are
/// sufficient: a conflicting pair with distinct ids exists iff one can
/// be assembled from representatives, since a third distinct id can
/// always be swapped for one of the stored two.
#[derive(Default)]
struct Reps {
    by_kind: [[Option<(AccessRecord, u32)>; 2]; 3],
}

impl Reps {
    /// `id` is the discriminating dimension of the analysis: the thread
    /// id for intra-block checks, the block id for inter-block checks.
    fn push(&mut self, r: AccessRecord, id: u32) {
        let slot = &mut self.by_kind[kind_idx(r.kind)];
        match slot[0] {
            None => slot[0] = Some((r, id)),
            Some((_, id0)) => {
                if id0 != id && slot[1].is_none() {
                    slot[1] = Some((r, id));
                }
            }
        }
    }

    /// First conflicting pair with distinct ids, if any.
    fn find_conflict(&self) -> Option<(AccessRecord, AccessRecord)> {
        for (i, &ka) in KINDS.iter().enumerate() {
            for (j, &kb) in KINDS.iter().enumerate().skip(i) {
                if !conflicts(ka, kb) {
                    continue;
                }
                for a in self.by_kind[i].iter().flatten() {
                    for b in self.by_kind[j].iter().flatten() {
                        if a.1 != b.1 {
                            return Some((a.0, b.0));
                        }
                    }
                }
            }
        }
        None
    }
}

const KINDS: [AccessKind; 3] = [AccessKind::Read, AccessKind::Write, AccessKind::Atomic];

fn site(r: &AccessRecord) -> AccessSite {
    AccessSite {
        block: r.block,
        thread: r.thread,
        epoch: r.epoch,
        kind: r.kind,
    }
}

/// Run the happens-before and contract analysis on one launch trace.
pub fn check(trace: &KernelTrace, contract: &Contract) -> KernelHazardReport {
    let mut report = KernelHazardReport {
        kernel: trace.name().to_string(),
        accesses: trace.records.len() as u64,
        ..Default::default()
    };
    report.blocks = trace.records.iter().map(|r| r.block + 1).max().unwrap_or(0);

    // Group accesses by (buffer, element).
    let mut by_elem: HashMap<(u16, u64), Vec<&AccessRecord>> = HashMap::new();
    for r in &trace.records {
        by_elem.entry((r.buf, r.elem)).or_default().push(r);
    }

    let push_hazard = |report: &mut KernelHazardReport,
                       buf: u16,
                       elem: u64,
                       pair: (AccessRecord, AccessRecord),
                       intra: bool| {
        report.hazards_total += 1;
        if report.hazards.len() < MAX_REPORTED_HAZARDS {
            report.hazards.push(Hazard {
                buffer: trace.buffers[buf as usize].name.clone(),
                elem,
                first: site(&pair.0),
                second: site(&pair.1),
                intra_block: intra,
            });
        }
    };

    let mut keys: Vec<(u16, u64)> = by_elem.keys().copied().collect();
    keys.sort_unstable(); // deterministic reporting order
    for key in keys {
        let (buf, elem) = key;
        let recs = &by_elem[&key];
        let scope = trace.buffers[buf as usize].scope;

        // Intra-block: conflicts between distinct threads of one block
        // within one sync epoch.
        let mut per_epoch: HashMap<(u32, u32), Reps> = HashMap::new();
        for &r in recs {
            per_epoch
                .entry((r.block, r.epoch))
                .or_default()
                .push(*r, r.thread);
        }
        let mut epochs: Vec<(u32, u32)> = per_epoch.keys().copied().collect();
        epochs.sort_unstable();
        for e in epochs {
            if let Some(pair) = per_epoch[&e].find_conflict() {
                push_hazard(&mut report, buf, elem, pair, true);
            }
        }

        // Inter-block: conflicts between distinct blocks on global
        // buffers, regardless of epoch (no cross-block barrier exists).
        if scope == Scope::Global {
            let mut reps = Reps::default();
            for &r in recs {
                reps.push(*r, r.block);
            }
            if let Some(pair) = reps.find_conflict() {
                push_hazard(&mut report, buf, elem, pair, false);
            }
        }
    }

    // Contract cross-validation: trace vs. performance-model declaration.
    let mut observed_global_atomics = 0u64;
    let mut observed_shared_atomics = 0u64;
    let mut shared_max_elem: HashMap<u16, u64> = HashMap::new();
    for r in &trace.records {
        let scope = trace.buffers[r.buf as usize].scope;
        if r.kind == AccessKind::Atomic {
            match scope {
                Scope::Global => observed_global_atomics += 1,
                Scope::Shared => observed_shared_atomics += 1,
            }
        }
        if scope == Scope::Shared {
            let m = shared_max_elem.entry(r.buf).or_insert(0);
            *m = (*m).max(r.elem);
        }
    }
    if let Some(declared) = contract.global_atomics {
        if declared != observed_global_atomics {
            report
                .violations
                .push(ContractViolation::GlobalAtomicCount {
                    declared,
                    observed: observed_global_atomics,
                });
        }
    }
    if let Some(declared) = contract.shared_atomics {
        if declared != observed_shared_atomics {
            report
                .violations
                .push(ContractViolation::SharedAtomicCount {
                    declared,
                    observed: observed_shared_atomics,
                });
        }
    }
    if let Some(declared_bytes) = contract.shared_bytes {
        let observed_bytes: usize = shared_max_elem
            .iter()
            .map(|(&buf, &max_elem)| {
                (max_elem as usize + 1) * trace.buffers[buf as usize].elem_bytes
            })
            .sum();
        // A declaration of *zero* shared bytes with any traced
        // shared-buffer touch is a violation in its own right, not just
        // when the footprint arithmetic happens to exceed zero — the
        // kernel claimed it uses no shared memory at all.
        let zero_declared_but_touched = declared_bytes == 0 && !shared_max_elem.is_empty();
        if observed_bytes > declared_bytes || zero_declared_but_touched {
            report.violations.push(ContractViolation::SharedFootprint {
                declared_bytes,
                observed_bytes,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Scope;

    fn trace() -> KernelTrace {
        KernelTrace::new("t")
    }

    #[test]
    fn unsynchronized_writes_same_block_are_flagged() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.write(b, 0, 0, 10);
        t.write(b, 0, 1, 10);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
        let h = &r.hazards[0];
        assert!(h.intra_block);
        assert_eq!(h.buffer, "g");
        assert_eq!(h.elem, 10);
        assert_ne!(h.first.thread, h.second.thread);
    }

    #[test]
    fn barrier_separates_writers() {
        let mut t = trace();
        let b = t.buffer("s", Scope::Shared, 4);
        t.write(b, 0, 0, 10);
        t.barrier(0);
        t.write(b, 0, 1, 10);
        let r = check(&t, &Contract::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.read(b, 0, 3, 5);
        t.write(b, 0, 3, 5);
        t.atomic(b, 0, 3, 5);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 0);
    }

    #[test]
    fn read_write_conflict_is_flagged() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.read(b, 0, 0, 2);
        t.write(b, 0, 1, 2);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
    }

    #[test]
    fn atomics_do_not_conflict_with_atomics() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        for thread in 0..32 {
            t.atomic(b, 0, thread, 0);
        }
        for block in 1..8 {
            t.atomic(b, block, 0, 0);
        }
        let r = check(&t, &Contract::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn atomic_vs_plain_write_conflicts() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.atomic(b, 0, 0, 9);
        t.write(b, 0, 1, 9);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
    }

    #[test]
    fn inter_block_write_write_on_global_is_flagged() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        // same thread id, different blocks; epochs differ (irrelevant
        // across blocks: there is no inter-block barrier)
        t.write(b, 0, 0, 4);
        t.barrier(1);
        t.write(b, 1, 0, 4);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
        assert!(!r.hazards[0].intra_block);
        assert_ne!(r.hazards[0].first.block, r.hazards[0].second.block);
    }

    #[test]
    fn shared_buffers_skip_inter_block_analysis() {
        // each block owns its shared allocation: same element id in two
        // blocks is two different physical locations
        let mut t = trace();
        let b = t.buffer("s", Scope::Shared, 4);
        t.write(b, 0, 0, 4);
        t.write(b, 1, 0, 4);
        let r = check(&t, &Contract::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn reads_from_many_threads_and_blocks_are_clean() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        for block in 0..4 {
            for thread in 0..8 {
                t.read(b, block, thread, 0);
            }
        }
        assert!(check(&t, &Contract::default()).is_clean());
    }

    #[test]
    fn hazard_count_exceeding_cap_still_counted() {
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        for e in 0..100u64 {
            t.write(b, 0, 0, e);
            t.write(b, 0, 1, e);
        }
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 100);
        assert_eq!(r.hazards.len(), MAX_REPORTED_HAZARDS);
    }

    #[test]
    fn atomic_count_drift_is_a_violation() {
        let mut t = trace();
        let g = t.buffer("g", Scope::Global, 4);
        let s = t.buffer("s", Scope::Shared, 4);
        t.atomic(g, 0, 0, 0);
        t.atomic(g, 0, 0, 1);
        t.atomic(s, 0, 0, 0);
        let c = Contract {
            global_atomics: Some(5), // model charged 5, trace saw 2
            shared_atomics: Some(1), // matches
            shared_bytes: None,
        };
        let r = check(&t, &c);
        assert_eq!(
            r.violations,
            vec![ContractViolation::GlobalAtomicCount {
                declared: 5,
                observed: 2
            }]
        );
    }

    #[test]
    fn shared_footprint_overflow_is_a_violation() {
        let mut t = trace();
        let s = t.buffer("s", Scope::Shared, 8);
        t.atomic(s, 0, 0, 99); // touches word 99 -> 100 elems * 8 B
        let c = Contract {
            shared_bytes: Some(256),
            shared_atomics: Some(1),
            ..Default::default()
        };
        let r = check(&t, &c);
        assert_eq!(
            r.violations,
            vec![ContractViolation::SharedFootprint {
                declared_bytes: 256,
                observed_bytes: 800
            }]
        );
        // within budget: clean
        let c = Contract {
            shared_bytes: Some(800),
            shared_atomics: Some(1),
            ..Default::default()
        };
        assert!(check(&t, &c).is_clean());
    }

    #[test]
    fn zero_declared_shared_bytes_with_shared_touch_is_a_violation() {
        // Regression: `shared_bytes: Some(0)` is a positive claim ("this
        // kernel uses no shared memory"), so any traced shared-buffer
        // touch must be a ContractViolation — even a read of element 0.
        let mut t = trace();
        let s = t.buffer("s", Scope::Shared, 8);
        t.read(s, 0, 0, 0);
        let c = Contract {
            shared_bytes: Some(0),
            ..Default::default()
        };
        let r = check(&t, &c);
        assert_eq!(
            r.violations,
            vec![ContractViolation::SharedFootprint {
                declared_bytes: 0,
                observed_bytes: 8
            }]
        );
        // ...but Some(0) with no shared touch at all stays clean (a
        // global-only kernel correctly declaring zero shared bytes).
        let mut t = trace();
        let g = t.buffer("g", Scope::Global, 8);
        t.write(g, 0, 0, 0);
        assert!(check(&t, &c).is_clean());
    }

    #[test]
    fn exactly_two_conflicting_sites_are_both_reported() {
        // Boundary of the 2-representatives rule from below: with
        // exactly two distinct conflicting threads, the stored pair IS
        // the conflict, and the report names both actual sites.
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.write(b, 0, 5, 7);
        t.write(b, 0, 9, 7);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
        let h = &r.hazards[0];
        let pair = [h.first.thread, h.second.thread];
        assert!(pair.contains(&5) && pair.contains(&9), "{h:?}");
    }

    #[test]
    fn exactly_three_conflicting_sites_still_one_hazard_per_element() {
        // Boundary from above: a third distinct writer adds no new
        // information (any pair already proves the race), so the checker
        // still reports one hazard for the element, assembled from the
        // two stored representatives.
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        for thread in [5, 9, 13] {
            t.write(b, 0, thread, 7);
        }
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
        let h = &r.hazards[0];
        assert_ne!(h.first.thread, h.second.thread);
        assert!([5, 9, 13].contains(&h.first.thread));
        assert!([5, 9, 13].contains(&h.second.thread));
    }

    #[test]
    fn duplicate_first_id_does_not_mask_the_second_representative() {
        // Representative dedup is by id: a repeat of the first thread
        // must not occupy the second slot, or the later genuinely
        // distinct thread would be dropped and the race missed.
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.write(b, 0, 5, 7);
        t.write(b, 0, 5, 7); // same thread again
        t.write(b, 0, 9, 7); // the distinct second writer
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1, "{r}");
        // ...and with only one distinct thread (however many records),
        // no pair with distinct ids exists: clean.
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        for _ in 0..10 {
            t.write(b, 0, 5, 7);
        }
        assert!(check(&t, &Contract::default()).is_clean());
    }

    #[test]
    fn inter_block_representatives_hit_the_same_boundaries() {
        // The same 2-representatives rule discriminates on block ids for
        // the inter-block analysis: [2, 2, 4] must find the 2/4 pair.
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.write(b, 2, 0, 7);
        t.write(b, 2, 0, 7);
        t.write(b, 4, 0, 7);
        let r = check(&t, &Contract::default());
        // one inter-block hazard; no intra-block one (same thread id
        // within each block)
        assert_eq!(r.hazards_total, 1);
        let h = &r.hazards[0];
        assert!(!h.intra_block);
        let pair = [h.first.block, h.second.block];
        assert!(pair.contains(&2) && pair.contains(&4), "{h:?}");
    }

    #[test]
    fn cross_kind_conflict_found_from_representatives_at_three_sites() {
        // Mixed kinds at exactly three distinct threads: two readers and
        // one writer. The read/write pair must be assembled across the
        // per-kind representative slots.
        let mut t = trace();
        let b = t.buffer("g", Scope::Global, 4);
        t.read(b, 0, 1, 7);
        t.read(b, 0, 2, 7);
        t.write(b, 0, 3, 7);
        let r = check(&t, &Contract::default());
        assert_eq!(r.hazards_total, 1);
        let h = &r.hazards[0];
        assert!(
            (h.first.kind == AccessKind::Read && h.second.kind == AccessKind::Write)
                || (h.first.kind == AccessKind::Write && h.second.kind == AccessKind::Read),
            "{h:?}"
        );
    }

    #[test]
    fn conflict_matrix_matches_spec() {
        use AccessKind::*;
        assert!(!conflicts(Read, Read));
        assert!(!conflicts(Atomic, Atomic));
        assert!(conflicts(Read, Write));
        assert!(conflicts(Write, Write));
        assert!(conflicts(Write, Atomic));
        assert!(conflicts(Read, Atomic));
    }
}
