//! Symbolic kernel access plans — the *static* counterpart of the
//! dynamic shadow-memory trace in [`crate::access`].
//!
//! A [`KernelTrace`] records what one concrete launch actually did; an
//! [`AccessPlan`] declares, next to the kernel, what *every* launch of
//! that kernel may do, as interval/stride index expressions per buffer,
//! sync epoch, and access kind. Three execution-free passes run over a
//! plan (FINUFFT's closed-form kernel footprints — width `w`, halo wrap
//! windows, bin ranges — make the access sets of every spread/interp
//! kernel expressible this way):
//!
//! * **bounds** ([`AccessPlan::check_bounds`]) — interval arithmetic
//!   proves every term lands inside its declared buffer;
//! * **race classes** ([`AccessPlan::check_races`]) — same-epoch
//!   distinct-thread (and any-epoch distinct-block) write-overlap
//!   detection on the symbolic index sets, statically re-deriving what
//!   [`crate::hazard`] finds dynamically;
//! * **launch feasibility** ([`AccessPlan::check_launch`]) — shared
//!   memory vs. the device budget (paper Remark 2), thread-count
//!   limits, warp-alignment occupancy checks, and contract atomic-count
//!   cross-validation ([`AccessPlan::check_contract`]).
//!
//! The static and dynamic layers are tied together by
//! [`AccessPlan::contains_trace`]: every access a hazard-mode launch
//! records must be contained in the plan's predicted set (*static
//! refines dynamic*), so a plan cannot silently drift from the kernel
//! it describes.

use crate::access::{Contract, KernelTrace, Scope};
use crate::props::DeviceProps;
use nufft_common::hazard::AccessKind;
use nufft_common::lint::{LintFinding, LintKind, LintLevel};

/// Hardware ceiling on threads per block (CUDA architectural limit).
pub const MAX_THREADS_PER_BLOCK: u32 = 1024;

/// At most this many containment mismatches are materialized by
/// [`AccessPlan::contains_trace`]; the rest are summarized.
pub const MAX_REPORTED_MISMATCHES: usize = 8;

/// A buffer the plan's terms index into. Unlike the dynamic
/// [`crate::access::BufferDecl`], the plan also declares the buffer's
/// *length* in trace elements so the bounds pass has something to prove
/// against.
#[derive(Clone, Debug)]
pub struct PlanBuffer {
    pub name: String,
    pub scope: Scope,
    pub elem_bytes: usize,
    /// Length in trace elements (same granularity the dynamic trace
    /// uses, e.g. one real word for complex grids).
    pub len: u64,
}

/// One symbolic dimension of an index expression: `stride * v` where
/// the free variable `v` ranges over `[lo, hi]` (inclusive), optionally
/// wrapped as `v.rem_euclid(modulus)` first — the model of a periodic
/// fine-grid halo window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DimTerm {
    pub stride: i64,
    pub lo: i64,
    pub hi: i64,
    pub modulus: Option<i64>,
}

impl DimTerm {
    /// Unwrapped variable: `stride * v`, `v` in `[lo, hi]`.
    pub fn var(stride: i64, lo: i64, hi: i64) -> Self {
        debug_assert!(lo <= hi, "empty dim range [{lo}, {hi}]");
        DimTerm {
            stride,
            lo,
            hi,
            modulus: None,
        }
    }

    /// Wrapped variable: `stride * v.rem_euclid(modulus)`, `v` in
    /// `[lo, hi]` before the wrap. The wrap confines the value to
    /// `[0, modulus)` however far the raw range strays — exactly the
    /// `rem_euclid` a periodic footprint applies per dimension.
    pub fn wrapped(stride: i64, lo: i64, hi: i64, modulus: i64) -> Self {
        debug_assert!(modulus > 0, "modulus must be positive");
        DimTerm {
            stride,
            lo,
            hi,
            modulus: Some(modulus),
        }
    }

    /// Inclusive interval of `stride * value` contributions.
    fn interval(&self) -> (i64, i64) {
        let (lo, hi) = match self.modulus {
            // If the raw range already sits inside one period keep it
            // (tighter); otherwise the wrap reaches the whole period.
            Some(m) if self.lo < 0 || self.hi >= m => (0, m - 1),
            _ => (self.lo, self.hi),
        };
        if self.stride >= 0 {
            (self.stride * lo, self.stride * hi)
        } else {
            (self.stride * hi, self.stride * lo)
        }
    }

    /// Number of distinct variable values (used for access counting).
    fn cardinality(&self) -> u64 {
        (self.hi - self.lo + 1).max(0) as u64
    }
}

/// A symbolic element index: `offset + sum(dim terms)`. Interval
/// arithmetic composes the per-dimension contributions; the predicted
/// element set of the expression is the (conservative) interval hull.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexExpr {
    pub offset: i64,
    pub dims: Vec<DimTerm>,
}

impl IndexExpr {
    pub fn new(offset: i64) -> Self {
        IndexExpr {
            offset,
            dims: Vec::new(),
        }
    }

    /// Builder-style: append a dimension term.
    pub fn dim(mut self, term: DimTerm) -> Self {
        self.dims.push(term);
        self
    }

    /// Inclusive interval hull `[lo, hi]` of the expression's values.
    pub fn interval(&self) -> (i64, i64) {
        let mut lo = self.offset;
        let mut hi = self.offset;
        for d in &self.dims {
            let (dlo, dhi) = d.interval();
            lo += dlo;
            hi += dhi;
        }
        (lo, hi)
    }

    /// Whether a concrete element is inside the predicted hull.
    pub fn contains(&self, elem: u64) -> bool {
        let (lo, hi) = self.interval();
        elem as i64 >= lo && elem as i64 <= hi
    }

    /// Number of (variable-tuple) instantiations — the exact access
    /// count when each tuple is visited once, as in every shipped
    /// kernel's per-thread loops.
    pub fn instances(&self) -> u64 {
        self.dims.iter().map(|d| d.cardinality()).product()
    }
}

/// How distinct executors (threads of a block, or blocks of a launch)
/// map onto the elements of one access term — the symbolic fact that
/// lets the race pass prove write terms safe without enumerating
/// threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ThreadMap {
    /// Element-to-executor is functional: no element is touched by two
    /// distinct threads (resp. blocks) through this term.
    Exclusive,
    /// Every access of this term is performed by one fixed executor
    /// (thread 0 / block 0) — the single-threaded reference shape.
    Single,
    /// Distinct executors may touch the same element (e.g. overlapping
    /// spreading footprints). Safe only for reads and atomics.
    Overlapping,
}

/// One symbolic access set: every access the kernel performs against
/// `buf` with this kind in this sync epoch.
#[derive(Clone, Debug)]
pub struct AccessTerm {
    /// Index into [`AccessPlan::buffers`].
    pub buf: usize,
    pub kind: AccessKind,
    /// Block-local sync epoch (barrier count) the accesses execute in.
    pub epoch: u32,
    pub expr: IndexExpr,
    /// Element-to-thread mapping within a block.
    pub threads: ThreadMap,
    /// Element-to-block mapping across the launch.
    pub blocks: ThreadMap,
    /// Total accesses over the whole launch, as a `[lo, hi]` range
    /// (distribution-dependent kernels like SM have a range; map-style
    /// kernels have `lo == hi`).
    pub count: (u64, u64),
}

/// The symbolic access plan of one kernel, declared next to the kernel
/// it describes. Mirrors the dynamic [`Contract`] so the static checker
/// can cross-validate the cost model's declared atomic counts too.
#[derive(Clone, Debug)]
pub struct AccessPlan {
    pub kernel: String,
    pub buffers: Vec<PlanBuffer>,
    pub terms: Vec<AccessTerm>,
    pub threads_per_block: u32,
    /// Upper bound on blocks the launch can use.
    pub blocks: u64,
    /// Shared bytes per block the launch declares.
    pub shared_bytes: usize,
    /// What the kernel's pricing declares to the hazard checker.
    pub contract: Contract,
}

impl AccessPlan {
    pub fn new(kernel: &str, threads_per_block: u32, blocks: u64) -> Self {
        AccessPlan {
            kernel: kernel.to_string(),
            buffers: Vec::new(),
            terms: Vec::new(),
            threads_per_block,
            blocks,
            shared_bytes: 0,
            contract: Contract::default(),
        }
    }

    /// Register a buffer; returns its index for use in terms.
    pub fn buffer(&mut self, name: &str, scope: Scope, elem_bytes: usize, len: u64) -> usize {
        self.buffers.push(PlanBuffer {
            name: name.to_string(),
            scope,
            elem_bytes: elem_bytes.max(1),
            len,
        });
        self.buffers.len() - 1
    }

    /// Append an access term.
    #[allow(clippy::too_many_arguments)]
    pub fn term(
        &mut self,
        buf: usize,
        kind: AccessKind,
        epoch: u32,
        expr: IndexExpr,
        threads: ThreadMap,
        blocks: ThreadMap,
        count: (u64, u64),
    ) {
        debug_assert!(buf < self.buffers.len());
        debug_assert!(count.0 <= count.1);
        self.terms.push(AccessTerm {
            buf,
            kind,
            epoch,
            expr,
            threads,
            blocks,
            count,
        });
    }

    /// Minimum atomics the plan proves the launch performs in a scope.
    pub fn predicted_atomics_min(&self, scope: Scope) -> u64 {
        self.terms
            .iter()
            .filter(|t| t.kind == AccessKind::Atomic && self.buffers[t.buf].scope == scope)
            .map(|t| t.count.0)
            .sum()
    }

    /// **Bounds pass**: every term's interval hull must sit inside its
    /// declared buffer for every instantiation of the free variables.
    pub fn check_bounds(&self) -> Vec<LintFinding> {
        let mut out = Vec::new();
        for t in &self.terms {
            let b = &self.buffers[t.buf];
            let (lo, hi) = t.expr.interval();
            if lo < 0 || hi as i128 >= b.len as i128 {
                out.push(LintFinding::new(
                    "AP001",
                    LintLevel::Error,
                    LintKind::OutOfBounds {
                        kernel: self.kernel.clone(),
                        buffer: b.name.clone(),
                        lo,
                        hi,
                        len: b.len,
                    },
                ));
            }
        }
        out
    }

    /// **Race-class pass**: for each buffer, find term pairs (including
    /// a term against itself) whose kinds conflict under the classic
    /// matrix (read/read and atomic/atomic commute, everything else
    /// conflicts), whose interval hulls overlap, and whose executor
    /// maps cannot rule the overlap out — the static analogue of
    /// [`crate::hazard::check`]'s intra-/inter-block analysis.
    pub fn check_races(&self) -> Vec<LintFinding> {
        #[inline]
        fn conflicts(a: AccessKind, b: AccessKind) -> bool {
            !((a == AccessKind::Read && b == AccessKind::Read)
                || (a == AccessKind::Atomic && b == AccessKind::Atomic))
        }
        let overlap = |a: &AccessTerm, b: &AccessTerm| {
            let (alo, ahi) = a.expr.interval();
            let (blo, bhi) = b.expr.interval();
            alo <= bhi && blo <= ahi
        };
        let mut out = Vec::new();
        let mut push = |buf: usize, epoch: u32, a: AccessKind, b: AccessKind, intra: bool| {
            out.push(LintFinding::new(
                "AP002",
                LintLevel::Error,
                LintKind::StaticRace {
                    kernel: self.kernel.clone(),
                    buffer: self.buffers[buf].name.clone(),
                    epoch,
                    first: a,
                    second: b,
                    intra_block: intra,
                },
            ));
        };
        for (i, a) in self.terms.iter().enumerate() {
            // A term against itself: safe iff its executor map proves
            // no element is reachable from two distinct executors.
            if conflicts(a.kind, a.kind) && a.count.1 > 1 {
                if a.threads == ThreadMap::Overlapping {
                    push(a.buf, a.epoch, a.kind, a.kind, true);
                }
                if self.buffers[a.buf].scope == Scope::Global && a.blocks == ThreadMap::Overlapping
                {
                    push(a.buf, a.epoch, a.kind, a.kind, false);
                }
            }
            for b in self.terms.iter().skip(i + 1) {
                if a.buf != b.buf || !conflicts(a.kind, b.kind) || !overlap(a, b) {
                    continue;
                }
                // Distinct terms: the only static proof that the same
                // element is reached by the same executor on both sides
                // is that both terms run on the fixed single executor.
                if a.epoch == b.epoch
                    && !(a.threads == ThreadMap::Single && b.threads == ThreadMap::Single)
                {
                    push(a.buf, a.epoch, a.kind, b.kind, true);
                }
                if self.buffers[a.buf].scope == Scope::Global
                    && !(a.blocks == ThreadMap::Single && b.blocks == ThreadMap::Single)
                {
                    push(a.buf, a.epoch, a.kind, b.kind, false);
                }
            }
        }
        out
    }

    /// **Launch-feasibility pass**: shared-memory footprint vs. the
    /// device (and the caller's Remark-2 `budget`, typically the
    /// paper's 49 kB), thread-count limits, warp alignment.
    pub fn check_launch(&self, props: &DeviceProps, budget: usize) -> Vec<LintFinding> {
        let mut out = Vec::new();
        let cap = budget.min(props.shared_mem_per_block);
        // The plan's shared buffers must fit the declared allocation,
        // and the allocation must fit the budget.
        let footprint: usize = self
            .buffers
            .iter()
            .filter(|b| b.scope == Scope::Shared)
            .map(|b| b.len as usize * b.elem_bytes)
            .sum();
        let needed = footprint.max(self.shared_bytes);
        if footprint > self.shared_bytes || needed > cap {
            out.push(LintFinding::new(
                "AP004",
                LintLevel::Error,
                LintKind::SharedOverBudget {
                    kernel: self.kernel.clone(),
                    needed_bytes: needed,
                    budget_bytes: self.shared_bytes.min(cap),
                },
            ));
        }
        if self.threads_per_block == 0 || self.threads_per_block > MAX_THREADS_PER_BLOCK {
            out.push(LintFinding::new(
                "AP005",
                LintLevel::Error,
                LintKind::LaunchInfeasible {
                    kernel: self.kernel.clone(),
                    message: format!(
                        "threads per block {} outside (0, {MAX_THREADS_PER_BLOCK}]",
                        self.threads_per_block
                    ),
                },
            ));
        } else if !(self.threads_per_block as usize).is_multiple_of(props.warp_size) {
            out.push(LintFinding::new(
                "AP006",
                LintLevel::Warn,
                LintKind::OccupancyWaste {
                    kernel: self.kernel.clone(),
                    message: format!(
                        "threads per block {} is not a multiple of the warp size {}",
                        self.threads_per_block, props.warp_size
                    ),
                },
            ));
        }
        out
    }

    /// **Contract cross-check**: the declared cost-model atomic counts
    /// must not fall below what the plan proves the launch performs (an
    /// under-declared contract means the performance model undercharges
    /// atomics — the drift the dynamic checker catches one launch at a
    /// time, proven here for all of them).
    pub fn check_contract(&self) -> Vec<LintFinding> {
        let mut out = Vec::new();
        for (scope, name, declared) in [
            (Scope::Global, "global", self.contract.global_atomics),
            (Scope::Shared, "shared", self.contract.shared_atomics),
        ] {
            if let Some(declared) = declared {
                let predicted = self.predicted_atomics_min(scope);
                if declared < predicted {
                    out.push(LintFinding::new(
                        "AP003",
                        LintLevel::Error,
                        LintKind::UnderDeclaredAtomics {
                            kernel: self.kernel.clone(),
                            scope: name,
                            declared,
                            predicted_min: predicted,
                        },
                    ));
                }
            }
        }
        out
    }

    /// All four static passes.
    pub fn check_all(&self, props: &DeviceProps, budget: usize) -> Vec<LintFinding> {
        let mut out = self.check_bounds();
        out.extend(self.check_races());
        out.extend(self.check_launch(props, budget));
        out.extend(self.check_contract());
        out
    }

    /// **Static-refines-dynamic**: every access a hazard-mode launch
    /// recorded must be predicted by some term of this plan (same
    /// buffer name, kind, and epoch; element inside the term's hull;
    /// thread and block ids inside the launch shape). Returns the list
    /// of mismatches (capped at [`MAX_REPORTED_MISMATCHES`], with a
    /// summary line when more exist) — empty means containment holds.
    pub fn contains_trace(&self, trace: &KernelTrace) -> Vec<String> {
        let mut mismatches = Vec::new();
        let mut total = 0usize;
        let buf_names: Vec<&str> = trace.buffers().iter().map(|b| b.name.as_str()).collect();
        for r in trace.records() {
            let name = buf_names[r.buf as usize];
            let predicted = self.terms.iter().any(|t| {
                self.buffers[t.buf].name == name
                    && t.kind == r.kind
                    && t.epoch == r.epoch
                    && t.expr.contains(r.elem)
            });
            let in_shape =
                (r.thread as u64) < self.threads_per_block as u64 && (r.block as u64) < self.blocks;
            if !predicted || !in_shape {
                total += 1;
                if mismatches.len() < MAX_REPORTED_MISMATCHES {
                    mismatches.push(format!(
                        "{}: {} of '{}'[{}] by block {} thread {} (epoch {}) not in static plan",
                        trace.name(),
                        r.kind,
                        name,
                        r.elem,
                        r.block,
                        r.thread,
                        r.epoch
                    ));
                }
            }
        }
        if total > mismatches.len() {
            mismatches.push(format!(
                "... and {} more uncontained access(es)",
                total - mismatches.len()
            ));
        }
        mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_common::hazard::AccessKind::*;

    fn props() -> DeviceProps {
        DeviceProps::v100()
    }

    fn simple_plan() -> AccessPlan {
        // one block of 128 threads writing out[j], j in [0, 100)
        let mut p = AccessPlan::new("k", 128, 1);
        let out = p.buffer("out", Scope::Global, 8, 100);
        p.term(
            out,
            Write,
            0,
            IndexExpr::new(0).dim(DimTerm::var(1, 0, 99)),
            ThreadMap::Exclusive,
            ThreadMap::Exclusive,
            (100, 100),
        );
        p
    }

    #[test]
    fn in_bounds_exclusive_writes_are_clean() {
        let p = simple_plan();
        assert!(p.check_all(&props(), 49_000).is_empty());
    }

    #[test]
    fn interval_escape_is_out_of_bounds() {
        let mut p = simple_plan();
        p.terms[0].expr.offset = 1; // hull becomes [1, 100] vs len 100
        let f = p.check_bounds();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, "AP001");
        assert!(matches!(
            &f[0].kind,
            LintKind::OutOfBounds {
                hi: 100,
                len: 100,
                ..
            }
        ));
    }

    #[test]
    fn negative_reach_is_out_of_bounds() {
        let mut p = simple_plan();
        p.terms[0].expr.dims[0] = DimTerm::var(1, -3, 99);
        assert_eq!(p.check_bounds().len(), 1);
    }

    #[test]
    fn wrap_confines_a_straying_range() {
        // raw range [-6, 105] wrapped mod 100 stays in [0, 99]
        let d = DimTerm::wrapped(1, -6, 105, 100);
        assert_eq!(d.interval(), (0, 99));
        // an already-confined range keeps its tighter bounds
        let d = DimTerm::wrapped(1, 3, 7, 100);
        assert_eq!(d.interval(), (3, 7));
    }

    #[test]
    fn overlapping_writes_are_a_static_race() {
        let mut p = simple_plan();
        p.terms[0].threads = ThreadMap::Overlapping;
        p.terms[0].blocks = ThreadMap::Overlapping;
        let f = p.check_races();
        assert_eq!(f.len(), 2); // intra and inter
        assert!(f.iter().all(|x| x.id == "AP002"));
    }

    #[test]
    fn overlapping_atomics_are_not_a_race() {
        let mut p = simple_plan();
        p.terms[0].kind = Atomic;
        p.terms[0].threads = ThreadMap::Overlapping;
        p.terms[0].blocks = ThreadMap::Overlapping;
        assert!(p.check_races().is_empty());
    }

    #[test]
    fn cross_term_read_write_same_epoch_races_unless_single() {
        let mut p = AccessPlan::new("k", 32, 1);
        let b = p.buffer("s", Scope::Shared, 4, 64);
        let expr = || IndexExpr::new(0).dim(DimTerm::var(1, 0, 63));
        p.term(
            b,
            Read,
            0,
            expr(),
            ThreadMap::Single,
            ThreadMap::Single,
            (64, 64),
        );
        p.term(
            b,
            Write,
            0,
            expr(),
            ThreadMap::Single,
            ThreadMap::Single,
            (64, 64),
        );
        assert!(p.check_races().is_empty(), "single-thread scan is safe");
        p.terms[1].threads = ThreadMap::Exclusive;
        let f = p.check_races();
        assert_eq!(f.len(), 1);
        assert!(matches!(
            &f[0].kind,
            LintKind::StaticRace {
                intra_block: true,
                ..
            }
        ));
    }

    #[test]
    fn barrier_separated_epochs_do_not_race_intra_block() {
        let mut p = AccessPlan::new("k", 32, 1);
        let b = p.buffer("s", Scope::Shared, 4, 64);
        let expr = || IndexExpr::new(0).dim(DimTerm::var(1, 0, 63));
        p.term(
            b,
            Write,
            0,
            expr(),
            ThreadMap::Exclusive,
            ThreadMap::Overlapping,
            (64, 64),
        );
        p.term(
            b,
            Read,
            1,
            expr(),
            ThreadMap::Exclusive,
            ThreadMap::Overlapping,
            (64, 64),
        );
        // shared scope: no inter-block analysis; epochs differ: no intra
        assert!(p.check_races().is_empty());
    }

    #[test]
    fn shared_footprint_over_declared_bytes_is_flagged() {
        let mut p = AccessPlan::new("k", 128, 4);
        p.shared_bytes = 64;
        let s = p.buffer("sm", Scope::Shared, 4, 32); // 128 B > 64 B
        p.term(
            s,
            Atomic,
            0,
            IndexExpr::new(0).dim(DimTerm::var(1, 0, 31)),
            ThreadMap::Overlapping,
            ThreadMap::Overlapping,
            (32, 32),
        );
        let f = p.check_launch(&props(), 49_000);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, "AP004");
    }

    #[test]
    fn shared_over_device_budget_is_flagged() {
        let mut p = AccessPlan::new("k", 128, 4);
        p.shared_bytes = 100_000;
        p.buffer("sm", Scope::Shared, 1, 100_000);
        let f = p.check_launch(&props(), 49_000);
        assert_eq!(f.len(), 1);
        assert!(matches!(
            &f[0].kind,
            LintKind::SharedOverBudget {
                needed_bytes: 100_000,
                ..
            }
        ));
    }

    #[test]
    fn thread_limits_and_warp_alignment() {
        let mut p = simple_plan();
        p.threads_per_block = 2048;
        assert_eq!(p.check_launch(&props(), 49_000)[0].id, "AP005");
        p.threads_per_block = 96; // legal, warp-aligned
        assert!(p.check_launch(&props(), 49_000).is_empty());
        p.threads_per_block = 100; // legal but wasteful
        let f = p.check_launch(&props(), 49_000);
        assert_eq!(f[0].id, "AP006");
        assert!(!f[0].is_error());
    }

    #[test]
    fn under_declared_atomics_is_flagged() {
        let mut p = AccessPlan::new("k", 128, 1);
        let g = p.buffer("g", Scope::Global, 4, 1000);
        p.term(
            g,
            Atomic,
            0,
            IndexExpr::new(0).dim(DimTerm::var(1, 0, 999)),
            ThreadMap::Overlapping,
            ThreadMap::Overlapping,
            (1000, 1000),
        );
        p.contract.global_atomics = Some(10);
        let f = p.check_contract();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, "AP003");
        p.contract.global_atomics = Some(1000);
        assert!(p.check_contract().is_empty());
    }

    #[test]
    fn contains_trace_accepts_predicted_accesses() {
        let p = simple_plan();
        let mut t = KernelTrace::new("k");
        let b = t.buffer("out", Scope::Global, 8);
        t.write(b, 0, 3, 42);
        assert!(p.contains_trace(&t).is_empty());
    }

    #[test]
    fn contains_trace_rejects_strays() {
        let p = simple_plan();
        let mut t = KernelTrace::new("k");
        let b = t.buffer("out", Scope::Global, 8);
        t.write(b, 0, 3, 100); // outside [0, 99]
        t.read(b, 0, 3, 42); // kind not in plan
        t.write(b, 9, 3, 42); // block outside launch shape
        let mm = p.contains_trace(&t);
        assert_eq!(mm.len(), 3, "{mm:?}");
    }

    #[test]
    fn contains_trace_caps_reporting() {
        let p = simple_plan();
        let mut t = KernelTrace::new("k");
        let b = t.buffer("out", Scope::Global, 8);
        for e in 0..50u64 {
            t.write(b, 0, 0, 1000 + e);
        }
        let mm = p.contains_trace(&t);
        assert_eq!(mm.len(), MAX_REPORTED_MISMATCHES + 1);
        assert!(mm.last().unwrap().contains("more uncontained"));
    }

    #[test]
    fn instances_counts_tuple_combinations() {
        let e = IndexExpr::new(0)
            .dim(DimTerm::var(4, 0, 9))
            .dim(DimTerm::var(1, 0, 2));
        assert_eq!(e.instances(), 30);
    }
}
