//! The simulated device: memory, clock, timeline.
//!
//! A [`Device`] owns a simulated clock (seconds) that advances when
//! launches, bulk operations, allocations, or host-device transfers are
//! priced. Buffers track allocation against the device's memory capacity
//! so the reproduction can report GPU RAM usage as in Table I.

use crate::kernel::{Breakdown, Kernel, LaunchConfig, LaunchReport};
use crate::props::{DeviceProps, Precision};
use nufft_trace::{Lane, Trace};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Category of a timeline record.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Kernel,
    Memcpy,
    Alloc,
    Bulk,
}

/// One priced operation on the device timeline.
#[derive(Clone, Debug)]
pub struct TimelineRecord {
    pub name: String,
    pub kind: OpKind,
    /// Simulated start time (seconds since device creation).
    pub start: f64,
    pub duration: f64,
    pub breakdown: Breakdown,
}

#[derive(Default)]
struct State {
    clock: f64,
    mem_used: usize,
    mem_peak: usize,
    timeline: Vec<TimelineRecord>,
    record_timeline: bool,
    trace: Option<Trace>,
}

/// Which trace lane a priced operation lands on. Transfers are split by
/// direction (matching the two copy engines) by inspecting the name.
fn lane_for(kind: OpKind, name: &str) -> Lane {
    match kind {
        OpKind::Kernel | OpKind::Bulk => Lane::Compute,
        OpKind::Alloc => Lane::Alloc,
        OpKind::Memcpy => {
            if name.contains("dtoh") {
                Lane::D2h
            } else {
                Lane::H2d
            }
        }
    }
}

fn cat_for(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Kernel => "kernel",
        OpKind::Bulk => "bulk",
        OpKind::Memcpy => "memcpy",
        OpKind::Alloc => "alloc",
    }
}

pub(crate) struct DeviceInner {
    props: DeviceProps,
    state: Mutex<State>,
}

/// Simulated-device out-of-memory error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    pub requested: usize,
    pub available: usize,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated device OOM: requested {} B, {} B free",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OomError {}

/// Handle to a simulated GPU. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    pub fn new(props: DeviceProps) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                props,
                state: Mutex::new(State {
                    record_timeline: true,
                    ..State::default()
                }),
            }),
        }
    }

    /// The paper's benchmark GPU.
    pub fn v100() -> Self {
        Self::new(DeviceProps::v100())
    }

    pub fn props(&self) -> &DeviceProps {
        &self.inner.props
    }

    /// Current simulated time in seconds.
    pub fn clock(&self) -> f64 {
        self.inner.state.lock().clock
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> usize {
        self.inner.state.lock().mem_used
    }

    /// High-water mark of allocated bytes (Table I's "RAM" column).
    pub fn mem_peak(&self) -> usize {
        self.inner.state.lock().mem_peak
    }

    /// Reset the peak tracker to the current usage.
    pub fn reset_mem_peak(&self) {
        let mut s = self.inner.state.lock();
        s.mem_peak = s.mem_used;
    }

    /// Toggle timeline recording (benchmarks disable it to avoid growth).
    pub fn set_record_timeline(&self, on: bool) {
        self.inner.state.lock().record_timeline = on;
    }

    /// Snapshot of all recorded operations.
    pub fn timeline(&self) -> Vec<TimelineRecord> {
        self.inner.state.lock().timeline.clone()
    }

    pub fn clear_timeline(&self) {
        self.inner.state.lock().timeline.clear();
    }

    /// The trace session events are mirrored into, if any.
    pub fn trace(&self) -> Option<Trace> {
        self.inner.state.lock().trace.clone()
    }

    /// Mirror every priced operation into `trace` as a device-lane span
    /// (kernels/bulk ops on the compute lane, transfers split H2D/D2H,
    /// allocations on their own lane). Works independently of
    /// [`Device::set_record_timeline`], so benchmarks can trace with the
    /// timeline off.
    pub fn attach_trace(&self, trace: &Trace) {
        self.inner.state.lock().trace = Some(trace.clone());
    }

    pub fn detach_trace(&self) {
        self.inner.state.lock().trace = None;
    }

    fn push_record(&self, name: String, kind: OpKind, duration: f64, breakdown: Breakdown) -> f64 {
        let trace = {
            let mut s = self.inner.state.lock();
            let start = s.clock;
            s.clock += duration;
            let trace = s.trace.clone().map(|t| (t, start));
            if s.record_timeline {
                s.timeline.push(TimelineRecord {
                    name: name.clone(),
                    kind,
                    start,
                    duration,
                    breakdown,
                });
            }
            trace
        };
        if let Some((trace, start)) = trace {
            trace.device_span(
                lane_for(kind, &name),
                &name,
                cat_for(kind),
                start,
                duration,
                &[],
            );
        }
        duration
    }

    /// Allocate a zero-initialized device buffer of `len` elements.
    pub fn alloc<T: Clone + Default>(
        &self,
        name: &str,
        len: usize,
    ) -> Result<GpuBuffer<T>, OomError> {
        let bytes = len * std::mem::size_of::<T>();
        {
            let mut s = self.inner.state.lock();
            let cap = self.inner.props.global_mem_bytes;
            if s.mem_used + bytes > cap {
                return Err(OomError {
                    requested: bytes,
                    available: cap - s.mem_used,
                });
            }
            s.mem_used += bytes;
            s.mem_peak = s.mem_peak.max(s.mem_used);
        }
        // cudaMalloc cost: fixed overhead; zero-fill charged as a memset.
        let t = self.inner.props.t_alloc + bytes as f64 / self.inner.props.dram_bw;
        self.push_record(
            format!("alloc:{name}"),
            OpKind::Alloc,
            t,
            Breakdown::default(),
        );
        Ok(GpuBuffer {
            data: vec![T::default(); len],
            bytes,
            dev: Arc::clone(&self.inner),
        })
    }

    /// Analytic cost of moving `bytes` across PCIe in either direction,
    /// without performing or recording anything. Stream-scheduled
    /// (asynchronous) transfers use this to price copies whose start
    /// time is decided by the stream scheduler rather than the serial
    /// clock.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.inner.props.pcie_latency + bytes as f64 / self.inner.props.pcie_bw
    }

    /// Record an operation that was scheduled externally (e.g. on a
    /// [`crate::stream::Stream`]) at an explicit start time, WITHOUT
    /// advancing the serial clock — the caller accounts for elapsed time
    /// via [`crate::stream::sync_streams`].
    pub fn record_async(&self, name: &str, kind: OpKind, start: f64, duration: f64) {
        let trace = {
            let mut s = self.inner.state.lock();
            if s.record_timeline {
                s.timeline.push(TimelineRecord {
                    name: name.into(),
                    kind,
                    start,
                    duration,
                    breakdown: Breakdown::default(),
                });
            }
            s.trace.clone()
        };
        if let Some(trace) = trace {
            trace.device_span(
                lane_for(kind, name),
                name,
                cat_for(kind),
                start,
                duration,
                &[],
            );
        }
    }

    /// Copy host data into a device buffer (cudaMemcpyHostToDevice).
    pub fn memcpy_htod<T: Copy>(&self, dst: &mut GpuBuffer<T>, src: &[T]) {
        assert!(src.len() <= dst.data.len(), "htod copy larger than buffer");
        dst.data[..src.len()].copy_from_slice(src);
        let bytes = std::mem::size_of_val(src);
        let t = self.inner.props.pcie_latency + bytes as f64 / self.inner.props.pcie_bw;
        self.push_record(
            "memcpy_htod".into(),
            OpKind::Memcpy,
            t,
            Breakdown::default(),
        );
    }

    /// Copy device data back to the host (cudaMemcpyDeviceToHost).
    pub fn memcpy_dtoh<T: Copy>(&self, dst: &mut [T], src: &GpuBuffer<T>) {
        assert!(dst.len() <= src.data.len(), "dtoh copy larger than buffer");
        dst.copy_from_slice(&src.data[..dst.len()]);
        let bytes = std::mem::size_of_val(dst);
        let t = self.inner.props.pcie_latency + bytes as f64 / self.inner.props.pcie_bw;
        self.push_record(
            "memcpy_dtoh".into(),
            OpKind::Memcpy,
            t,
            Breakdown::default(),
        );
    }

    /// Begin a detailed kernel launch (warp-level accounting).
    pub fn kernel(&self, name: &str, cfg: LaunchConfig) -> Kernel {
        assert!(
            cfg.shared_bytes_per_block <= self.inner.props.shared_mem_per_block,
            "kernel '{name}' requests {} B shared memory; device limit is {} B",
            cfg.shared_bytes_per_block,
            self.inner.props.shared_mem_per_block
        );
        Kernel::new(name, cfg, self.inner.props.clone())
    }

    /// Price and record a finished kernel; advances the clock.
    pub fn launch_end(&self, kernel: Kernel) -> LaunchReport {
        let report = kernel.price();
        if let Some(trace) = self.trace() {
            trace.counter("gpu.kernel_launches").inc();
            trace.counter("gpu.blocks").add(report.blocks as i64);
            trace
                .counter("gpu.global_atomics")
                .add(report.global_atomics as i64);
            trace
                .gauge("gpu.atomic_hotspot_max")
                .max(report.atomic_hotspot_count as f64);
            let occupancy = (report.blocks as f64 / self.inner.props.sm_count as f64).min(1.0);
            trace.gauge("gpu.occupancy_peak").max(occupancy);
        }
        self.push_record(
            report.name.clone(),
            OpKind::Kernel,
            report.duration,
            report.breakdown,
        );
        report
    }

    /// Price a data-parallel operation without per-warp detail: `t = max(
    /// bytes/bw, flops/rate ) + launch overhead`. Used for memsets,
    /// bin-index computation, scans, permutations, deconvolution, and the
    /// cuFFT-substitute, whose access patterns are regular.
    pub fn bulk_op(
        &self,
        name: &str,
        bytes_read: usize,
        bytes_written: usize,
        flops: f64,
        prec: Precision,
    ) -> f64 {
        let p = &self.inner.props;
        let mem = (bytes_read + bytes_written) as f64 / p.dram_bw;
        let compute = flops / p.flops(prec);
        let t = mem.max(compute) + p.t_launch;
        self.push_record(
            name.into(),
            OpKind::Bulk,
            t,
            Breakdown {
                dram: mem,
                compute,
                overhead: p.t_launch,
                ..Breakdown::default()
            },
        )
    }

    /// Advance the clock by an externally computed duration (used by the
    /// multi-rank harness to model queueing).
    pub fn advance(&self, name: &str, duration: f64) {
        self.push_record(name.into(), OpKind::Bulk, duration, Breakdown::default());
    }
}

/// Device memory: functionally a host `Vec`, accounted against the
/// simulated device's capacity. Dropping it frees the simulated memory.
pub struct GpuBuffer<T> {
    data: Vec<T>,
    bytes: usize,
    dev: Arc<DeviceInner>,
}

impl<T> GpuBuffer<T> {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for GpuBuffer<T> {
    fn drop(&mut self) {
        let mut s = self.dev.state.lock();
        s.mem_used = s.mem_used.saturating_sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_operations() {
        let dev = Device::v100();
        assert_eq!(dev.clock(), 0.0);
        let t = dev.bulk_op("memset", 0, 1 << 20, 0.0, Precision::Single);
        assert!(t > 0.0);
        assert!((dev.clock() - t).abs() < 1e-18);
    }

    #[test]
    fn alloc_tracks_memory_and_drop_frees() {
        let dev = Device::v100();
        let before = dev.mem_used();
        {
            let _buf: GpuBuffer<f32> = dev.alloc("grid", 1 << 20).unwrap();
            assert_eq!(dev.mem_used(), before + (1 << 22));
            assert!(dev.mem_peak() >= before + (1 << 22));
        }
        assert_eq!(dev.mem_used(), before);
        // peak survives the free
        assert!(dev.mem_peak() >= before + (1 << 22));
    }

    #[test]
    fn oom_is_reported() {
        let dev = Device::v100();
        let cap = dev.props().global_mem_bytes;
        let err = match dev.alloc::<u8>("huge", cap + 1) {
            Err(e) => e,
            Ok(_) => panic!("allocation beyond capacity must fail"),
        };
        assert_eq!(err.requested, cap + 1);
    }

    #[test]
    fn memcpy_roundtrip_preserves_data() {
        let dev = Device::v100();
        let host: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let mut buf = dev.alloc::<f32>("x", 100).unwrap();
        dev.memcpy_htod(&mut buf, &host);
        let mut back = vec![0.0f32; 100];
        dev.memcpy_dtoh(&mut back, &buf);
        assert_eq!(host, back);
        let tl = dev.timeline();
        assert_eq!(tl.iter().filter(|r| r.kind == OpKind::Memcpy).count(), 2);
    }

    #[test]
    fn kernel_launch_records_timeline() {
        let dev = Device::v100();
        let mut k = dev.kernel("spread", LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        b.flops(1000);
        b.stream_bytes(4096);
        b.finish();
        let report = dev.launch_end(k);
        assert!(report.duration > 0.0);
        let tl = dev.timeline();
        let rec = tl.iter().find(|r| r.name == "spread").unwrap();
        assert_eq!(rec.kind, OpKind::Kernel);
        assert!((rec.duration - report.duration).abs() < 1e-18);
    }

    #[test]
    fn shared_memory_request_validated() {
        let dev = Device::v100();
        let too_big = LaunchConfig::new(Precision::Single, 128)
            .with_shared(dev.props().shared_mem_per_block + 1);
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.kernel("bad", too_big)));
        assert!(res.is_err());
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let dev = Device::v100();
        let t1 = {
            let mut b = dev.alloc::<f32>("a", 1024).unwrap();
            let host = vec![0.0f32; 1024];
            let c0 = dev.clock();
            dev.memcpy_htod(&mut b, &host);
            dev.clock() - c0
        };
        let t2 = {
            let mut b = dev.alloc::<f32>("b", 1 << 22).unwrap();
            let host = vec![0.0f32; 1 << 22];
            let c0 = dev.clock();
            dev.memcpy_htod(&mut b, &host);
            dev.clock() - c0
        };
        assert!(t2 > t1 * 10.0);
    }

    #[test]
    fn timeline_recording_can_be_disabled() {
        let dev = Device::v100();
        dev.set_record_timeline(false);
        dev.bulk_op("quiet", 1024, 0, 0.0, Precision::Single);
        assert!(dev.timeline().is_empty());
        // clock still advances
        assert!(dev.clock() > 0.0);
    }

    #[test]
    fn device_is_cloneable_and_shares_state() {
        let dev = Device::v100();
        let dev2 = dev.clone();
        dev.bulk_op("x", 1 << 20, 0, 0.0, Precision::Single);
        assert_eq!(dev.clock(), dev2.clock());
    }
}
