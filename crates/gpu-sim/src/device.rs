//! The simulated device: memory, clock, timeline.
//!
//! A [`Device`] owns a simulated clock (seconds) that advances when
//! launches, bulk operations, allocations, or host-device transfers are
//! priced. Buffers track allocation against the device's memory capacity
//! so the reproduction can report GPU RAM usage as in Table I.

use crate::access::{Contract, HazardMode, KernelTrace};
use crate::faults::{DeviceFault, FaultKind, FaultPlan, FaultSite, FaultState, Injection};
use crate::hazard;
use crate::kernel::{Breakdown, Kernel, LaunchConfig, LaunchReport};
use crate::props::{DeviceProps, Precision};
use nufft_common::hazard::{HazardReport, KernelHazardReport};
use nufft_trace::{Lane, Trace};
use parking_lot::Mutex;
use std::sync::Arc;

/// Category of a timeline record.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Kernel,
    Memcpy,
    Alloc,
    Bulk,
}

/// One priced operation on the device timeline.
#[derive(Clone, Debug)]
pub struct TimelineRecord {
    pub name: String,
    pub kind: OpKind,
    /// Simulated start time (seconds since device creation).
    pub start: f64,
    pub duration: f64,
    pub breakdown: Breakdown,
}

#[derive(Default)]
struct State {
    clock: f64,
    mem_used: usize,
    mem_peak: usize,
    timeline: Vec<TimelineRecord>,
    record_timeline: bool,
    trace: Option<Trace>,
    faults: Option<FaultState>,
    hazard_mode: HazardMode,
    hazard: Vec<KernelHazardReport>,
    /// When set, checked launches also archive their raw trace +
    /// contract for static/dynamic cross-validation (see
    /// [`Device::retain_access_traces`]).
    retain_traces: bool,
    retained_traces: Vec<(KernelTrace, Contract)>,
    /// Host worker threads available to `Kernel::run_blocks`. Results are
    /// bit-identical at any value; this only changes host wall-clock.
    host_parallelism: usize,
}

/// Default host thread-pool width for parallel block execution: the
/// `GPU_SIM_HOST_THREADS` env var when set, else the host's available
/// parallelism capped at 8 (block bodies are short; wider pools mostly
/// add merge latency).
fn default_host_parallelism() -> usize {
    if let Ok(v) = std::env::var("GPU_SIM_HOST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Which trace lane a priced operation lands on. Transfers are split by
/// direction (matching the two copy engines) by inspecting the name.
fn lane_for(kind: OpKind, name: &str) -> Lane {
    match kind {
        OpKind::Kernel | OpKind::Bulk => Lane::Compute,
        OpKind::Alloc => Lane::Alloc,
        OpKind::Memcpy => {
            if name.contains("dtoh") {
                Lane::D2h
            } else {
                Lane::H2d
            }
        }
    }
}

fn cat_for(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Kernel => "kernel",
        OpKind::Bulk => "bulk",
        OpKind::Memcpy => "memcpy",
        OpKind::Alloc => "alloc",
    }
}

pub(crate) struct DeviceInner {
    props: DeviceProps,
    state: Mutex<State>,
}

/// Handle to a simulated GPU. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    pub fn new(props: DeviceProps) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                props,
                state: Mutex::new(State {
                    record_timeline: true,
                    host_parallelism: default_host_parallelism(),
                    ..State::default()
                }),
            }),
        }
    }

    /// The paper's benchmark GPU.
    pub fn v100() -> Self {
        Self::new(DeviceProps::v100())
    }

    pub fn props(&self) -> &DeviceProps {
        &self.inner.props
    }

    /// Current simulated time in seconds.
    pub fn clock(&self) -> f64 {
        self.inner.state.lock().clock
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> usize {
        self.inner.state.lock().mem_used
    }

    /// High-water mark of allocated bytes (Table I's "RAM" column).
    pub fn mem_peak(&self) -> usize {
        self.inner.state.lock().mem_peak
    }

    /// Reset the peak tracker to the current usage.
    pub fn reset_mem_peak(&self) {
        let mut s = self.inner.state.lock();
        s.mem_peak = s.mem_used;
    }

    /// Toggle timeline recording (benchmarks disable it to avoid growth).
    pub fn set_record_timeline(&self, on: bool) {
        self.inner.state.lock().record_timeline = on;
    }

    /// Host worker threads `Kernel::run_blocks` may use for this device's
    /// launches (default: `GPU_SIM_HOST_THREADS` or the host's available
    /// parallelism, capped at 8). Simulated results are bit-identical at
    /// any setting; hazard checking and fault injection force 1.
    pub fn set_host_parallelism(&self, n: usize) {
        self.inner.state.lock().host_parallelism = n.max(1);
    }

    /// Current host-parallelism setting (see
    /// [`Device::set_host_parallelism`]).
    pub fn host_parallelism(&self) -> usize {
        self.inner.state.lock().host_parallelism
    }

    /// Snapshot of all recorded operations.
    pub fn timeline(&self) -> Vec<TimelineRecord> {
        self.inner.state.lock().timeline.clone()
    }

    pub fn clear_timeline(&self) {
        self.inner.state.lock().timeline.clear();
    }

    /// The trace session events are mirrored into, if any.
    pub fn trace(&self) -> Option<Trace> {
        self.inner.state.lock().trace.clone()
    }

    /// Mirror every priced operation into `trace` as a device-lane span
    /// (kernels/bulk ops on the compute lane, transfers split H2D/D2H,
    /// allocations on their own lane). Works independently of
    /// [`Device::set_record_timeline`], so benchmarks can trace with the
    /// timeline off.
    pub fn attach_trace(&self, trace: &Trace) {
        self.inner.state.lock().trace = Some(trace.clone());
    }

    pub fn detach_trace(&self) {
        self.inner.state.lock().trace = None;
    }

    /// Select whether instrumented launches are access-traced and
    /// race/contract-checked. Under [`HazardMode::Check`] every kernel
    /// created by [`Device::kernel`] carries a shadow-memory trace and
    /// its findings accumulate on the device (see
    /// [`Device::hazard_findings`]).
    pub fn set_hazard_mode(&self, mode: HazardMode) {
        self.inner.state.lock().hazard_mode = mode;
    }

    pub fn hazard_mode(&self) -> HazardMode {
        self.inner.state.lock().hazard_mode
    }

    /// Convenience: is the device currently checking for hazards?
    pub fn hazard_checking(&self) -> bool {
        self.hazard_mode() == HazardMode::Check
    }

    /// All hazard/contract findings accumulated since creation (or the
    /// last [`Device::clear_hazard_findings`]), one entry per checked
    /// launch in launch order.
    pub fn hazard_findings(&self) -> HazardReport {
        HazardReport {
            kernels: self.inner.state.lock().hazard.clone(),
        }
    }

    pub fn clear_hazard_findings(&self) {
        self.inner.state.lock().hazard.clear();
    }

    /// Also archive the raw [`KernelTrace`] + [`Contract`] of every
    /// checked launch, so a static analyzer can replay them against the
    /// kernels' symbolic [`AccessPlan`](crate::access_plan::AccessPlan)s
    /// ("static refines dynamic" cross-validation). Costs memory
    /// proportional to the access count — debugging/CI mode only.
    pub fn retain_access_traces(&self, on: bool) {
        let mut s = self.inner.state.lock();
        s.retain_traces = on;
        if !on {
            s.retained_traces.clear();
        }
    }

    /// Drain the archived traces (launch order). Empty unless
    /// [`Device::retain_access_traces`] was enabled.
    pub fn take_access_traces(&self) -> Vec<(KernelTrace, Contract)> {
        std::mem::take(&mut self.inner.state.lock().retained_traces)
    }

    /// Run the checker on a completed trace and accumulate the findings,
    /// mirroring hazard counters into an attached trace session. Used by
    /// `launch_end` for instrumented kernels and directly by bulk-pass
    /// instrumentation (which has no [`Kernel`] object).
    pub fn submit_access_trace(&self, trace: KernelTrace, contract: Contract) {
        let report = hazard::check(&trace, &contract);
        if let Some(t) = self.trace() {
            t.counter("hazard.kernels_checked").inc();
            t.counter("hazard.accesses").add(report.accesses as i64);
            t.counter("hazard.races").add(report.hazards_total as i64);
            t.counter("hazard.contract_violations")
                .add(report.violations.len() as i64);
        }
        let mut s = self.inner.state.lock();
        if s.retain_traces {
            s.retained_traces.push((trace, contract));
        }
        s.hazard.push(report);
    }

    /// Attach a [`FaultPlan`]: subsequent allocations, transfers, and
    /// kernel launches consult it and may fail or stall. Replaces any
    /// previously attached plan (the old rule state is discarded).
    pub fn inject_faults(&self, plan: FaultPlan) {
        self.inner.state.lock().faults = Some(FaultState::new(plan));
    }

    /// Detach the fault plan; the device behaves nominally again.
    pub fn clear_faults(&self) {
        self.inner.state.lock().faults = None;
    }

    /// Number of faults (failures and stalls) injected so far by the
    /// attached plan.
    pub fn faults_injected(&self) -> u64 {
        self.inner
            .state
            .lock()
            .faults
            .as_ref()
            .map_or(0, |f| f.injected)
    }

    /// Consult the attached fault plan for one operation and mirror any
    /// injection into the trace session (counter + zero-width event on
    /// the lane the faulting op would have used).
    fn consult_faults(&self, site: FaultSite, name: &str) -> Injection {
        let (inj, trace, start) = {
            let mut s = self.inner.state.lock();
            let inj = match s.faults.as_mut() {
                Some(f) => f.check(site, name),
                None => Injection::None,
            };
            (inj, s.trace.clone(), s.clock)
        };
        if !matches!(inj, Injection::None) {
            self.note_fault(
                trace.as_ref(),
                site,
                name,
                matches!(inj, Injection::Stall(_)),
                start,
            );
        }
        inj
    }

    /// Record one injected fault into the trace session, if attached.
    fn note_fault(
        &self,
        trace: Option<&Trace>,
        site: FaultSite,
        name: &str,
        stall: bool,
        start: f64,
    ) {
        let Some(trace) = trace else { return };
        trace.counter("gpu.faults.injected").inc();
        if stall {
            trace.counter("gpu.faults.stalls").inc();
        }
        let lane = match site {
            FaultSite::Alloc => Lane::Alloc,
            FaultSite::Kernel => Lane::Compute,
            FaultSite::Memcpy => {
                if name.contains("dtoh") {
                    Lane::D2h
                } else {
                    Lane::H2d
                }
            }
        };
        trace.device_span(lane, &format!("fault:{name}"), "fault", start, 0.0, &[]);
    }

    fn push_record(&self, name: String, kind: OpKind, duration: f64, breakdown: Breakdown) -> f64 {
        let trace = {
            let mut s = self.inner.state.lock();
            let start = s.clock;
            s.clock += duration;
            let trace = s.trace.clone().map(|t| (t, start));
            if s.record_timeline {
                s.timeline.push(TimelineRecord {
                    name: name.clone(),
                    kind,
                    start,
                    duration,
                    breakdown,
                });
            }
            trace
        };
        if let Some((trace, start)) = trace {
            trace.device_span(
                lane_for(kind, &name),
                &name,
                cat_for(kind),
                start,
                duration,
                &[],
            );
        }
        duration
    }

    /// Usable capacity in bytes: the physical card, further capped by an
    /// attached fault plan's `mem_cap` (modelling other tenants on the
    /// device).
    pub fn mem_capacity(&self) -> usize {
        let s = self.inner.state.lock();
        let cap = self.inner.props.global_mem_bytes;
        match s.faults.as_ref().and_then(|f| f.mem_cap()) {
            Some(injected) => cap.min(injected),
            None => cap,
        }
    }

    /// Allocate a zero-initialized device buffer of `len` elements.
    /// Fails with a typed [`DeviceFault`] when capacity (physical or
    /// fault-injected) is exhausted, or when a `fail_alloc_nth` rule
    /// fires.
    pub fn alloc<T: Clone + Default>(
        &self,
        name: &str,
        len: usize,
    ) -> Result<GpuBuffer<T>, DeviceFault> {
        let bytes = len * std::mem::size_of::<T>();
        let opname = format!("alloc:{name}");
        let oom = |available: usize, transient: bool| DeviceFault {
            op: opname.clone(),
            kind: FaultKind::Oom {
                requested: bytes,
                available,
            },
            transient,
        };
        match self.consult_faults(FaultSite::Alloc, &opname) {
            Injection::Fail { transient } => {
                let available = self.mem_capacity().saturating_sub(self.mem_used());
                return Err(oom(available, transient));
            }
            Injection::Stall(s) => self.advance("fault.stall", s),
            Injection::None => {}
        }
        {
            let mut s = self.inner.state.lock();
            let cap = self.inner.props.global_mem_bytes;
            let cap = match s.faults.as_ref().and_then(|f| f.mem_cap()) {
                Some(injected) => cap.min(injected),
                None => cap,
            };
            if s.mem_used + bytes > cap {
                let available = cap.saturating_sub(s.mem_used);
                drop(s);
                // a capacity OOM while a plan is attached is still an
                // injected condition worth seeing in the trace
                let trace = self.trace();
                let attached = self.inner.state.lock().faults.is_some();
                if attached {
                    self.note_fault(
                        trace.as_ref(),
                        FaultSite::Alloc,
                        &opname,
                        false,
                        self.clock(),
                    );
                }
                return Err(oom(available, false));
            }
            s.mem_used += bytes;
            s.mem_peak = s.mem_peak.max(s.mem_used);
        }
        // cudaMalloc cost: fixed overhead; zero-fill charged as a memset.
        let t = self.inner.props.t_alloc + bytes as f64 / self.inner.props.dram_bw;
        self.push_record(opname, OpKind::Alloc, t, Breakdown::default());
        Ok(GpuBuffer {
            data: vec![T::default(); len],
            bytes,
            dev: Arc::clone(&self.inner),
        })
    }

    /// Analytic cost of moving `bytes` across PCIe in either direction,
    /// without performing or recording anything. Stream-scheduled
    /// (asynchronous) transfers use this to price copies whose start
    /// time is decided by the stream scheduler rather than the serial
    /// clock.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.inner.props.pcie_latency + bytes as f64 / self.inner.props.pcie_bw
    }

    /// Record an operation that was scheduled externally (e.g. on a
    /// [`crate::stream::Stream`]) at an explicit start time, WITHOUT
    /// advancing the serial clock — the caller accounts for elapsed time
    /// via [`crate::stream::sync_streams`].
    pub fn record_async(&self, name: &str, kind: OpKind, start: f64, duration: f64) {
        let trace = {
            let mut s = self.inner.state.lock();
            if s.record_timeline {
                s.timeline.push(TimelineRecord {
                    name: name.into(),
                    kind,
                    start,
                    duration,
                    breakdown: Breakdown::default(),
                });
            }
            s.trace.clone()
        };
        if let Some(trace) = trace {
            trace.device_span(
                lane_for(kind, name),
                name,
                cat_for(kind),
                start,
                duration,
                &[],
            );
        }
    }

    /// Check the fault plan for a memcpy op named `name`; returns the
    /// extra stall seconds to charge, or the fault. A failed copy leaves
    /// the destination untouched.
    pub(crate) fn memcpy_fault(&self, name: &str, transient_op: &str) -> Result<f64, DeviceFault> {
        match self.consult_faults(FaultSite::Memcpy, name) {
            Injection::Fail { transient } => Err(DeviceFault {
                op: transient_op.to_string(),
                kind: FaultKind::Memcpy,
                transient,
            }),
            Injection::Stall(s) => Ok(s),
            Injection::None => Ok(0.0),
        }
    }

    /// Copy host data into a device buffer (cudaMemcpyHostToDevice).
    /// An injected fault fails the copy before any data moves.
    pub fn memcpy_htod<T: Copy>(
        &self,
        dst: &mut GpuBuffer<T>,
        src: &[T],
    ) -> Result<(), DeviceFault> {
        assert!(src.len() <= dst.data.len(), "htod copy larger than buffer");
        let stall = self.memcpy_fault("memcpy_htod", "memcpy_htod")?;
        dst.data[..src.len()].copy_from_slice(src);
        let bytes = std::mem::size_of_val(src);
        let t = self.inner.props.pcie_latency + bytes as f64 / self.inner.props.pcie_bw;
        self.push_record(
            "memcpy_htod".into(),
            OpKind::Memcpy,
            t + stall,
            Breakdown::default(),
        );
        Ok(())
    }

    /// Copy device data back to the host (cudaMemcpyDeviceToHost).
    /// An injected fault fails the copy before any data moves.
    pub fn memcpy_dtoh<T: Copy>(
        &self,
        dst: &mut [T],
        src: &GpuBuffer<T>,
    ) -> Result<(), DeviceFault> {
        assert!(dst.len() <= src.data.len(), "dtoh copy larger than buffer");
        let stall = self.memcpy_fault("memcpy_dtoh", "memcpy_dtoh")?;
        dst.copy_from_slice(&src.data[..dst.len()]);
        let bytes = std::mem::size_of_val(dst);
        let t = self.inner.props.pcie_latency + bytes as f64 / self.inner.props.pcie_bw;
        self.push_record(
            "memcpy_dtoh".into(),
            OpKind::Memcpy,
            t + stall,
            Breakdown::default(),
        );
        Ok(())
    }

    /// Begin a detailed kernel launch (warp-level accounting). An
    /// injected launch fault fires here — before any functional work —
    /// mirroring `cudaLaunchKernel` failure semantics, so a retry after
    /// an error observes unmodified device memory.
    pub fn kernel(&self, name: &str, cfg: LaunchConfig) -> Result<Kernel, DeviceFault> {
        assert!(
            cfg.shared_bytes_per_block <= self.inner.props.shared_mem_per_block,
            "kernel '{name}' requests {} B shared memory; device limit is {} B",
            cfg.shared_bytes_per_block,
            self.inner.props.shared_mem_per_block
        );
        let mk = || {
            let mut k = Kernel::new(name, cfg, self.inner.props.clone());
            if self.hazard_checking() {
                k.enable_access_trace();
            }
            // Hazard checking and fault injection stay strictly serial;
            // otherwise hand the launch the device's host-pool width.
            let s = self.inner.state.lock();
            k.host_threads = if s.faults.is_some() || k.access_traced() {
                1
            } else {
                s.host_parallelism
            };
            k
        };
        match self.consult_faults(FaultSite::Kernel, name) {
            Injection::Fail { transient } => Err(DeviceFault {
                op: name.to_string(),
                kind: FaultKind::KernelLaunch,
                transient,
            }),
            Injection::Stall(s) => {
                self.advance("fault.stall", s);
                Ok(mk())
            }
            Injection::None => Ok(mk()),
        }
    }

    /// Price and record a finished kernel; advances the clock. When the
    /// launch carries an access trace (hazard mode), the happens-before
    /// and contract checker runs here and its findings accumulate on the
    /// device.
    pub fn launch_end(&self, kernel: Kernel) -> LaunchReport {
        let (report, traced) = kernel.price();
        if let Some((access, contract)) = traced {
            self.submit_access_trace(access, contract);
        }
        if let Some(trace) = self.trace() {
            trace.counter("gpu.kernel_launches").inc();
            trace.counter("gpu.blocks").add(report.blocks as i64);
            trace
                .counter("gpu.global_atomics")
                .add(report.global_atomics as i64);
            trace
                .gauge("gpu.atomic_hotspot_max")
                .max(report.atomic_hotspot_count as f64);
            let occupancy = (report.blocks as f64 / self.inner.props.sm_count as f64).min(1.0);
            trace.gauge("gpu.occupancy_peak").max(occupancy);
        }
        self.push_record(
            report.name.clone(),
            OpKind::Kernel,
            report.duration,
            report.breakdown,
        );
        report
    }

    /// Price a data-parallel operation without per-warp detail: `t = max(
    /// bytes/bw, flops/rate ) + launch overhead`. Used for memsets,
    /// bin-index computation, scans, permutations, deconvolution, and the
    /// cuFFT-substitute, whose access patterns are regular.
    pub fn bulk_op(
        &self,
        name: &str,
        bytes_read: usize,
        bytes_written: usize,
        flops: f64,
        prec: Precision,
    ) -> f64 {
        let p = &self.inner.props;
        let mem = (bytes_read + bytes_written) as f64 / p.dram_bw;
        let compute = flops / p.flops(prec);
        let t = mem.max(compute) + p.t_launch;
        self.push_record(
            name.into(),
            OpKind::Bulk,
            t,
            Breakdown {
                dram: mem,
                compute,
                overhead: p.t_launch,
                ..Breakdown::default()
            },
        )
    }

    /// Advance the clock by an externally computed duration (used by the
    /// multi-rank harness to model queueing).
    pub fn advance(&self, name: &str, duration: f64) {
        self.push_record(name.into(), OpKind::Bulk, duration, Breakdown::default());
    }
}

/// Device memory: functionally a host `Vec`, accounted against the
/// simulated device's capacity. Dropping it frees the simulated memory.
pub struct GpuBuffer<T> {
    data: Vec<T>,
    bytes: usize,
    dev: Arc<DeviceInner>,
}

impl<T> GpuBuffer<T> {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> std::fmt::Debug for GpuBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuBuffer")
            .field("len", &self.data.len())
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl<T> Drop for GpuBuffer<T> {
    fn drop(&mut self) {
        let mut s = self.dev.state.lock();
        s.mem_used = s.mem_used.saturating_sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultMode;

    #[test]
    fn clock_advances_with_operations() {
        let dev = Device::v100();
        assert_eq!(dev.clock(), 0.0);
        let t = dev.bulk_op("memset", 0, 1 << 20, 0.0, Precision::Single);
        assert!(t > 0.0);
        assert!((dev.clock() - t).abs() < 1e-18);
    }

    #[test]
    fn alloc_tracks_memory_and_drop_frees() {
        let dev = Device::v100();
        let before = dev.mem_used();
        {
            let _buf: GpuBuffer<f32> = dev.alloc("grid", 1 << 20).unwrap();
            assert_eq!(dev.mem_used(), before + (1 << 22));
            assert!(dev.mem_peak() >= before + (1 << 22));
        }
        assert_eq!(dev.mem_used(), before);
        // peak survives the free
        assert!(dev.mem_peak() >= before + (1 << 22));
    }

    #[test]
    fn oom_is_reported() {
        let dev = Device::v100();
        let cap = dev.props().global_mem_bytes;
        let err = match dev.alloc::<u8>("huge", cap + 1) {
            Err(e) => e,
            Ok(_) => panic!("allocation beyond capacity must fail"),
        };
        assert!(!err.transient, "capacity OOM is not retryable");
        match err.kind {
            FaultKind::Oom { requested, .. } => assert_eq!(requested, cap + 1),
            other => panic!("expected OOM kind, got {other:?}"),
        }
    }

    #[test]
    fn memcpy_roundtrip_preserves_data() {
        let dev = Device::v100();
        let host: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let mut buf = dev.alloc::<f32>("x", 100).unwrap();
        dev.memcpy_htod(&mut buf, &host).unwrap();
        let mut back = vec![0.0f32; 100];
        dev.memcpy_dtoh(&mut back, &buf).unwrap();
        assert_eq!(host, back);
        let tl = dev.timeline();
        assert_eq!(tl.iter().filter(|r| r.kind == OpKind::Memcpy).count(), 2);
    }

    #[test]
    fn kernel_launch_records_timeline() {
        let dev = Device::v100();
        let mut k = dev
            .kernel("spread", LaunchConfig::new(Precision::Single, 128))
            .unwrap();
        let mut b = k.block();
        b.flops(1000);
        b.stream_bytes(4096);
        b.finish();
        let report = dev.launch_end(k);
        assert!(report.duration > 0.0);
        let tl = dev.timeline();
        let rec = tl.iter().find(|r| r.name == "spread").unwrap();
        assert_eq!(rec.kind, OpKind::Kernel);
        assert!((rec.duration - report.duration).abs() < 1e-18);
    }

    #[test]
    fn shared_memory_request_validated() {
        let dev = Device::v100();
        let too_big = LaunchConfig::new(Precision::Single, 128)
            .with_shared(dev.props().shared_mem_per_block + 1);
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dev.kernel("bad", too_big)));
        assert!(res.is_err());
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let dev = Device::v100();
        let t1 = {
            let mut b = dev.alloc::<f32>("a", 1024).unwrap();
            let host = vec![0.0f32; 1024];
            let c0 = dev.clock();
            dev.memcpy_htod(&mut b, &host).unwrap();
            dev.clock() - c0
        };
        let t2 = {
            let mut b = dev.alloc::<f32>("b", 1 << 22).unwrap();
            let host = vec![0.0f32; 1 << 22];
            let c0 = dev.clock();
            dev.memcpy_htod(&mut b, &host).unwrap();
            dev.clock() - c0
        };
        assert!(t2 > t1 * 10.0);
    }

    #[test]
    fn mem_cap_injects_persistent_oom() {
        let dev = Device::v100();
        dev.inject_faults(crate::faults::FaultPlan::new(0).mem_cap(1 << 20));
        assert_eq!(dev.mem_capacity(), 1 << 20);
        let err = dev.alloc::<u8>("big", (1 << 20) + 1).unwrap_err();
        assert!(err.is_oom() && !err.transient);
        // under the cap still works, and clearing restores full capacity
        assert!(dev.alloc::<u8>("small", 1 << 10).is_ok());
        dev.clear_faults();
        assert_eq!(dev.mem_capacity(), dev.props().global_mem_bytes);
        assert!(dev.alloc::<u8>("big", (1 << 20) + 1).is_ok());
    }

    #[test]
    fn nth_alloc_fault_fires_once_then_allows_retry() {
        let dev = Device::v100();
        dev.inject_faults(crate::faults::FaultPlan::new(0).fail_alloc_nth(2, FaultMode::Once));
        assert!(dev.alloc::<f32>("a", 16).is_ok());
        let err = dev.alloc::<f32>("b", 16).unwrap_err();
        assert!(err.is_oom() && err.transient);
        assert!(err.op.contains("alloc:b"), "op names the site: {}", err.op);
        assert!(dev.alloc::<f32>("b", 16).is_ok(), "retry succeeds");
        assert_eq!(dev.faults_injected(), 1);
    }

    #[test]
    fn transient_memcpy_fault_leaves_destination_untouched() {
        let dev = Device::v100();
        let mut buf = dev.alloc::<f32>("x", 4).unwrap();
        dev.inject_faults(crate::faults::FaultPlan::new(0).fail_memcpy("htod", FaultMode::Once));
        let host = [1.0f32, 2.0, 3.0, 4.0];
        let err = dev.memcpy_htod(&mut buf, &host).unwrap_err();
        assert_eq!(err.kind, FaultKind::Memcpy);
        assert!(err.transient);
        assert_eq!(buf.as_slice(), &[0.0; 4], "failed copy moved no data");
        dev.memcpy_htod(&mut buf, &host).unwrap();
        assert_eq!(buf.as_slice(), &host);
    }

    #[test]
    fn kernel_launch_fault_fires_before_work() {
        let dev = Device::v100();
        dev.inject_faults(
            crate::faults::FaultPlan::new(0).fail_kernel("spread", FaultMode::Always),
        );
        let cfg = LaunchConfig::new(Precision::Single, 128);
        let err = dev.kernel("spread_SM", cfg).unwrap_err();
        assert_eq!(err.kind, FaultKind::KernelLaunch);
        assert!(!err.transient);
        // non-matching kernels still launch
        let cfg = LaunchConfig::new(Precision::Single, 128);
        assert!(dev.kernel("interp_GM", cfg).is_ok());
    }

    #[test]
    fn stalled_memcpy_succeeds_but_takes_longer() {
        let dev = Device::v100();
        let host = vec![0.0f32; 1024];
        let mut a = dev.alloc::<f32>("a", 1024).unwrap();
        let c0 = dev.clock();
        dev.memcpy_htod(&mut a, &host).unwrap();
        let nominal = dev.clock() - c0;
        dev.inject_faults(crate::faults::FaultPlan::new(0).stall_memcpy("htod", 0.5));
        let c1 = dev.clock();
        dev.memcpy_htod(&mut a, &host).unwrap();
        let stalled = dev.clock() - c1;
        assert!(
            (stalled - nominal - 0.5).abs() < 1e-9,
            "stall adds exactly the injected duration: {stalled} vs {nominal}"
        );
    }

    #[test]
    fn fault_events_mirrored_into_trace() {
        let dev = Device::v100();
        let trace = Trace::new();
        dev.attach_trace(&trace);
        dev.inject_faults(crate::faults::FaultPlan::new(0).fail_alloc_nth(1, FaultMode::Once));
        assert!(dev.alloc::<f32>("a", 16).is_err());
        let report = trace.report();
        assert_eq!(report.counters.get("gpu.faults.injected"), Some(&1));
        let json = report.chrome_json();
        assert!(json.contains("fault:alloc:a"), "fault event in export");
    }

    #[test]
    fn timeline_recording_can_be_disabled() {
        let dev = Device::v100();
        dev.set_record_timeline(false);
        dev.bulk_op("quiet", 1024, 0, 0.0, Precision::Single);
        assert!(dev.timeline().is_empty());
        // clock still advances
        assert!(dev.clock() > 0.0);
    }

    #[test]
    fn device_is_cloneable_and_shares_state() {
        let dev = Device::v100();
        let dev2 = dev.clone();
        dev.bulk_op("x", 1 << 20, 0, 0.0, Precision::Single);
        assert_eq!(dev.clock(), dev2.clock());
    }
}
