//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] attached to a [`crate::Device`] makes the simulator
//! misbehave in controlled, reproducible ways so the NUFFT layers above
//! can prove their recovery paths: capacity can be capped below the
//! physical card, a chosen allocation can fail, memcpys and kernel
//! launches can fail transiently (once, then succeed on retry) or
//! permanently, and transfers can stall for a simulated duration.
//!
//! Determinism: rules fire on exact occurrence counts, and the optional
//! probabilistic mode draws from a seeded xorshift generator owned by
//! the plan, so a given `(FaultPlan, workload)` pair always injects the
//! same faults at the same operations. Every injected fault is recorded
//! as a `fault`-category event in the attached `nufft-trace` session
//! (plus the `gpu.faults.injected` / `gpu.faults.stalls` counters), so
//! chaos runs are visible in the Chrome trace export.

use std::fmt;

/// How often an armed fault rule fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Fire on the first matching operation, then disarm — the fault is
    /// *transient*: a retry of the same operation succeeds.
    Once,
    /// Fire on every matching operation (a persistent hardware fault);
    /// bounded retry must eventually give up.
    Always,
}

/// Which class of device operation a rule targets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// `Device::alloc`.
    Alloc,
    /// Host-device transfers, serial or stream-scheduled.
    Memcpy,
    /// Detailed kernel launches (`Device::kernel`).
    Kernel,
}

/// What went wrong, as reported by the failing operation.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Allocation failed: capacity exhausted (possibly via an injected
    /// cap) or an injected Nth-allocation failure.
    Oom { requested: usize, available: usize },
    /// A host-device transfer faulted.
    Memcpy,
    /// A kernel launch faulted before any work ran.
    KernelLaunch,
}

/// Typed error surfaced by the device's alloc/memcpy/launch paths.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceFault {
    /// Name of the failing operation (allocation label, `memcpy_htod`,
    /// kernel name, ...).
    pub op: String,
    pub kind: FaultKind,
    /// Whether retrying the same operation may succeed. `true` for
    /// injected one-shot faults; `false` for genuine capacity OOM (a
    /// retry cannot conjure memory — the caller must shed load instead).
    pub transient: bool,
}

impl DeviceFault {
    pub fn is_oom(&self) -> bool {
        matches!(self.kind, FaultKind::Oom { .. })
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = if self.transient {
            "transient"
        } else {
            "persistent"
        };
        match &self.kind {
            FaultKind::Oom {
                requested,
                available,
            } => write!(
                f,
                "{t} device OOM in '{}': requested {requested} B, {available} B free",
                self.op
            ),
            FaultKind::Memcpy => write!(f, "{t} memcpy fault in '{}'", self.op),
            FaultKind::KernelLaunch => write!(f, "{t} launch fault in kernel '{}'", self.op),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// One injection rule; see the [`FaultPlan`] builder methods.
#[derive(Clone, Debug)]
struct FaultRule {
    site: FaultSite,
    /// Substring match on the operation name (empty = match all).
    matcher: String,
    /// Skip this many matching operations before firing (so
    /// `fail_alloc_nth(3, ..)` fails exactly the 3rd allocation).
    skip: u64,
    mode: FaultMode,
    /// Fire with this probability per matching occurrence (drawn from
    /// the plan's seeded generator); 1.0 = deterministic.
    probability: f64,
    /// When set, the rule stalls the operation by this many simulated
    /// seconds instead of failing it.
    stall: Option<f64>,
}

/// A seeded, deterministic schedule of injected faults. Build with the
/// fluent methods, then attach via `Device::inject_faults`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    mem_cap: Option<usize>,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules; `seed` drives any probabilistic rules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            mem_cap: None,
            rules: Vec::new(),
        }
    }

    /// Cap usable device memory below the physical capacity; every
    /// allocation that would exceed the cap fails with a (persistent)
    /// OOM, modelling concurrent plans squatting on the card.
    pub fn mem_cap(mut self, bytes: usize) -> Self {
        self.mem_cap = Some(bytes);
        self
    }

    /// Fail the `nth` allocation (1-based across all allocations).
    /// `FaultMode::Once` makes it a one-shot glitch — the retry (which
    /// is allocation `nth + 1`) succeeds; `Always` fails allocation
    /// `nth` and every later one.
    pub fn fail_alloc_nth(mut self, nth: u64, mode: FaultMode) -> Self {
        self.rules.push(FaultRule {
            site: FaultSite::Alloc,
            matcher: String::new(),
            skip: nth.saturating_sub(1),
            mode,
            probability: 1.0,
            stall: None,
        });
        self
    }

    /// Fail memcpys whose name contains `name` (`"htod"`, `"dtoh"`, or
    /// `""` for any direction).
    pub fn fail_memcpy(mut self, name: &str, mode: FaultMode) -> Self {
        self.rules.push(FaultRule {
            site: FaultSite::Memcpy,
            matcher: name.to_string(),
            skip: 0,
            mode,
            probability: 1.0,
            stall: None,
        });
        self
    }

    /// Fail kernel launches whose name contains `name` at launch time,
    /// before any functional work runs (the `cudaLaunchKernel` error
    /// model: a failed launch leaves device memory untouched).
    pub fn fail_kernel(mut self, name: &str, mode: FaultMode) -> Self {
        self.rules.push(FaultRule {
            site: FaultSite::Kernel,
            matcher: name.to_string(),
            skip: 0,
            mode,
            probability: 1.0,
            stall: None,
        });
        self
    }

    /// Fail matching memcpys with probability `p` per occurrence, drawn
    /// deterministically from the plan's seed.
    pub fn fail_memcpy_with_probability(mut self, name: &str, p: f64, mode: FaultMode) -> Self {
        self.rules.push(FaultRule {
            site: FaultSite::Memcpy,
            matcher: name.to_string(),
            skip: 0,
            mode,
            probability: p.clamp(0.0, 1.0),
            stall: None,
        });
        self
    }

    /// Stall the first memcpy whose name contains `name` by `seconds`
    /// of simulated time (a congested copy engine). The operation still
    /// succeeds; only the schedule stretches.
    pub fn stall_memcpy(mut self, name: &str, seconds: f64) -> Self {
        self.rules.push(FaultRule {
            site: FaultSite::Memcpy,
            matcher: name.to_string(),
            skip: 0,
            mode: FaultMode::Once,
            probability: 1.0,
            stall: Some(seconds.max(0.0)),
        });
        self
    }
}

/// What the device should do for one operation, as decided by
/// [`FaultState::check`].
#[derive(Debug, PartialEq)]
pub(crate) enum Injection {
    /// Proceed normally.
    None,
    /// Fail the operation (`transient` = retry may succeed).
    Fail { transient: bool },
    /// Let the operation succeed but stretch it by this many seconds.
    Stall(f64),
}

/// Mutable per-device runtime state of an attached [`FaultPlan`].
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Matching-operation counters per rule.
    seen: Vec<u64>,
    /// Whether each rule has already fired (for `Once` disarming).
    fired: Vec<bool>,
    /// xorshift64 state for probabilistic rules.
    rng: u64,
    /// Total faults injected so far (stalls included).
    pub injected: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let n = plan.rules.len();
        let rng = plan.seed | 0x9E37_79B9_7F4A_7C15;
        FaultState {
            plan,
            seen: vec![0; n],
            fired: vec![false; n],
            rng,
            injected: 0,
        }
    }

    pub(crate) fn mem_cap(&self) -> Option<usize> {
        self.plan.mem_cap
    }

    fn next_unit(&mut self) -> f64 {
        // xorshift64: deterministic, cheap, good enough for fault dice
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Consult the rules for one operation at `site` named `name`.
    pub(crate) fn check(&mut self, site: FaultSite, name: &str) -> Injection {
        for i in 0..self.plan.rules.len() {
            let rule = &self.plan.rules[i];
            if rule.site != site || !name.contains(rule.matcher.as_str()) {
                continue;
            }
            if rule.mode == FaultMode::Once && self.fired[i] {
                continue;
            }
            let seen = self.seen[i];
            self.seen[i] += 1;
            if seen < rule.skip {
                continue;
            }
            if self.plan.rules[i].probability < 1.0 {
                let p = self.plan.rules[i].probability;
                if self.next_unit() >= p {
                    continue;
                }
            }
            self.fired[i] = true;
            self.injected += 1;
            let rule = &self.plan.rules[i];
            return match rule.stall {
                Some(s) => Injection::Stall(s),
                None => Injection::Fail {
                    transient: rule.mode == FaultMode::Once,
                },
            };
        }
        Injection::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_rule_fires_once_then_disarms() {
        let plan = FaultPlan::new(1).fail_memcpy("htod", FaultMode::Once);
        let mut st = FaultState::new(plan);
        assert_eq!(
            st.check(FaultSite::Memcpy, "memcpy_htod"),
            Injection::Fail { transient: true }
        );
        assert_eq!(st.check(FaultSite::Memcpy, "memcpy_htod"), Injection::None);
        assert_eq!(st.injected, 1);
    }

    #[test]
    fn always_rule_keeps_firing() {
        let plan = FaultPlan::new(1).fail_kernel("spread", FaultMode::Always);
        let mut st = FaultState::new(plan);
        for _ in 0..3 {
            assert_eq!(
                st.check(FaultSite::Kernel, "spread_SM"),
                Injection::Fail { transient: false }
            );
        }
        assert_eq!(st.check(FaultSite::Kernel, "interp_GM"), Injection::None);
    }

    #[test]
    fn nth_alloc_skips_earlier_allocs() {
        let plan = FaultPlan::new(1).fail_alloc_nth(3, FaultMode::Once);
        let mut st = FaultState::new(plan);
        assert_eq!(st.check(FaultSite::Alloc, "alloc:a"), Injection::None);
        assert_eq!(st.check(FaultSite::Alloc, "alloc:b"), Injection::None);
        assert_eq!(
            st.check(FaultSite::Alloc, "alloc:c"),
            Injection::Fail { transient: true }
        );
        // the retry is the 4th allocation: succeeds
        assert_eq!(st.check(FaultSite::Alloc, "alloc:c"), Injection::None);
    }

    #[test]
    fn stall_rule_stretches_instead_of_failing() {
        let plan = FaultPlan::new(1).stall_memcpy("dtoh", 0.25);
        let mut st = FaultState::new(plan);
        assert_eq!(
            st.check(FaultSite::Memcpy, "memcpy_dtoh"),
            Injection::Stall(0.25)
        );
        assert_eq!(st.check(FaultSite::Memcpy, "memcpy_dtoh"), Injection::None);
    }

    #[test]
    fn probabilistic_rule_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let plan =
                FaultPlan::new(seed).fail_memcpy_with_probability("", 0.5, FaultMode::Always);
            let mut st = FaultState::new(plan);
            (0..32)
                .map(|_| st.check(FaultSite::Memcpy, "memcpy_htod") != Injection::None)
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let fired = run(7).iter().filter(|&&b| b).count();
        assert!(fired > 4 && fired < 28, "p=0.5 should fire sometimes");
    }

    #[test]
    fn display_names_the_fault() {
        let f = DeviceFault {
            op: "spread_SM".into(),
            kind: FaultKind::KernelLaunch,
            transient: true,
        };
        let s = f.to_string();
        assert!(s.contains("spread_SM") && s.contains("transient"), "{s}");
    }
}
