//! Hardware properties of the simulated device.
//!
//! Constants are calibrated to the NVIDIA Tesla V100 used throughout the
//! paper (900 GB/s HBM2, 80 SMs, 49 kB usable shared memory per thread
//! block, PCIe 3.0 x16 host link). The *relative* performance of the
//! spreading schemes emerges from counted work; these constants set the
//! absolute scale so throughputs land in the paper's regime
//! (~1e9 points/s for 2D spreading at w=6).

/// Working precision of a kernel, used to pick FLOP rates and element
/// sizes in the cost model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Precision {
    Single,
    Double,
}

impl Precision {
    /// Bytes per *real* scalar.
    pub fn real_bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Bytes per complex element (interleaved).
    pub fn complex_bytes(self) -> usize {
        2 * self.real_bytes()
    }
}

/// Device description and cost-model constants.
#[derive(Clone, Debug)]
pub struct DeviceProps {
    pub name: &'static str,
    /// Number of streaming multiprocessors (V100: 80).
    pub sm_count: usize,
    /// Threads per warp (32 on every NVIDIA GPU).
    pub warp_size: usize,
    /// Usable shared memory per thread block in bytes. The paper quotes
    /// 49 kB (48 KiB + 1) for the V100; we use 49_152 (48 KiB) and keep the
    /// paper's 49_000 figure in the SM feasibility check of cufinufft.
    pub shared_mem_per_block: usize,
    /// Total device memory in bytes (V100 SXM2: 16 or 32 GB; we model 16).
    pub global_mem_bytes: usize,
    /// DRAM bandwidth in bytes/second (V100: 900 GB/s).
    pub dram_bw: f64,
    /// Peak single-precision throughput in FLOP/s (V100: ~14 TFLOP/s). The
    /// model applies an achievable-fraction derate internally.
    pub flops_f32: f64,
    /// Peak double-precision throughput (V100: ~7 TFLOP/s).
    pub flops_f64: f64,
    /// Fraction of peak FLOPs a memory-irregular kernel actually sustains.
    pub compute_efficiency: f64,
    /// Size in bytes of one global-memory transaction sector (32 B on
    /// Volta); coalescing is counted in these units.
    pub sector_bytes: usize,
    /// Serialized-atomic cost: seconds per global atomic landing on the
    /// *same* 32 B sector (the L2 must replay them back-to-back).
    pub t_global_atomic_same: f64,
    /// Seconds per shared-memory atomic to the same bank address within a
    /// block (far cheaper than global; resolved in the SM).
    pub t_shared_atomic_same: f64,
    /// Aggregate shared-memory *atomic* op throughput per SM (ops/s).
    /// Scattered read-modify-write updates with bank conflicts sustain
    /// well under one op per clock; calibrated against the paper's SM
    /// spread throughputs (~0.7 ns/pt in 2D, ~5-6 ns/pt in 3D at w=6).
    pub shared_ops_rate_per_sm: f64,
    /// Fixed kernel launch overhead in seconds.
    pub t_launch: f64,
    /// Host-device transfer bandwidth in bytes/s (PCIe 3.0 x16 ~ 12 GB/s).
    pub pcie_bw: f64,
    /// Per-transfer latency in seconds.
    pub pcie_latency: f64,
    /// cudaMalloc-style fixed allocation overhead in seconds.
    pub t_alloc: f64,
    /// L2 cache size in bytes (V100: 6 MB). Reads of a working set that
    /// fits in L2 are charged at the L2 rate instead of DRAM.
    pub l2_bytes: usize,
    /// L2 bandwidth in bytes/s (~2.2x DRAM on Volta).
    pub l2_bw: f64,
    /// DRAM line (miss) granularity in bytes: an L2 miss transfers a full
    /// line regardless of how few bytes the warp wanted.
    pub line_bytes: usize,
    /// Aggregate device throughput of global atomic operations resolved
    /// in L2 (ops/s), assuming no same-address contention.
    pub l2_atomic_rate: f64,
}

impl DeviceProps {
    /// The NVIDIA Tesla V100 (SXM2 16 GB) used in the paper's benchmarks.
    pub fn v100() -> Self {
        DeviceProps {
            name: "Tesla V100-SXM2 (simulated)",
            sm_count: 80,
            warp_size: 32,
            shared_mem_per_block: 49_152,
            global_mem_bytes: 16 * (1 << 30),
            dram_bw: 900.0e9,
            flops_f32: 14.0e12,
            flops_f64: 7.0e12,
            compute_efficiency: 0.35,
            sector_bytes: 32,
            t_global_atomic_same: 4.0e-9,
            t_shared_atomic_same: 0.25e-9,
            shared_ops_rate_per_sm: 2.2e9,
            t_launch: 3.0e-6,
            pcie_bw: 12.0e9,
            pcie_latency: 10.0e-6,
            t_alloc: 100.0e-6,
            l2_bytes: 6 << 20,
            l2_bw: 2000.0e9,
            line_bytes: 128,
            l2_atomic_rate: 3.0e11,
        }
    }

    /// A smaller GPU (half the SMs and bandwidth) — handy in tests to check
    /// that the model responds to hardware scaling in the right direction.
    pub fn half_v100() -> Self {
        let mut p = Self::v100();
        p.name = "half-V100 (simulated)";
        p.sm_count = 40;
        p.dram_bw /= 2.0;
        p.flops_f32 /= 2.0;
        p.flops_f64 /= 2.0;
        p.l2_bw /= 2.0;
        p
    }

    /// FLOP rate for a precision, after the achievable-fraction derate.
    pub fn flops(&self, prec: Precision) -> f64 {
        let peak = match prec {
            Precision::Single => self.flops_f32,
            Precision::Double => self.flops_f64,
        };
        peak * self.compute_efficiency
    }

    /// Per-SM share of the derated FLOP rate.
    pub fn sm_flops(&self, prec: Precision) -> f64 {
        self.flops(prec) / self.sm_count as f64
    }

    /// Per-SM share of DRAM bandwidth.
    pub fn sm_bw(&self) -> f64 {
        self.dram_bw / self.sm_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_constants_sane() {
        let p = DeviceProps::v100();
        assert_eq!(p.sm_count, 80);
        assert_eq!(p.warp_size, 32);
        assert!(p.dram_bw > 8.0e11);
        assert!(p.flops_f32 > p.flops_f64);
        assert!(p.l2_bw > p.dram_bw);
        assert!(p.shared_mem_per_block >= 48 * 1024);
    }

    #[test]
    fn precision_byte_sizes() {
        assert_eq!(Precision::Single.real_bytes(), 4);
        assert_eq!(Precision::Double.real_bytes(), 8);
        assert_eq!(Precision::Single.complex_bytes(), 8);
        assert_eq!(Precision::Double.complex_bytes(), 16);
    }

    #[test]
    fn derated_flops_ordering() {
        let p = DeviceProps::v100();
        assert!(p.flops(Precision::Single) > p.flops(Precision::Double));
        assert!(p.flops(Precision::Single) < p.flops_f32);
        assert!(
            (p.sm_flops(Precision::Single) * p.sm_count as f64 - p.flops(Precision::Single)).abs()
                < 1.0
        );
    }

    #[test]
    fn half_gpu_is_slower() {
        let full = DeviceProps::v100();
        let half = DeviceProps::half_v100();
        assert!(half.dram_bw < full.dram_bw);
        assert_eq!(half.sm_count, full.sm_count / 2);
    }
}
