//! Block-to-SM scheduling: the makespan model.
//!
//! A CUDA grid's thread blocks are dispatched to SMs as slots free up. We
//! model each SM as a serial server and dispatch blocks in submission
//! order to the earliest-free SM (greedy list scheduling). This is the
//! component that makes *load balance* visible: one huge block (the
//! failure mode of uncapped output-driven spreading, fixed by the paper's
//! `M_sub` cap) stretches the makespan no matter how idle the other SMs
//! are.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order wrapper for non-NaN f64 so times can live in a heap.
#[derive(Copy, Clone, PartialEq, PartialOrd)]
pub(crate) struct Finite(pub f64);

impl Eq for Finite {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("NaN time in scheduler")
    }
}

/// Greedy list-scheduling makespan of `block_times` over `slots` identical
/// servers, in submission order. Returns 0 for an empty grid.
pub fn makespan(block_times: &[f64], slots: usize) -> f64 {
    assert!(slots > 0, "scheduler needs at least one slot");
    if block_times.is_empty() {
        return 0.0;
    }
    if block_times.len() <= slots {
        return block_times.iter().cloned().fold(0.0, f64::max);
    }
    let mut heap: BinaryHeap<Reverse<Finite>> = BinaryHeap::with_capacity(slots);
    for _ in 0..slots {
        heap.push(Reverse(Finite(0.0)));
    }
    let mut latest: f64 = 0.0;
    for &t in block_times {
        debug_assert!(t >= 0.0 && t.is_finite(), "bad block time {t}");
        let Reverse(Finite(free_at)) = heap.pop().expect("heap never empty");
        let done = free_at + t;
        latest = latest.max(done);
        heap.push(Reverse(Finite(done)));
    }
    latest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_instant() {
        assert_eq!(makespan(&[], 80), 0.0);
    }

    #[test]
    fn fewer_blocks_than_slots_take_the_longest_block() {
        assert_eq!(makespan(&[1.0, 3.0, 2.0], 4), 3.0);
    }

    #[test]
    fn perfectly_balanced_blocks_divide_evenly() {
        let times = vec![1.0; 160];
        assert!((makespan(&times, 80) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_giant_block_dominates() {
        // the load-imbalance pathology M_sub exists to prevent
        let mut times = vec![0.001; 1000];
        times[0] = 5.0;
        let ms = makespan(&times, 80);
        assert!((5.0..5.1).contains(&ms));
    }

    #[test]
    fn capped_blocks_beat_uncapped() {
        // same total work, split 100-ways vs one lump
        let lump = makespan(&[10.0], 80);
        let split = makespan(&vec![0.1; 100], 80);
        assert!(split < lump / 4.0, "split {split} vs lump {lump}");
    }

    #[test]
    fn makespan_bounds() {
        // classic bounds: max(avg load, longest block) <= makespan <= sum
        let times = [0.5, 1.7, 0.3, 2.2, 0.9, 1.1, 0.4];
        let slots = 3;
        let ms = makespan(&times, slots);
        let total: f64 = times.iter().sum();
        let lb = (total / slots as f64).max(2.2);
        assert!(ms + 1e-12 >= lb);
        assert!(ms <= total + 1e-12);
    }

    #[test]
    fn single_slot_serializes() {
        let times = [1.0, 2.0, 3.0];
        assert!((makespan(&times, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_blocks_is_instant_for_any_slot_count() {
        for slots in [1, 2, 80, 1000] {
            assert_eq!(makespan(&[], slots), 0.0);
        }
    }

    #[test]
    fn blocks_equal_to_slot_count_fill_one_wave() {
        // exactly one wave: every block gets its own SM, the longest wins
        let times: Vec<f64> = (1..=80).map(|i| i as f64 * 0.01).collect();
        assert!((makespan(&times, 80) - 0.80).abs() < 1e-12);
    }

    #[test]
    fn one_block_past_a_full_wave_starts_a_second_wave() {
        // 81 equal blocks on 80 slots: the straggler waits a full wave
        let times = vec![1.0; 81];
        assert!((makespan(&times, 80) - 2.0).abs() < 1e-12);
        // and it queues behind the *earliest-free* slot: with one short
        // block in wave 1, the straggler lands there instead
        let mut uneven = vec![1.0; 81];
        uneven[7] = 0.25;
        assert!((makespan(&uneven, 80) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn single_block_with_occupancy_limiting_shared_memory() {
        // a lone block that consumes the whole per-SM shared memory can
        // occupy only one SM; its serial cost IS the makespan, and no
        // amount of idle SMs helps
        use crate::props::DeviceProps;
        use crate::{Kernel, LaunchConfig, Precision};
        let props = DeviceProps::v100();
        let shared = props.shared_mem_per_block;
        let mut k = Kernel::new(
            "lone_block",
            LaunchConfig::new(Precision::Single, 256).with_shared(shared),
            props,
        );
        let mut b = k.block();
        b.shared_ops(1_000_000);
        b.finish();
        let (r, _) = k.price();
        assert_eq!(r.blocks, 1);
        assert!(r.breakdown.makespan > 0.0);
        // one serial server: duration is bounded below by the block time
        assert!(r.duration >= r.breakdown.makespan);
        assert!((r.breakdown.makespan - makespan(&[r.breakdown.makespan], 80)).abs() < 1e-15);
    }
}
