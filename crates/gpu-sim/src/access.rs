//! Shadow-memory access tracing for instrumented kernels.
//!
//! When a [`crate::Device`] runs in [`HazardMode::Check`], each kernel
//! launch carries a [`KernelTrace`]: instrumented kernels register the
//! buffers they touch ([`KernelTrace::buffer`]) and log every read,
//! write, and atomic against them per (block, thread, sync-epoch). The
//! sync epoch is the count of [`barrier`](KernelTrace::barrier) calls —
//! the simulator's model of `__syncthreads` — the block has executed,
//! so two accesses by different threads of one block are *ordered* iff
//! their epochs differ. The resulting trace is analyzed by
//! [`crate::hazard::check`] at `launch_end`.
//!
//! Tracing granularity is a logical *element* chosen by the
//! instrumentation site (for complex grids: one real word, so the two
//! halves of a complex add stay distinct and atomic counts line up with
//! the performance model's per-word accounting).

use nufft_common::hazard::AccessKind;

/// Whether the device checks instrumented launches for data races and
/// contract drift. Off by default — tracing costs memory proportional to
/// the access count, so it is a debugging/CI mode, not a benchmark mode.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum HazardMode {
    /// No tracing; launches are priced as usual.
    #[default]
    Off,
    /// Trace every instrumented access and run the happens-before +
    /// contract checker on each launch, accumulating findings on the
    /// device (see `Device::hazard_findings`).
    Check,
}

/// Address space of a traced buffer. Determines which conflicts the
/// checker considers: shared buffers are private to a block (intra-block
/// analysis only), global buffers are additionally checked for
/// inter-block conflicts not mediated by atomics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    Shared,
    Global,
}

/// Handle to a buffer registered on a [`KernelTrace`]. Obtained from
/// [`KernelTrace::buffer`] (or `BlockCtx::trace_buffer`); cheap to copy
/// into inner loops.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BufId(pub(crate) u16);

/// A buffer declaration: name for reporting, scope for the conflict
/// rules, element size for footprint accounting.
#[derive(Clone, Debug)]
pub struct BufferDecl {
    pub name: String,
    pub scope: Scope,
    pub elem_bytes: usize,
}

/// One logged access.
#[derive(Copy, Clone, Debug)]
pub struct AccessRecord {
    pub buf: u16,
    pub kind: AccessKind,
    pub block: u32,
    pub thread: u32,
    pub epoch: u32,
    pub elem: u64,
}

/// The shadow-memory log of one kernel launch.
#[derive(Clone, Debug)]
pub struct KernelTrace {
    pub(crate) name: String,
    pub(crate) buffers: Vec<BufferDecl>,
    pub(crate) records: Vec<AccessRecord>,
    /// Current sync epoch per block id (advanced by `barrier`).
    epochs: Vec<u32>,
}

impl KernelTrace {
    pub fn new(name: &str) -> Self {
        KernelTrace {
            name: name.to_string(),
            buffers: Vec::new(),
            records: Vec::new(),
            epochs: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a named buffer; every access must reference the returned
    /// id. `elem_bytes` is the size of one traced element.
    pub fn buffer(&mut self, name: &str, scope: Scope, elem_bytes: usize) -> BufId {
        debug_assert!(
            self.buffers.len() < u16::MAX as usize,
            "too many traced buffers"
        );
        self.buffers.push(BufferDecl {
            name: name.to_string(),
            scope,
            elem_bytes: elem_bytes.max(1),
        });
        BufId((self.buffers.len() - 1) as u16)
    }

    fn epoch_of(&mut self, block: u32) -> u32 {
        let b = block as usize;
        if b >= self.epochs.len() {
            self.epochs.resize(b + 1, 0);
        }
        self.epochs[b]
    }

    /// Log one access by `thread` of `block` on element `elem` of `buf`,
    /// stamped with the block's current sync epoch.
    pub fn access(&mut self, buf: BufId, kind: AccessKind, block: u32, thread: u32, elem: u64) {
        let epoch = self.epoch_of(block);
        self.records.push(AccessRecord {
            buf: buf.0,
            kind,
            block,
            thread,
            epoch,
            elem,
        });
    }

    pub fn read(&mut self, buf: BufId, block: u32, thread: u32, elem: u64) {
        self.access(buf, AccessKind::Read, block, thread, elem);
    }

    pub fn write(&mut self, buf: BufId, block: u32, thread: u32, elem: u64) {
        self.access(buf, AccessKind::Write, block, thread, elem);
    }

    pub fn atomic(&mut self, buf: BufId, block: u32, thread: u32, elem: u64) {
        self.access(buf, AccessKind::Atomic, block, thread, elem);
    }

    /// Model `__syncthreads` for `block`: all threads of the block
    /// rendezvous, so accesses logged before the barrier happen-before
    /// accesses logged after it. Advances the block's sync epoch.
    pub fn barrier(&mut self, block: u32) {
        let e = self.epoch_of(block);
        self.epochs[block as usize] = e + 1;
    }

    /// Buffer declarations, indexed by [`AccessRecord::buf`]. Exposed so
    /// static analyzers ([`crate::access_plan`]) can replay a trace
    /// against a symbolic plan.
    pub fn buffers(&self) -> &[BufferDecl] {
        &self.buffers
    }

    /// The raw access log, in logging order.
    pub fn records(&self) -> &[AccessRecord] {
        &self.records
    }

    /// Number of logged accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// What the launch *declared* to the performance model, captured when
/// the kernel is priced: the contract checker cross-validates the trace
/// against these numbers so the cost model cannot drift from the
/// functional code.
#[derive(Copy, Clone, Debug, Default)]
pub struct Contract {
    /// Global atomic ops charged via `BlockCtx::global_atomic`.
    pub global_atomics: Option<u64>,
    /// Shared-memory atomic ops charged via `BlockCtx::shared_atomic`.
    pub shared_atomics: Option<u64>,
    /// Shared bytes per block declared in the `LaunchConfig`.
    pub shared_bytes: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_advances_epoch_per_block() {
        let mut t = KernelTrace::new("k");
        let b = t.buffer("buf", Scope::Shared, 4);
        t.write(b, 0, 0, 7);
        t.barrier(0);
        t.write(b, 0, 1, 7);
        t.write(b, 1, 0, 7); // other block unaffected by block 0's barrier
        assert_eq!(t.records[0].epoch, 0);
        assert_eq!(t.records[1].epoch, 1);
        assert_eq!(t.records[2].epoch, 0);
    }

    #[test]
    fn buffer_ids_are_sequential() {
        let mut t = KernelTrace::new("k");
        let a = t.buffer("a", Scope::Global, 8);
        let b = t.buffer("b", Scope::Shared, 4);
        assert_eq!(a, BufId(0));
        assert_eq!(b, BufId(1));
        t.atomic(b, 0, 0, 0);
        assert_eq!(t.records[0].buf, 1);
        assert_eq!(t.len(), 1);
    }
}
