//! nvprof-style summaries of a device timeline.
//!
//! The simulator records every priced operation; this module aggregates
//! them into the familiar per-kernel profile (calls, total time, average,
//! share) so users can see where a transform's simulated time goes —
//! e.g. reproducing Table I's observation that spreading is >90% of a 3D
//! type-1 "exec".

use crate::device::{OpKind, TimelineRecord};
use std::collections::HashMap;
use std::fmt::Write;

/// Aggregated statistics for one operation name.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSummary {
    pub name: String,
    pub kind: OpKind,
    pub calls: usize,
    pub total: f64,
    pub avg: f64,
    /// Fraction of the profiled span.
    pub share: f64,
}

/// Aggregate a timeline into per-name summaries, sorted by total time
/// (descending).
pub fn summarize(timeline: &[TimelineRecord]) -> Vec<OpSummary> {
    let mut agg: HashMap<(String, OpKind), (usize, f64)> = HashMap::new();
    let mut grand = 0.0f64;
    for r in timeline {
        let e = agg.entry((r.name.clone(), r.kind)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += r.duration;
        grand += r.duration;
    }
    let mut out: Vec<OpSummary> = agg
        .into_iter()
        .map(|((name, kind), (calls, total))| OpSummary {
            name,
            kind,
            calls,
            total,
            avg: total / calls as f64,
            share: if grand > 0.0 { total / grand } else { 0.0 },
        })
        .collect();
    // total_cmp: totals of 0.0 (zero-duration records) or NaN must not
    // panic the profiler the way partial_cmp().unwrap() would.
    out.sort_by(|a, b| b.total.total_cmp(&a.total));
    out
}

/// Serial-vs-wall accounting over a span of timeline records (typically
/// the records of one batched execution). When operations were scheduled
/// on overlapping streams, `wall` is shorter than `serial`; the
/// difference is the pipeline's hidden time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverlapStats {
    /// Sum of all operation durations (what a one-stream schedule costs).
    pub serial: f64,
    /// End-to-end span: latest completion minus earliest start.
    pub wall: f64,
}

impl OverlapStats {
    /// Time hidden by overlap (zero when nothing overlapped).
    pub fn saving(&self) -> f64 {
        (self.serial - self.wall).max(0.0)
    }

    /// Fraction of the serial cost hidden by overlap, in [0, 1).
    pub fn overlap_fraction(&self) -> f64 {
        if self.serial > 0.0 {
            self.saving() / self.serial
        } else {
            0.0
        }
    }
}

/// Compute [`OverlapStats`] for a slice of timeline records.
pub fn overlap_stats(timeline: &[TimelineRecord]) -> OverlapStats {
    if timeline.is_empty() {
        return OverlapStats::default();
    }
    let mut serial = 0.0f64;
    let mut first = f64::INFINITY;
    let mut last = f64::NEG_INFINITY;
    for r in timeline {
        serial += r.duration;
        first = first.min(r.start);
        last = last.max(r.start + r.duration);
    }
    OverlapStats {
        serial,
        wall: last - first,
    }
}

/// Render the summary as an nvprof-like table.
pub fn profile_table(timeline: &[TimelineRecord]) -> String {
    let rows = summarize(timeline);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>7}  {:>9}  {:>10}  {:>10}  {:<8}  name",
        "share", "calls", "total", "avg", "kind"
    );
    for r in &rows {
        let _ = writeln!(
            s,
            "{:>6.1}%  {:>9}  {:>9.3}ms  {:>9.3}us  {:<8}  {}",
            r.share * 100.0,
            r.calls,
            r.total * 1e3,
            r.avg * 1e6,
            format!("{:?}", r.kind),
            r.name
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::LaunchConfig;
    use crate::props::Precision;

    fn sample_device() -> Device {
        let dev = Device::v100();
        for _ in 0..3 {
            let mut k = dev
                .kernel("spread", LaunchConfig::new(Precision::Single, 128))
                .unwrap();
            let mut b = k.block();
            b.flops(1_000_000);
            b.finish();
            dev.launch_end(k);
        }
        dev.bulk_op("cufft", 1 << 20, 1 << 20, 1e6, Precision::Single);
        dev
    }

    #[test]
    fn summary_aggregates_by_name() {
        let dev = sample_device();
        let rows = summarize(&dev.timeline());
        let spread = rows.iter().find(|r| r.name == "spread").unwrap();
        assert_eq!(spread.calls, 3);
        assert!((spread.avg * 3.0 - spread.total).abs() < 1e-15);
        let shares: f64 = rows.iter().map(|r| r.share).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rows_sorted_by_total() {
        let dev = sample_device();
        let rows = summarize(&dev.timeline());
        for w in rows.windows(2) {
            assert!(w[0].total >= w[1].total);
        }
    }

    #[test]
    fn table_renders() {
        let dev = sample_device();
        let t = profile_table(&dev.timeline());
        assert!(t.contains("spread"));
        assert!(t.contains("cufft"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn empty_timeline_is_fine() {
        let rows = summarize(&[]);
        assert!(rows.is_empty());
        assert!(profile_table(&[]).lines().count() == 1);
        assert_eq!(overlap_stats(&[]), OverlapStats::default());
    }

    #[test]
    fn zero_duration_records_do_not_panic_summarize() {
        let rec = |name: &str| TimelineRecord {
            name: name.into(),
            kind: OpKind::Bulk,
            start: 0.0,
            duration: 0.0,
            breakdown: Default::default(),
        };
        // all-zero totals: grand total is 0, shares must be 0, sort must
        // not panic (regression test for partial_cmp().unwrap())
        let rows = summarize(&[rec("a"), rec("b"), rec("a")]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.total, 0.0);
            assert_eq!(r.share, 0.0);
        }
        let a = rows.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.calls, 2);
    }

    #[test]
    fn overlap_stats_single_record() {
        let one = [TimelineRecord {
            name: "solo".into(),
            kind: OpKind::Kernel,
            start: 5.0,
            duration: 2.0,
            breakdown: Default::default(),
        }];
        let s = overlap_stats(&one);
        assert!((s.serial - 2.0).abs() < 1e-12);
        assert!((s.wall - 2.0).abs() < 1e-12);
        assert_eq!(s.saving(), 0.0);
        assert_eq!(s.overlap_fraction(), 0.0);
    }

    #[test]
    fn overlap_stats_fully_overlapping_streams() {
        let rec = |start: f64, duration: f64| TimelineRecord {
            name: "op".into(),
            kind: OpKind::Memcpy,
            start,
            duration,
            breakdown: Default::default(),
        };
        // two streams issuing identical, fully concurrent work
        let s = overlap_stats(&[rec(0.0, 2.0), rec(0.0, 2.0)]);
        assert!((s.serial - 4.0).abs() < 1e-12);
        assert!((s.wall - 2.0).abs() < 1e-12);
        assert!((s.saving() - 2.0).abs() < 1e-12);
        assert!((s.overlap_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_stats_detect_hidden_time() {
        let rec = |start: f64, duration: f64| TimelineRecord {
            name: "op".into(),
            kind: OpKind::Memcpy,
            start,
            duration,
            breakdown: Default::default(),
        };
        // serial layout: no overlap
        let s = overlap_stats(&[rec(0.0, 1.0), rec(1.0, 2.0)]);
        assert!((s.serial - 3.0).abs() < 1e-12);
        assert!((s.wall - 3.0).abs() < 1e-12);
        assert_eq!(s.saving(), 0.0);
        // pipelined layout: second op starts while first runs
        let p = overlap_stats(&[rec(0.0, 2.0), rec(1.0, 2.0)]);
        assert!((p.serial - 4.0).abs() < 1e-12);
        assert!((p.wall - 3.0).abs() < 1e-12);
        assert!((p.saving() - 1.0).abs() < 1e-12);
        assert!((p.overlap_fraction() - 0.25).abs() < 1e-12);
    }
}
