//! A functional + performance simulator of a CUDA-class GPU.
//!
//! This crate is the substitution for the NVIDIA V100 the paper benchmarks
//! on (see DESIGN.md §2). Kernels execute *functionally* as host Rust over
//! buffer slices, while reporting their memory behaviour at warp/block
//! granularity; the device prices each launch with a model whose terms map
//! one-to-one onto the effects cuFINUFFT's algorithms are designed around:
//!
//! * **coalescing** — warp accesses are deduplicated into 32-byte sectors,
//!   so scattered access (unsorted GM spreading) costs up to 32x the
//!   bandwidth of sorted access (GM-sort);
//! * **atomic contention** — global atomics are histogrammed per sector
//!   and the hottest sector serializes the launch (why GM collapses on
//!   clustered points);
//! * **shared memory** — cheap per-block atomics with a 48 KiB capacity
//!   limit (why SM wins, and why it is infeasible for 3D double precision
//!   at large kernel widths — paper Remark 2);
//! * **load balance** — per-block serial costs are list-scheduled onto SM
//!   slots, so one overloaded block stretches the makespan (why the
//!   `M_sub` subproblem cap matters).
//!
//! Host-device transfers, allocations, and bulk data-parallel passes are
//! priced by bandwidth/latency models so the paper's "total" and
//! "total+mem" timings can be reconstructed.

#![forbid(unsafe_code)]

pub mod access;
pub mod access_plan;
pub mod device;
pub mod faults;
pub mod hazard;
pub mod kernel;
pub mod props;
pub mod report;
pub mod sched;
pub mod stream;

pub use access::{AccessRecord, BufId, BufferDecl, Contract, HazardMode, KernelTrace, Scope};
pub use access_plan::{
    AccessPlan, AccessTerm, DimTerm, IndexExpr, PlanBuffer, ThreadMap, MAX_THREADS_PER_BLOCK,
};
pub use device::{Device, GpuBuffer, OpKind, TimelineRecord};
pub use faults::{DeviceFault, FaultKind, FaultMode, FaultPlan, FaultSite};
pub use kernel::{BlockAcc, BlockCtx, Breakdown, Kernel, LaunchConfig, LaunchReport};
pub use props::{DeviceProps, Precision};
pub use report::{overlap_stats, profile_table, summarize, OpSummary, OverlapStats};
pub use stream::{sync_streams, EngineState, Stream, StreamOp};
// Re-export the tracing session type so downstream crates can attach a
// trace to a `Device` without naming `nufft-trace` directly, and the
// typed hazard-report vocabulary from `nufft-common` likewise.
pub use nufft_common::hazard::{
    AccessKind, AccessSite, ContractViolation, Hazard, HazardReport, KernelHazardReport,
};
pub use nufft_trace::{Lane, Trace, TraceReport};
