//! Kernel launch accounting: coalescing, cache reuse, atomic contention,
//! shared-memory traffic, and per-block serial cost.
//!
//! Kernels execute *functionally* as ordinary Rust code over buffer
//! slices; while doing so they report their memory behaviour at warp
//! granularity through [`BlockCtx`]. Traffic is tracked at two levels:
//!
//! * **L2 transactions** — each warp-wide access is deduplicated into
//!   32-byte sectors (hardware coalescing). All sectors pass through L2.
//! * **DRAM lines** — sector requests are filtered through a
//!   direct-mapped model of the 6 MB L2 at 128-byte line granularity;
//!   only misses cost DRAM bandwidth (writes/atomics pay read+writeback).
//!   This is what makes bin-sorting pay off: sorted points reuse resident
//!   lines, unsorted points miss on nearly every footprint row.
//!
//! Global atomics additionally pay (a) a device-wide op-throughput
//! ceiling and (b) a same-sector serialization penalty for the hottest
//! sector — the term that makes clustered input-driven spreading
//! collapse, exactly as the paper describes.
//!
//! At `finish()` the launch is priced as
//! `max(makespan, L2, DRAM, compute, atomic-ops, hotspot) + overhead`,
//! where makespan comes from list-scheduling per-block serial costs onto
//! the SMs (the paper's `M_sub` load-balancing story).

use crate::access::{BufId, Contract, KernelTrace, Scope};
use crate::props::{DeviceProps, Precision};
use crate::sched::makespan;

/// Launch configuration, the subset of CUDA's `<<<grid, block, shmem>>>`
/// the cost model needs (grid size is implied by the number of
/// [`Kernel::block`] calls).
#[derive(Copy, Clone, Debug)]
pub struct LaunchConfig {
    pub precision: Precision,
    pub threads_per_block: usize,
    pub shared_bytes_per_block: usize,
    /// Multiplier on the same-sector atomic serialization cost. 1.0 for
    /// native hardware atomics; larger for CAS-loop emulated atomics
    /// (e.g. CUNFFT's double-precision adds), whose retries compound
    /// under contention.
    pub cas_atomic_penalty: f64,
}

impl LaunchConfig {
    pub fn new(precision: Precision, threads_per_block: usize) -> Self {
        LaunchConfig {
            precision,
            threads_per_block,
            shared_bytes_per_block: 0,
            cas_atomic_penalty: 1.0,
        }
    }

    pub fn with_shared(mut self, bytes: usize) -> Self {
        self.shared_bytes_per_block = bytes;
        self
    }

    pub fn with_cas_penalty(mut self, penalty: f64) -> Self {
        self.cas_atomic_penalty = penalty;
        self
    }
}

/// Cost breakdown of one launch (all in seconds).
#[derive(Copy, Clone, Debug, Default)]
pub struct Breakdown {
    pub makespan: f64,
    /// L2 bandwidth term.
    pub l2: f64,
    /// DRAM bandwidth term (line misses).
    pub dram: f64,
    pub compute: f64,
    /// Same-sector atomic serialization (hottest sector).
    pub atomic_hotspot: f64,
    /// Device-wide atomic op-throughput term.
    pub atomic_ops: f64,
    pub overhead: f64,
}

/// Result of pricing a launch.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    pub name: String,
    pub duration: f64,
    pub breakdown: Breakdown,
    pub blocks: usize,
    pub flops: f64,
    pub l2_bytes: f64,
    pub dram_bytes: f64,
    pub global_atomics: u64,
    /// Atomic ops landing on the hottest 32-byte sector. `u64` so
    /// huge-M runs (billions of adds into one sector) cannot wrap.
    pub atomic_hotspot_count: u64,
}

/// Direct-mapped model of the L2 cache at line granularity.
struct LineCache {
    tags: Vec<u64>,
}

impl LineCache {
    fn new(props: &DeviceProps) -> Self {
        let slots = (props.l2_bytes / props.line_bytes).max(1);
        LineCache {
            tags: vec![u64::MAX; slots],
        }
    }

    /// Touch one line; returns `true` on miss.
    #[inline(always)]
    fn touch(&mut self, line_id: u64) -> bool {
        let slot = (line_id as usize) % self.tags.len();
        if self.tags[slot] != line_id {
            self.tags[slot] = line_id;
            true
        } else {
            false
        }
    }
}

/// An in-flight kernel launch. Create with `Device::kernel`, call
/// [`Kernel::block`] once per thread block, then price via
/// `Device::launch_end`.
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) cfg: LaunchConfig,
    props: DeviceProps,
    // device-wide accumulators
    flops: f64,
    l2_sectors: u64,
    dram_bytes: f64,
    atomics: u64,
    shared_atomics: u64,
    atomic_hist: Vec<u64>,
    elems_per_sector: usize,
    block_times: Vec<f64>,
    cache: LineCache,
    // per-block shared-memory hotspot tracking (epoch trick: no clearing)
    shared_epoch: Vec<u32>,
    shared_count: Vec<u64>,
    cur_epoch: u32,
    // shadow-memory access trace, present under HazardMode::Check
    access: Option<KernelTrace>,
    /// Host-side worker threads [`Kernel::run_blocks`] may use. Set by
    /// `Device::kernel` from the device knob; forced to 1 under hazard
    /// checking or fault injection so those paths stay strictly serial.
    pub(crate) host_threads: usize,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("blocks", &self.block_times.len())
            .finish_non_exhaustive()
    }
}

impl Kernel {
    pub(crate) fn new(name: &str, cfg: LaunchConfig, props: DeviceProps) -> Self {
        let shared_words = cfg.shared_bytes_per_block / 4;
        let cache = LineCache::new(&props);
        Kernel {
            name: name.to_string(),
            cfg,
            props,
            flops: 0.0,
            l2_sectors: 0,
            dram_bytes: 0.0,
            atomics: 0,
            shared_atomics: 0,
            atomic_hist: Vec::new(),
            elems_per_sector: 1,
            block_times: Vec::new(),
            cache,
            shared_epoch: vec![0; shared_words],
            shared_count: vec![0; shared_words],
            cur_epoch: 0,
            access: None,
            host_threads: 1,
        }
    }

    /// Attach a shadow-memory access trace to this launch (done by the
    /// device under [`crate::access::HazardMode::Check`]). Instrumented
    /// kernels then log accesses through the `BlockCtx::trace_*` hooks.
    pub fn enable_access_trace(&mut self) {
        self.access = Some(KernelTrace::new(&self.name));
    }

    /// Whether this launch carries an access trace. Instrumentation
    /// sites can use this to skip building address streams when off.
    pub fn access_traced(&self) -> bool {
        self.access.is_some()
    }

    /// Register a named buffer for access tracing. Returns a handle the
    /// `BlockCtx::trace_*` hooks take; a no-op placeholder when tracing
    /// is off.
    pub fn trace_buffer(&mut self, name: &str, scope: Scope, elem_bytes: usize) -> BufId {
        match &mut self.access {
            Some(t) => t.buffer(name, scope, elem_bytes),
            None => BufId(u16::MAX),
        }
    }

    /// Declare the buffer that receives global atomics so contention can
    /// be tracked per 32-byte sector. `elem_bytes` is the size of one
    /// logical element (e.g. 8 for a complex f32).
    pub fn atomic_region(&mut self, n_elems: usize, elem_bytes: usize) {
        self.elems_per_sector = (self.props.sector_bytes / elem_bytes).max(1);
        let sectors = n_elems.div_ceil(self.elems_per_sector).max(1);
        self.atomic_hist = vec![0u64; sectors];
    }

    /// Begin accounting for one thread block.
    pub fn block(&mut self) -> BlockCtx<'_> {
        self.cur_epoch = self.cur_epoch.wrapping_add(1);
        if self.cur_epoch == 0 {
            self.shared_epoch.iter_mut().for_each(|e| *e = 0);
            self.cur_epoch = 1;
        }
        let block_id = self.block_times.len() as u32;
        BlockCtx {
            block_id,
            k: self,
            flops: 0.0,
            l2_sectors: 0,
            dram_bytes: 0.0,
            atomics: 0,
            shared_atomics: 0,
            shared_ops: 0,
            shared_hotspot: 0,
        }
    }

    /// Price the launch. Called by `Device::launch_end`. When an access
    /// trace is attached, returns it alongside the launch's declared
    /// contract (atomic counts from the perf accumulators, shared bytes
    /// from the launch config) for the hazard checker.
    pub(crate) fn price(self) -> (LaunchReport, Option<(KernelTrace, Contract)>) {
        let p = &self.props;
        let prec = self.cfg.precision;
        let compute = self.flops / p.flops(prec);
        let l2_bytes = (self.l2_sectors * p.sector_bytes as u64) as f64;
        let l2 = l2_bytes / p.l2_bw;
        let dram = self.dram_bytes / p.dram_bw;
        let hot = self.atomic_hist.iter().copied().max().unwrap_or(0);
        let atomic_hotspot = hot as f64 * p.t_global_atomic_same * self.cfg.cas_atomic_penalty;
        let atomic_ops = self.atomics as f64 / p.l2_atomic_rate;
        let ms = makespan(&self.block_times, p.sm_count);
        let overhead = p.t_launch;
        let duration = ms
            .max(l2)
            .max(dram)
            .max(compute)
            .max(atomic_hotspot)
            .max(atomic_ops)
            + overhead;
        let traced = self.access.map(|t| {
            let contract = Contract {
                global_atomics: Some(self.atomics),
                shared_atomics: Some(self.shared_atomics),
                shared_bytes: Some(self.cfg.shared_bytes_per_block),
            };
            (t, contract)
        });
        let report = LaunchReport {
            name: self.name,
            duration,
            breakdown: Breakdown {
                makespan: ms,
                l2,
                dram,
                compute,
                atomic_hotspot,
                atomic_ops,
                overhead,
            },
            blocks: self.block_times.len(),
            flops: self.flops,
            l2_bytes,
            dram_bytes: self.dram_bytes,
            global_atomics: self.atomics,
            atomic_hotspot_count: hot,
        };
        (report, traced)
    }

    /// Execute `n_blocks` independent thread blocks, possibly on a bounded
    /// host thread pool, with results bit-for-bit identical to running
    /// them serially in block-id order.
    ///
    /// `body(block_id, acc)` does the block's functional work and reports
    /// its memory behaviour through the [`BlockAcc`] — a per-block private
    /// accumulator that *logs* cache-order-sensitive events (DRAM line
    /// touches, traced accesses) instead of applying them. The log is
    /// replayed through the shared L2 line-cache model strictly in
    /// block-id order at merge time, so per-block DRAM charges (and hence
    /// block timings and the launch price) are independent of host
    /// scheduling. `apply(block_id, r)` receives each block's return value
    /// in block-id order — use it to fold grid deltas so floating-point
    /// accumulation order matches the serial path exactly.
    ///
    /// Call after [`Kernel::atomic_region`] / [`Kernel::trace_buffer`];
    /// the accumulator snapshots those declarations. Runs serially when
    /// `host_threads <= 1` or when an access trace is attached (hazard
    /// checking), via the same accumulate-then-merge code path.
    pub fn run_blocks<R, F, G>(&mut self, n_blocks: usize, body: F, mut apply: G)
    where
        R: Send,
        F: Fn(usize, &mut BlockAcc<'_>) -> R + Sync,
        G: FnMut(usize, R),
    {
        let params = AccParams {
            sector_bytes: self.props.sector_bytes,
            line_bytes: self.props.line_bytes,
            elems_per_sector: self.elems_per_sector,
            hist_len: self.atomic_hist.len(),
            shared_words: self.shared_epoch.len(),
            traced: self.access.is_some(),
        };
        let threads = if params.traced {
            1
        } else {
            self.host_threads.max(1).min(n_blocks.max(1))
        };
        if threads <= 1 {
            let mut scratch = WorkerScratch::new(&params);
            for bid in 0..n_blocks {
                let mut acc = BlockAcc::begin(params, &mut scratch);
                let r = body(bid, &mut acc);
                let out = acc.into_out();
                self.merge_block(out);
                apply(bid, r);
            }
            for (dst, src) in self.atomic_hist.iter_mut().zip(scratch.hist.iter()) {
                *dst += src;
            }
            return;
        }
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, BlockOut, R)>();
        let next_ref = &next;
        let body_ref = &body;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let tx = tx.clone();
                handles.push(s.spawn(move || {
                    let mut scratch = WorkerScratch::new(&params);
                    loop {
                        let bid = next_ref.fetch_add(1, Ordering::Relaxed);
                        if bid >= n_blocks {
                            break;
                        }
                        let mut acc = BlockAcc::begin(params, &mut scratch);
                        let r = body_ref(bid, &mut acc);
                        let out = acc.into_out();
                        if tx.send((bid, out, r)).is_err() {
                            break;
                        }
                    }
                    scratch.hist
                }));
            }
            drop(tx);
            // Merge strictly in block-id order through a reorder buffer.
            let mut pending: std::collections::HashMap<usize, (BlockOut, R)> =
                std::collections::HashMap::new();
            let mut want = 0usize;
            while want < n_blocks {
                let Ok((bid, out, r)) = rx.recv() else { break };
                pending.insert(bid, (out, r));
                while let Some((out, r)) = pending.remove(&want) {
                    self.merge_block(out);
                    apply(want, r);
                    want += 1;
                }
            }
            for h in handles {
                match h.join() {
                    // Per-worker histograms are merged additively after the
                    // ordered pass: u64 adds commute, so the result matches
                    // the serial tally exactly.
                    Ok(hist) => {
                        for (dst, src) in self.atomic_hist.iter_mut().zip(hist.iter()) {
                            *dst += src;
                        }
                    }
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
            assert_eq!(want, n_blocks, "parallel block execution lost blocks");
        });
    }

    /// Fold one block's private accumulator into the launch: replay its
    /// DRAM log through the shared line cache, replay traced accesses,
    /// price the block with the same formulas as [`BlockCtx::finish`],
    /// and accumulate launch-wide counters.
    fn merge_block(&mut self, out: BlockOut) {
        let lb = self.props.line_bytes as f64;
        let mut dram_bytes = 0.0f64;
        for op in &out.dram_log {
            match *op {
                DramOp::Line(line) => {
                    if self.cache.touch(line) {
                        dram_bytes += lb;
                    }
                }
                DramOp::Span { first, last, write } => {
                    let factor = if write { 2.0 } else { 1.0 };
                    for line in first..=last {
                        if self.cache.touch(line) {
                            dram_bytes += lb * factor;
                        }
                    }
                }
                DramOp::Flat(bytes) => dram_bytes += bytes,
            }
        }
        let block_id = self.block_times.len() as u32;
        if let Some(t) = &mut self.access {
            for op in &out.trace_log {
                match *op {
                    TraceOp::Read(buf, thread, elem) => t.read(buf, block_id, thread, elem),
                    TraceOp::Write(buf, thread, elem) => t.write(buf, block_id, thread, elem),
                    TraceOp::Atomic(buf, thread, elem) => t.atomic(buf, block_id, thread, elem),
                    TraceOp::Barrier => t.barrier(block_id),
                }
            }
        }
        let p = &self.props;
        let prec = self.cfg.precision;
        let sm = p.sm_count as f64;
        let t_compute = out.flops / p.sm_flops(prec);
        let t_l2 = (out.l2_sectors * p.sector_bytes as u64) as f64 / (p.l2_bw / sm);
        let t_dram = dram_bytes / (p.dram_bw / sm);
        let t_atomic = out.atomics as f64 / (p.l2_atomic_rate / sm);
        let t_shared = out.shared_ops as f64 / p.shared_ops_rate_per_sm
            + out.shared_hotspot as f64 * p.t_shared_atomic_same;
        let t_block = t_compute.max(t_l2).max(t_dram).max(t_atomic).max(t_shared);
        self.flops += out.flops;
        self.l2_sectors += out.l2_sectors;
        self.dram_bytes += dram_bytes;
        self.atomics += out.atomics;
        self.shared_atomics += out.shared_atomics;
        self.block_times.push(t_block);
    }
}

/// Truncating division that strength-reduces to a shift when the
/// divisor is a power of two (the sector/line/element sizes always
/// are in practice, and a 64-bit `idiv` in the per-warp accounting
/// loops is a measurable fraction of simulated-launch wall time).
#[inline(always)]
fn div_fast(a: usize, d: usize) -> usize {
    if d.is_power_of_two() {
        a >> d.trailing_zeros()
    } else {
        a / d
    }
}

/// Count distinct 32-byte sectors among up to 32 lane addresses
/// (hardware coalescing within one warp instruction).
fn dedup_sectors(sector_bytes: usize, byte_addrs: &[usize]) -> u64 {
    debug_assert!(byte_addrs.len() <= 32, "a warp has at most 32 lanes");
    let mut ids = [usize::MAX; 32];
    let n = byte_addrs.len().min(32);
    if sector_bytes.is_power_of_two() {
        let sh = sector_bytes.trailing_zeros();
        for (slot, &a) in ids.iter_mut().zip(byte_addrs.iter()) {
            *slot = a >> sh;
        }
    } else {
        for (slot, &a) in ids.iter_mut().zip(byte_addrs.iter()) {
            *slot = a / sector_bytes;
        }
    }
    let ids = &mut ids[..n];
    ids.sort_unstable();
    let mut distinct = 0u64;
    let mut prev = usize::MAX;
    for &id in ids.iter() {
        if id != prev {
            distinct += 1;
            prev = id;
        }
    }
    distinct
}

/// One DRAM-side event logged by a [`BlockAcc`], replayed through the
/// shared L2 line cache in block-id order at merge time.
enum DramOp {
    /// One lane's line touch from [`BlockAcc::warp_access`] (read).
    Line(u64),
    /// Contiguous line range from [`BlockAcc::dram_span`] /
    /// [`BlockAcc::stream_span`]; writes pay read+writeback on miss.
    Span { first: u64, last: u64, write: bool },
    /// Unconditional DRAM bytes from [`BlockAcc::stream_bytes`]
    /// (compulsory misses; the line cache is not consulted).
    Flat(f64),
}

/// One shadow-memory access logged by a [`BlockAcc`], replayed into the
/// launch's [`KernelTrace`] in block-id order at merge time.
enum TraceOp {
    Read(BufId, u32, u64),
    Write(BufId, u32, u64),
    Atomic(BufId, u32, u64),
    Barrier,
}

/// Snapshot of the per-launch declarations a [`BlockAcc`] needs, taken
/// when [`Kernel::run_blocks`] starts (so it must be called after
/// `atomic_region`).
#[derive(Copy, Clone)]
struct AccParams {
    sector_bytes: usize,
    line_bytes: usize,
    elems_per_sector: usize,
    hist_len: usize,
    shared_words: usize,
    traced: bool,
}

/// Per-worker reusable scratch: a private copy of the atomic-sector
/// histogram (zeroed once per worker, not per block — merged additively
/// at the end) and the shared-memory hotspot epoch arrays.
struct WorkerScratch {
    hist: Vec<u64>,
    shared_epoch: Vec<u32>,
    shared_count: Vec<u64>,
    cur_epoch: u32,
    /// Open-addressing probe table for [`Self::count_distinct`]: 64
    /// slots for at most 32 warp-lane sector ids, epoch-stamped so it
    /// never needs clearing between calls.
    dedup_ids: [usize; 64],
    dedup_epoch: [u64; 64],
    dedup_clock: u64,
}

impl WorkerScratch {
    fn new(p: &AccParams) -> Self {
        WorkerScratch {
            hist: vec![0u64; p.hist_len],
            shared_epoch: vec![0u32; p.shared_words],
            shared_count: vec![0u64; p.shared_words],
            cur_epoch: 0,
            dedup_ids: [0; 64],
            dedup_epoch: [0; 64],
            dedup_clock: 0,
        }
    }

    /// Exact count of distinct ids (≤ 32 of them) via the epoch-stamped
    /// probe table — same result as sort+dedup ([`dedup_sectors`]), but
    /// without the per-warp-instruction sort that dominated simulated
    /// spread launches on the host profile. Linear probing in a table
    /// twice the maximum input size always terminates.
    #[inline]
    fn count_distinct(&mut self, ids: impl Iterator<Item = usize>) -> u64 {
        self.dedup_clock += 1;
        let ep = self.dedup_clock;
        let mut distinct = 0u64;
        for id in ids {
            let mut slot = id & 63;
            loop {
                if self.dedup_epoch[slot] != ep {
                    self.dedup_epoch[slot] = ep;
                    self.dedup_ids[slot] = id;
                    distinct += 1;
                    break;
                }
                if self.dedup_ids[slot] == id {
                    break;
                }
                slot = (slot + 1) & 63;
            }
        }
        distinct
    }
}

/// Per-block private accumulator used by [`Kernel::run_blocks`]. Mirrors
/// the [`BlockCtx`] reporting API, but instead of mutating launch-wide
/// state it counts locally and logs order-sensitive events (DRAM line
/// touches, traced accesses) for deterministic replay at merge time.
pub struct BlockAcc<'w> {
    params: AccParams,
    flops: f64,
    l2_sectors: u64,
    atomics: u64,
    shared_atomics: u64,
    shared_ops: u64,
    shared_hotspot: u64,
    dram_log: Vec<DramOp>,
    trace_log: Vec<TraceOp>,
    scratch: &'w mut WorkerScratch,
}

/// A finished block's counters and logs, sent from the worker that ran
/// it to the merging thread.
struct BlockOut {
    flops: f64,
    l2_sectors: u64,
    atomics: u64,
    shared_atomics: u64,
    shared_ops: u64,
    shared_hotspot: u64,
    dram_log: Vec<DramOp>,
    trace_log: Vec<TraceOp>,
}

impl<'w> BlockAcc<'w> {
    fn begin(params: AccParams, scratch: &'w mut WorkerScratch) -> Self {
        scratch.cur_epoch = scratch.cur_epoch.wrapping_add(1);
        if scratch.cur_epoch == 0 {
            scratch.shared_epoch.iter_mut().for_each(|e| *e = 0);
            scratch.cur_epoch = 1;
        }
        BlockAcc {
            params,
            flops: 0.0,
            l2_sectors: 0,
            atomics: 0,
            shared_atomics: 0,
            shared_ops: 0,
            shared_hotspot: 0,
            dram_log: Vec::new(),
            trace_log: Vec::new(),
            scratch,
        }
    }

    fn into_out(self) -> BlockOut {
        BlockOut {
            flops: self.flops,
            l2_sectors: self.l2_sectors,
            atomics: self.atomics,
            shared_atomics: self.shared_atomics,
            shared_ops: self.shared_ops,
            shared_hotspot: self.shared_hotspot,
            dram_log: self.dram_log,
            trace_log: self.trace_log,
        }
    }

    /// Report `n` floating-point operations (in the working precision).
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.flops += n as f64;
    }

    /// See [`BlockCtx::l2_access`].
    pub fn l2_access(&mut self, byte_addrs: &[usize]) {
        self.l2_sectors += self.distinct_sectors(byte_addrs);
    }

    /// [`dedup_sectors`] semantics through the worker's probe table
    /// (identical count, no per-call sort).
    #[inline]
    fn distinct_sectors(&mut self, byte_addrs: &[usize]) -> u64 {
        debug_assert!(byte_addrs.len() <= 32, "a warp has at most 32 lanes");
        let sb = self.params.sector_bytes;
        if sb.is_power_of_two() {
            let sh = sb.trailing_zeros();
            self.scratch
                .count_distinct(byte_addrs.iter().map(|&a| a >> sh))
        } else {
            self.scratch
                .count_distinct(byte_addrs.iter().map(|&a| a / sb))
        }
    }

    /// See [`BlockCtx::l2_sector_count`].
    #[inline]
    pub fn l2_sector_count(&mut self, n: u64) {
        self.l2_sectors += n;
    }

    /// See [`BlockCtx::warp_access`]. Lane line touches are logged for
    /// replay through the shared line cache at merge time.
    pub fn warp_access(&mut self, byte_addrs: &[usize]) {
        self.l2_sectors += self.distinct_sectors(byte_addrs);
        let lb = self.params.line_bytes;
        for &a in byte_addrs {
            self.dram_log.push(DramOp::Line((a / lb) as u64));
        }
    }

    /// See [`BlockCtx::stream_span`].
    pub fn stream_span(&mut self, start_byte: usize, len_bytes: usize, write: bool) {
        let sb = self.params.sector_bytes;
        self.l2_sectors += len_bytes.div_ceil(sb) as u64;
        self.dram_span(start_byte, len_bytes, write);
    }

    /// See [`BlockCtx::dram_span`].
    pub fn dram_span(&mut self, start_byte: usize, len_bytes: usize, write: bool) {
        if len_bytes == 0 {
            return;
        }
        let lb = self.params.line_bytes;
        let first = div_fast(start_byte, lb) as u64;
        let last = div_fast(start_byte + len_bytes - 1, lb) as u64;
        self.dram_log.push(DramOp::Span { first, last, write });
    }

    /// See [`BlockCtx::stream_bytes`].
    #[inline]
    pub fn stream_bytes(&mut self, bytes: usize) {
        let sb = self.params.sector_bytes;
        self.l2_sectors += bytes.div_ceil(sb) as u64;
        self.dram_log.push(DramOp::Flat(bytes as f64));
    }

    /// See [`BlockCtx::global_atomic`].
    #[inline]
    pub fn global_atomic(&mut self, elem_idx: usize) {
        self.global_atomic_n(elem_idx, 1);
    }

    /// See [`BlockCtx::global_atomic_n`]. Tallies land in the worker's
    /// private histogram, merged additively when the launch completes.
    #[inline]
    pub fn global_atomic_n(&mut self, elem_idx: usize, n: u64) {
        self.atomics += n;
        if !self.scratch.hist.is_empty() {
            let s = div_fast(elem_idx, self.params.elems_per_sector);
            if let Some(c) = self.scratch.hist.get_mut(s) {
                *c += n;
            }
        }
    }

    /// See [`BlockCtx::global_atomic_run`].
    pub fn global_atomic_run(&mut self, start_elem: usize, len: usize, n_per_elem: u64) {
        if len == 0 {
            return;
        }
        self.atomics += len as u64 * n_per_elem;
        if !self.scratch.hist.is_empty() {
            let eps = self.params.elems_per_sector;
            let first = div_fast(start_elem, eps);
            let last = div_fast(start_elem + len - 1, eps);
            for s in first..=last {
                let lo = start_elem.max(s * eps);
                let hi = (start_elem + len).min(s * eps + eps);
                if let Some(c) = self.scratch.hist.get_mut(s) {
                    *c += (hi - lo) as u64 * n_per_elem;
                }
            }
        }
    }

    /// See [`BlockCtx::shared_atomic`].
    #[inline]
    pub fn shared_atomic(&mut self, word_idx: usize) {
        self.shared_ops += 1;
        self.shared_atomics += 1;
        let sc = &mut *self.scratch;
        if word_idx < sc.shared_epoch.len() {
            if sc.shared_epoch[word_idx] != sc.cur_epoch {
                sc.shared_epoch[word_idx] = sc.cur_epoch;
                sc.shared_count[word_idx] = 1;
            } else {
                sc.shared_count[word_idx] += 1;
            }
            self.shared_hotspot = self.shared_hotspot.max(sc.shared_count[word_idx]);
        }
    }

    /// See [`BlockCtx::shared_ops`].
    #[inline]
    pub fn shared_ops(&mut self, n: u64) {
        self.shared_ops += n;
    }

    /// See [`BlockCtx::shared_reads`].
    #[inline]
    pub fn shared_reads(&mut self, n: u64) {
        self.shared_ops += n / 4;
    }

    /// See [`BlockCtx::trace_read`]. Logged for ordered replay.
    #[inline]
    pub fn trace_read(&mut self, buf: BufId, thread: u32, elem: u64) {
        if self.params.traced {
            self.trace_log.push(TraceOp::Read(buf, thread, elem));
        }
    }

    /// See [`BlockCtx::trace_write`].
    #[inline]
    pub fn trace_write(&mut self, buf: BufId, thread: u32, elem: u64) {
        if self.params.traced {
            self.trace_log.push(TraceOp::Write(buf, thread, elem));
        }
    }

    /// See [`BlockCtx::trace_atomic`].
    #[inline]
    pub fn trace_atomic(&mut self, buf: BufId, thread: u32, elem: u64) {
        if self.params.traced {
            self.trace_log.push(TraceOp::Atomic(buf, thread, elem));
        }
    }

    /// See [`BlockCtx::barrier`].
    #[inline]
    pub fn barrier(&mut self) {
        if self.params.traced {
            self.trace_log.push(TraceOp::Barrier);
        }
    }

    /// Whether this launch carries an access trace.
    #[inline]
    pub fn access_traced(&self) -> bool {
        self.params.traced
    }
}

/// Accounting context for one thread block. Obtain via [`Kernel::block`],
/// report the block's work, then call [`BlockCtx::finish`].
pub struct BlockCtx<'a> {
    k: &'a mut Kernel,
    /// Sequential id of this block within the launch (used as the block
    /// coordinate of traced accesses).
    block_id: u32,
    flops: f64,
    l2_sectors: u64,
    dram_bytes: f64,
    atomics: u64,
    shared_atomics: u64,
    shared_ops: u64,
    shared_hotspot: u64,
}

impl BlockCtx<'_> {
    /// Report `n` floating-point operations (in the working precision).
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.flops += n as f64;
    }

    /// Count distinct 32-byte sectors among up to 32 lane addresses
    /// (hardware coalescing within one warp instruction).
    fn dedup_sectors(&self, byte_addrs: &[usize]) -> u64 {
        dedup_sectors(self.k.props.sector_bytes, byte_addrs)
    }

    /// One warp-wide access whose traffic stays at L2 level; cache reuse
    /// at DRAM level must be reported separately via [`Self::dram_span`].
    /// Used for the grid accesses of spread/interp inner loops, whose
    /// footprint rows are reported to the line cache once per row.
    pub fn l2_access(&mut self, byte_addrs: &[usize]) {
        self.l2_sectors += self.dedup_sectors(byte_addrs);
    }

    /// Directly add `n` L2 sector transactions. Used when the caller has
    /// already deduplicated a larger access set (e.g. read-only gathers
    /// filtered through the per-SM L1, which atomics bypass but loads
    /// enjoy: a warp's whole footprint counts each sector once).
    #[inline]
    pub fn l2_sector_count(&mut self, n: u64) {
        self.l2_sectors += n;
    }

    /// One warp-wide access including its DRAM-side line traffic (each
    /// lane's line filtered through the L2 model). Use for scattered
    /// gathers such as reading point data through a sort permutation.
    pub fn warp_access(&mut self, byte_addrs: &[usize]) {
        self.l2_sectors += self.dedup_sectors(byte_addrs);
        let lb = self.k.props.line_bytes;
        for &a in byte_addrs {
            if self.k.cache.touch((a / lb) as u64) {
                self.dram_bytes += lb as f64;
            }
        }
    }

    /// A contiguous byte span touched by the block (streaming access,
    /// e.g. coalesced loads of consecutive point data): full L2 traffic
    /// plus line-cache-filtered DRAM traffic.
    pub fn stream_span(&mut self, start_byte: usize, len_bytes: usize, write: bool) {
        let sb = self.k.props.sector_bytes;
        self.l2_sectors += len_bytes.div_ceil(sb) as u64;
        self.dram_span(start_byte, len_bytes, write);
    }

    /// Report a contiguous byte span to the DRAM line cache only (no L2
    /// traffic; use when the L2-level cost was already counted via
    /// [`Self::l2_access`]). Writes pay read+writeback on miss.
    pub fn dram_span(&mut self, start_byte: usize, len_bytes: usize, write: bool) {
        if len_bytes == 0 {
            return;
        }
        let lb = self.k.props.line_bytes;
        let first = div_fast(start_byte, lb) as u64;
        let last = div_fast(start_byte + len_bytes - 1, lb) as u64;
        let factor = if write { 2.0 } else { 1.0 };
        for line in first..=last {
            if self.k.cache.touch(line) {
                self.dram_bytes += lb as f64 * factor;
            }
        }
    }

    /// Legacy helper: contiguous streaming traffic with no base address
    /// (assumed compulsory misses).
    #[inline]
    pub fn stream_bytes(&mut self, bytes: usize) {
        let sb = self.k.props.sector_bytes;
        self.l2_sectors += bytes.div_ceil(sb) as u64;
        self.dram_bytes += bytes as f64;
    }

    /// One global atomic op landing on logical element `elem_idx` of the
    /// declared atomic region. Pays the op-throughput term and feeds the
    /// per-sector contention histogram. Its memory traffic must be
    /// reported separately (`l2_access` + `dram_span`).
    #[inline]
    pub fn global_atomic(&mut self, elem_idx: usize) {
        self.global_atomic_n(elem_idx, 1);
    }

    /// `n` global atomic ops landing on the same logical element. Bulk
    /// form so synthetic huge-count tests (and batched accounting) need
    /// not loop per op; counters are `u64` throughout, so multi-billion
    /// tallies do not wrap.
    #[inline]
    pub fn global_atomic_n(&mut self, elem_idx: usize, n: u64) {
        self.atomics += n;
        if !self.k.atomic_hist.is_empty() {
            let s = div_fast(elem_idx, self.k.elems_per_sector);
            if let Some(c) = self.k.atomic_hist.get_mut(s) {
                *c += n;
            }
        }
    }

    /// `n_per_elem` atomic ops on each of `len` consecutive elements —
    /// one call per contiguous footprint row instead of one per cell.
    /// Totals (op count and per-sector histogram) are exactly what
    /// per-element [`Self::global_atomic_n`] calls would produce; the
    /// batching only removes per-cell call overhead from the simulated
    /// spread hot loop.
    pub fn global_atomic_run(&mut self, start_elem: usize, len: usize, n_per_elem: u64) {
        if len == 0 {
            return;
        }
        self.atomics += len as u64 * n_per_elem;
        if !self.k.atomic_hist.is_empty() {
            let eps = self.k.elems_per_sector;
            let first = div_fast(start_elem, eps);
            let last = div_fast(start_elem + len - 1, eps);
            for s in first..=last {
                let lo = start_elem.max(s * eps);
                let hi = (start_elem + len).min(s * eps + eps);
                if let Some(c) = self.k.atomic_hist.get_mut(s) {
                    *c += (hi - lo) as u64 * n_per_elem;
                }
            }
        }
    }

    /// One shared-memory atomic add to 4-byte word `word_idx` of this
    /// block's shared allocation.
    #[inline]
    pub fn shared_atomic(&mut self, word_idx: usize) {
        self.shared_ops += 1;
        self.shared_atomics += 1;
        let k = &mut *self.k;
        if word_idx < k.shared_epoch.len() {
            if k.shared_epoch[word_idx] != k.cur_epoch {
                k.shared_epoch[word_idx] = k.cur_epoch;
                k.shared_count[word_idx] = 1;
            } else {
                k.shared_count[word_idx] += 1;
            }
            self.shared_hotspot = self.shared_hotspot.max(k.shared_count[word_idx]);
        }
    }

    /// Plain (non-atomic) shared-memory operations.
    #[inline]
    pub fn shared_ops(&mut self, n: u64) {
        self.shared_ops += n;
    }

    /// Shared-memory reads: conflict-free loads sustain ~4x the
    /// read-modify-write rate.
    #[inline]
    pub fn shared_reads(&mut self, n: u64) {
        self.shared_ops += n / 4;
    }

    /// Log a traced read on `buf` by `thread` of this block. No-op when
    /// the launch carries no access trace.
    #[inline]
    pub fn trace_read(&mut self, buf: BufId, thread: u32, elem: u64) {
        if let Some(t) = &mut self.k.access {
            t.read(buf, self.block_id, thread, elem);
        }
    }

    /// Log a traced plain write on `buf` by `thread` of this block.
    #[inline]
    pub fn trace_write(&mut self, buf: BufId, thread: u32, elem: u64) {
        if let Some(t) = &mut self.k.access {
            t.write(buf, self.block_id, thread, elem);
        }
    }

    /// Log a traced atomic on `buf` by `thread` of this block.
    #[inline]
    pub fn trace_atomic(&mut self, buf: BufId, thread: u32, elem: u64) {
        if let Some(t) = &mut self.k.access {
            t.atomic(buf, self.block_id, thread, elem);
        }
    }

    /// Model `__syncthreads` for this block: orders all accesses logged
    /// before it against all logged after it. (Pure synchronization; no
    /// cost is charged, matching a contention-free barrier.)
    #[inline]
    pub fn barrier(&mut self) {
        if let Some(t) = &mut self.k.access {
            t.barrier(self.block_id);
        }
    }

    /// Whether this launch carries an access trace (see
    /// [`Kernel::access_traced`]).
    #[inline]
    pub fn access_traced(&self) -> bool {
        self.k.access.is_some()
    }

    /// Close the block: convert its counters into a serial cost.
    pub fn finish(self) {
        let p = &self.k.props;
        let prec = self.k.cfg.precision;
        let sm = p.sm_count as f64;
        let t_compute = self.flops / p.sm_flops(prec);
        let t_l2 = (self.l2_sectors * p.sector_bytes as u64) as f64 / (p.l2_bw / sm);
        let t_dram = self.dram_bytes / (p.dram_bw / sm);
        let t_atomic = self.atomics as f64 / (p.l2_atomic_rate / sm);
        let t_shared = self.shared_ops as f64 / p.shared_ops_rate_per_sm
            + self.shared_hotspot as f64 * p.t_shared_atomic_same;
        let t_block = t_compute.max(t_l2).max(t_dram).max(t_atomic).max(t_shared);
        self.k.flops += self.flops;
        self.k.l2_sectors += self.l2_sectors;
        self.k.dram_bytes += self.dram_bytes;
        self.k.atomics += self.atomics;
        self.k.shared_atomics += self.shared_atomics;
        self.k.block_times.push(t_block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(cfg: LaunchConfig) -> Kernel {
        Kernel::new("test", cfg, DeviceProps::v100())
    }

    #[test]
    fn coalesced_warp_is_few_sectors() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        // 32 lanes reading 32 consecutive f32s: 128 B = 4 sectors
        let addrs: Vec<usize> = (0..32).map(|i| i * 4).collect();
        b.l2_access(&addrs);
        b.finish();
        assert_eq!(k.l2_sectors, 4);
    }

    #[test]
    fn scattered_warp_is_many_sectors() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        let addrs: Vec<usize> = (0..32).map(|i| i * 4096).collect();
        b.l2_access(&addrs);
        b.finish();
        assert_eq!(k.l2_sectors, 32);
    }

    #[test]
    fn line_cache_rewards_reuse() {
        let props = DeviceProps::v100();
        // repeatedly touching the same small region: only first touch
        // costs DRAM
        let mut k = Kernel::new(
            "r",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        let mut b = k.block();
        for _ in 0..100 {
            b.dram_span(0, 4096, false);
        }
        b.finish();
        assert_eq!(k.dram_bytes, 4096.0f64.div_euclid(128.0) * 128.0);
        // scattered touches each cost a full line
        let mut k2 = Kernel::new("s", LaunchConfig::new(Precision::Single, 128), props);
        let mut b = k2.block();
        for i in 0..100usize {
            b.dram_span(i * 1_000_000, 4, false);
        }
        b.finish();
        assert_eq!(k2.dram_bytes, 100.0 * 128.0);
    }

    #[test]
    fn writes_pay_read_plus_writeback() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        b.dram_span(0, 128, true);
        b.finish();
        assert_eq!(k.dram_bytes, 256.0);
    }

    #[test]
    fn batched_atomic_run_matches_per_element_accounting() {
        // `global_atomic_run` must be pure call-overhead batching: the
        // op count and per-sector histogram have to land exactly where
        // per-element `global_atomic_n` calls would put them, including
        // runs that straddle sector boundaries.
        let runs: [(usize, usize); 4] = [(3, 5), (100, 2), (1021, 3), (7, 0)];
        let mut ka = mk(LaunchConfig::new(Precision::Double, 128));
        ka.atomic_region(1024, 16);
        ka.run_blocks(
            1,
            |_, b| {
                for &(start, len) in &runs {
                    for e in start..start + len {
                        b.global_atomic_n(e, 2);
                    }
                }
            },
            |_, ()| {},
        );
        let mut kb = mk(LaunchConfig::new(Precision::Double, 128));
        kb.atomic_region(1024, 16);
        kb.run_blocks(
            1,
            |_, b| {
                for &(start, len) in &runs {
                    b.global_atomic_run(start, len, 2);
                }
            },
            |_, ()| {},
        );
        assert_eq!(ka.atomics, kb.atomics);
        assert_eq!(ka.atomic_hist, kb.atomic_hist);
    }

    #[test]
    fn probe_table_dedup_matches_sort_dedup() {
        // The epoch-stamped probe table behind `BlockAcc::l2_access`
        // must count exactly what sort+dedup counts, including inputs
        // engineered to collide in its 64-slot table.
        let cases: Vec<Vec<usize>> = vec![
            vec![0; 32],                                 // one sector, 32 dups
            (0..32).map(|i| i * 64).collect(),           // all hash to slot 0
            (0..32).map(|i| i * 64 + (i & 1)).collect(), // collide + neighbours
            vec![63, 127, 191, 63, 127, 5, 5, 64, 0],    // mixed dups
            (0..32).rev().collect(),                     // descending
        ];
        for ids in cases {
            let addrs: Vec<usize> = ids.iter().map(|&i| i * 32).collect();
            let reference = dedup_sectors(32, &addrs);
            let mut k = mk(LaunchConfig::new(Precision::Single, 128));
            k.run_blocks(1, |_, b| b.l2_access(&addrs), |_, ()| {});
            assert_eq!(k.l2_sectors, reference, "ids {ids:?}");
        }
    }

    #[test]
    fn atomic_hotspot_tracks_worst_sector() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        k.atomic_region(1024, 8);
        let mut b = k.block();
        for _ in 0..100 {
            b.global_atomic(5);
        }
        b.global_atomic(900);
        b.finish();
        let r = k.price().0;
        assert_eq!(r.global_atomics, 101);
        assert_eq!(r.atomic_hotspot_count, 100);
    }

    #[test]
    fn hotspot_serialization_dominates_when_contended() {
        let props = DeviceProps::v100();
        let mut k = Kernel::new(
            "hot",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        k.atomic_region(16, 8);
        let mut b = k.block();
        let n = 1_000_000u32;
        for _ in 0..n {
            b.global_atomic(0);
        }
        b.finish();
        let r = k.price().0;
        let expect = n as f64 * props.t_global_atomic_same;
        assert!(r.breakdown.atomic_hotspot >= expect * 0.99);
        assert!(r.duration >= expect);
    }

    #[test]
    fn cas_penalty_multiplies_contention() {
        let props = DeviceProps::v100();
        let run = |penalty: f64| {
            let cfg = LaunchConfig::new(Precision::Double, 128).with_cas_penalty(penalty);
            let mut k = Kernel::new("c", cfg, props.clone());
            k.atomic_region(16, 16);
            let mut b = k.block();
            for _ in 0..10_000 {
                b.global_atomic(0);
            }
            b.finish();
            k.price().0.breakdown.atomic_hotspot
        };
        assert!((run(16.0) / run(1.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn shared_atomics_are_much_cheaper_than_global_hotspot() {
        let props = DeviceProps::v100();
        let cfg = LaunchConfig::new(Precision::Single, 128).with_shared(4096);
        let mut kg = Kernel::new(
            "g",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        kg.atomic_region(16, 8);
        let mut bg = kg.block();
        for _ in 0..100_000 {
            bg.global_atomic(0);
        }
        bg.finish();
        let mut ks = Kernel::new("s", cfg, props);
        let mut bs = ks.block();
        for _ in 0..100_000 {
            bs.shared_atomic(0);
        }
        bs.finish();
        let tg = kg.price().0.duration;
        let ts = ks.price().0.duration;
        assert!(ts < tg / 3.0, "shared {ts} vs global {tg}");
    }

    #[test]
    fn shared_hotspot_resets_between_blocks() {
        let cfg = LaunchConfig::new(Precision::Single, 128).with_shared(1024);
        let mut k = mk(cfg);
        let mut b1 = k.block();
        for _ in 0..50 {
            b1.shared_atomic(3);
        }
        assert_eq!(b1.shared_hotspot, 50);
        b1.finish();
        let mut b2 = k.block();
        b2.shared_atomic(3);
        assert_eq!(b2.shared_hotspot, 1, "epoch must reset per block");
        b2.finish();
    }

    #[test]
    fn load_imbalance_shows_in_makespan() {
        let props = DeviceProps::v100();
        let total_flops = 8.0e9_f64;
        let mut k1 = Kernel::new(
            "lump",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        let mut b = k1.block();
        b.flops(total_flops as u64);
        b.finish();
        let t_lump = k1.price().0.duration;
        let mut k2 = Kernel::new("split", LaunchConfig::new(Precision::Single, 128), props);
        for _ in 0..800 {
            let mut b = k2.block();
            b.flops((total_flops / 800.0) as u64);
            b.finish();
        }
        let t_split = k2.price().0.duration;
        assert!(t_split < t_lump / 10.0, "split {t_split} vs lump {t_lump}");
    }

    #[test]
    fn atomic_op_throughput_bounds_uncontended_atomics() {
        let props = DeviceProps::v100();
        let mut k = Kernel::new(
            "ops",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        k.atomic_region(1 << 20, 8);
        let mut b = k.block();
        // spread over many sectors: no hotspot, but op rate still binds
        for i in 0..1_000_000usize {
            b.global_atomic(i % (1 << 20));
        }
        b.finish();
        let r = k.price().0;
        let expect = 1.0e6 / props.l2_atomic_rate;
        assert!(r.breakdown.atomic_ops >= expect * 0.99);
        assert!(r.breakdown.atomic_hotspot < expect);
    }

    #[test]
    fn hotspot_counter_survives_u32_overflow() {
        // Regression: `atomic_hotspot_count` (and the per-sector tallies
        // feeding it) were u32 and would wrap on huge-M runs. Feed > 2^32
        // ops into one sector via the bulk form and check the exact count
        // comes back out.
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        k.atomic_region(16, 8);
        let huge = (u32::MAX as u64) + 5;
        let mut b = k.block();
        b.global_atomic_n(0, huge);
        b.finish();
        let r = k.price().0;
        assert_eq!(r.global_atomics, huge);
        assert_eq!(r.atomic_hotspot_count, huge, "tally must not wrap");
    }

    #[test]
    fn access_trace_captures_contract_and_records() {
        use crate::access::Scope;
        let mut k = mk(LaunchConfig::new(Precision::Single, 128).with_shared(1024));
        k.enable_access_trace();
        k.atomic_region(64, 8);
        let grid = k.trace_buffer("grid", Scope::Global, 4);
        let tile = k.trace_buffer("tile", Scope::Shared, 4);
        let mut b = k.block();
        b.global_atomic(3);
        b.trace_atomic(grid, 0, 3);
        b.shared_atomic(7);
        b.trace_atomic(tile, 1, 7);
        b.barrier();
        b.trace_read(tile, 2, 7);
        b.finish();
        let (_, traced) = k.price();
        let (trace, contract) = traced.expect("trace attached");
        assert_eq!(trace.len(), 3);
        assert_eq!(contract.global_atomics, Some(1));
        assert_eq!(contract.shared_atomics, Some(1));
        assert_eq!(contract.shared_bytes, Some(1024));
    }

    #[test]
    fn trace_hooks_are_noops_when_disabled() {
        use crate::access::Scope;
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        assert!(!k.access_traced());
        let buf = k.trace_buffer("grid", Scope::Global, 4);
        let mut b = k.block();
        b.trace_write(buf, 0, 0);
        b.barrier();
        b.finish();
        let (_, traced) = k.price();
        assert!(traced.is_none());
    }

    #[test]
    fn atomic_region_exact_boundary_has_no_spurious_sector() {
        // 1024 elems of 8 bytes, 32-byte sectors → 4 elems/sector →
        // exactly 256 sectors. The old `n / eps + 1` sizing allocated a
        // 257th sector that nothing could ever land in, diluting
        // hotspot-fraction style statistics.
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        k.atomic_region(1024, 8);
        assert_eq!(k.atomic_hist.len(), 256);
        // Last element maps to the last sector, in range.
        let mut b = k.block();
        b.global_atomic(1023);
        b.finish();
        let r = k.price().0;
        assert_eq!(r.atomic_hotspot_count, 1);
        // Non-dividing case still rounds up.
        let mut k2 = mk(LaunchConfig::new(Precision::Single, 128));
        k2.atomic_region(1025, 8);
        assert_eq!(k2.atomic_hist.len(), 257);
    }

    /// Synthetic per-block workload exercising every accounting channel,
    /// with cross-block line reuse so the DRAM replay order matters.
    fn workload_acc(bid: usize, b: &mut BlockAcc<'_>) -> Vec<(usize, f64)> {
        b.flops(1000 + bid as u64);
        let addrs: Vec<usize> = (0..32).map(|i| (bid / 2) * 256 + i * 8).collect();
        b.warp_access(&addrs);
        b.dram_span(bid * 100, 512, bid.is_multiple_of(3));
        b.stream_bytes(96);
        for j in 0..(bid % 7 + 1) {
            b.global_atomic((bid * 13 + j) % 64);
        }
        b.shared_atomic(bid % 16);
        b.shared_atomic(bid % 16);
        b.shared_ops(5);
        b.shared_reads(8);
        vec![(bid, bid as f64 * 0.5), (bid + 1, 1.0)]
    }

    fn workload_ctx(bid: usize, b: &mut BlockCtx<'_>) -> Vec<(usize, f64)> {
        b.flops(1000 + bid as u64);
        let addrs: Vec<usize> = (0..32).map(|i| (bid / 2) * 256 + i * 8).collect();
        b.warp_access(&addrs);
        b.dram_span(bid * 100, 512, bid.is_multiple_of(3));
        b.stream_bytes(96);
        for j in 0..(bid % 7 + 1) {
            b.global_atomic((bid * 13 + j) % 64);
        }
        b.shared_atomic(bid % 16);
        b.shared_atomic(bid % 16);
        b.shared_ops(5);
        b.shared_reads(8);
        vec![(bid, bid as f64 * 0.5), (bid + 1, 1.0)]
    }

    fn run_workload(threads: usize, n_blocks: usize) -> (LaunchReport, Vec<f64>) {
        let cfg = LaunchConfig::new(Precision::Single, 128).with_shared(1024);
        let mut k = mk(cfg);
        k.atomic_region(256, 8);
        k.host_threads = threads;
        let mut sink = vec![0.0f64; n_blocks + 1];
        k.run_blocks(n_blocks, workload_acc, |_bid, deltas| {
            for (i, v) in deltas {
                sink[i] += v;
            }
        });
        (k.price().0, sink)
    }

    fn assert_reports_identical(a: &LaunchReport, b: &LaunchReport) {
        assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        assert_eq!(a.dram_bytes.to_bits(), b.dram_bytes.to_bits());
        assert_eq!(a.flops.to_bits(), b.flops.to_bits());
        assert_eq!(a.l2_bytes.to_bits(), b.l2_bytes.to_bits());
        assert_eq!(a.global_atomics, b.global_atomics);
        assert_eq!(a.atomic_hotspot_count, b.atomic_hotspot_count);
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(
            a.breakdown.makespan.to_bits(),
            b.breakdown.makespan.to_bits()
        );
        assert_eq!(a.breakdown.dram.to_bits(), b.breakdown.dram.to_bits());
        assert_eq!(
            a.breakdown.atomic_hotspot.to_bits(),
            b.breakdown.atomic_hotspot.to_bits()
        );
    }

    #[test]
    fn run_blocks_serial_matches_legacy_block_api_bitwise() {
        let n_blocks = 64;
        let (par_report, par_sink) = run_workload(1, n_blocks);
        // Same workload through the legacy serial block()/finish() API.
        let cfg = LaunchConfig::new(Precision::Single, 128).with_shared(1024);
        let mut k = mk(cfg);
        k.atomic_region(256, 8);
        let mut sink = vec![0.0f64; n_blocks + 1];
        for bid in 0..n_blocks {
            let mut b = k.block();
            let deltas = workload_ctx(bid, &mut b);
            b.finish();
            for (i, v) in deltas {
                sink[i] += v;
            }
        }
        let legacy = k.price().0;
        assert_reports_identical(&legacy, &par_report);
        assert_eq!(legacy.blocks, n_blocks);
        for (a, b) in sink.iter().zip(par_sink.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn run_blocks_parallel_is_bitwise_identical_to_serial() {
        let n_blocks = 97; // odd count: uneven work distribution
        let (serial, s_sink) = run_workload(1, n_blocks);
        for threads in [2, 3, 8] {
            let (par, p_sink) = run_workload(threads, n_blocks);
            assert_reports_identical(&serial, &par);
            for (a, b) in s_sink.iter().zip(p_sink.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn run_blocks_forces_serial_and_replays_trace_when_hazard_checked() {
        use crate::access::Scope;
        let mut k = mk(LaunchConfig::new(Precision::Single, 128).with_shared(1024));
        k.enable_access_trace();
        k.atomic_region(64, 8);
        let grid = k.trace_buffer("grid", Scope::Global, 4);
        k.host_threads = 8; // must be ignored: trace attached → serial
        k.run_blocks(
            3,
            |bid, b| {
                b.global_atomic(bid);
                b.trace_atomic(grid, 0, bid as u64);
                b.barrier();
                b.trace_read(grid, 1, bid as u64);
            },
            |_, _| {},
        );
        let (report, traced) = k.price();
        assert_eq!(report.blocks, 3);
        let (trace, contract) = traced.expect("trace attached");
        assert_eq!(trace.len(), 6);
        assert_eq!(contract.global_atomics, Some(3));
    }

    #[test]
    fn stream_bytes_counts_both_levels() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        b.stream_bytes(33);
        b.finish();
        assert_eq!(k.l2_sectors, 2);
        assert_eq!(k.dram_bytes, 33.0);
    }
}
