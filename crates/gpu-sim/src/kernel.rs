//! Kernel launch accounting: coalescing, cache reuse, atomic contention,
//! shared-memory traffic, and per-block serial cost.
//!
//! Kernels execute *functionally* as ordinary Rust code over buffer
//! slices; while doing so they report their memory behaviour at warp
//! granularity through [`BlockCtx`]. Traffic is tracked at two levels:
//!
//! * **L2 transactions** — each warp-wide access is deduplicated into
//!   32-byte sectors (hardware coalescing). All sectors pass through L2.
//! * **DRAM lines** — sector requests are filtered through a
//!   direct-mapped model of the 6 MB L2 at 128-byte line granularity;
//!   only misses cost DRAM bandwidth (writes/atomics pay read+writeback).
//!   This is what makes bin-sorting pay off: sorted points reuse resident
//!   lines, unsorted points miss on nearly every footprint row.
//!
//! Global atomics additionally pay (a) a device-wide op-throughput
//! ceiling and (b) a same-sector serialization penalty for the hottest
//! sector — the term that makes clustered input-driven spreading
//! collapse, exactly as the paper describes.
//!
//! At `finish()` the launch is priced as
//! `max(makespan, L2, DRAM, compute, atomic-ops, hotspot) + overhead`,
//! where makespan comes from list-scheduling per-block serial costs onto
//! the SMs (the paper's `M_sub` load-balancing story).

use crate::access::{BufId, Contract, KernelTrace, Scope};
use crate::props::{DeviceProps, Precision};
use crate::sched::makespan;

/// Launch configuration, the subset of CUDA's `<<<grid, block, shmem>>>`
/// the cost model needs (grid size is implied by the number of
/// [`Kernel::block`] calls).
#[derive(Copy, Clone, Debug)]
pub struct LaunchConfig {
    pub precision: Precision,
    pub threads_per_block: usize,
    pub shared_bytes_per_block: usize,
    /// Multiplier on the same-sector atomic serialization cost. 1.0 for
    /// native hardware atomics; larger for CAS-loop emulated atomics
    /// (e.g. CUNFFT's double-precision adds), whose retries compound
    /// under contention.
    pub cas_atomic_penalty: f64,
}

impl LaunchConfig {
    pub fn new(precision: Precision, threads_per_block: usize) -> Self {
        LaunchConfig {
            precision,
            threads_per_block,
            shared_bytes_per_block: 0,
            cas_atomic_penalty: 1.0,
        }
    }

    pub fn with_shared(mut self, bytes: usize) -> Self {
        self.shared_bytes_per_block = bytes;
        self
    }

    pub fn with_cas_penalty(mut self, penalty: f64) -> Self {
        self.cas_atomic_penalty = penalty;
        self
    }
}

/// Cost breakdown of one launch (all in seconds).
#[derive(Copy, Clone, Debug, Default)]
pub struct Breakdown {
    pub makespan: f64,
    /// L2 bandwidth term.
    pub l2: f64,
    /// DRAM bandwidth term (line misses).
    pub dram: f64,
    pub compute: f64,
    /// Same-sector atomic serialization (hottest sector).
    pub atomic_hotspot: f64,
    /// Device-wide atomic op-throughput term.
    pub atomic_ops: f64,
    pub overhead: f64,
}

/// Result of pricing a launch.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    pub name: String,
    pub duration: f64,
    pub breakdown: Breakdown,
    pub blocks: usize,
    pub flops: f64,
    pub l2_bytes: f64,
    pub dram_bytes: f64,
    pub global_atomics: u64,
    /// Atomic ops landing on the hottest 32-byte sector. `u64` so
    /// huge-M runs (billions of adds into one sector) cannot wrap.
    pub atomic_hotspot_count: u64,
}

/// Direct-mapped model of the L2 cache at line granularity.
struct LineCache {
    tags: Vec<u64>,
}

impl LineCache {
    fn new(props: &DeviceProps) -> Self {
        let slots = (props.l2_bytes / props.line_bytes).max(1);
        LineCache {
            tags: vec![u64::MAX; slots],
        }
    }

    /// Touch one line; returns `true` on miss.
    #[inline(always)]
    fn touch(&mut self, line_id: u64) -> bool {
        let slot = (line_id as usize) % self.tags.len();
        if self.tags[slot] != line_id {
            self.tags[slot] = line_id;
            true
        } else {
            false
        }
    }
}

/// An in-flight kernel launch. Create with `Device::kernel`, call
/// [`Kernel::block`] once per thread block, then price via
/// `Device::launch_end`.
pub struct Kernel {
    pub(crate) name: String,
    pub(crate) cfg: LaunchConfig,
    props: DeviceProps,
    // device-wide accumulators
    flops: f64,
    l2_sectors: u64,
    dram_bytes: f64,
    atomics: u64,
    shared_atomics: u64,
    atomic_hist: Vec<u64>,
    elems_per_sector: usize,
    block_times: Vec<f64>,
    cache: LineCache,
    // per-block shared-memory hotspot tracking (epoch trick: no clearing)
    shared_epoch: Vec<u32>,
    shared_count: Vec<u64>,
    cur_epoch: u32,
    // shadow-memory access trace, present under HazardMode::Check
    access: Option<KernelTrace>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("blocks", &self.block_times.len())
            .finish_non_exhaustive()
    }
}

impl Kernel {
    pub(crate) fn new(name: &str, cfg: LaunchConfig, props: DeviceProps) -> Self {
        let shared_words = cfg.shared_bytes_per_block / 4;
        let cache = LineCache::new(&props);
        Kernel {
            name: name.to_string(),
            cfg,
            props,
            flops: 0.0,
            l2_sectors: 0,
            dram_bytes: 0.0,
            atomics: 0,
            shared_atomics: 0,
            atomic_hist: Vec::new(),
            elems_per_sector: 1,
            block_times: Vec::new(),
            cache,
            shared_epoch: vec![0; shared_words],
            shared_count: vec![0; shared_words],
            cur_epoch: 0,
            access: None,
        }
    }

    /// Attach a shadow-memory access trace to this launch (done by the
    /// device under [`crate::access::HazardMode::Check`]). Instrumented
    /// kernels then log accesses through the `BlockCtx::trace_*` hooks.
    pub fn enable_access_trace(&mut self) {
        self.access = Some(KernelTrace::new(&self.name));
    }

    /// Whether this launch carries an access trace. Instrumentation
    /// sites can use this to skip building address streams when off.
    pub fn access_traced(&self) -> bool {
        self.access.is_some()
    }

    /// Register a named buffer for access tracing. Returns a handle the
    /// `BlockCtx::trace_*` hooks take; a no-op placeholder when tracing
    /// is off.
    pub fn trace_buffer(&mut self, name: &str, scope: Scope, elem_bytes: usize) -> BufId {
        match &mut self.access {
            Some(t) => t.buffer(name, scope, elem_bytes),
            None => BufId(u16::MAX),
        }
    }

    /// Declare the buffer that receives global atomics so contention can
    /// be tracked per 32-byte sector. `elem_bytes` is the size of one
    /// logical element (e.g. 8 for a complex f32).
    pub fn atomic_region(&mut self, n_elems: usize, elem_bytes: usize) {
        self.elems_per_sector = (self.props.sector_bytes / elem_bytes).max(1);
        let sectors = n_elems / self.elems_per_sector + 1;
        self.atomic_hist = vec![0u64; sectors];
    }

    /// Begin accounting for one thread block.
    pub fn block(&mut self) -> BlockCtx<'_> {
        self.cur_epoch = self.cur_epoch.wrapping_add(1);
        if self.cur_epoch == 0 {
            self.shared_epoch.iter_mut().for_each(|e| *e = 0);
            self.cur_epoch = 1;
        }
        let block_id = self.block_times.len() as u32;
        BlockCtx {
            block_id,
            k: self,
            flops: 0.0,
            l2_sectors: 0,
            dram_bytes: 0.0,
            atomics: 0,
            shared_atomics: 0,
            shared_ops: 0,
            shared_hotspot: 0,
        }
    }

    /// Price the launch. Called by `Device::launch_end`. When an access
    /// trace is attached, returns it alongside the launch's declared
    /// contract (atomic counts from the perf accumulators, shared bytes
    /// from the launch config) for the hazard checker.
    pub(crate) fn price(self) -> (LaunchReport, Option<(KernelTrace, Contract)>) {
        let p = &self.props;
        let prec = self.cfg.precision;
        let compute = self.flops / p.flops(prec);
        let l2_bytes = (self.l2_sectors * p.sector_bytes as u64) as f64;
        let l2 = l2_bytes / p.l2_bw;
        let dram = self.dram_bytes / p.dram_bw;
        let hot = self.atomic_hist.iter().copied().max().unwrap_or(0);
        let atomic_hotspot = hot as f64 * p.t_global_atomic_same * self.cfg.cas_atomic_penalty;
        let atomic_ops = self.atomics as f64 / p.l2_atomic_rate;
        let ms = makespan(&self.block_times, p.sm_count);
        let overhead = p.t_launch;
        let duration = ms
            .max(l2)
            .max(dram)
            .max(compute)
            .max(atomic_hotspot)
            .max(atomic_ops)
            + overhead;
        let traced = self.access.map(|t| {
            let contract = Contract {
                global_atomics: Some(self.atomics),
                shared_atomics: Some(self.shared_atomics),
                shared_bytes: Some(self.cfg.shared_bytes_per_block),
            };
            (t, contract)
        });
        let report = LaunchReport {
            name: self.name,
            duration,
            breakdown: Breakdown {
                makespan: ms,
                l2,
                dram,
                compute,
                atomic_hotspot,
                atomic_ops,
                overhead,
            },
            blocks: self.block_times.len(),
            flops: self.flops,
            l2_bytes,
            dram_bytes: self.dram_bytes,
            global_atomics: self.atomics,
            atomic_hotspot_count: hot,
        };
        (report, traced)
    }
}

/// Accounting context for one thread block. Obtain via [`Kernel::block`],
/// report the block's work, then call [`BlockCtx::finish`].
pub struct BlockCtx<'a> {
    k: &'a mut Kernel,
    /// Sequential id of this block within the launch (used as the block
    /// coordinate of traced accesses).
    block_id: u32,
    flops: f64,
    l2_sectors: u64,
    dram_bytes: f64,
    atomics: u64,
    shared_atomics: u64,
    shared_ops: u64,
    shared_hotspot: u64,
}

impl BlockCtx<'_> {
    /// Report `n` floating-point operations (in the working precision).
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.flops += n as f64;
    }

    /// Count distinct 32-byte sectors among up to 32 lane addresses
    /// (hardware coalescing within one warp instruction).
    fn dedup_sectors(&self, byte_addrs: &[usize]) -> u64 {
        debug_assert!(byte_addrs.len() <= 32, "a warp has at most 32 lanes");
        let sb = self.k.props.sector_bytes;
        let mut ids = [usize::MAX; 32];
        let n = byte_addrs.len().min(32);
        for (slot, &a) in ids.iter_mut().zip(byte_addrs.iter()) {
            *slot = a / sb;
        }
        let ids = &mut ids[..n];
        ids.sort_unstable();
        let mut distinct = 0u64;
        let mut prev = usize::MAX;
        for &id in ids.iter() {
            if id != prev {
                distinct += 1;
                prev = id;
            }
        }
        distinct
    }

    /// One warp-wide access whose traffic stays at L2 level; cache reuse
    /// at DRAM level must be reported separately via [`Self::dram_span`].
    /// Used for the grid accesses of spread/interp inner loops, whose
    /// footprint rows are reported to the line cache once per row.
    pub fn l2_access(&mut self, byte_addrs: &[usize]) {
        self.l2_sectors += self.dedup_sectors(byte_addrs);
    }

    /// Directly add `n` L2 sector transactions. Used when the caller has
    /// already deduplicated a larger access set (e.g. read-only gathers
    /// filtered through the per-SM L1, which atomics bypass but loads
    /// enjoy: a warp's whole footprint counts each sector once).
    #[inline]
    pub fn l2_sector_count(&mut self, n: u64) {
        self.l2_sectors += n;
    }

    /// One warp-wide access including its DRAM-side line traffic (each
    /// lane's line filtered through the L2 model). Use for scattered
    /// gathers such as reading point data through a sort permutation.
    pub fn warp_access(&mut self, byte_addrs: &[usize]) {
        self.l2_sectors += self.dedup_sectors(byte_addrs);
        let lb = self.k.props.line_bytes;
        for &a in byte_addrs {
            if self.k.cache.touch((a / lb) as u64) {
                self.dram_bytes += lb as f64;
            }
        }
    }

    /// A contiguous byte span touched by the block (streaming access,
    /// e.g. coalesced loads of consecutive point data): full L2 traffic
    /// plus line-cache-filtered DRAM traffic.
    pub fn stream_span(&mut self, start_byte: usize, len_bytes: usize, write: bool) {
        let sb = self.k.props.sector_bytes;
        self.l2_sectors += len_bytes.div_ceil(sb) as u64;
        self.dram_span(start_byte, len_bytes, write);
    }

    /// Report a contiguous byte span to the DRAM line cache only (no L2
    /// traffic; use when the L2-level cost was already counted via
    /// [`Self::l2_access`]). Writes pay read+writeback on miss.
    pub fn dram_span(&mut self, start_byte: usize, len_bytes: usize, write: bool) {
        if len_bytes == 0 {
            return;
        }
        let lb = self.k.props.line_bytes;
        let first = (start_byte / lb) as u64;
        let last = ((start_byte + len_bytes - 1) / lb) as u64;
        let factor = if write { 2.0 } else { 1.0 };
        for line in first..=last {
            if self.k.cache.touch(line) {
                self.dram_bytes += lb as f64 * factor;
            }
        }
    }

    /// Legacy helper: contiguous streaming traffic with no base address
    /// (assumed compulsory misses).
    #[inline]
    pub fn stream_bytes(&mut self, bytes: usize) {
        let sb = self.k.props.sector_bytes;
        self.l2_sectors += bytes.div_ceil(sb) as u64;
        self.dram_bytes += bytes as f64;
    }

    /// One global atomic op landing on logical element `elem_idx` of the
    /// declared atomic region. Pays the op-throughput term and feeds the
    /// per-sector contention histogram. Its memory traffic must be
    /// reported separately (`l2_access` + `dram_span`).
    #[inline]
    pub fn global_atomic(&mut self, elem_idx: usize) {
        self.global_atomic_n(elem_idx, 1);
    }

    /// `n` global atomic ops landing on the same logical element. Bulk
    /// form so synthetic huge-count tests (and batched accounting) need
    /// not loop per op; counters are `u64` throughout, so multi-billion
    /// tallies do not wrap.
    #[inline]
    pub fn global_atomic_n(&mut self, elem_idx: usize, n: u64) {
        self.atomics += n;
        if !self.k.atomic_hist.is_empty() {
            let s = elem_idx / self.k.elems_per_sector;
            if let Some(c) = self.k.atomic_hist.get_mut(s) {
                *c += n;
            }
        }
    }

    /// One shared-memory atomic add to 4-byte word `word_idx` of this
    /// block's shared allocation.
    #[inline]
    pub fn shared_atomic(&mut self, word_idx: usize) {
        self.shared_ops += 1;
        self.shared_atomics += 1;
        let k = &mut *self.k;
        if word_idx < k.shared_epoch.len() {
            if k.shared_epoch[word_idx] != k.cur_epoch {
                k.shared_epoch[word_idx] = k.cur_epoch;
                k.shared_count[word_idx] = 1;
            } else {
                k.shared_count[word_idx] += 1;
            }
            self.shared_hotspot = self.shared_hotspot.max(k.shared_count[word_idx]);
        }
    }

    /// Plain (non-atomic) shared-memory operations.
    #[inline]
    pub fn shared_ops(&mut self, n: u64) {
        self.shared_ops += n;
    }

    /// Shared-memory reads: conflict-free loads sustain ~4x the
    /// read-modify-write rate.
    #[inline]
    pub fn shared_reads(&mut self, n: u64) {
        self.shared_ops += n / 4;
    }

    /// Log a traced read on `buf` by `thread` of this block. No-op when
    /// the launch carries no access trace.
    #[inline]
    pub fn trace_read(&mut self, buf: BufId, thread: u32, elem: u64) {
        if let Some(t) = &mut self.k.access {
            t.read(buf, self.block_id, thread, elem);
        }
    }

    /// Log a traced plain write on `buf` by `thread` of this block.
    #[inline]
    pub fn trace_write(&mut self, buf: BufId, thread: u32, elem: u64) {
        if let Some(t) = &mut self.k.access {
            t.write(buf, self.block_id, thread, elem);
        }
    }

    /// Log a traced atomic on `buf` by `thread` of this block.
    #[inline]
    pub fn trace_atomic(&mut self, buf: BufId, thread: u32, elem: u64) {
        if let Some(t) = &mut self.k.access {
            t.atomic(buf, self.block_id, thread, elem);
        }
    }

    /// Model `__syncthreads` for this block: orders all accesses logged
    /// before it against all logged after it. (Pure synchronization; no
    /// cost is charged, matching a contention-free barrier.)
    #[inline]
    pub fn barrier(&mut self) {
        if let Some(t) = &mut self.k.access {
            t.barrier(self.block_id);
        }
    }

    /// Whether this launch carries an access trace (see
    /// [`Kernel::access_traced`]).
    #[inline]
    pub fn access_traced(&self) -> bool {
        self.k.access.is_some()
    }

    /// Close the block: convert its counters into a serial cost.
    pub fn finish(self) {
        let p = &self.k.props;
        let prec = self.k.cfg.precision;
        let sm = p.sm_count as f64;
        let t_compute = self.flops / p.sm_flops(prec);
        let t_l2 = (self.l2_sectors * p.sector_bytes as u64) as f64 / (p.l2_bw / sm);
        let t_dram = self.dram_bytes / (p.dram_bw / sm);
        let t_atomic = self.atomics as f64 / (p.l2_atomic_rate / sm);
        let t_shared = self.shared_ops as f64 / p.shared_ops_rate_per_sm
            + self.shared_hotspot as f64 * p.t_shared_atomic_same;
        let t_block = t_compute.max(t_l2).max(t_dram).max(t_atomic).max(t_shared);
        self.k.flops += self.flops;
        self.k.l2_sectors += self.l2_sectors;
        self.k.dram_bytes += self.dram_bytes;
        self.k.atomics += self.atomics;
        self.k.shared_atomics += self.shared_atomics;
        self.k.block_times.push(t_block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(cfg: LaunchConfig) -> Kernel {
        Kernel::new("test", cfg, DeviceProps::v100())
    }

    #[test]
    fn coalesced_warp_is_few_sectors() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        // 32 lanes reading 32 consecutive f32s: 128 B = 4 sectors
        let addrs: Vec<usize> = (0..32).map(|i| i * 4).collect();
        b.l2_access(&addrs);
        b.finish();
        assert_eq!(k.l2_sectors, 4);
    }

    #[test]
    fn scattered_warp_is_many_sectors() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        let addrs: Vec<usize> = (0..32).map(|i| i * 4096).collect();
        b.l2_access(&addrs);
        b.finish();
        assert_eq!(k.l2_sectors, 32);
    }

    #[test]
    fn line_cache_rewards_reuse() {
        let props = DeviceProps::v100();
        // repeatedly touching the same small region: only first touch
        // costs DRAM
        let mut k = Kernel::new(
            "r",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        let mut b = k.block();
        for _ in 0..100 {
            b.dram_span(0, 4096, false);
        }
        b.finish();
        assert_eq!(k.dram_bytes, 4096.0f64.div_euclid(128.0) * 128.0);
        // scattered touches each cost a full line
        let mut k2 = Kernel::new("s", LaunchConfig::new(Precision::Single, 128), props);
        let mut b = k2.block();
        for i in 0..100usize {
            b.dram_span(i * 1_000_000, 4, false);
        }
        b.finish();
        assert_eq!(k2.dram_bytes, 100.0 * 128.0);
    }

    #[test]
    fn writes_pay_read_plus_writeback() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        b.dram_span(0, 128, true);
        b.finish();
        assert_eq!(k.dram_bytes, 256.0);
    }

    #[test]
    fn atomic_hotspot_tracks_worst_sector() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        k.atomic_region(1024, 8);
        let mut b = k.block();
        for _ in 0..100 {
            b.global_atomic(5);
        }
        b.global_atomic(900);
        b.finish();
        let r = k.price().0;
        assert_eq!(r.global_atomics, 101);
        assert_eq!(r.atomic_hotspot_count, 100);
    }

    #[test]
    fn hotspot_serialization_dominates_when_contended() {
        let props = DeviceProps::v100();
        let mut k = Kernel::new(
            "hot",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        k.atomic_region(16, 8);
        let mut b = k.block();
        let n = 1_000_000u32;
        for _ in 0..n {
            b.global_atomic(0);
        }
        b.finish();
        let r = k.price().0;
        let expect = n as f64 * props.t_global_atomic_same;
        assert!(r.breakdown.atomic_hotspot >= expect * 0.99);
        assert!(r.duration >= expect);
    }

    #[test]
    fn cas_penalty_multiplies_contention() {
        let props = DeviceProps::v100();
        let run = |penalty: f64| {
            let cfg = LaunchConfig::new(Precision::Double, 128).with_cas_penalty(penalty);
            let mut k = Kernel::new("c", cfg, props.clone());
            k.atomic_region(16, 16);
            let mut b = k.block();
            for _ in 0..10_000 {
                b.global_atomic(0);
            }
            b.finish();
            k.price().0.breakdown.atomic_hotspot
        };
        assert!((run(16.0) / run(1.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn shared_atomics_are_much_cheaper_than_global_hotspot() {
        let props = DeviceProps::v100();
        let cfg = LaunchConfig::new(Precision::Single, 128).with_shared(4096);
        let mut kg = Kernel::new(
            "g",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        kg.atomic_region(16, 8);
        let mut bg = kg.block();
        for _ in 0..100_000 {
            bg.global_atomic(0);
        }
        bg.finish();
        let mut ks = Kernel::new("s", cfg, props);
        let mut bs = ks.block();
        for _ in 0..100_000 {
            bs.shared_atomic(0);
        }
        bs.finish();
        let tg = kg.price().0.duration;
        let ts = ks.price().0.duration;
        assert!(ts < tg / 3.0, "shared {ts} vs global {tg}");
    }

    #[test]
    fn shared_hotspot_resets_between_blocks() {
        let cfg = LaunchConfig::new(Precision::Single, 128).with_shared(1024);
        let mut k = mk(cfg);
        let mut b1 = k.block();
        for _ in 0..50 {
            b1.shared_atomic(3);
        }
        assert_eq!(b1.shared_hotspot, 50);
        b1.finish();
        let mut b2 = k.block();
        b2.shared_atomic(3);
        assert_eq!(b2.shared_hotspot, 1, "epoch must reset per block");
        b2.finish();
    }

    #[test]
    fn load_imbalance_shows_in_makespan() {
        let props = DeviceProps::v100();
        let total_flops = 8.0e9_f64;
        let mut k1 = Kernel::new(
            "lump",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        let mut b = k1.block();
        b.flops(total_flops as u64);
        b.finish();
        let t_lump = k1.price().0.duration;
        let mut k2 = Kernel::new("split", LaunchConfig::new(Precision::Single, 128), props);
        for _ in 0..800 {
            let mut b = k2.block();
            b.flops((total_flops / 800.0) as u64);
            b.finish();
        }
        let t_split = k2.price().0.duration;
        assert!(t_split < t_lump / 10.0, "split {t_split} vs lump {t_lump}");
    }

    #[test]
    fn atomic_op_throughput_bounds_uncontended_atomics() {
        let props = DeviceProps::v100();
        let mut k = Kernel::new(
            "ops",
            LaunchConfig::new(Precision::Single, 128),
            props.clone(),
        );
        k.atomic_region(1 << 20, 8);
        let mut b = k.block();
        // spread over many sectors: no hotspot, but op rate still binds
        for i in 0..1_000_000usize {
            b.global_atomic(i % (1 << 20));
        }
        b.finish();
        let r = k.price().0;
        let expect = 1.0e6 / props.l2_atomic_rate;
        assert!(r.breakdown.atomic_ops >= expect * 0.99);
        assert!(r.breakdown.atomic_hotspot < expect);
    }

    #[test]
    fn hotspot_counter_survives_u32_overflow() {
        // Regression: `atomic_hotspot_count` (and the per-sector tallies
        // feeding it) were u32 and would wrap on huge-M runs. Feed > 2^32
        // ops into one sector via the bulk form and check the exact count
        // comes back out.
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        k.atomic_region(16, 8);
        let huge = (u32::MAX as u64) + 5;
        let mut b = k.block();
        b.global_atomic_n(0, huge);
        b.finish();
        let r = k.price().0;
        assert_eq!(r.global_atomics, huge);
        assert_eq!(r.atomic_hotspot_count, huge, "tally must not wrap");
    }

    #[test]
    fn access_trace_captures_contract_and_records() {
        use crate::access::Scope;
        let mut k = mk(LaunchConfig::new(Precision::Single, 128).with_shared(1024));
        k.enable_access_trace();
        k.atomic_region(64, 8);
        let grid = k.trace_buffer("grid", Scope::Global, 4);
        let tile = k.trace_buffer("tile", Scope::Shared, 4);
        let mut b = k.block();
        b.global_atomic(3);
        b.trace_atomic(grid, 0, 3);
        b.shared_atomic(7);
        b.trace_atomic(tile, 1, 7);
        b.barrier();
        b.trace_read(tile, 2, 7);
        b.finish();
        let (_, traced) = k.price();
        let (trace, contract) = traced.expect("trace attached");
        assert_eq!(trace.len(), 3);
        assert_eq!(contract.global_atomics, Some(1));
        assert_eq!(contract.shared_atomics, Some(1));
        assert_eq!(contract.shared_bytes, Some(1024));
    }

    #[test]
    fn trace_hooks_are_noops_when_disabled() {
        use crate::access::Scope;
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        assert!(!k.access_traced());
        let buf = k.trace_buffer("grid", Scope::Global, 4);
        let mut b = k.block();
        b.trace_write(buf, 0, 0);
        b.barrier();
        b.finish();
        let (_, traced) = k.price();
        assert!(traced.is_none());
    }

    #[test]
    fn stream_bytes_counts_both_levels() {
        let mut k = mk(LaunchConfig::new(Precision::Single, 128));
        let mut b = k.block();
        b.stream_bytes(33);
        b.finish();
        assert_eq!(k.l2_sectors, 2);
        assert_eq!(k.dram_bytes, 33.0);
    }
}
