//! Property-based tests for the device cost model: monotonicity,
//! conservation, and schedule validity. These pin down the *mechanisms*
//! the cuFINUFFT reproduction depends on — if one of these breaks, a
//! figure harness could silently produce the wrong shape.

use gpu_sim::{Device, DeviceProps, LaunchConfig, Precision};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// More traffic never prices faster.
    #[test]
    fn duration_monotone_in_traffic(a in 1usize..1000, b in 1usize..1000) {
        let (lo, hi) = (a.min(b), a.max(b));
        let run = |kb: usize| {
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let mut k = dev.kernel("t", LaunchConfig::new(Precision::Single, 128)).unwrap();
            let mut blk = k.block();
            blk.stream_bytes(kb * 1024);
            blk.finish();
            dev.launch_end(k).duration
        };
        prop_assert!(run(hi) + 1e-15 >= run(lo));
    }

    /// More atomic contention never prices faster.
    #[test]
    fn duration_monotone_in_contention(a in 1u32..50_000, b in 1u32..50_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        let run = |n: u32| {
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let mut k = dev.kernel("t", LaunchConfig::new(Precision::Single, 128)).unwrap();
            k.atomic_region(64, 8);
            let mut blk = k.block();
            for _ in 0..n {
                blk.global_atomic(0);
            }
            blk.finish();
            dev.launch_end(k).duration
        };
        prop_assert!(run(hi) >= run(lo));
    }

    /// Splitting the same work over more blocks never lengthens the
    /// makespan term (the M_sub load-balancing premise).
    #[test]
    fn splitting_blocks_helps(total_flops in 1_000_000u64..1_000_000_000, parts in 1usize..64) {
        let run = |nblocks: usize| {
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let mut k = dev.kernel("t", LaunchConfig::new(Precision::Single, 128)).unwrap();
            for _ in 0..nblocks {
                let mut blk = k.block();
                blk.flops(total_flops / nblocks as u64);
                blk.finish();
            }
            dev.launch_end(k).breakdown.makespan
        };
        prop_assert!(run(parts) <= run(1) + 1e-15);
    }

    /// The line-cache never reports more DRAM traffic than the raw
    /// (uncached) footprint, and never less than the distinct-lines
    /// compulsory floor.
    #[test]
    fn dram_traffic_bounded(spans in proptest::collection::vec((0usize..1_000_000, 1usize..4096), 1..100)) {
        let dev = Device::v100();
        dev.set_record_timeline(false);
        let mut k = dev.kernel("t", LaunchConfig::new(Precision::Single, 128)).unwrap();
        let mut blk = k.block();
        let line = dev.props().line_bytes;
        let mut raw_lines = 0u64;
        let mut distinct = std::collections::HashSet::new();
        for &(start, len) in &spans {
            blk.dram_span(start, len, false);
            let first = start / line;
            let last = (start + len - 1) / line;
            raw_lines += (last - first + 1) as u64;
            for l in first..=last {
                distinct.insert(l);
            }
        }
        blk.finish();
        let rep = dev.launch_end(k);
        let dram_lines = (rep.dram_bytes / line as f64).round() as u64;
        prop_assert!(dram_lines <= raw_lines);
        prop_assert!(dram_lines >= distinct.len() as u64 || raw_lines < distinct.len() as u64);
    }

    /// Memory accounting: allocations and frees balance exactly.
    #[test]
    fn memory_conservation(sizes in proptest::collection::vec(1usize..1_000_000, 1..20)) {
        let dev = Device::v100();
        let base = dev.mem_used();
        {
            let mut bufs = Vec::new();
            let mut expect = base;
            for (i, &s) in sizes.iter().enumerate() {
                bufs.push(dev.alloc::<f32>(&format!("b{i}"), s).unwrap());
                expect += s * 4;
                prop_assert_eq!(dev.mem_used(), expect);
            }
            prop_assert!(dev.mem_peak() >= expect);
        }
        prop_assert_eq!(dev.mem_used(), base);
    }

    /// A weaker device never beats the V100 on the same workload.
    #[test]
    fn scaled_hardware_scales_time(kb in 64usize..100_000) {
        let run = |props: DeviceProps| {
            let dev = Device::new(props);
            dev.set_record_timeline(false);
            let mut k = dev.kernel("t", LaunchConfig::new(Precision::Single, 128)).unwrap();
            let mut blk = k.block();
            blk.stream_bytes(kb * 1024);
            blk.flops(kb as u64 * 5000);
            blk.finish();
            dev.launch_end(k).duration
        };
        prop_assert!(run(DeviceProps::half_v100()) >= run(DeviceProps::v100()));
    }

    /// Double precision never beats single for the same op counts.
    #[test]
    fn double_no_faster_than_single(flops in 1_000_000u64..100_000_000) {
        let run = |p: Precision| {
            let dev = Device::v100();
            dev.set_record_timeline(false);
            let mut k = dev.kernel("t", LaunchConfig::new(p, 128)).unwrap();
            let mut blk = k.block();
            blk.flops(flops);
            blk.finish();
            dev.launch_end(k).duration
        };
        prop_assert!(run(Precision::Double) >= run(Precision::Single));
    }
}
